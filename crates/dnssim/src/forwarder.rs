//! The client-facing resolver tier: a forwarder that relays queries to
//! external recursive resolvers under a configurable mapping policy.
//!
//! Every carrier the paper measured uses *indirect* resolution (§4): the
//! resolver configured on the device differs from the resolver the
//! authoritative side observes. The forwarder is that client-facing half;
//! its [`UpstreamPolicy`] is what produces each carrier's pairing
//! consistency in Table 3 and the client↔resolver churn of §4.5.

use dnswire::message::{Header, Message, MessageView, Rcode};
use netsim::engine::{Egress, ServiceCtx, UdpService};
use netsim::time::{SimDuration, SimTime};
use rand::Rng;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use crate::authority::DNS_PORT;
use crate::cache::{AmbientModel, CacheOutcome, DnsCache};
use netsim::addr::Prefix;

/// How the forwarder maps clients to external resolvers.
#[derive(Debug, Clone, PartialEq)]
pub enum UpstreamPolicy {
    /// Every query goes to the first upstream (Verizon's 100% consistency).
    Sticky,
    /// Each client holds a leased upstream; at lease expiry it keeps its
    /// upstream with probability `stick_prob`, otherwise re-picks uniformly.
    /// Models LDNS pools with partial stickiness (Sprint, SK carriers).
    PerClientLease {
        /// Lease duration.
        lease: SimDuration,
        /// Probability of keeping the same upstream at renewal.
        stick_prob: f64,
    },
    /// Uniformly random upstream per query (T-Mobile's heavy balancing).
    LoadBalance,
    /// The first upstream is the primary; each query spills to a random
    /// other upstream with `spill_prob` (Sprint-style mostly-consistent
    /// pools).
    PrimarySpill {
        /// Probability a query goes to a non-primary upstream.
        spill_prob: f64,
    },
}

/// Forwarder activity counters.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ForwarderStats {
    /// Client queries relayed.
    pub relayed: u64,
    /// Responses relayed back.
    pub returned: u64,
    /// Upstream re-picks performed at lease renewal.
    pub repicks: u64,
    /// Queries answered from the forwarder's own cache.
    pub cache_answers: u64,
}

impl ForwarderStats {
    /// Folds the forwarder counters into an [`obs::Registry`] under the
    /// `dns.forwarder.*` family, labelled with `labels`.
    pub fn export(&self, reg: &mut obs::Registry, labels: &[(&'static str, &str)]) {
        reg.inc_by("dns.forwarder.relayed", labels, self.relayed);
        reg.inc_by("dns.forwarder.returned", labels, self.returned);
        reg.inc_by("dns.forwarder.repicks", labels, self.repicks);
        reg.inc_by("dns.forwarder.cache_answers", labels, self.cache_answers);
    }
}

#[derive(Debug)]
struct PendingRelay {
    client: Ipv4Addr,
    client_port: u16,
    client_id: u16,
    reply_from: Ipv4Addr,
    /// ECS scope announced upstream (partition key for the cache).
    scope: Option<Prefix>,
    deadline: SimTime,
}

/// The forwarding service.
pub struct Forwarder {
    upstreams: Vec<Ipv4Addr>,
    policy: UpstreamPolicy,
    /// Unicast address upstream queries are sent from. Anycast instances
    /// must set this: relaying from the VIP would route the upstream's
    /// response to whichever instance is nearest to the *upstream*.
    egress_addr: Option<Ipv4Addr>,
    /// Answer cache (carrier client-facing resolvers cache; §6.2's "the
    /// locally configured resolver provides faster domain name resolutions"
    /// depends on it).
    cache: Option<DnsCache>,
    /// EDNS client-subnet map (the paper's §9 future-work fix): client /24
    /// → the public egress subnet the carrier would announce for it. When
    /// set, relayed queries carry ECS and the cache partitions by subnet.
    ecs_map: BTreeMap<Prefix, Ipv4Addr>,
    leases: BTreeMap<Ipv4Addr, (usize, SimTime)>,
    pending: BTreeMap<u16, PendingRelay>,
    next_txn: u16,
    timeout: SimDuration,
    proc_delay: SimDuration,
    /// Activity counters.
    pub stats: ForwarderStats,
}

impl Forwarder {
    /// A forwarder over the given upstream resolvers.
    pub fn new(upstreams: Vec<Ipv4Addr>, policy: UpstreamPolicy) -> Self {
        assert!(!upstreams.is_empty(), "forwarder with no upstreams");
        Forwarder {
            upstreams,
            policy,
            egress_addr: None,
            cache: None,
            ecs_map: BTreeMap::new(),
            leases: BTreeMap::new(),
            pending: BTreeMap::new(),
            next_txn: 1,
            timeout: SimDuration::from_secs(4),
            proc_delay: SimDuration::from_micros(150),
            stats: ForwarderStats::default(),
        }
    }

    /// Sets the unicast egress address for upstream relaying.
    pub fn with_egress(mut self, addr: Ipv4Addr) -> Self {
        self.egress_addr = Some(addr);
        self
    }

    /// Enables RFC 7871 client-subnet announcements: clients inside `client`
    /// /24s are announced as the mapped public egress /24.
    pub fn with_ecs_map(mut self, map: BTreeMap<Prefix, Ipv4Addr>) -> Self {
        self.ecs_map = map;
        self
    }

    /// The ECS subnet to announce for a client, if mapped.
    fn ecs_for(&self, client: Ipv4Addr) -> Option<Ipv4Addr> {
        self.ecs_map.get(&Prefix::slash24_of(client)).copied()
    }

    /// Enables answer caching with an optional ambient-load model.
    pub fn with_cache(
        mut self,
        capacity: usize,
        max_ttl: SimDuration,
        ambient: Option<AmbientModel>,
    ) -> Self {
        let mut cache = DnsCache::new(capacity, max_ttl);
        if let Some(a) = ambient {
            cache = cache.with_ambient(a);
        }
        self.cache = Some(cache);
        self
    }

    /// Builds a cached answer for `msg`'s question, if the cache can serve
    /// it. `scope` partitions ECS-scoped entries.
    fn answer_from_cache(
        &mut self,
        msg: &Message,
        scope: Option<Prefix>,
        now: SimTime,
    ) -> Option<Message> {
        let cache = self.cache.as_mut()?;
        let q = msg.questions.first()?;
        match cache.lookup(&(q.qname.clone(), q.qtype, scope), now) {
            CacheOutcome::Hit { records, rcode } => {
                let mut header = Header::query(msg.header.id);
                header.flags.response = true;
                header.flags.recursion_desired = msg.header.flags.recursion_desired;
                header.flags.recursion_available = true;
                header.rcode = rcode;
                let mut out = Message::new(header);
                out.questions = msg.questions.clone();
                out.answers = records;
                Some(out)
            }
            CacheOutcome::Miss => None,
        }
    }

    /// Absorbs a relayed response into the cache under its question key,
    /// partitioned by `scope` when the answer was ECS-scoped.
    fn absorb(&mut self, msg: &Message, scope: Option<Prefix>, now: SimTime) {
        let Some(cache) = self.cache.as_mut() else {
            return;
        };
        let Some(q) = msg.questions.first() else {
            return;
        };
        match msg.header.rcode {
            Rcode::NoError if !msg.answers.is_empty() => {
                let ttl = msg.answers.iter().map(|rr| rr.ttl).min().unwrap_or(0);
                if ttl > 0 {
                    cache.insert(
                        (q.qname.clone(), q.qtype, scope),
                        msg.answers.clone(),
                        Rcode::NoError,
                        SimDuration::from_secs(ttl as u64),
                        now,
                    );
                }
            }
            Rcode::NxDomain => {
                cache.insert(
                    (q.qname.clone(), q.qtype, scope),
                    Vec::new(),
                    Rcode::NxDomain,
                    SimDuration::from_secs(30),
                    now,
                );
            }
            _ => {}
        }
    }

    /// The forwarder's answer cache, when one was configured.
    pub fn cache(&self) -> Option<&DnsCache> {
        self.cache.as_ref()
    }

    /// The configured upstream set.
    pub fn upstreams(&self) -> &[Ipv4Addr] {
        &self.upstreams
    }

    fn pick_upstream(&mut self, client: Ipv4Addr, ctx: &mut ServiceCtx<'_>) -> Ipv4Addr {
        let idx = match &self.policy {
            UpstreamPolicy::Sticky => 0,
            UpstreamPolicy::LoadBalance => ctx.rng.gen_range(0..self.upstreams.len()),
            UpstreamPolicy::PrimarySpill { spill_prob } => {
                if self.upstreams.len() > 1 && ctx.rng.gen_bool(spill_prob.clamp(0.0, 1.0)) {
                    ctx.rng.gen_range(1..self.upstreams.len())
                } else {
                    0
                }
            }
            UpstreamPolicy::PerClientLease { lease, stick_prob } => {
                let (lease, stick_prob) = (*lease, *stick_prob);
                match self.leases.get(&client).copied() {
                    Some((idx, expires)) if ctx.now < expires => idx,
                    Some((idx, _)) => {
                        let keep = ctx.rng.gen_bool(stick_prob.clamp(0.0, 1.0));
                        let new_idx = if keep {
                            idx
                        } else {
                            self.stats.repicks += 1;
                            ctx.rng.gen_range(0..self.upstreams.len())
                        };
                        self.leases.insert(client, (new_idx, ctx.now + lease));
                        new_idx
                    }
                    None => {
                        let idx = ctx.rng.gen_range(0..self.upstreams.len());
                        self.leases.insert(client, (idx, ctx.now + lease));
                        idx
                    }
                }
            }
        };
        self.upstreams[idx]
    }

    fn alloc_txn(&mut self) -> u16 {
        for _ in 0..u16::MAX {
            let id = self.next_txn;
            self.next_txn = self.next_txn.wrapping_add(1).max(1);
            if !self.pending.contains_key(&id) {
                return id;
            }
        }
        // detlint: allow(D4) -- exhausting all 65k transaction ids means the
        // driver leaked relays; continuing would mis-route upstream replies to
        // the wrong client
        panic!("forwarder transaction ids exhausted");
    }

    fn expire(&mut self, now: SimTime) {
        self.pending.retain(|_, p| p.deadline >= now);
    }
}

impl UdpService for Forwarder {
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn handle(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        from: Ipv4Addr,
        from_port: u16,
        payload: &[u8],
    ) -> Vec<Egress> {
        self.expire(ctx.now);
        // Zero-copy precheck: an upstream response whose transaction id is
        // not pending (late duplicate, spoof) is dropped on the header peek
        // alone, before paying for a full record decode.
        let Ok(view) = MessageView::new(payload) else {
            return Vec::new();
        };
        if view.is_response() && !self.pending.contains_key(&view.id()) {
            return Vec::new();
        }
        let Ok(mut msg) = Message::decode(payload) else {
            return Vec::new();
        };
        if msg.header.flags.response {
            // A response from an upstream: cache it, relay to the client.
            let Some(relay) = self.pending.remove(&msg.header.id) else {
                return Vec::new();
            };
            self.absorb(&msg, relay.scope, ctx.now);
            self.stats.returned += 1;
            msg.header.id = relay.client_id;
            return vec![Egress::reply(
                relay.client,
                relay.client_port,
                // detlint: allow(D4) -- re-encode of a response that just
                // decoded successfully; only the id header changed
                msg.encode().expect("relayed response encodes"),
                self.proc_delay,
            )
            .from_addr(relay.reply_from)];
        }
        // A client query: resolve the ECS announcement first (it is also
        // the cache partition key), then serve from cache or relay.
        let ecs_subnet = self.ecs_for(from);
        let scope = ecs_subnet.map(Prefix::slash24_of);
        if let Some(cached) = self.answer_from_cache(&msg, scope, ctx.now) {
            self.stats.cache_answers += 1;
            return vec![Egress::reply(
                from,
                from_port,
                // detlint: allow(D4) -- encode of a cached response assembled
                // from records that encoded before
                cached.encode().expect("cached response encodes"),
                self.proc_delay,
            )];
        }
        let upstream = self.pick_upstream(from, ctx);
        let txn = self.alloc_txn();
        self.pending.insert(
            txn,
            PendingRelay {
                client: from,
                client_port: from_port,
                client_id: msg.header.id,
                reply_from: ctx.local_addr,
                scope,
                deadline: ctx.now + self.timeout,
            },
        );
        self.stats.relayed += 1;
        msg.header.id = txn;
        if let Some(subnet) = ecs_subnet {
            msg.set_client_subnet(subnet, 24);
        }
        let mut egress = Egress::reply(
            upstream,
            DNS_PORT,
            // detlint: allow(D4) -- re-encode of a query that just decoded
            // successfully; only id and ECS changed
            msg.encode().expect("relayed query encodes"),
            self.proc_delay,
        );
        if let Some(src) = self.egress_addr {
            egress = egress.from_addr(src);
        }
        vec![egress]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnswire::builder::{QueryBuilder, ResponseBuilder};
    use dnswire::rdata::RecordType;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr::new(a, b, c, d)
    }

    fn ctx<'a>(rng: &'a mut StdRng, now_s: u64) -> ServiceCtx<'a> {
        ServiceCtx {
            now: SimTime::from_micros(now_s * 1_000_000),
            local_addr: ip(10, 5, 0, 1),
            rng,
            wake_after: None,
        }
    }

    fn upstreams() -> Vec<Ipv4Addr> {
        (1..=4).map(|i| ip(66, 174, 0, i)).collect()
    }

    #[test]
    fn relays_query_and_response() {
        let mut f = Forwarder::new(upstreams(), UpstreamPolicy::Sticky);
        let mut rng = StdRng::seed_from_u64(1);
        let q = QueryBuilder::new(0x42, "m.yelp.com", RecordType::A)
            .recursion_desired(true)
            .build()
            .unwrap();
        let out = f.handle(
            &mut ctx(&mut rng, 0),
            ip(10, 9, 9, 9),
            5555,
            &q.encode().unwrap(),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].dst, ip(66, 174, 0, 1)); // sticky = first upstream
        assert_eq!(out[0].dst_port, DNS_PORT);
        let relayed = Message::decode(&out[0].payload).unwrap();
        assert_ne!(relayed.header.id, 0x42); // fresh transaction id

        // Upstream responds.
        let resp = ResponseBuilder::for_query(&relayed)
            .answer_a(
                dnswire::name::DnsName::parse("m.yelp.com").unwrap(),
                30,
                ip(192, 0, 2, 5),
            )
            .build();
        let out = f.handle(
            &mut ctx(&mut rng, 0),
            ip(66, 174, 0, 1),
            DNS_PORT,
            &resp.encode().unwrap(),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].dst, ip(10, 9, 9, 9));
        assert_eq!(out[0].dst_port, 5555);
        let back = Message::decode(&out[0].payload).unwrap();
        assert_eq!(back.header.id, 0x42); // client id restored
        assert_eq!(back.answer_addrs(), vec![ip(192, 0, 2, 5)]);
        assert_eq!(f.stats.relayed, 1);
        assert_eq!(f.stats.returned, 1);
    }

    #[test]
    fn load_balance_spreads_upstreams() {
        let mut f = Forwarder::new(upstreams(), UpstreamPolicy::LoadBalance);
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = std::collections::HashSet::new();
        for i in 0..60 {
            let q = QueryBuilder::new(i, "m.yelp.com", RecordType::A)
                .build()
                .unwrap();
            let out = f.handle(
                &mut ctx(&mut rng, i as u64),
                ip(10, 9, 9, 9),
                5555,
                &q.encode().unwrap(),
            );
            seen.insert(out[0].dst);
        }
        assert_eq!(seen.len(), 4, "all upstreams used");
    }

    #[test]
    fn per_client_lease_is_stable_within_lease() {
        let mut f = Forwarder::new(
            upstreams(),
            UpstreamPolicy::PerClientLease {
                lease: SimDuration::from_secs(1000),
                stick_prob: 0.0,
            },
        );
        let mut rng = StdRng::seed_from_u64(3);
        let mut targets = std::collections::HashSet::new();
        for i in 0..20 {
            let q = QueryBuilder::new(i, "m.yelp.com", RecordType::A)
                .build()
                .unwrap();
            // All within the lease window.
            let out = f.handle(
                &mut ctx(&mut rng, i as u64),
                ip(10, 9, 9, 9),
                5555,
                &q.encode().unwrap(),
            );
            targets.insert(out[0].dst);
        }
        assert_eq!(targets.len(), 1, "stable within lease");
    }

    #[test]
    fn per_client_lease_repicks_after_expiry() {
        let mut f = Forwarder::new(
            upstreams(),
            UpstreamPolicy::PerClientLease {
                lease: SimDuration::from_secs(10),
                stick_prob: 0.0,
            },
        );
        let mut rng = StdRng::seed_from_u64(4);
        let mut targets = std::collections::HashSet::new();
        for i in 0..40u64 {
            let q = QueryBuilder::new(i as u16, "m.yelp.com", RecordType::A)
                .build()
                .unwrap();
            // 100 s apart: every query renews the lease.
            let out = f.handle(
                &mut ctx(&mut rng, i * 100),
                ip(10, 9, 9, 9),
                5555,
                &q.encode().unwrap(),
            );
            targets.insert(out[0].dst);
        }
        assert!(targets.len() > 1, "repicks happen across leases");
        assert!(f.stats.repicks > 0);
    }

    #[test]
    fn distinct_clients_get_independent_leases() {
        let mut f = Forwarder::new(
            upstreams(),
            UpstreamPolicy::PerClientLease {
                lease: SimDuration::from_secs(1000),
                stick_prob: 1.0,
            },
        );
        let mut rng = StdRng::seed_from_u64(5);
        let mut targets = std::collections::HashSet::new();
        for c in 1..=20u8 {
            let q = QueryBuilder::new(c as u16, "m.yelp.com", RecordType::A)
                .build()
                .unwrap();
            let out = f.handle(
                &mut ctx(&mut rng, 0),
                ip(10, 9, 9, c),
                5555,
                &q.encode().unwrap(),
            );
            targets.insert(out[0].dst);
        }
        assert!(targets.len() > 1, "clients spread across the pool");
    }

    #[test]
    fn unknown_responses_are_dropped() {
        let mut f = Forwarder::new(upstreams(), UpstreamPolicy::Sticky);
        let mut rng = StdRng::seed_from_u64(6);
        let q = QueryBuilder::new(77, "m.yelp.com", RecordType::A)
            .build()
            .unwrap();
        let resp = ResponseBuilder::for_query(&q).build();
        let out = f.handle(
            &mut ctx(&mut rng, 0),
            ip(66, 174, 0, 1),
            DNS_PORT,
            &resp.encode().unwrap(),
        );
        assert!(out.is_empty());
    }
}
