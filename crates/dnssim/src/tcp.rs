//! DNS-over-TCP front end: a TCP-lite listener that accepts a
//! length-prefixed query (RFC 1035 §4.2.2 framing), relays it over UDP to
//! the DNS service on its own node, and streams the answer back over the
//! connection.
//!
//! This is the server half of the stub resolver's TC-bit fallback: when a
//! UDP answer comes back truncated, the client reconnects over TCP to the
//! *same* address it queried, so every client-facing resolver node (carrier
//! forwarders, public DNS sites) registers one of these next to its UDP
//! service. The relayed query advertises the maximum EDNS payload size —
//! TCP has no 512-byte problem — which also exempts it from forced
//! truncation faults.
//!
//! Registering the service is free: it emits no events until a client
//! actually connects, so worlds built without fault injection are
//! byte-identical to worlds that never load this module.

use crate::authority::DNS_PORT;
use dnswire::message::Message;
use netsim::engine::{Egress, ServiceCtx, UdpService};
use netsim::tcplite::{Segment, ACK, FIN, MSS, RST, SYN};
use netsim::time::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Well-known port of the DNS-over-TCP front end (the simulator keeps TCP
/// and UDP service ports in one namespace, so TCP/53 gets its own number).
pub const DNS_TCP_PORT: u16 = 10_053;

/// Largest DNS payload a length-prefixed frame may carry: the two-byte
/// length field's ceiling (RFC 1035 §4.2.2). Read paths can never see a
/// prefix above this — the field cannot express one — so the cap bites on
/// the *build* side, where an oversized encode must be rejected rather
/// than silently wrapped modulo 65536.
pub const MAX_FRAME_LEN: usize = u16::MAX as usize;

/// Why a length-prefixed TCP frame was rejected. Every framing decision
/// the serve path and the sim relay share goes through the helpers below,
/// so a malformed stream surfaces as one of these instead of a silent
/// truncation or a connection that hangs until its relay deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The prefix claims a zero-length DNS message: meaningless, and a
    /// stream position that could never make progress.
    ZeroLength,
    /// The message is larger than the two-byte prefix can describe.
    Oversized {
        /// Actual payload length.
        len: usize,
        /// The ceiling it violated ([`MAX_FRAME_LEN`]).
        max: usize,
    },
    /// The buffer ends before the claimed frame does — a partial read.
    /// Streaming callers treat this state as "wait for more bytes" (via
    /// [`split_frame`]'s `Ok(None)`); one-shot callers holding a finished
    /// stream get this error from [`require_frame`].
    Partial {
        /// Bytes available.
        have: usize,
        /// Bytes the complete frame requires (prefix included).
        need: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::ZeroLength => write!(f, "zero-length DNS frame"),
            FrameError::Oversized { len, max } => {
                write!(
                    f,
                    "DNS frame of {len} bytes exceeds the {max}-byte prefix ceiling"
                )
            }
            FrameError::Partial { have, need } => {
                write!(f, "partial DNS frame: have {have} of {need} bytes")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Wraps an encoded DNS message in RFC 1035 §4.2.2 length-prefix framing.
pub fn frame(msg: &[u8]) -> Result<Vec<u8>, FrameError> {
    if msg.is_empty() {
        return Err(FrameError::ZeroLength);
    }
    if msg.len() > MAX_FRAME_LEN {
        return Err(FrameError::Oversized {
            len: msg.len(),
            max: MAX_FRAME_LEN,
        });
    }
    let mut framed = Vec::with_capacity(msg.len() + 2);
    framed.extend_from_slice(&(msg.len() as u16).to_be_bytes());
    framed.extend_from_slice(msg);
    Ok(framed)
}

/// Streaming split: `Ok(Some((payload, consumed)))` when `buf` starts with
/// a complete frame, `Ok(None)` when more bytes may still arrive, and
/// `Err` when the prefix itself is invalid and the stream can never
/// recover (the caller should tear the connection down).
pub fn split_frame(buf: &[u8]) -> Result<Option<(&[u8], usize)>, FrameError> {
    if buf.len() < 2 {
        return Ok(None);
    }
    let len = u16::from_be_bytes([buf[0], buf[1]]) as usize;
    if len == 0 {
        return Err(FrameError::ZeroLength);
    }
    if buf.len() < 2 + len {
        return Ok(None);
    }
    Ok(Some((&buf[2..2 + len], 2 + len)))
}

/// One-shot split for callers holding the complete stream (a finished
/// `TcpFetch`, a fully read socket): every shortfall is a typed error,
/// never a wait. Trailing bytes beyond the first frame are ignored.
pub fn require_frame(buf: &[u8]) -> Result<&[u8], FrameError> {
    if buf.len() < 2 {
        return Err(FrameError::Partial {
            have: buf.len(),
            need: 2,
        });
    }
    let len = u16::from_be_bytes([buf[0], buf[1]]) as usize;
    if len == 0 {
        return Err(FrameError::ZeroLength);
    }
    if buf.len() < 2 + len {
        return Err(FrameError::Partial {
            have: buf.len(),
            need: 2 + len,
        });
    }
    Ok(&buf[2..2 + len])
}

/// Retransmission timeout (mirrors `tcplite`'s).
const RTO: SimDuration = SimDuration::from_millis(250);
/// Retransmission attempts before a connection is abandoned.
const MAX_RETRIES: u32 = 6;
/// How long a relayed query may stay unanswered before its connection is
/// torn down (the local resolver answers or SERVFAILs well before this).
const RELAY_DEADLINE: SimDuration = SimDuration::from_secs(6);

#[derive(Debug, PartialEq, Eq)]
enum ConnState {
    SynRcvd,
    Established,
    /// Response fully sent, FIN emitted, waiting for its ACK.
    FinWait,
}

#[derive(Debug)]
struct Conn {
    state: ConnState,
    /// The local address the connection was opened to. Segments must keep
    /// this exact source for the connection's whole life: on an anycast
    /// VIP, timer-tick retransmissions would otherwise leave from the
    /// node's primary address and the peer's TCP state would drop them.
    local: Ipv4Addr,
    /// Next sequence number made available to send (ISN 0, SYN takes 1).
    next_seq: u32,
    /// First unacknowledged sequence number.
    send_base: u32,
    /// Next byte expected from the peer.
    peer_next: u32,
    /// Request bytes accepted in order.
    buf: Vec<u8>,
    /// Length-prefixed response, once the relay answered.
    response: Option<Vec<u8>>,
    /// Relay transaction id, once the query has been forwarded.
    txn: Option<u16>,
    /// When the connection was opened (relay-deadline anchor).
    opened: SimTime,
    rto_at: Option<SimTime>,
    retries: u32,
}

#[derive(Debug)]
struct PendingRelay {
    key: (Ipv4Addr, u16),
    /// The client's original query id, restored on the way back.
    orig_id: u16,
}

/// Counters describing what the TCP front end did.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TcpDnsStats {
    /// Connections accepted.
    pub connections: u64,
    /// Queries relayed to the local UDP resolver.
    pub relayed: u64,
    /// Responses streamed back to clients.
    pub answered: u64,
    /// Connections abandoned (retry exhaustion or relay deadline).
    pub aborts: u64,
    /// Connections reset because the client sent a malformed frame
    /// (zero-length prefix or a complete frame that is not DNS).
    pub bad_frames: u64,
}

/// The DNS-over-TCP listener; see the module docs.
#[derive(Debug, Default)]
pub struct TcpDnsServer {
    conns: BTreeMap<(Ipv4Addr, u16), Conn>,
    pending: BTreeMap<u16, PendingRelay>,
    next_txn: u16,
    /// Endpoint statistics.
    pub stats: TcpDnsStats,
}

impl TcpDnsServer {
    /// A fresh listener.
    pub fn new() -> Self {
        TcpDnsServer::default()
    }

    fn alloc_txn(&mut self) -> u16 {
        // Linear scan is fine: a node has at most a handful of connections
        // in flight at once.
        loop {
            self.next_txn = self.next_txn.wrapping_add(1);
            if !self.pending.contains_key(&self.next_txn) {
                return self.next_txn;
            }
        }
    }

    /// Emits unsent response segments for a connection (go-back-N window
    /// of one frame: DNS answers fit a few MSS at most).
    fn pump(
        conn: &mut Conn,
        stats: &mut TcpDnsStats,
        peer: Ipv4Addr,
        peer_port: u16,
        now: SimTime,
        out: &mut Vec<Egress>,
    ) {
        let Some(response) = &conn.response else {
            return;
        };
        let total = response.len() as u32;
        while conn.next_seq - 1 < total {
            let start = (conn.next_seq - 1) as usize;
            let end = (start + MSS).min(response.len());
            let seg = Segment {
                flags: ACK,
                seq: conn.next_seq,
                ack: conn.peer_next,
                data: response[start..end].to_vec(),
            };
            conn.next_seq += (end - start) as u32;
            out.push(seg_reply(conn.local, peer, peer_port, &seg));
        }
        if conn.next_seq > total && conn.state == ConnState::Established {
            let fin = Segment::ctl(FIN | ACK, conn.next_seq, conn.peer_next);
            conn.next_seq += 1;
            conn.state = ConnState::FinWait;
            stats.answered += 1;
            out.push(seg_reply(conn.local, peer, peer_port, &fin));
        }
        if conn.rto_at.is_none() && conn.send_base < conn.next_seq {
            conn.rto_at = Some(now + RTO);
        }
    }

    /// Retransmits everything from `send_base` (go-back-N).
    fn retransmit(
        conn: &mut Conn,
        peer: Ipv4Addr,
        peer_port: u16,
        now: SimTime,
        out: &mut Vec<Egress>,
    ) {
        conn.retries += 1;
        match conn.state {
            ConnState::SynRcvd => {
                out.push(seg_reply(
                    conn.local,
                    peer,
                    peer_port,
                    &Segment::ctl(SYN | ACK, 0, conn.peer_next),
                ));
            }
            ConnState::Established | ConnState::FinWait => {
                if let Some(response) = &conn.response {
                    let total = response.len() as u32;
                    let mut seq = conn.send_base.max(1);
                    while seq - 1 < total {
                        let start = (seq - 1) as usize;
                        let end = (start + MSS).min(response.len());
                        let seg = Segment {
                            flags: ACK,
                            seq,
                            ack: conn.peer_next,
                            data: response[start..end].to_vec(),
                        };
                        seq += (end - start) as u32;
                        out.push(seg_reply(conn.local, peer, peer_port, &seg));
                    }
                    if conn.state == ConnState::FinWait && seq > total {
                        out.push(seg_reply(
                            conn.local,
                            peer,
                            peer_port,
                            &Segment::ctl(FIN | ACK, seq, conn.peer_next),
                        ));
                    }
                }
            }
        }
        conn.rto_at = Some(now + RTO);
    }

    /// Resets a connection whose stream is unrecoverable (malformed
    /// framing or a non-DNS payload), counting it in the stats.
    fn reset_conn(&mut self, key: (Ipv4Addr, u16), out: &mut Vec<Egress>) {
        if let Some(conn) = self.conns.remove(&key) {
            if let Some(txn) = conn.txn {
                self.pending.remove(&txn);
            }
            self.stats.bad_frames += 1;
            self.stats.aborts += 1;
            let (peer, peer_port) = key;
            out.push(seg_reply(
                conn.local,
                peer,
                peer_port,
                &Segment::ctl(RST, conn.next_seq, conn.peer_next),
            ));
        }
    }

    /// Tries to parse a complete length-prefixed query out of `conn.buf`
    /// and relay it to the UDP resolver on this node. A malformed frame
    /// (zero-length prefix, undecodable payload) resets the connection
    /// instead of silently holding it open until the relay deadline.
    fn try_relay(&mut self, key: (Ipv4Addr, u16), local_addr: Ipv4Addr, out: &mut Vec<Egress>) {
        let Some(conn) = self.conns.get_mut(&key) else {
            return;
        };
        if conn.txn.is_some() {
            return;
        }
        let payload = match split_frame(&conn.buf) {
            // Prefix or body still in flight: wait for more segments.
            Ok(None) => return,
            Ok(Some((payload, _consumed))) => payload.to_vec(),
            Err(_) => {
                self.reset_conn(key, out);
                return;
            }
        };
        let Ok(mut query) = Message::decode(&payload) else {
            // A complete frame that is not DNS: the stream is garbage.
            self.reset_conn(key, out);
            return;
        };
        let orig_id = query.header.id;
        let txn = self.alloc_txn();
        // Re-borrow: alloc_txn needed &mut self.
        if let Some(conn) = self.conns.get_mut(&key) {
            conn.txn = Some(txn);
        }
        self.pending.insert(txn, PendingRelay { key, orig_id });
        query.header.id = txn;
        // TCP framing has no UDP size ceiling; advertise accordingly.
        query.advertise_udp_size(u16::MAX);
        if let Ok(bytes) = query.encode() {
            self.stats.relayed += 1;
            out.push(Egress::reply(
                local_addr,
                DNS_PORT,
                bytes,
                SimDuration::ZERO,
            ));
        }
    }

    fn arm(&self, ctx: &mut ServiceCtx<'_>) {
        let rto = self.conns.values().filter_map(|c| c.rto_at).min();
        let relay = if self.pending.is_empty() {
            None
        } else {
            self.conns
                .values()
                .filter(|c| c.txn.is_some() && c.response.is_none())
                .map(|c| c.opened + RELAY_DEADLINE)
                .min()
        };
        let earliest = match (rto, relay) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        if let Some(at) = earliest {
            ctx.wake_after = Some(at.since(ctx.now).max(SimDuration::from_millis(1)));
        }
    }
}

fn seg_reply(src: Ipv4Addr, to: Ipv4Addr, to_port: u16, seg: &Segment) -> Egress {
    Egress::reply(to, to_port, seg.encode(), SimDuration::ZERO).from_addr(src)
}

impl UdpService for TcpDnsServer {
    fn handle(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        from: Ipv4Addr,
        from_port: u16,
        payload: &[u8],
    ) -> Vec<Egress> {
        let mut out = Vec::new();
        // Answers from the co-located UDP resolver come back on port 53;
        // everything else is a client's TCP segment.
        if from_port == DNS_PORT {
            if let Ok(mut msg) = Message::decode(payload) {
                if let Some(relay) = self.pending.remove(&msg.header.id) {
                    msg.header.id = relay.orig_id;
                    if let Ok(framed) = msg
                        .encode()
                        .map_err(drop)
                        .and_then(|b| frame(&b).map_err(drop))
                    {
                        if let Some(conn) = self.conns.get_mut(&relay.key) {
                            conn.response = Some(framed);
                            let (peer, peer_port) = relay.key;
                            Self::pump(conn, &mut self.stats, peer, peer_port, ctx.now, &mut out);
                        }
                    }
                }
            }
            self.arm(ctx);
            return out;
        }
        let Some(seg) = Segment::decode(payload) else {
            return out;
        };
        let key = (from, from_port);
        if seg.flags & RST != 0 {
            if let Some(conn) = self.conns.remove(&key) {
                if let Some(txn) = conn.txn {
                    self.pending.remove(&txn);
                }
            }
            return out;
        }
        if seg.flags & SYN != 0 {
            let now = ctx.now;
            let local = ctx.local_addr;
            let conn = self.conns.entry(key).or_insert_with(|| {
                self.stats.connections += 1;
                Conn {
                    state: ConnState::SynRcvd,
                    local,
                    next_seq: 1,
                    send_base: 1,
                    peer_next: seg.seq + 1,
                    buf: Vec::new(),
                    response: None,
                    txn: None,
                    opened: now,
                    rto_at: Some(now + RTO),
                    retries: 0,
                }
            });
            let syn_ack = Segment::ctl(SYN | ACK, 0, conn.peer_next);
            out.push(seg_reply(conn.local, from, from_port, &syn_ack));
            self.arm(ctx);
            return out;
        }
        let Some(conn) = self.conns.get_mut(&key) else {
            // No state for this peer: active refusal.
            out.push(seg_reply(
                ctx.local_addr,
                from,
                from_port,
                &Segment::ctl(RST, 0, seg.seq),
            ));
            return out;
        };
        if seg.flags & ACK != 0 && seg.ack > conn.send_base {
            conn.send_base = seg.ack;
            conn.retries = 0;
            conn.rto_at = None;
        }
        if conn.state == ConnState::SynRcvd && seg.flags & ACK != 0 {
            conn.state = ConnState::Established;
        }
        if conn.state == ConnState::FinWait && conn.send_base >= conn.next_seq {
            if let Some(txn) = conn.txn {
                self.pending.remove(&txn);
            }
            self.conns.remove(&key);
            self.arm(ctx);
            return out;
        }
        if !seg.data.is_empty() {
            if seg.seq == conn.peer_next {
                conn.peer_next += seg.data.len() as u32;
                conn.buf.extend_from_slice(&seg.data);
            }
            // Ack what we have (covers duplicates and reordering).
            out.push(seg_reply(
                conn.local,
                from,
                from_port,
                &Segment::ctl(ACK, conn.next_seq, conn.peer_next),
            ));
            self.try_relay(key, ctx.local_addr, &mut out);
        }
        if let Some(conn) = self.conns.get_mut(&key) {
            Self::pump(conn, &mut self.stats, from, from_port, ctx.now, &mut out);
        }
        self.arm(ctx);
        out
    }

    fn tick(&mut self, ctx: &mut ServiceCtx<'_>) -> Vec<Egress> {
        let mut out = Vec::new();
        let mut drop_keys = Vec::new();
        for (&(peer, peer_port), conn) in self.conns.iter_mut() {
            // Relay never answered: give up on the connection.
            if conn.txn.is_some()
                && conn.response.is_none()
                && ctx.now >= conn.opened + RELAY_DEADLINE
            {
                drop_keys.push((peer, peer_port));
                continue;
            }
            if let Some(at) = conn.rto_at {
                if at <= ctx.now {
                    if conn.retries >= MAX_RETRIES {
                        drop_keys.push((peer, peer_port));
                        continue;
                    }
                    Self::retransmit(conn, peer, peer_port, ctx.now, &mut out);
                }
            }
        }
        for key in drop_keys {
            if let Some(conn) = self.conns.remove(&key) {
                if let Some(txn) = conn.txn {
                    self.pending.remove(&txn);
                }
            }
            self.stats.aborts += 1;
        }
        self.arm(ctx);
        out
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips_through_both_split_paths() {
        let msg = b"\x12\x34hello dns".to_vec();
        let framed = frame(&msg).unwrap();
        assert_eq!(&framed[..2], &(msg.len() as u16).to_be_bytes());
        assert_eq!(require_frame(&framed).unwrap(), &msg[..]);
        let (payload, consumed) = split_frame(&framed).unwrap().unwrap();
        assert_eq!(payload, &msg[..]);
        assert_eq!(consumed, framed.len());
    }

    #[test]
    fn frame_rejects_empty_and_oversized_messages() {
        assert_eq!(frame(&[]), Err(FrameError::ZeroLength));
        let huge = vec![0u8; MAX_FRAME_LEN + 1];
        assert_eq!(
            frame(&huge),
            Err(FrameError::Oversized {
                len: MAX_FRAME_LEN + 1,
                max: MAX_FRAME_LEN,
            })
        );
        // Exactly at the ceiling is fine.
        let max = vec![0u8; MAX_FRAME_LEN];
        assert!(frame(&max).is_ok());
    }

    #[test]
    fn split_frame_waits_on_incomplete_data_but_rejects_zero_length() {
        // Incomplete prefix, then incomplete body: both mean "wait".
        assert_eq!(split_frame(&[]), Ok(None));
        assert_eq!(split_frame(&[0x00]), Ok(None));
        assert_eq!(split_frame(&[0x00, 0x05, 1, 2]), Ok(None));
        // A zero-length claim can never make progress: typed error.
        assert_eq!(split_frame(&[0x00, 0x00]), Err(FrameError::ZeroLength));
        // Trailing bytes past the first frame are left for the caller.
        let (payload, consumed) = split_frame(&[0x00, 0x01, 7, 9, 9]).unwrap().unwrap();
        assert_eq!(payload, &[7]);
        assert_eq!(consumed, 3);
    }

    #[test]
    fn require_frame_types_every_shortfall() {
        assert_eq!(
            require_frame(&[0x00]),
            Err(FrameError::Partial { have: 1, need: 2 })
        );
        assert_eq!(
            require_frame(&[0x00, 0x05, 1, 2]),
            Err(FrameError::Partial { have: 4, need: 7 })
        );
        assert_eq!(require_frame(&[0x00, 0x00, 9]), Err(FrameError::ZeroLength));
        assert_eq!(require_frame(&[0x00, 0x02, 5, 6, 0xff]).unwrap(), &[5, 6]);
    }

    #[test]
    fn frame_errors_render_useful_messages() {
        assert_eq!(FrameError::ZeroLength.to_string(), "zero-length DNS frame");
        assert!(FrameError::Oversized {
            len: 70_000,
            max: MAX_FRAME_LEN
        }
        .to_string()
        .contains("70000"));
        assert!(FrameError::Partial { have: 3, need: 9 }
            .to_string()
            .contains("3 of 9"));
    }
}
