//! Master-file (presentation format) zone parser — the RFC 1035 §5 subset
//! a downstream user needs to load real zone data into the simulator:
//! `$ORIGIN`/`$TTL` directives, comments, relative and absolute owner
//! names, `@`, optional TTL/class fields, and the record types the
//! simulation serves.

use crate::zone::Zone;
use dnswire::name::DnsName;
use dnswire::rdata::RData;
use std::net::{Ipv4Addr, Ipv6Addr};

/// A zone-file parsing error with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line the error occurred on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "zone file line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Resolves a possibly-relative owner/target name against the origin.
fn resolve_name(token: &str, origin: &DnsName, line: usize) -> Result<DnsName, ParseError> {
    if token == "@" {
        return Ok(origin.clone());
    }
    if let Some(absolute) = token.strip_suffix('.') {
        return DnsName::parse(absolute).map_err(|e| err(line, format!("bad name: {e}")));
    }
    // Relative: prepend each label onto the origin.
    let rel = DnsName::parse(token).map_err(|e| err(line, format!("bad name: {e}")))?;
    let mut name = origin.clone();
    for label in rel.labels().iter().rev() {
        let label_str = String::from_utf8_lossy(label).into_owned();
        name = name
            .child(&label_str)
            .map_err(|e| err(line, format!("bad name: {e}")))?;
    }
    Ok(name)
}

/// Parses presentation-format zone text into a [`Zone`].
///
/// ```
/// use dnssim::parse::parse_zone;
///
/// let zone = parse_zone(r#"
/// $ORIGIN example.com.
/// $TTL 300
/// www        IN A     192.0.2.1
/// www        IN A     192.0.2.2
/// m          IN CNAME www
/// "#).unwrap();
/// assert_eq!(zone.origin().to_string(), "example.com");
/// ```
pub fn parse_zone(text: &str) -> Result<Zone, ParseError> {
    let mut origin: Option<DnsName> = None;
    let mut default_ttl: u32 = 3600;
    let mut zone: Option<Zone> = None;
    let mut last_owner: Option<DnsName> = None;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        // Strip comments; no quoted-string escapes for ';' needed except in
        // TXT, which we handle by splitting the quote out first.
        let (content, txt_quote) = match raw.find('"') {
            Some(q) => {
                let before = &raw[..q];
                let rest = &raw[q + 1..];
                let close = rest
                    .find('"')
                    .ok_or_else(|| err(line_no, "unterminated TXT string"))?;
                (before.to_string(), Some(rest[..close].to_string()))
            }
            None => {
                let c = raw.split(';').next().unwrap_or("");
                (c.to_string(), None)
            }
        };
        let starts_with_space = content.starts_with(' ') || content.starts_with('\t');
        let mut tokens: Vec<&str> = content.split_whitespace().collect();
        if tokens.is_empty() && txt_quote.is_none() {
            continue;
        }
        // Directives.
        match tokens.first() {
            Some(&"$ORIGIN") => {
                let name = tokens
                    .get(1)
                    .ok_or_else(|| err(line_no, "$ORIGIN needs a name"))?;
                let parsed = DnsName::parse(name.trim_end_matches('.'))
                    .map_err(|e| err(line_no, format!("bad $ORIGIN: {e}")))?;
                origin = Some(parsed.clone());
                if zone.is_none() {
                    zone = Some(Zone::new(parsed));
                }
                continue;
            }
            Some(&"$TTL") => {
                default_ttl = tokens
                    .get(1)
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err(line_no, "$TTL needs a number"))?;
                continue;
            }
            _ => {}
        }
        let origin_name = origin
            .clone()
            .ok_or_else(|| err(line_no, "record before $ORIGIN"))?;
        // Owner: blank leading field repeats the previous owner.
        let owner = if starts_with_space {
            last_owner
                .clone()
                .ok_or_else(|| err(line_no, "continuation line with no previous owner"))?
        } else {
            let tok = tokens.remove(0);
            resolve_name(tok, &origin_name, line_no)?
        };
        last_owner = Some(owner.clone());
        // Optional TTL and class, in either order.
        let mut ttl = default_ttl;
        while let Some(&tok) = tokens.first() {
            if let Ok(t) = tok.parse::<u32>() {
                ttl = t;
                tokens.remove(0);
            } else if tok.eq_ignore_ascii_case("IN") {
                tokens.remove(0);
            } else {
                break;
            }
        }
        let rtype = tokens
            .first()
            .ok_or_else(|| err(line_no, "missing record type"))?
            .to_uppercase();
        tokens.remove(0);
        let rdata = match rtype.as_str() {
            "A" => {
                let addr: Ipv4Addr = tokens
                    .first()
                    .ok_or_else(|| err(line_no, "A needs an address"))?
                    .parse()
                    .map_err(|e| err(line_no, format!("bad A address: {e}")))?;
                RData::A(addr)
            }
            "AAAA" => {
                let addr: Ipv6Addr = tokens
                    .first()
                    .ok_or_else(|| err(line_no, "AAAA needs an address"))?
                    .parse()
                    .map_err(|e| err(line_no, format!("bad AAAA address: {e}")))?;
                RData::Aaaa(addr)
            }
            "CNAME" => {
                let target = tokens
                    .first()
                    .ok_or_else(|| err(line_no, "CNAME needs a target"))?;
                RData::Cname(resolve_name(target, &origin_name, line_no)?)
            }
            "NS" => {
                let host = tokens
                    .first()
                    .ok_or_else(|| err(line_no, "NS needs a host"))?;
                RData::Ns(resolve_name(host, &origin_name, line_no)?)
            }
            "PTR" => {
                let target = tokens
                    .first()
                    .ok_or_else(|| err(line_no, "PTR needs a target"))?;
                RData::Ptr(resolve_name(target, &origin_name, line_no)?)
            }
            "MX" => {
                let pref: u16 = tokens
                    .first()
                    .ok_or_else(|| err(line_no, "MX needs a preference"))?
                    .parse()
                    .map_err(|e| err(line_no, format!("bad MX preference: {e}")))?;
                let host = tokens
                    .get(1)
                    .ok_or_else(|| err(line_no, "MX needs a host"))?;
                RData::Mx(pref, resolve_name(host, &origin_name, line_no)?)
            }
            "TXT" => {
                let s = txt_quote
                    .clone()
                    .or_else(|| tokens.first().map(|t| t.to_string()))
                    .ok_or_else(|| err(line_no, "TXT needs a string"))?;
                RData::Txt(vec![s])
            }
            "SOA" => {
                // SOA lines are accepted but the zone's built-in SOA is
                // kept; the simulation does not transfer zones.
                continue;
            }
            other => return Err(err(line_no, format!("unsupported record type {other}"))),
        };
        // detlint: allow(D4) -- a record line before $ORIGIN was already
        // rejected with an error earlier in this loop iteration
        let z = zone.as_mut().expect("zone exists after $ORIGIN");
        if !owner.is_under(z.origin()) {
            return Err(err(line_no, format!("{owner} outside zone {}", z.origin())));
        }
        z.add(dnswire::message::ResourceRecord::new(owner, ttl, rdata));
    }
    zone.ok_or_else(|| err(0, "no $ORIGIN directive"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnswire::message::Rcode;
    use dnswire::rdata::RecordType;

    fn n(s: &str) -> DnsName {
        DnsName::parse(s).unwrap()
    }

    const SAMPLE: &str = r#"
; the buzzfeed zone as the simulation serves it
$ORIGIN buzzfeed.com.
$TTL 300
@          IN NS    ns1
ns1        IN A     198.51.100.53
www        30 IN A  192.0.2.10
           30 IN A  192.0.2.11
m          IN CNAME www
ext        IN CNAME edge.cdn-a.example.
mail       IN MX    10 mx1
mx1        IN A     192.0.2.25
note       IN TXT   "hello; world"
"#;

    #[test]
    fn parses_a_complete_zone() {
        let zone = parse_zone(SAMPLE).unwrap();
        assert_eq!(zone.origin(), &n("buzzfeed.com"));
        let www = zone.lookup(&n("www.buzzfeed.com"), RecordType::A);
        assert_eq!(www.answers.len(), 2);
        assert_eq!(www.answers[0].ttl, 30);
    }

    #[test]
    fn relative_and_absolute_targets() {
        let zone = parse_zone(SAMPLE).unwrap();
        let m = zone.lookup(&n("m.buzzfeed.com"), RecordType::A);
        // CNAME chased in-zone to the two As.
        assert_eq!(m.answers.len(), 3);
        let ext = zone.lookup(&n("ext.buzzfeed.com"), RecordType::A);
        assert_eq!(
            ext.answers[0].rdata.as_cname().unwrap(),
            &n("edge.cdn-a.example")
        );
    }

    #[test]
    fn continuation_lines_repeat_the_owner() {
        let zone = parse_zone(SAMPLE).unwrap();
        let www = zone.lookup(&n("www.buzzfeed.com"), RecordType::A);
        let addrs: Vec<_> = www.answers.iter().filter_map(|r| r.rdata.as_a()).collect();
        assert!(addrs.contains(&Ipv4Addr::new(192, 0, 2, 11)));
    }

    #[test]
    fn txt_preserves_semicolons_inside_quotes() {
        let zone = parse_zone(SAMPLE).unwrap();
        let txt = zone.lookup(&n("note.buzzfeed.com"), RecordType::Txt);
        match &txt.answers[0].rdata {
            RData::Txt(strings) => assert_eq!(strings[0], "hello; world"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn mx_and_ns_parse() {
        let zone = parse_zone(SAMPLE).unwrap();
        let mx = zone.lookup(&n("mail.buzzfeed.com"), RecordType::Mx);
        match &mx.answers[0].rdata {
            RData::Mx(10, host) => assert_eq!(host, &n("mx1.buzzfeed.com")),
            other => panic!("unexpected {other:?}"),
        }
        let ns = zone.lookup(&n("buzzfeed.com"), RecordType::Ns);
        assert_eq!(ns.answers.len(), 1);
    }

    #[test]
    fn default_ttl_applies() {
        let zone = parse_zone(SAMPLE).unwrap();
        let ns1 = zone.lookup(&n("ns1.buzzfeed.com"), RecordType::A);
        assert_eq!(ns1.answers[0].ttl, 300);
    }

    #[test]
    fn missing_names_are_nxdomain() {
        let zone = parse_zone(SAMPLE).unwrap();
        let out = zone.lookup(&n("nope.buzzfeed.com"), RecordType::A);
        assert_eq!(out.rcode, Rcode::NxDomain);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_zone("$ORIGIN x.test.\nwww IN A not-an-ip\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("bad A address"));
        let e = parse_zone("www IN A 1.2.3.4\n").unwrap_err();
        assert!(e.message.contains("before $ORIGIN"));
        let e = parse_zone("$ORIGIN x.test.\nwww IN WKS 1.2.3.4\n").unwrap_err();
        assert!(e.message.contains("unsupported"));
        let e = parse_zone("$ORIGIN x.test.\nnote IN TXT \"oops\n").unwrap_err();
        assert!(e.message.contains("unterminated"));
    }

    #[test]
    fn out_of_zone_owner_is_rejected() {
        let e = parse_zone("$ORIGIN x.test.\nwww.other.org. IN A 1.2.3.4\n").unwrap_err();
        assert!(e.message.contains("outside zone"));
    }

    #[test]
    fn parsed_zone_serves_through_an_authoritative_server() {
        use crate::authority::AuthoritativeServer;
        let zone = parse_zone(SAMPLE).unwrap();
        let mut srv = AuthoritativeServer::new();
        srv.add_zone(zone);
        // Smoke: the server accepts it (full serving covered elsewhere).
        assert_eq!(srv.queries, 0);
    }
}
