//! Client-side DNS driver: issue a query from a node, run the engine until
//! the response arrives, and report timing — the primitive every experiment
//! in the measurement suite builds on.

use crate::authority::DNS_PORT;
use dnswire::builder::QueryBuilder;
use dnswire::message::{Message, Rcode};
use dnswire::name::DnsName;
use dnswire::rdata::RecordType;
use netsim::engine::{FlowResult, Network};
use netsim::time::{SimDuration, SimTime};
use netsim::topo::NodeId;
use rand::Rng;
use std::net::Ipv4Addr;

/// Default client-side resolution timeout (total, across retries).
pub const QUERY_TIMEOUT: SimDuration = SimDuration::from_secs(5);

/// Per-attempt timeouts of the stub resolver: like a phone's resolver it
/// retries lost queries with backoff (radio links drop packets).
const ATTEMPT_TIMEOUTS: [SimDuration; 3] = [
    SimDuration::from_secs(1),
    SimDuration::from_secs(2),
    SimDuration::from_secs(2),
];

/// The outcome of one client resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsLookup {
    /// Name that was queried.
    pub qname: DnsName,
    /// Record type queried.
    pub qtype: RecordType,
    /// Resolver address queried.
    pub resolver: Ipv4Addr,
    /// When the query was sent.
    pub sent_at: SimTime,
    /// Resolution time (send to response), `None` on timeout.
    pub elapsed: Option<SimDuration>,
    /// Decoded response, when one arrived and parsed.
    pub response: Option<Message>,
}

impl DnsLookup {
    /// Whether a usable NOERROR answer arrived.
    pub fn ok(&self) -> bool {
        self.response
            .as_ref()
            .map(|m| m.header.rcode == Rcode::NoError)
            .unwrap_or(false)
    }

    /// A-record addresses in the answer, in order.
    pub fn addrs(&self) -> Vec<Ipv4Addr> {
        self.response
            .as_ref()
            .map(|m| m.answer_addrs())
            .unwrap_or_default()
    }

    /// The canonical (CNAME-chased) name of the query.
    pub fn canonical_name(&self) -> Option<DnsName> {
        self.response
            .as_ref()
            .map(|m| m.canonical_name(&self.qname))
    }
}

/// Issues one A-record lookup from `node` against `resolver` and runs the
/// simulation until it completes.
pub fn resolve(
    net: &mut Network,
    node: NodeId,
    resolver: Ipv4Addr,
    qname: &DnsName,
    qtype: RecordType,
) -> DnsLookup {
    let sent_at = net.now();
    let mut response = None;
    let mut elapsed = None;
    for timeout in ATTEMPT_TIMEOUTS {
        let id: u16 = net.rng().gen();
        let mut query = QueryBuilder::new(id, qname.to_string(), qtype)
            .recursion_desired(true)
            .build()
            // detlint: allow(D4) -- query names come from the static
            // experiment catalog validated at world build; a bad name is a
            // driver bug
            .expect("valid query name");
        query.advertise_udp_size(dnswire::edns::DEFAULT_UDP_PAYLOAD_SIZE);
        // detlint: allow(D4) -- encode of a query built two lines up from an
        // already-validated name
        let payload = query.encode().expect("query encodes");
        let flow = net.udp_request(node, resolver, DNS_PORT, payload, timeout);
        let outcome = net.run_until(flow);
        if let FlowResult::Response { payload, .. } = outcome.result {
            let msg = Message::decode(&payload).ok();
            // Reject responses whose id does not match (spoofing guard).
            if let Some(msg) = msg.filter(|m| m.header.id == id) {
                // Resolution time is measured from the *first* attempt, as
                // the phone's stub resolver experiences it.
                elapsed = Some(outcome.completed_at.since(sent_at));
                response = Some(msg);
                break;
            }
        }
    }
    DnsLookup {
        qname: qname.clone(),
        qtype,
        resolver,
        sent_at,
        elapsed,
        response,
    }
}

/// Issues a whoami probe: a unique nonce label under the probe zone, so no
/// cache can satisfy it and the authoritative server always sees the live
/// external resolver. Returns the discovered external resolver address.
pub fn whoami(
    net: &mut Network,
    node: NodeId,
    resolver: Ipv4Addr,
    probe_zone: &DnsName,
) -> (DnsLookup, Option<Ipv4Addr>) {
    let nonce: u64 = net.rng().gen();
    let qname = probe_zone
        .child(&format!("x{nonce:016x}"))
        // detlint: allow(D4) -- the nonce label is fixed-width hex, always a
        // valid DNS label
        .expect("nonce label is valid");
    let lookup = resolve(net, node, resolver, &qname, RecordType::A);
    let external = lookup.addrs().first().copied();
    (lookup, external)
}

#[cfg(test)]
mod tests {
    // Exercised end-to-end in tests/resolution.rs, where a full hierarchy
    // exists. Unit-level behaviour (encode, id matching) is covered by the
    // dnswire tests.
}
