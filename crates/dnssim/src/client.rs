//! Client-side DNS driver: issue a query from a node, run the engine until
//! the response arrives, and report timing — the primitive every experiment
//! in the measurement suite builds on.
//!
//! Two retry disciplines coexist:
//!
//! * the **classic** fixed three-attempt ladder (the seed behaviour, kept
//!   byte-for-byte so fault-free campaigns replay unchanged), and
//! * a **hardened** path for hostile networks: exponential backoff with
//!   seed-derived jitter, TCP fallback on truncated answers, and failover
//!   to the next configured resolver — all under one overall deadline that
//!   no attempt schedule may overrun.
//!
//! Every resolution is classified into a typed [`Outcome`] so failed
//! experiments are counted, not silently dropped.

use crate::authority::DNS_PORT;
use crate::tcp::{frame, require_frame, DNS_TCP_PORT};
use dnswire::builder::QueryBuilder;
use dnswire::message::{Message, MessageView, Rcode};
use dnswire::name::DnsName;
use dnswire::rdata::RecordType;
use netsim::engine::{FlowResult, Network};
use netsim::tcplite::{TcpFailure, TcpFetch};
use netsim::time::{SimDuration, SimTime};
use netsim::topo::NodeId;
use rand::Rng;
use std::net::Ipv4Addr;

/// Default client-side resolution timeout (total, across retries,
/// backoff, TCP fallback, and failover).
pub const QUERY_TIMEOUT: SimDuration = SimDuration::from_secs(5);

/// Per-attempt timeouts of the classic stub resolver: like a phone's
/// resolver it retries lost queries with backoff (radio links drop
/// packets). The ladder sums to exactly [`QUERY_TIMEOUT`]; the boundary
/// test below keeps it that way.
const ATTEMPT_TIMEOUTS: [SimDuration; 3] = [
    SimDuration::from_secs(1),
    SimDuration::from_secs(2),
    SimDuration::from_secs(2),
];

/// First-attempt timeout of the hardened exponential ladder; attempt `k`
/// waits `BASE << k`, clamped to the remaining deadline.
const HARDENED_BASE_TIMEOUT: SimDuration = SimDuration::from_secs(1);
/// Base backoff pause before retry `k` (`BASE << (k-1)`, jittered).
const HARDENED_BACKOFF_BASE: SimDuration = SimDuration::from_millis(500);
/// Exponent cap for both ladders (beyond this they stay flat).
const HARDENED_MAX_SHIFT: u32 = 2;
/// UDP attempts per resolver on the hardened path; kept low so the
/// deadline leaves room to fail over.
const HARDENED_ATTEMPTS: u32 = 2;
/// Smallest remaining budget worth launching another attempt for.
const MIN_ATTEMPT_BUDGET: SimDuration = SimDuration::from_millis(50);

/// How a resolution concluded. `Ok`, `TruncatedRecovered`, and
/// `FailedOver` carry an answer; the rest are failures, counted the way
/// the paper counts its 8.1M resolutions instead of silently dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Outcome {
    /// The queried resolver answered over UDP.
    #[default]
    Ok,
    /// The UDP answer was truncated; the TCP retry recovered it.
    TruncatedRecovered,
    /// The queried resolver failed but a fallback resolver answered.
    FailedOver,
    /// Every path ended in SERVFAIL.
    ServFail,
    /// The resolver address was unreachable (ICMP error back).
    Unreachable,
    /// Every attempt timed out inside the overall deadline.
    Timeout,
}

impl Outcome {
    /// Every outcome, in canonical (CSV/report) order.
    pub const ALL: [Outcome; 6] = [
        Outcome::Ok,
        Outcome::TruncatedRecovered,
        Outcome::FailedOver,
        Outcome::ServFail,
        Outcome::Unreachable,
        Outcome::Timeout,
    ];

    /// Stable lowercase label used in CSV exports and reports.
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::TruncatedRecovered => "truncated-recovered",
            Outcome::FailedOver => "failed-over",
            Outcome::ServFail => "servfail",
            Outcome::Unreachable => "unreachable",
            Outcome::Timeout => "timeout",
        }
    }

    /// Whether the lookup produced a usable answer (possibly degraded).
    pub fn answered(self) -> bool {
        matches!(
            self,
            Outcome::Ok | Outcome::TruncatedRecovered | Outcome::FailedOver
        )
    }
}

/// Retry discipline of [`resolve_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackoffMode {
    /// The seed's fixed `[1s, 2s, 2s]` ladder, no pauses between attempts.
    FixedLadder,
    /// Exponential timeouts with a jittered pause before each retry.
    ExponentialJitter,
}

/// What the stub resolver is allowed to do when the network misbehaves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientPolicy {
    /// Retry/backoff discipline.
    pub backoff: BackoffMode,
    /// Retry truncated answers over TCP.
    pub tcp_fallback: bool,
    /// Resolvers to fail over to, in order, after the primary is spent.
    pub fallbacks: Vec<Ipv4Addr>,
}

impl ClientPolicy {
    /// The seed behaviour: fixed ladder, no TCP, no failover. Runs
    /// byte-identically to the pre-fault-injection client.
    pub fn classic() -> Self {
        ClientPolicy {
            backoff: BackoffMode::FixedLadder,
            tcp_fallback: false,
            fallbacks: Vec::new(),
        }
    }

    /// The hardened path: exponential backoff + jitter, TCP fallback, and
    /// failover through `fallbacks`.
    pub fn hardened(fallbacks: Vec<Ipv4Addr>) -> Self {
        ClientPolicy {
            backoff: BackoffMode::ExponentialJitter,
            tcp_fallback: true,
            fallbacks,
        }
    }
}

/// The outcome of one client resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsLookup {
    /// Name that was queried.
    pub qname: DnsName,
    /// Record type queried.
    pub qtype: RecordType,
    /// Resolver address queried (the primary, when failover happened).
    pub resolver: Ipv4Addr,
    /// When the query was sent.
    pub sent_at: SimTime,
    /// Resolution time (send to response), `None` on timeout.
    pub elapsed: Option<SimDuration>,
    /// Decoded response, when one arrived and parsed.
    pub response: Option<Message>,
    /// How the resolution concluded.
    pub outcome: Outcome,
}

impl DnsLookup {
    /// Whether a usable NOERROR answer arrived.
    pub fn ok(&self) -> bool {
        self.response
            .as_ref()
            .map(|m| m.header.rcode == Rcode::NoError)
            .unwrap_or(false)
    }

    /// A-record addresses in the answer, in order.
    pub fn addrs(&self) -> Vec<Ipv4Addr> {
        self.response
            .as_ref()
            .map(|m| m.answer_addrs())
            .unwrap_or_default()
    }

    /// The canonical (CNAME-chased) name of the query.
    pub fn canonical_name(&self) -> Option<DnsName> {
        self.response
            .as_ref()
            .map(|m| m.canonical_name(&self.qname))
    }
}

/// Timeout granted to hardened attempt `k`: `BASE << k`, capped, and
/// clamped so the attempt never outlives the overall deadline.
fn attempt_timeout(attempt: u32, remaining: SimDuration) -> SimDuration {
    let base = HARDENED_BASE_TIMEOUT * (1u64 << attempt.min(HARDENED_MAX_SHIFT));
    base.min(remaining)
}

/// Backoff pause before hardened retry `k` (zero before the first
/// attempt): `BASE << (k-1)` scaled by `jitter_x1000/1000` (the caller
/// draws jitter in `[500, 1000)` from the seeded stream), clamped to the
/// remaining deadline.
fn backoff_pause(attempt: u32, jitter_x1000: u64, remaining: SimDuration) -> SimDuration {
    if attempt == 0 {
        return SimDuration::ZERO;
    }
    let base = HARDENED_BACKOFF_BASE * (1u64 << (attempt - 1).min(HARDENED_MAX_SHIFT));
    let jittered = SimDuration::from_micros(base.as_micros() * jitter_x1000 / 1_000);
    jittered.min(remaining)
}

/// Builds and encodes one query, advertising the standard EDNS size.
fn encode_query(id: u16, qname: &DnsName, qtype: RecordType) -> Vec<u8> {
    let mut query = QueryBuilder::new(id, qname.to_string(), qtype)
        .recursion_desired(true)
        .build()
        // detlint: allow(D4) -- query names come from the static
        // experiment catalog validated at world build; a bad name is a
        // driver bug
        .expect("valid query name");
    query.advertise_udp_size(dnswire::edns::DEFAULT_UDP_PAYLOAD_SIZE);
    // detlint: allow(D4) -- encode of a query built two lines up from an
    // already-validated name
    query.encode().expect("query encodes")
}

/// Issues one A-record lookup from `node` against `resolver` with the
/// classic policy and runs the simulation until it completes.
pub fn resolve(
    net: &mut Network,
    node: NodeId,
    resolver: Ipv4Addr,
    qname: &DnsName,
    qtype: RecordType,
) -> DnsLookup {
    resolve_with(net, node, resolver, qname, qtype, &ClientPolicy::classic())
}

/// Issues one lookup under the given [`ClientPolicy`].
pub fn resolve_with(
    net: &mut Network,
    node: NodeId,
    resolver: Ipv4Addr,
    qname: &DnsName,
    qtype: RecordType,
    policy: &ClientPolicy,
) -> DnsLookup {
    match policy.backoff {
        BackoffMode::FixedLadder => resolve_classic(net, node, resolver, qname, qtype),
        BackoffMode::ExponentialJitter => {
            resolve_hardened(net, node, resolver, qname, qtype, policy)
        }
    }
}

/// The seed's fixed-ladder loop, unchanged so fault-free campaigns replay
/// byte-identically: one id draw per attempt, no pauses, no fallback.
fn resolve_classic(
    net: &mut Network,
    node: NodeId,
    resolver: Ipv4Addr,
    qname: &DnsName,
    qtype: RecordType,
) -> DnsLookup {
    let sent_at = net.now();
    let mut response = None;
    let mut elapsed = None;
    for timeout in ATTEMPT_TIMEOUTS {
        let id: u16 = net.rng().gen();
        let payload = encode_query(id, qname, qtype);
        let flow = net.udp_request(node, resolver, DNS_PORT, payload, timeout);
        let outcome = net.run_until(flow);
        if let FlowResult::Response { payload, .. } = outcome.result {
            // Zero-copy peek first: reject spoofed / garbled responses by id
            // without paying for a full decode. A payload the view rejects
            // (short header) would fail the full decode too.
            let id_matches = MessageView::new(&payload).is_ok_and(|v| v.id() == id);
            let msg = if id_matches {
                Message::decode(&payload).ok()
            } else {
                None
            };
            // Reject responses whose id does not match (spoofing guard).
            if let Some(msg) = msg.filter(|m| m.header.id == id) {
                // Resolution time is measured from the *first* attempt, as
                // the phone's stub resolver experiences it.
                elapsed = Some(outcome.completed_at.since(sent_at));
                response = Some(msg);
                break;
            }
        }
    }
    let outcome = match &response {
        None => Outcome::Timeout,
        Some(m) if m.header.rcode == Rcode::ServFail => Outcome::ServFail,
        Some(_) => Outcome::Ok,
    };
    DnsLookup {
        qname: qname.clone(),
        qtype,
        resolver,
        sent_at,
        elapsed,
        response,
        outcome,
    }
}

/// The hardened loop: exponential backoff with seed-derived jitter, TCP
/// fallback on truncation, failover through `policy.fallbacks` — all
/// inside one [`QUERY_TIMEOUT`] deadline.
fn resolve_hardened(
    net: &mut Network,
    node: NodeId,
    resolver: Ipv4Addr,
    qname: &DnsName,
    qtype: RecordType,
    policy: &ClientPolicy,
) -> DnsLookup {
    let sent_at = net.now();
    let deadline = sent_at + QUERY_TIMEOUT;
    let mut response = None;
    let mut elapsed = None;
    let mut answered_via: Option<usize> = None;
    let mut recovered_via_tcp = false;
    let mut last_servfail: Option<(Message, SimDuration)> = None;
    let mut saw_unreachable = false;
    let chain: Vec<Ipv4Addr> = std::iter::once(resolver)
        .chain(policy.fallbacks.iter().copied())
        .collect();
    'chain: for (ri, &raddr) in chain.iter().enumerate() {
        for attempt in 0..HARDENED_ATTEMPTS {
            if attempt > 0 {
                let jitter: u64 = net.rng().gen_range(500..1_000);
                let pause = backoff_pause(attempt, jitter, deadline.since(net.now()));
                if pause > SimDuration::ZERO {
                    let resume = net.now() + pause;
                    net.skip_to(resume);
                }
            }
            let remaining = deadline.since(net.now());
            if remaining < MIN_ATTEMPT_BUDGET {
                break 'chain;
            }
            let timeout = attempt_timeout(attempt, remaining);
            let id: u16 = net.rng().gen();
            let payload = encode_query(id, qname, qtype);
            let flow = net.udp_request(node, raddr, DNS_PORT, payload, timeout);
            let flow_outcome = net.run_until(flow);
            match flow_outcome.result {
                FlowResult::Response { payload, .. } => {
                    // Same zero-copy id precheck as the classic loop.
                    if !MessageView::new(&payload).is_ok_and(|v| v.id() == id) {
                        continue; // spoofed or garbled: retry
                    }
                    let Some(msg) = Message::decode(&payload).ok().filter(|m| m.header.id == id)
                    else {
                        continue; // garbled past the header: retry
                    };
                    if msg.header.flags.truncated && policy.tcp_fallback {
                        match resolve_over_tcp(net, node, raddr, qname, qtype, deadline) {
                            Ok(full) => {
                                elapsed = Some(net.now().since(sent_at));
                                response = Some(full);
                                answered_via = Some(ri);
                                recovered_via_tcp = true;
                                break 'chain;
                            }
                            // An active refusal will not heal: fail over.
                            Err(Some(TcpFailure::Refused | TcpFailure::Reset)) => {
                                continue 'chain;
                            }
                            // Lost in transit: keep trying UDP.
                            Err(_) => {}
                        }
                    } else if msg.header.rcode == Rcode::ServFail {
                        last_servfail = Some((msg, flow_outcome.completed_at.since(sent_at)));
                        // Retrying the same broken resolver rarely helps.
                        continue 'chain;
                    } else {
                        elapsed = Some(flow_outcome.completed_at.since(sent_at));
                        response = Some(msg);
                        answered_via = Some(ri);
                        break 'chain;
                    }
                }
                FlowResult::Unreachable { .. } => {
                    saw_unreachable = true;
                    continue 'chain;
                }
                // Timed out (or a stray ICMP): next attempt.
                _ => {}
            }
        }
    }
    let outcome = match answered_via {
        Some(0) if recovered_via_tcp => Outcome::TruncatedRecovered,
        Some(0) => Outcome::Ok,
        Some(_) => Outcome::FailedOver,
        None if last_servfail.is_some() => Outcome::ServFail,
        None if saw_unreachable => Outcome::Unreachable,
        None => Outcome::Timeout,
    };
    if answered_via.is_none() {
        if let Some((msg, at)) = last_servfail {
            response = Some(msg);
            elapsed = Some(at);
        }
    }
    DnsLookup {
        qname: qname.clone(),
        qtype,
        resolver,
        sent_at,
        elapsed,
        response,
        outcome,
    }
}

/// Retries a truncated lookup over TCP (RFC 1035 §4.2.2 framing) against
/// the same resolver address, bounded by the overall `deadline`. Returns
/// the full answer, or the typed TCP failure when the connection died.
fn resolve_over_tcp(
    net: &mut Network,
    node: NodeId,
    resolver: Ipv4Addr,
    qname: &DnsName,
    qtype: RecordType,
    deadline: SimTime,
) -> Result<Message, Option<TcpFailure>> {
    let remaining = deadline.since(net.now());
    if remaining < MIN_ATTEMPT_BUDGET {
        return Err(None);
    }
    let id: u16 = net.rng().gen();
    let payload = encode_query(id, qname, qtype);
    // Queries are a few dozen bytes; framing cannot fail on them.
    let framed = frame(&payload).map_err(|_| None)?;
    let port = net.alloc_client_port(node);
    net.register_service(
        node,
        port,
        Box::new(TcpFetch::new(resolver, DNS_TCP_PORT, framed)),
    );
    net.kick_service(node, port);
    let mut result: Result<Vec<u8>, Option<TcpFailure>> = Err(None);
    loop {
        if let Some(fetch) = net.service_as::<TcpFetch>(node, port) {
            if let Some(outcome) = fetch.outcome {
                result = if outcome.success {
                    Ok(fetch.data.clone())
                } else {
                    Err(outcome.failure)
                };
                break;
            }
        }
        if net.now() > deadline || !net.step() {
            break;
        }
    }
    net.unregister_service(node, port);
    let data = result?;
    // The fetch holds the complete stream, so any shortfall is a typed
    // framing error (partial read / zero-length), not a wait state.
    let payload = require_frame(&data).map_err(|_| None)?;
    Message::decode(payload)
        .ok()
        .filter(|m| m.header.id == id && !m.header.flags.truncated)
        .ok_or(None)
}

/// Issues one lookup over TCP only (RFC 1035 §4.2.2 framing), with no UDP
/// leg first — the path the serving plane's TCP front end takes when a
/// wire client retries a truncated answer. Bounded by [`QUERY_TIMEOUT`].
pub fn resolve_tcp(
    net: &mut Network,
    node: NodeId,
    resolver: Ipv4Addr,
    qname: &DnsName,
    qtype: RecordType,
) -> DnsLookup {
    let sent_at = net.now();
    let deadline = sent_at + QUERY_TIMEOUT;
    let (response, elapsed, outcome) =
        match resolve_over_tcp(net, node, resolver, qname, qtype, deadline) {
            Ok(msg) => {
                let outcome = if msg.header.rcode == Rcode::ServFail {
                    Outcome::ServFail
                } else {
                    Outcome::Ok
                };
                (Some(msg), Some(net.now().since(sent_at)), outcome)
            }
            Err(Some(TcpFailure::Refused | TcpFailure::Reset)) => {
                (None, None, Outcome::Unreachable)
            }
            Err(_) => (None, None, Outcome::Timeout),
        };
    DnsLookup {
        qname: qname.clone(),
        qtype,
        resolver,
        sent_at,
        elapsed,
        response,
        outcome,
    }
}

/// Issues a whoami probe: a unique nonce label under the probe zone, so no
/// cache can satisfy it and the authoritative server always sees the live
/// external resolver. Returns the discovered external resolver address.
pub fn whoami(
    net: &mut Network,
    node: NodeId,
    resolver: Ipv4Addr,
    probe_zone: &DnsName,
) -> (DnsLookup, Option<Ipv4Addr>) {
    whoami_with(net, node, resolver, probe_zone, &ClientPolicy::classic())
}

/// [`whoami`] under an explicit policy. Failover makes no sense here (a
/// fallback resolver's egress would masquerade as the primary's), so any
/// configured fallbacks are ignored.
pub fn whoami_with(
    net: &mut Network,
    node: NodeId,
    resolver: Ipv4Addr,
    probe_zone: &DnsName,
    policy: &ClientPolicy,
) -> (DnsLookup, Option<Ipv4Addr>) {
    let nonce: u64 = net.rng().gen();
    let qname = probe_zone
        .child(&format!("x{nonce:016x}"))
        // detlint: allow(D4) -- the nonce label is fixed-width hex, always a
        // valid DNS label
        .expect("nonce label is valid");
    let no_failover = ClientPolicy {
        fallbacks: Vec::new(),
        ..policy.clone()
    };
    let lookup = resolve_with(net, node, resolver, &qname, RecordType::A, &no_failover);
    let external = lookup.addrs().first().copied();
    (lookup, external)
}

#[cfg(test)]
mod tests {
    // Network-level behaviour is exercised end-to-end in tests/resolution.rs
    // (full hierarchy) and the workspace fault tests; here we pin the
    // deadline arithmetic both ladders must respect.
    use super::*;

    #[test]
    fn classic_ladder_fits_the_deadline_exactly() {
        let total = ATTEMPT_TIMEOUTS
            .iter()
            .fold(SimDuration::ZERO, |acc, &t| acc + t);
        assert_eq!(total, QUERY_TIMEOUT, "ladder must sum to the deadline");
    }

    #[test]
    fn hardened_schedule_never_overruns_the_deadline() {
        // Worst case: every attempt times out and every pause draws the
        // largest jitter. Walk the schedule the way resolve_hardened does
        // and check the granted budget never exceeds QUERY_TIMEOUT.
        for resolvers in 1..=3u32 {
            for jitter in [500u64, 750, 999] {
                let mut remaining = QUERY_TIMEOUT;
                let mut spent = SimDuration::ZERO;
                for _ in 0..resolvers {
                    for attempt in 0..HARDENED_ATTEMPTS {
                        let pause = backoff_pause(attempt, jitter, remaining);
                        spent += pause;
                        remaining = remaining - pause;
                        if remaining < MIN_ATTEMPT_BUDGET {
                            break;
                        }
                        let t = attempt_timeout(attempt, remaining);
                        spent += t;
                        remaining = remaining - t;
                    }
                }
                assert!(
                    spent <= QUERY_TIMEOUT,
                    "schedule overran: spent {spent} of {QUERY_TIMEOUT}"
                );
            }
        }
    }

    #[test]
    fn attempt_timeout_is_exponential_then_clamped() {
        let plenty = SimDuration::from_secs(60);
        assert_eq!(attempt_timeout(0, plenty), SimDuration::from_secs(1));
        assert_eq!(attempt_timeout(1, plenty), SimDuration::from_secs(2));
        assert_eq!(attempt_timeout(2, plenty), SimDuration::from_secs(4));
        // Exponent cap: attempt 5 is no longer than attempt 2.
        assert_eq!(attempt_timeout(5, plenty), SimDuration::from_secs(4));
        // Deadline clamp: the boundary case from the satellite issue.
        let tight = SimDuration::from_millis(120);
        assert_eq!(attempt_timeout(3, tight), tight);
    }

    #[test]
    fn backoff_pause_jitters_and_clamps() {
        let plenty = SimDuration::from_secs(60);
        assert_eq!(backoff_pause(0, 999, plenty), SimDuration::ZERO);
        assert_eq!(
            backoff_pause(1, 1_000, plenty),
            SimDuration::from_millis(500)
        );
        assert_eq!(backoff_pause(1, 500, plenty), SimDuration::from_millis(250));
        assert_eq!(backoff_pause(2, 1_000, plenty), SimDuration::from_secs(1));
        // Clamped to what's left of the deadline.
        let tight = SimDuration::from_millis(10);
        assert_eq!(backoff_pause(3, 999, tight), tight);
    }

    #[test]
    fn outcome_labels_are_stable() {
        let labels: Vec<&str> = Outcome::ALL.iter().map(|o| o.label()).collect();
        assert_eq!(
            labels,
            [
                "ok",
                "truncated-recovered",
                "failed-over",
                "servfail",
                "unreachable",
                "timeout"
            ]
        );
        assert!(Outcome::TruncatedRecovered.answered());
        assert!(!Outcome::ServFail.answered());
    }
}
