//! Zone storage and authoritative lookup semantics: exact answers, CNAME
//! chasing within the zone, delegations with glue, NODATA and NXDOMAIN.

use dnswire::message::{Rcode, ResourceRecord};
use dnswire::name::DnsName;
use dnswire::rdata::{RData, RecordType, SoaData};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// The outcome of an authoritative lookup, ready to be placed into a
/// response message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZoneAnswer {
    /// Response code.
    pub rcode: Rcode,
    /// Answer-section records.
    pub answers: Vec<ResourceRecord>,
    /// Authority-section records (NS for referrals, SOA for negatives).
    pub authorities: Vec<ResourceRecord>,
    /// Additional-section records (glue).
    pub additionals: Vec<ResourceRecord>,
    /// Whether the server is authoritative for this answer (false for
    /// referrals).
    pub authoritative: bool,
    /// ECS scope to echo (RFC 7871): `Some(n)` means "this answer is valid
    /// for the announced subnet at /n granularity". CDN mapping zones set
    /// 24; everything else leaves `None`.
    pub ecs_scope: Option<u8>,
}

impl ZoneAnswer {
    /// An empty authoritative NOERROR answer.
    pub fn empty() -> Self {
        ZoneAnswer {
            rcode: Rcode::NoError,
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
            authoritative: true,
            ecs_scope: None,
        }
    }
}

/// One DNS zone: an origin, a SOA, and a record set.
#[derive(Debug, Clone)]
pub struct Zone {
    origin: DnsName,
    soa: SoaData,
    soa_ttl: u32,
    /// (name, type) -> records. BTreeMap for deterministic iteration.
    records: BTreeMap<(DnsName, RecordType), Vec<ResourceRecord>>,
    /// Delegated child zones (cut points) -> NS host names.
    cuts: BTreeMap<DnsName, Vec<DnsName>>,
}

impl Zone {
    /// A new zone with a standard SOA.
    pub fn new(origin: DnsName) -> Self {
        let mname = origin.child("ns1").unwrap_or_else(|_| origin.clone());
        let rname = origin
            .child("hostmaster")
            .unwrap_or_else(|_| origin.clone());
        Zone {
            origin,
            soa: SoaData {
                mname,
                rname,
                serial: 2014_1105,
                refresh: 7200,
                retry: 900,
                expire: 1_209_600,
                minimum: 60,
            },
            soa_ttl: 3600,
            records: BTreeMap::new(),
            cuts: BTreeMap::new(),
        }
    }

    /// The zone origin.
    pub fn origin(&self) -> &DnsName {
        &self.origin
    }

    /// Adds a record; the owner must be at or under the origin.
    pub fn add(&mut self, rr: ResourceRecord) {
        assert!(
            rr.name.is_under(&self.origin),
            "{} outside zone {}",
            rr.name,
            self.origin
        );
        self.records
            .entry((rr.name.clone(), rr.record_type()))
            .or_default()
            .push(rr);
    }

    /// Convenience: adds an A record.
    pub fn add_a(&mut self, name: DnsName, ttl: u32, addr: Ipv4Addr) {
        self.add(ResourceRecord::new(name, ttl, RData::A(addr)));
    }

    /// Convenience: adds a CNAME record.
    pub fn add_cname(&mut self, name: DnsName, ttl: u32, target: DnsName) {
        self.add(ResourceRecord::new(name, ttl, RData::Cname(target)));
    }

    /// Delegates `child` to the given name servers with glue addresses.
    /// `child` must be strictly under the origin.
    pub fn delegate(&mut self, child: DnsName, servers: Vec<(DnsName, Ipv4Addr)>) {
        assert!(
            child.is_under(&self.origin) && child != self.origin,
            "bad delegation {child} in {}",
            self.origin
        );
        let mut ns_names = Vec::new();
        for (ns, glue) in servers {
            self.records
                .entry((child.clone(), RecordType::Ns))
                .or_default()
                .push(ResourceRecord::new(
                    child.clone(),
                    86_400,
                    RData::Ns(ns.clone()),
                ));
            self.records
                .entry((ns.clone(), RecordType::A))
                .or_default()
                .push(ResourceRecord::new(ns.clone(), 86_400, RData::A(glue)));
            ns_names.push(ns);
        }
        self.cuts.insert(child, ns_names);
    }

    /// The SOA record for negative answers.
    fn soa_record(&self) -> ResourceRecord {
        ResourceRecord::new(
            self.origin.clone(),
            self.soa_ttl,
            RData::Soa(self.soa.clone()),
        )
    }

    /// Whether any record (of any type) exists at `name`.
    fn name_exists(&self, name: &DnsName) -> bool {
        self.records
            .range((name.clone(), RecordType::A)..)
            .take_while(|((n, _), _)| n == name)
            .next()
            .is_some()
    }

    /// Finds the deepest delegation cut covering `qname`, if any.
    fn covering_cut(&self, qname: &DnsName) -> Option<&DnsName> {
        qname
            .self_and_ancestors()
            .find(|anc| anc != &self.origin && self.cuts.contains_key(anc))
            .and_then(|anc| self.cuts.get_key_value(&anc).map(|(k, _)| k))
    }

    /// Authoritative lookup per RFC 1034 §4.3.2 (simplified: no wildcards).
    pub fn lookup(&self, qname: &DnsName, qtype: RecordType) -> ZoneAnswer {
        let mut out = ZoneAnswer::empty();
        if !qname.is_under(&self.origin) {
            out.rcode = Rcode::Refused;
            out.authoritative = false;
            return out;
        }
        // Referral if the name sits under a delegation cut.
        if let Some(cut) = self.covering_cut(qname) {
            out.authoritative = false;
            if let Some(ns_rrs) = self.records.get(&(cut.clone(), RecordType::Ns)) {
                out.authorities.extend(ns_rrs.iter().cloned());
                for ns_rr in ns_rrs {
                    if let RData::Ns(host) = &ns_rr.rdata {
                        if let Some(glue) = self.records.get(&(host.clone(), RecordType::A)) {
                            out.additionals.extend(glue.iter().cloned());
                        }
                    }
                }
            }
            return out;
        }
        // Exact type match.
        if let Some(rrs) = self.records.get(&(qname.clone(), qtype)) {
            out.answers.extend(rrs.iter().cloned());
            return out;
        }
        // CNAME at the name (unless CNAME itself was asked).
        if qtype != RecordType::Cname {
            if let Some(cnames) = self.records.get(&(qname.clone(), RecordType::Cname)) {
                out.answers.extend(cnames.iter().cloned());
                // Chase within the zone as a courtesy (RFC 1034 §3.6.2).
                if let Some(RData::Cname(target)) = cnames.first().map(|r| &r.rdata) {
                    if target.is_under(&self.origin) {
                        let chased = self.lookup(target, qtype);
                        if chased.rcode == Rcode::NoError {
                            out.answers.extend(chased.answers);
                        }
                    }
                }
                return out;
            }
        }
        // NODATA vs NXDOMAIN.
        if self.name_exists(qname) {
            out.authorities.push(self.soa_record());
        } else {
            out.rcode = Rcode::NxDomain;
            out.authorities.push(self.soa_record());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> DnsName {
        DnsName::parse(s).unwrap()
    }

    fn ip(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr::new(a, b, c, d)
    }

    fn example_zone() -> Zone {
        let mut z = Zone::new(n("example.com"));
        z.add_a(n("www.example.com"), 300, ip(192, 0, 2, 1));
        z.add_a(n("www.example.com"), 300, ip(192, 0, 2, 2));
        z.add_cname(n("m.example.com"), 60, n("www.example.com"));
        z.add_cname(n("ext.example.com"), 60, n("cdn.provider.net"));
        z.delegate(
            n("sub.example.com"),
            vec![(n("ns1.sub.example.com"), ip(198, 51, 100, 53))],
        );
        z
    }

    #[test]
    fn exact_match_returns_all_records() {
        let z = example_zone();
        let out = z.lookup(&n("www.example.com"), RecordType::A);
        assert_eq!(out.rcode, Rcode::NoError);
        assert_eq!(out.answers.len(), 2);
        assert!(out.authoritative);
    }

    #[test]
    fn cname_is_chased_within_zone() {
        let z = example_zone();
        let out = z.lookup(&n("m.example.com"), RecordType::A);
        assert_eq!(out.answers.len(), 3); // CNAME + 2 A
        assert!(matches!(out.answers[0].rdata, RData::Cname(_)));
    }

    #[test]
    fn external_cname_is_not_chased() {
        let z = example_zone();
        let out = z.lookup(&n("ext.example.com"), RecordType::A);
        assert_eq!(out.answers.len(), 1);
        assert_eq!(
            out.answers[0].rdata.as_cname().unwrap(),
            &n("cdn.provider.net")
        );
    }

    #[test]
    fn nxdomain_carries_soa() {
        let z = example_zone();
        let out = z.lookup(&n("nope.example.com"), RecordType::A);
        assert_eq!(out.rcode, Rcode::NxDomain);
        assert!(matches!(out.authorities[0].rdata, RData::Soa(_)));
    }

    #[test]
    fn nodata_is_noerror_with_soa() {
        let z = example_zone();
        let out = z.lookup(&n("www.example.com"), RecordType::Txt);
        assert_eq!(out.rcode, Rcode::NoError);
        assert!(out.answers.is_empty());
        assert!(matches!(out.authorities[0].rdata, RData::Soa(_)));
    }

    #[test]
    fn delegation_returns_referral_with_glue() {
        let z = example_zone();
        let out = z.lookup(&n("deep.sub.example.com"), RecordType::A);
        assert_eq!(out.rcode, Rcode::NoError);
        assert!(!out.authoritative);
        assert!(out.answers.is_empty());
        assert!(matches!(out.authorities[0].rdata, RData::Ns(_)));
        assert_eq!(out.additionals[0].rdata.as_a(), Some(ip(198, 51, 100, 53)));
    }

    #[test]
    fn out_of_zone_is_refused() {
        let z = example_zone();
        let out = z.lookup(&n("www.elsewhere.org"), RecordType::A);
        assert_eq!(out.rcode, Rcode::Refused);
    }

    #[test]
    fn qtype_cname_returns_cname_without_chase() {
        let z = example_zone();
        let out = z.lookup(&n("m.example.com"), RecordType::Cname);
        assert_eq!(out.answers.len(), 1);
    }

    #[test]
    fn root_zone_delegations() {
        let mut root = Zone::new(DnsName::root());
        root.delegate(n("com"), vec![(n("a.gtld-servers.net"), ip(192, 5, 6, 30))]);
        let out = root.lookup(&n("www.example.com"), RecordType::A);
        assert!(!out.authoritative);
        assert!(matches!(out.authorities[0].rdata, RData::Ns(_)));
    }

    #[test]
    #[should_panic(expected = "outside zone")]
    fn rejects_out_of_zone_records() {
        let mut z = Zone::new(n("example.com"));
        z.add_a(n("www.other.org"), 60, ip(1, 2, 3, 4));
    }
}
