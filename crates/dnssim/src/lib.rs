#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `dnssim` — DNS services over the `netsim` substrate: authoritative
//! servers (static, dynamic, and whoami zones), caching recursive resolvers
//! with full iterative resolution, client-facing forwarders with the
//! mapping policies behind the paper's Table 3, and the client driver the
//! measurement suite uses.
//!
//! The pieces compose into the indirect resolver architectures the paper
//! found in every carrier (§4.1):
//!
//! * **Anycast client VIP** — `netsim`'s anycast + one service per instance.
//! * **LDNS pools** — [`forwarder::Forwarder`] with
//!   [`forwarder::UpstreamPolicy::PerClientLease`].
//! * **Tiered resolvers** — a forwarder node in one AS relaying to a
//!   [`recursive::RecursiveResolver`] in another.

pub mod authority;
pub mod cache;
pub mod client;
pub mod forwarder;
pub mod hierarchy;
pub mod parse;
pub mod recursive;
pub mod tcp;
pub mod zone;

pub use authority::{AuthoritativeServer, DynamicZone, WhoamiZone, DNS_PORT};
pub use cache::{AmbientModel, CacheOutcome, DnsCache};
pub use client::{
    resolve, resolve_tcp, resolve_with, whoami, whoami_with, BackoffMode, ClientPolicy, DnsLookup,
    Outcome, QUERY_TIMEOUT,
};
pub use forwarder::{Forwarder, UpstreamPolicy};
pub use hierarchy::{BuiltHierarchy, HierarchyBuilder};
pub use parse::{parse_zone, ParseError};
pub use recursive::{RecursiveResolver, ResolverConfig, ServerFaults};
pub use tcp::{
    frame, require_frame, split_frame, FrameError, TcpDnsServer, TcpDnsStats, DNS_TCP_PORT,
    MAX_FRAME_LEN,
};
pub use zone::{Zone, ZoneAnswer};

/// Returns the placeholder-free version marker used by integration tests to
/// confirm the crate wires together.
pub const CRATE_NAME: &str = "dnssim";
