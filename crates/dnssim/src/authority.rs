//! The authoritative DNS server service: static zones, dynamic zones
//! (CDN mapping logic plugs in here), and the *whoami* probe zone used to
//! discover external-facing resolvers (the Mao et al. technique from §3.2).

use crate::zone::{Zone, ZoneAnswer};
use dnswire::builder::ResponseBuilder;
use dnswire::message::{Message, Question, Rcode, ResourceRecord};
use dnswire::name::DnsName;
use dnswire::rdata::{RData, RecordType};
use netsim::engine::{Egress, ServiceCtx, UdpService};
use netsim::time::SimDuration;
use std::net::Ipv4Addr;

/// Well-known DNS port.
pub const DNS_PORT: u16 = 53;

/// A zone whose answers are computed per query. The CDN's replica-mapping
/// authority implements this; so does the whoami probe zone.
///
/// `Send` for the same reason as `netsim`'s `UdpService`: authoritative
/// servers (and the engines owning them) migrate across campaign threads.
pub trait DynamicZone: Send {
    /// The zone apex this authority serves.
    fn origin(&self) -> &DnsName;

    /// Answers one question. `resolver` is the address the query arrived
    /// from — for CDNs this is the LDNS they localize the client by, which
    /// is the paper's entire subject. `ecs` carries the RFC 7871 client
    /// subnet when the resolver announced one (§9's future-work fix).
    fn answer(
        &mut self,
        qname: &DnsName,
        qtype: RecordType,
        resolver: Ipv4Addr,
        ecs: Option<(Ipv4Addr, u8)>,
        ctx: &mut ServiceCtx<'_>,
    ) -> ZoneAnswer;
}

/// The whoami zone: any A/TXT query under its origin is answered with the
/// querying resolver's address, exposing the external-facing LDNS to the
/// measurement client. TTL is zero so every probe sees the live resolver.
#[derive(Debug)]
pub struct WhoamiZone {
    origin: DnsName,
}

impl WhoamiZone {
    /// A whoami zone rooted at `origin` (e.g. `whoami.aqualab.example`).
    pub fn new(origin: DnsName) -> Self {
        WhoamiZone { origin }
    }
}

impl DynamicZone for WhoamiZone {
    fn origin(&self) -> &DnsName {
        &self.origin
    }

    fn answer(
        &mut self,
        qname: &DnsName,
        qtype: RecordType,
        resolver: Ipv4Addr,
        _ecs: Option<(Ipv4Addr, u8)>,
        ctx: &mut ServiceCtx<'_>,
    ) -> ZoneAnswer {
        let mut answers = Vec::new();
        match qtype {
            RecordType::A => {
                answers.push(ResourceRecord::new(qname.clone(), 0, RData::A(resolver)));
            }
            RecordType::Txt => {
                answers.push(ResourceRecord::new(
                    qname.clone(),
                    0,
                    RData::Txt(vec![format!("resolver={resolver} t={}", ctx.now.as_secs())]),
                ));
            }
            _ => {}
        }
        ZoneAnswer {
            answers,
            ..ZoneAnswer::empty()
        }
    }
}

/// An authoritative server hosting static and dynamic zones.
pub struct AuthoritativeServer {
    zones: Vec<Zone>,
    dynamic: Vec<Box<dyn DynamicZone>>,
    /// Server-side processing time per query.
    proc_delay: SimDuration,
    /// Queries answered (diagnostics).
    pub queries: u64,
}

impl AuthoritativeServer {
    /// An empty server with a default processing time.
    pub fn new() -> Self {
        AuthoritativeServer {
            zones: Vec::new(),
            dynamic: Vec::new(),
            proc_delay: SimDuration::from_micros(200),
            queries: 0,
        }
    }

    /// Adds a static zone.
    pub fn add_zone(&mut self, zone: Zone) -> &mut Self {
        self.zones.push(zone);
        self
    }

    /// Adds a dynamic zone.
    pub fn add_dynamic(&mut self, zone: Box<dyn DynamicZone>) -> &mut Self {
        self.dynamic.push(zone);
        self
    }

    /// Overrides the processing delay.
    pub fn set_proc_delay(&mut self, d: SimDuration) {
        self.proc_delay = d;
    }

    /// Longest-origin-match across static and dynamic zones. Returns
    /// (is_dynamic, index).
    fn best_zone(&self, qname: &DnsName) -> Option<(bool, usize)> {
        let mut best: Option<(bool, usize, usize)> = None; // (dynamic, idx, labels)
        for (i, z) in self.zones.iter().enumerate() {
            if qname.is_under(z.origin()) {
                let l = z.origin().label_count();
                if best.map(|(_, _, bl)| l > bl).unwrap_or(true) {
                    best = Some((false, i, l));
                }
            }
        }
        for (i, z) in self.dynamic.iter().enumerate() {
            if qname.is_under(z.origin()) {
                let l = z.origin().label_count();
                if best.map(|(_, _, bl)| l > bl).unwrap_or(true) {
                    best = Some((true, i, l));
                }
            }
        }
        best.map(|(d, i, _)| (d, i))
    }

    fn respond(
        &mut self,
        query: &Message,
        q: &Question,
        querier: Ipv4Addr,
        ctx: &mut ServiceCtx<'_>,
    ) -> Message {
        let ecs = query
            .client_subnet()
            .filter(|(_, source, _)| *source > 0)
            .map(|(addr, source, _)| (addr, source));
        let answer = match self.best_zone(&q.qname) {
            Some((false, i)) => self.zones[i].lookup(&q.qname, q.qtype),
            Some((true, i)) => self.dynamic[i].answer(&q.qname, q.qtype, querier, ecs, ctx),
            None => ZoneAnswer {
                rcode: Rcode::Refused,
                authoritative: false,
                ..ZoneAnswer::empty()
            },
        };
        let mut b = ResponseBuilder::for_query(query)
            .authoritative(answer.authoritative)
            .rcode(answer.rcode);
        for rr in answer.answers {
            b = b.answer(rr);
        }
        for rr in answer.authorities {
            b = b.authority(rr);
        }
        for rr in answer.additionals {
            b = b.additional(rr);
        }
        let mut msg = b.build();
        // Echo ECS with the answer's scope (RFC 7871 §7.2.2).
        if let (Some((addr, source)), Some(scope)) = (ecs, answer.ecs_scope) {
            msg.set_ecs_raw(addr, source, scope);
        }
        msg
    }
}

impl Default for AuthoritativeServer {
    fn default() -> Self {
        Self::new()
    }
}

impl UdpService for AuthoritativeServer {
    fn handle(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        from: Ipv4Addr,
        from_port: u16,
        payload: &[u8],
    ) -> Vec<Egress> {
        let Ok(query) = Message::decode(payload) else {
            // Unparseable: answer FORMERR with whatever id we can salvage.
            let id = if payload.len() >= 2 {
                u16::from_be_bytes([payload[0], payload[1]])
            } else {
                0
            };
            let resp = ResponseBuilder::new(id).rcode(Rcode::FormErr).build();
            // detlint: allow(D4) -- encode of a FormErr reply the server
            // itself just built; it cannot exceed wire limits
            let bytes = resp.encode().expect("formerr encodes");
            return vec![Egress::reply(from, from_port, bytes, self.proc_delay)];
        };
        if query.header.flags.response {
            return Vec::new(); // stray response; ignore
        }
        self.queries += 1;
        let Some(q) = query.questions.first().cloned() else {
            let resp = ResponseBuilder::for_query(&query)
                .rcode(Rcode::FormErr)
                .build();
            // detlint: allow(D4) -- encode of a FormErr reply the server
            // itself just built; it cannot exceed wire limits
            let bytes = resp.encode().expect("formerr encodes");
            return vec![Egress::reply(from, from_port, bytes, self.proc_delay)];
        };
        let mut resp = self.respond(&query, &q, from, ctx);
        // RFC 6891: stay within the requester's advertised UDP capacity
        // (512 bytes for non-EDNS queriers), setting TC when we cannot.
        let limit = query
            .edns_udp_size()
            .map(|s| s as usize)
            .unwrap_or(dnswire::edns::CLASSIC_UDP_LIMIT)
            .max(dnswire::edns::CLASSIC_UDP_LIMIT);
        resp.truncate_for(limit);
        // detlint: allow(D4) -- truncate_for() already bounded the response to
        // the requester's UDP capacity, so encode cannot fail
        let bytes = resp.encode().expect("response encodes");
        vec![Egress::reply(from, from_port, bytes, self.proc_delay)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnswire::builder::QueryBuilder;
    use netsim::time::SimTime;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn n(s: &str) -> DnsName {
        DnsName::parse(s).unwrap()
    }

    fn ip(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr::new(a, b, c, d)
    }

    fn run(server: &mut AuthoritativeServer, query: &Message, from: Ipv4Addr) -> Message {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = ServiceCtx {
            now: SimTime::from_micros(5_000_000),
            local_addr: ip(198, 51, 100, 53),
            rng: &mut rng,
            wake_after: None,
        };
        let out = server.handle(&mut ctx, from, 4096, &query.encode().unwrap());
        assert_eq!(out.len(), 1);
        Message::decode(&out[0].payload).unwrap()
    }

    fn server() -> AuthoritativeServer {
        let mut z = Zone::new(n("example.com"));
        z.add_a(n("www.example.com"), 300, ip(192, 0, 2, 1));
        let mut s = AuthoritativeServer::new();
        s.add_zone(z);
        s.add_dynamic(Box::new(WhoamiZone::new(n("whoami.probe.example"))));
        s
    }

    #[test]
    fn answers_static_zone() {
        let mut s = server();
        let q = QueryBuilder::new(7, "www.example.com", RecordType::A)
            .build()
            .unwrap();
        let resp = run(&mut s, &q, ip(10, 0, 0, 1));
        assert_eq!(resp.header.id, 7);
        assert!(resp.header.flags.authoritative);
        assert_eq!(resp.answer_addrs(), vec![ip(192, 0, 2, 1)]);
        assert_eq!(s.queries, 1);
    }

    #[test]
    fn whoami_reports_the_querier() {
        let mut s = server();
        let q = QueryBuilder::new(8, "x123.whoami.probe.example", RecordType::A)
            .build()
            .unwrap();
        let resolver = ip(66, 174, 92, 10);
        let resp = run(&mut s, &q, resolver);
        assert_eq!(resp.answer_addrs(), vec![resolver]);
        assert_eq!(resp.answers[0].ttl, 0);
    }

    #[test]
    fn whoami_txt_variant() {
        let mut s = server();
        let q = QueryBuilder::new(9, "y.whoami.probe.example", RecordType::Txt)
            .build()
            .unwrap();
        let resp = run(&mut s, &q, ip(1, 2, 3, 4));
        match &resp.answers[0].rdata {
            RData::Txt(strings) => assert!(strings[0].contains("1.2.3.4")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn refuses_foreign_names() {
        let mut s = server();
        let q = QueryBuilder::new(1, "www.google.com", RecordType::A)
            .build()
            .unwrap();
        let resp = run(&mut s, &q, ip(10, 0, 0, 1));
        assert_eq!(resp.header.rcode, Rcode::Refused);
    }

    #[test]
    fn garbage_gets_formerr() {
        let mut s = server();
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = ServiceCtx {
            now: SimTime::ZERO,
            local_addr: ip(198, 51, 100, 53),
            rng: &mut rng,
            wake_after: None,
        };
        let out = s.handle(&mut ctx, ip(1, 1, 1, 1), 9, &[0xAB, 0xCD, 0xEF]);
        let resp = Message::decode(&out[0].payload).unwrap();
        assert_eq!(resp.header.rcode, Rcode::FormErr);
        assert_eq!(resp.header.id, 0xABCD);
    }

    #[test]
    fn ignores_stray_responses() {
        let mut s = server();
        let q = QueryBuilder::new(7, "www.example.com", RecordType::A)
            .build()
            .unwrap();
        let mut as_response = q.clone();
        as_response.header.flags.response = true;
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = ServiceCtx {
            now: SimTime::ZERO,
            local_addr: ip(198, 51, 100, 53),
            rng: &mut rng,
            wake_after: None,
        };
        let out = s.handle(&mut ctx, ip(1, 1, 1, 1), 9, &as_response.encode().unwrap());
        assert!(out.is_empty());
    }

    #[test]
    fn longest_origin_match_wins() {
        let mut outer = Zone::new(n("example"));
        outer.add_a(n("probe.example"), 60, ip(203, 0, 113, 1));
        let mut s = AuthoritativeServer::new();
        s.add_zone(outer);
        s.add_dynamic(Box::new(WhoamiZone::new(n("whoami.probe.example"))));
        let q = QueryBuilder::new(4, "z.whoami.probe.example", RecordType::A)
            .build()
            .unwrap();
        let resp = run(&mut s, &q, ip(9, 9, 9, 9));
        // Dynamic (deeper) zone answered, not the static outer zone.
        assert_eq!(resp.answer_addrs(), vec![ip(9, 9, 9, 9)]);
    }
}
