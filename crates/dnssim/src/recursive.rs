//! A caching recursive resolver implemented as an event-driven state
//! machine: client queries come in, iterative resolution (root → TLD →
//! authoritative, with CNAME chasing and referral caching) happens over the
//! simulated network, and answers flow back.

use crate::authority::DNS_PORT;
use crate::cache::{AmbientModel, CacheKey, CacheOutcome, DnsCache};
use dnswire::builder::ResponseBuilder;
use dnswire::message::{Header, Message, Question, Rcode, ResourceRecord};
use dnswire::name::DnsName;
use dnswire::rdata::{RData, RecordType};
use netsim::addr::Prefix;
use netsim::engine::{Egress, ServiceCtx, UdpService};
use netsim::time::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Server-side fault injection knobs for a resolver instance. All
/// default to inert; an inert configuration draws nothing from any RNG,
/// so fault-free worlds replay byte-identically.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ServerFaults {
    /// Probability a client query is answered SERVFAIL outright (resolver
    /// pool member in distress).
    pub servfail_prob: f64,
    /// Probability a UDP answer is forcibly truncated (TC bit, records
    /// stripped), pushing the client to TCP. Queries advertising an EDNS
    /// payload above the default size — the TCP relay path — are exempt.
    pub truncate_prob: f64,
    /// Periodic window during which the resolver silently drops every
    /// client query (maintenance/overload blackout).
    pub unresponsive: Option<netsim::fault::Window>,
}

impl ServerFaults {
    /// Whether any knob is turned.
    pub fn is_active(&self) -> bool {
        self.servfail_prob > 0.0 || self.truncate_prob > 0.0 || self.unresponsive.is_some()
    }
}

/// Configuration of a recursive resolver instance.
#[derive(Debug, Clone)]
pub struct ResolverConfig {
    /// Addresses upstream queries are sent from (empty = the queried
    /// address). Carrier external resolvers set one; public-DNS sites set
    /// several, which is why Table 5 counts so many public resolver IPs
    /// within few /24s.
    pub egress_addrs: Vec<Ipv4Addr>,
    /// Root server addresses (hints).
    pub roots: Vec<Ipv4Addr>,
    /// Cache entry bound.
    pub cache_capacity: usize,
    /// Cap on cached TTLs.
    pub max_ttl: SimDuration,
    /// Negative-cache TTL.
    pub neg_ttl: SimDuration,
    /// How long an in-flight recursion may live before ServFail.
    pub inflight_deadline: SimDuration,
    /// Per-message processing time.
    pub proc_delay: SimDuration,
    /// Ambient background-load model for the cache (see `cache` docs).
    pub ambient: Option<AmbientModel>,
    /// Server-side fault injection (inert by default).
    pub faults: ServerFaults,
}

impl ResolverConfig {
    /// A reasonable default pointing at the given roots.
    pub fn new(roots: Vec<Ipv4Addr>) -> Self {
        ResolverConfig {
            egress_addrs: Vec::new(),
            roots,
            cache_capacity: 100_000,
            max_ttl: SimDuration::from_hours(24),
            neg_ttl: SimDuration::from_secs(60),
            inflight_deadline: SimDuration::from_secs(5),
            proc_delay: SimDuration::from_micros(300),
            ambient: None,
            faults: ServerFaults::default(),
        }
    }
}

/// Resolver activity counters.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ResolverStats {
    /// Queries received from clients.
    pub client_queries: u64,
    /// Queries sent upstream.
    pub upstream_queries: u64,
    /// Answers served entirely from cache.
    pub cache_answers: u64,
    /// ServFail responses produced.
    pub servfails: u64,
    /// Client queries silently dropped by an unresponsive-window fault.
    pub fault_dropped: u64,
    /// SERVFAILs injected by the fault configuration.
    pub fault_servfails: u64,
    /// Answers forcibly truncated by the fault configuration.
    pub fault_truncations: u64,
}

impl ResolverStats {
    /// Folds the resolver counters into an [`obs::Registry`] under the
    /// `dns.resolver.*` family, labelled with `labels` (typically the
    /// resolver class: `carrier`, `google`, `opendns`).
    pub fn export(&self, reg: &mut obs::Registry, labels: &[(&'static str, &str)]) {
        reg.inc_by("dns.resolver.client_queries", labels, self.client_queries);
        reg.inc_by(
            "dns.resolver.upstream_queries",
            labels,
            self.upstream_queries,
        );
        reg.inc_by("dns.resolver.cache_answers", labels, self.cache_answers);
        reg.inc_by("dns.resolver.servfails", labels, self.servfails);
        reg.inc_by("dns.resolver.fault_dropped", labels, self.fault_dropped);
        reg.inc_by("dns.resolver.fault_servfails", labels, self.fault_servfails);
        reg.inc_by(
            "dns.resolver.fault_truncations",
            labels,
            self.fault_truncations,
        );
    }
}

#[derive(Debug)]
struct InFlight {
    client: Ipv4Addr,
    client_port: u16,
    client_id: u16,
    /// Address the client queried; replies come from it.
    reply_from: Ipv4Addr,
    question: Question,
    /// Accumulated answer records (CNAME chain plus final records).
    chain: Vec<ResourceRecord>,
    /// Egress address chosen for this recursion.
    egress: Option<Ipv4Addr>,
    /// ECS subnet announced by the client, forwarded upstream and used as
    /// the cache partition (RFC 7871).
    ecs: Option<Ipv4Addr>,
    /// Name currently being resolved.
    current: DnsName,
    /// Server candidates for the next upstream query.
    servers: Vec<Ipv4Addr>,
    /// Upstream steps taken (loop guard).
    steps: u8,
    /// Retries spent on unresponsive servers.
    retries: u8,
    /// Deadline of the *current* upstream attempt; blowing it triggers a
    /// retry against the next candidate server.
    deadline: SimTime,
    /// Fault injection decided this reply must come back truncated.
    truncate: bool,
}

const MAX_STEPS: u8 = 24;
const MAX_CNAME_DEPTH: usize = 8;
/// Unresponsive-server retries before giving up with ServFail.
const MAX_RETRIES: u8 = 2;

/// The resolver service.
pub struct RecursiveResolver {
    config: ResolverConfig,
    cache: DnsCache,
    inflight: BTreeMap<u16, InFlight>,
    next_txn: u16,
    /// Activity counters.
    pub stats: ResolverStats,
}

impl RecursiveResolver {
    /// Builds a resolver from its configuration.
    pub fn new(config: ResolverConfig) -> Self {
        let mut cache = DnsCache::new(config.cache_capacity, config.max_ttl);
        if let Some(a) = config.ambient {
            cache = cache.with_ambient(a);
        }
        RecursiveResolver {
            config,
            cache,
            inflight: BTreeMap::new(),
            next_txn: 1,
            stats: ResolverStats::default(),
        }
    }

    /// Read access to the cache (tests, Fig. 7 analysis).
    pub fn cache(&self) -> &DnsCache {
        &self.cache
    }

    fn alloc_txn(&mut self) -> u16 {
        for _ in 0..u16::MAX {
            let id = self.next_txn;
            self.next_txn = self.next_txn.wrapping_add(1).max(1);
            if !self.inflight.contains_key(&id) {
                return id;
            }
        }
        // detlint: allow(D4) -- exhausting all 65k transaction ids means the
        // driver leaked queries; continuing would mis-match upstream answers
        panic!("resolver transaction ids exhausted");
    }

    /// Follows the CNAME chain for `question` entirely from cache (within
    /// the given ECS partition). Returns `Some((records, rcode))` when the
    /// cache can fully answer.
    fn answer_from_cache(
        &mut self,
        question: &Question,
        scope: Option<Prefix>,
        now: SimTime,
    ) -> Option<(Vec<ResourceRecord>, Rcode)> {
        let mut chain = Vec::new();
        let mut current = question.qname.clone();
        for _ in 0..=MAX_CNAME_DEPTH {
            match self
                .cache
                .lookup(&(current.clone(), question.qtype, scope), now)
            {
                CacheOutcome::Hit { records, rcode } => {
                    if rcode != Rcode::NoError {
                        return Some((chain, rcode));
                    }
                    if !records.is_empty() {
                        chain.extend(records);
                        return Some((chain, Rcode::NoError));
                    }
                    // Cached NODATA.
                    return Some((chain, Rcode::NoError));
                }
                CacheOutcome::Miss => {}
            }
            if question.qtype == RecordType::Cname {
                return None;
            }
            match self
                .cache
                .lookup(&(current.clone(), RecordType::Cname, scope), now)
            {
                CacheOutcome::Hit {
                    records,
                    rcode: Rcode::NoError,
                } if !records.is_empty() => {
                    let target = records[0].rdata.as_cname()?.clone();
                    chain.extend(records);
                    current = target;
                }
                _ => return None,
            }
        }
        None
    }

    /// Finds the closest-enclosing zone of `name` with cached NS + glue,
    /// falling back to the root hints.
    fn servers_for(&mut self, name: &DnsName, now: SimTime) -> Vec<Ipv4Addr> {
        let ancestors: Vec<DnsName> = name.self_and_ancestors().collect();
        for anc in &ancestors {
            let ns_hosts: Vec<DnsName> =
                match self.cache.lookup(&(anc.clone(), RecordType::Ns, None), now) {
                    CacheOutcome::Hit { records, .. } => records
                        .iter()
                        .filter_map(|rr| match &rr.rdata {
                            RData::Ns(h) => Some(h.clone()),
                            _ => None,
                        })
                        .collect(),
                    CacheOutcome::Miss => continue,
                };
            let mut addrs = Vec::new();
            for host in ns_hosts {
                if let CacheOutcome::Hit { records, .. } =
                    self.cache.lookup(&(host, RecordType::A, None), now)
                {
                    addrs.extend(records.iter().filter_map(|rr| rr.rdata.as_a()));
                }
            }
            if !addrs.is_empty() {
                return addrs;
            }
        }
        self.config.roots.clone()
    }

    /// Caches every record group in a response. Answer-section records are
    /// partitioned under `scope` when the responder scoped them (RFC 7871
    /// §7.3.1); infrastructure records (authority/additional) never are.
    fn absorb(&mut self, msg: &Message, scope: Option<Prefix>, now: SimTime) {
        // Honor the responder's scope: only partition when it echoed a
        // non-zero ECS scope.
        let answer_scope = match (scope, msg.client_subnet()) {
            (Some(p), Some((_, _, s))) if s > 0 => Some(p),
            _ => None,
        };
        let mut groups: BTreeMap<CacheKey, Vec<ResourceRecord>> = BTreeMap::new();
        for (rr, in_answer) in msg
            .answers
            .iter()
            .map(|r| (r, true))
            .chain(msg.authorities.iter().map(|r| (r, false)))
            .chain(msg.additionals.iter().map(|r| (r, false)))
        {
            if matches!(rr.rdata, RData::Soa(_) | RData::Opt(_)) {
                continue;
            }
            let key_scope = if in_answer { answer_scope } else { None };
            groups
                .entry((rr.name.clone(), rr.record_type(), key_scope))
                .or_default()
                .push(rr.clone());
        }
        for (key, records) in groups {
            let ttl = records.iter().map(|r| r.ttl).min().unwrap_or(0);
            if ttl == 0 {
                continue; // do-not-cache records (whoami answers)
            }
            self.cache.insert(
                key,
                records,
                Rcode::NoError,
                SimDuration::from_secs(ttl as u64),
                now,
            );
        }
    }

    fn reply(&mut self, fl: &InFlight, rcode: Rcode, answers: Vec<ResourceRecord>) -> Egress {
        if rcode == Rcode::ServFail {
            self.stats.servfails += 1;
        }
        let mut header = Header::query(fl.client_id);
        header.flags.response = true;
        header.flags.recursion_desired = true;
        header.flags.recursion_available = true;
        header.rcode = rcode;
        let mut msg = Message::new(header);
        msg.questions.push(fl.question.clone());
        // A fault-truncated reply carries the TC bit and no records
        // (RFC 1035 §6.2): the client must retry over TCP.
        if fl.truncate && rcode == Rcode::NoError && !answers.is_empty() {
            self.stats.fault_truncations += 1;
            msg.header.flags.truncated = true;
        } else {
            msg.answers = answers;
        }
        Egress::reply(
            fl.client,
            fl.client_port,
            // detlint: allow(D4) -- encode of a reply assembled from records
            // that encoded before
            msg.encode().expect("resolver reply encodes"),
            self.config.proc_delay,
        )
        .from_addr(fl.reply_from)
    }

    /// Sends the next upstream query for an in-flight recursion.
    fn query_upstream(&mut self, mut fl: InFlight, out: &mut Vec<Egress>) {
        let Some(&server) = fl.servers.first() else {
            let chain = std::mem::take(&mut fl.chain);
            out.push(self.reply(&fl, Rcode::ServFail, chain));
            return;
        };
        let txn = self.alloc_txn();
        self.stats.upstream_queries += 1;
        let mut header = Header::query(txn);
        header.flags.recursion_desired = false;
        let mut msg = Message::new(header);
        msg.questions
            .push(Question::new(fl.current.clone(), fl.question.qtype));
        if let Some(subnet) = fl.ecs {
            msg.set_client_subnet(subnet, 24);
        }
        msg.advertise_udp_size(dnswire::edns::DEFAULT_UDP_PAYLOAD_SIZE);
        let mut egress = Egress {
            dst: server,
            dst_port: DNS_PORT,
            // detlint: allow(D4) -- encode of a minimal upstream query the
            // resolver itself built
            payload: msg.encode().expect("upstream query encodes"),
            delay: self.config.proc_delay,
            src_addr: None,
        };
        if let Some(src) = fl.egress {
            egress = egress.from_addr(src);
        }
        out.push(egress);
        self.inflight.insert(txn, fl);
    }

    fn on_client_query(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        from: Ipv4Addr,
        from_port: u16,
        query: Message,
        out: &mut Vec<Egress>,
    ) {
        self.stats.client_queries += 1;
        // Unresponsive-window fault: the pool member is blacked out and the
        // query vanishes (the client's retry ladder deals with it).
        if let Some(w) = self.config.faults.unresponsive {
            if w.contains(ctx.now) {
                self.stats.fault_dropped += 1;
                return;
            }
        }
        let Some(question) = query.questions.first().cloned() else {
            let resp = ResponseBuilder::for_query(&query)
                .rcode(Rcode::FormErr)
                .recursion_available(true)
                .build();
            out.push(Egress::reply(
                from,
                from_port,
                // detlint: allow(D4) -- encode of a FormErr reply the resolver
                // itself just built
                resp.encode().expect("formerr encodes"),
                self.config.proc_delay,
            ));
            return;
        };
        // Fault draws happen only when the knob is turned, so inert
        // configurations leave the engine RNG stream untouched.
        let inject_servfail = self.config.faults.servfail_prob > 0.0 && {
            use rand::Rng;
            ctx.rng.gen_bool(self.config.faults.servfail_prob)
        };
        if inject_servfail {
            self.stats.fault_servfails += 1;
            let fl = InFlight {
                client: from,
                client_port: from_port,
                client_id: query.header.id,
                reply_from: ctx.local_addr,
                question,
                chain: Vec::new(),
                egress: None,
                ecs: None,
                current: DnsName::root(),
                servers: Vec::new(),
                steps: 0,
                retries: 0,
                deadline: ctx.now,
                truncate: false,
            };
            out.push(self.reply(&fl, Rcode::ServFail, Vec::new()));
            return;
        }
        // Forced truncation: decided up front, applied when the final
        // NOERROR answer is built. Queries advertising more than the
        // default EDNS payload (the DNS-over-TCP relay) are exempt.
        let truncate = self.config.faults.truncate_prob > 0.0
            && query
                .edns_udp_size()
                .unwrap_or(dnswire::edns::CLASSIC_UDP_LIMIT as u16)
                <= dnswire::edns::DEFAULT_UDP_PAYLOAD_SIZE
            && {
                use rand::Rng;
                ctx.rng.gen_bool(self.config.faults.truncate_prob)
            };
        let ecs = query
            .client_subnet()
            .filter(|(_, source, _)| *source > 0)
            .map(|(addr, _, _)| addr);
        let scope = ecs.map(Prefix::slash24_of);
        if let Some((answers, rcode)) = self.answer_from_cache(&question, scope, ctx.now) {
            self.stats.cache_answers += 1;
            let fl = InFlight {
                client: from,
                client_port: from_port,
                client_id: query.header.id,
                reply_from: ctx.local_addr,
                question,
                chain: Vec::new(),
                egress: None,
                ecs,
                current: DnsName::root(),
                servers: Vec::new(),
                steps: 0,
                retries: 0,
                deadline: ctx.now,
                truncate,
            };
            out.push(self.reply(&fl, rcode, answers));
            return;
        }
        let egress = if self.config.egress_addrs.is_empty() {
            None
        } else {
            use rand::Rng;
            let i = ctx.rng.gen_range(0..self.config.egress_addrs.len());
            Some(self.config.egress_addrs[i])
        };
        let current = question.qname.clone();
        let servers = self.servers_for(&current, ctx.now);
        let fl = InFlight {
            client: from,
            client_port: from_port,
            client_id: query.header.id,
            reply_from: ctx.local_addr,
            question,
            chain: Vec::new(),
            egress,
            ecs,
            current,
            servers,
            steps: 0,
            retries: 0,
            deadline: ctx.now + self.config.inflight_deadline,
            truncate,
        };
        self.query_upstream(fl, out);
    }

    fn on_upstream_response(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        response: Message,
        out: &mut Vec<Egress>,
    ) {
        let Some(mut fl) = self.inflight.remove(&response.header.id) else {
            return; // late or spoofed; ignore
        };
        let fl_scope = fl.ecs.map(Prefix::slash24_of);
        self.absorb(&response, fl_scope, ctx.now);
        fl.steps += 1;
        if fl.steps > MAX_STEPS {
            let chain = std::mem::take(&mut fl.chain);
            out.push(self.reply(&fl, Rcode::ServFail, chain));
            return;
        }
        // NXDOMAIN: negative-cache and relay.
        if response.header.rcode == Rcode::NxDomain {
            let neg_ttl = response
                .authorities
                .iter()
                .find_map(|rr| match &rr.rdata {
                    RData::Soa(soa) => Some(SimDuration::from_secs(soa.minimum as u64)),
                    _ => None,
                })
                .unwrap_or(self.config.neg_ttl)
                .min(self.config.neg_ttl);
            self.cache.insert(
                (fl.current.clone(), fl.question.qtype, None),
                Vec::new(),
                Rcode::NxDomain,
                neg_ttl,
                ctx.now,
            );
            let chain = std::mem::take(&mut fl.chain);
            out.push(self.reply(&fl, Rcode::NxDomain, chain));
            return;
        }
        if response.header.rcode != Rcode::NoError {
            let chain = std::mem::take(&mut fl.chain);
            out.push(self.reply(&fl, Rcode::ServFail, chain));
            return;
        }
        if !response.answers.is_empty() {
            // Collect the chain segment for `current`: CNAMEs plus records
            // of the requested type at the chain end.
            let mut current = fl.current.clone();
            let mut appended = false;
            for _ in 0..=MAX_CNAME_DEPTH {
                let type_matches: Vec<ResourceRecord> = response
                    .answers
                    .iter()
                    .filter(|rr| rr.name == current && rr.record_type() == fl.question.qtype)
                    .cloned()
                    .collect();
                if !type_matches.is_empty() {
                    fl.chain.extend(type_matches);
                    let chain = std::mem::take(&mut fl.chain);
                    out.push(self.reply(&fl, Rcode::NoError, chain));
                    return;
                }
                let cname = response
                    .answers
                    .iter()
                    .find(|rr| rr.name == current && rr.record_type() == RecordType::Cname)
                    .cloned();
                match cname {
                    Some(rr) => {
                        // detlint: allow(D4) -- the record was filtered to
                        // RecordType::Cname two lines up, so its rdata is a
                        // CNAME
                        let target = rr.rdata.as_cname().expect("cname rdata").clone();
                        fl.chain.push(rr);
                        current = target;
                        appended = true;
                    }
                    None => break,
                }
            }
            if appended {
                // Chain continues outside this response: restart iteration
                // for the target (checking cache first).
                fl.current = current;
                let q = Question::new(fl.current.clone(), fl.question.qtype);
                if let Some((answers, rcode)) = self.answer_from_cache(&q, fl_scope, ctx.now) {
                    fl.chain.extend(answers);
                    let chain = std::mem::take(&mut fl.chain);
                    out.push(self.reply(&fl, rcode, chain));
                    return;
                }
                fl.servers = self.servers_for(&fl.current, ctx.now);
                self.query_upstream(fl, out);
                return;
            }
            // Answers we did not ask about; treat as lame.
            let chain = std::mem::take(&mut fl.chain);
            out.push(self.reply(&fl, Rcode::ServFail, chain));
            return;
        }
        // Referral?
        let ns_cuts: Vec<&ResourceRecord> = response
            .authorities
            .iter()
            .filter(|rr| rr.record_type() == RecordType::Ns)
            .collect();
        if !ns_cuts.is_empty() && !response.header.flags.authoritative {
            let mut glue: Vec<Ipv4Addr> = Vec::new();
            for ns in &ns_cuts {
                if let RData::Ns(host) = &ns.rdata {
                    glue.extend(
                        response
                            .additionals
                            .iter()
                            .filter(|rr| &rr.name == host)
                            .filter_map(|rr| rr.rdata.as_a()),
                    );
                }
            }
            if glue.is_empty() {
                let chain = std::mem::take(&mut fl.chain);
                out.push(self.reply(&fl, Rcode::ServFail, chain));
                return;
            }
            fl.servers = glue;
            self.query_upstream(fl, out);
            return;
        }
        // Authoritative NODATA.
        if response.header.flags.authoritative {
            self.cache.insert(
                (fl.current.clone(), fl.question.qtype, None),
                Vec::new(),
                Rcode::NoError,
                self.config.neg_ttl,
                ctx.now,
            );
            let chain = std::mem::take(&mut fl.chain);
            out.push(self.reply(&fl, Rcode::NoError, chain));
            return;
        }
        let chain = std::mem::take(&mut fl.chain);
        out.push(self.reply(&fl, Rcode::ServFail, chain));
    }

    /// Handles recursions whose current upstream attempt outlived its
    /// deadline: rotate to the next candidate server (bounded retries),
    /// then fail with ServFail.
    fn expire_inflight(&mut self, now: SimTime, out: &mut Vec<Egress>) {
        let dead: Vec<u16> = self
            .inflight
            .iter()
            .filter(|(_, fl)| fl.deadline < now)
            .map(|(&id, _)| id)
            .collect();
        for id in dead {
            if let Some(mut fl) = self.inflight.remove(&id) {
                if fl.retries < MAX_RETRIES && fl.servers.len() > 1 {
                    // Rotate the unresponsive server to the back and retry.
                    fl.servers.rotate_left(1);
                    fl.retries += 1;
                    fl.deadline = now + self.config.inflight_deadline;
                    self.query_upstream(fl, out);
                } else {
                    let chain = std::mem::take(&mut fl.chain);
                    out.push(self.reply(&fl, Rcode::ServFail, chain));
                }
            }
        }
    }
}

impl RecursiveResolver {
    /// Requests a timer tick covering the earliest in-flight deadline.
    fn arm_timer(&self, ctx: &mut ServiceCtx<'_>) {
        if let Some(earliest) = self.inflight.values().map(|fl| fl.deadline).min() {
            let wait = earliest.since(ctx.now).max(SimDuration::from_millis(1));
            ctx.wake_after = Some(wait);
        }
    }
}

impl UdpService for RecursiveResolver {
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn handle(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        from: Ipv4Addr,
        from_port: u16,
        payload: &[u8],
    ) -> Vec<Egress> {
        let mut out = Vec::new();
        self.expire_inflight(ctx.now, &mut out);
        if let Ok(msg) = Message::decode(payload) {
            if msg.header.flags.response {
                self.on_upstream_response(ctx, msg, &mut out);
            } else {
                self.on_client_query(ctx, from, from_port, msg, &mut out);
            }
        }
        self.arm_timer(ctx);
        out
    }

    fn tick(&mut self, ctx: &mut ServiceCtx<'_>) -> Vec<Egress> {
        let mut out = Vec::new();
        self.expire_inflight(ctx.now, &mut out);
        self.arm_timer(ctx);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_sane() {
        let cfg = ResolverConfig::new(vec![Ipv4Addr::new(198, 41, 0, 4)]);
        assert!(cfg.cache_capacity > 0);
        assert!(cfg.neg_ttl > SimDuration::ZERO);
        assert!(cfg.inflight_deadline > SimDuration::ZERO);
    }

    // Full end-to-end resolver behaviour (iteration, caching, CNAME chasing,
    // negative caching) is exercised in the crate's integration tests where
    // a real simulated network with root/TLD/authoritative servers exists;
    // see tests/resolution.rs.
}
