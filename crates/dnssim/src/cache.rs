//! Resolver cache with TTL decay, negative caching, a capacity bound, and
//! an ambient-load warmth model.
//!
//! The ambient model stands in for the background query load a production
//! resolver sees from its *other* users (our fleet is 158 devices; a real
//! carrier resolver serves millions). Without it, every CDN record (TTL
//! 20–60 s) would be cold at every hourly experiment and Fig. 7's ~20% miss
//! rate could not emerge. Instead of simulating millions of phantom queries,
//! each resolver carries a deterministic refresh phase: a stale entry is
//! considered "kept warm by another user" whenever an imaginary periodic
//! refresher would have re-queried it within the entry's TTL. See DESIGN.md
//! (substitutions) and the `ablate_ambient` bench.

use dnswire::message::{Rcode, ResourceRecord};
use dnswire::name::DnsName;
use dnswire::rdata::RecordType;
use netsim::addr::Prefix;
use netsim::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Cache key: owner name, record type, and — for ECS-partitioned entries
/// (RFC 7871 §7.3) — the client subnet the answer was scoped to.
pub type CacheKey = (DnsName, RecordType, Option<Prefix>);

/// Deterministic stand-in for background query load (see module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AmbientModel {
    /// Imaginary refresher period. Warm probability for an entry with TTL
    /// `T` is `min(1, T / period)`.
    pub period: SimDuration,
    /// Per-resolver phase so instances are not synchronized.
    pub phase: SimDuration,
}

impl AmbientModel {
    /// Whether the imaginary refresher has queried within `ttl` before
    /// `now`, i.e. whether a stale entry should count as warm.
    pub fn is_warm(&self, now: SimTime, ttl: SimDuration) -> bool {
        let period = self.period.as_micros().max(1);
        ((now.as_micros() + self.phase.as_micros()) % period) < ttl.as_micros()
    }
}

/// What the cache stores for one key.
#[derive(Debug, Clone)]
struct Entry {
    /// Positive records (empty for negative entries).
    records: Vec<ResourceRecord>,
    /// Response code at insertion (NxDomain for negatives).
    rcode: Rcode,
    /// Absolute expiry.
    expires_at: SimTime,
    /// Original TTL, to rebase on hits and drive the ambient model.
    original_ttl: SimDuration,
}

/// Result of a cache lookup.
#[derive(Debug, Clone, PartialEq)]
pub enum CacheOutcome {
    /// Fresh (or ambient-warm) records.
    Hit {
        /// The cached records with TTLs rebased to remaining lifetime.
        records: Vec<ResourceRecord>,
        /// Cached response code.
        rcode: Rcode,
    },
    /// Nothing usable.
    Miss,
}

/// Statistics for Fig. 7 style analysis and tests.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CacheStats {
    /// Fresh hits.
    pub hits: u64,
    /// Hits served by the ambient-warmth rule.
    pub ambient_hits: u64,
    /// Misses.
    pub misses: u64,
    /// Entries evicted by the capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Folds the cache counters into an [`obs::Registry`] under the
    /// `dns.cache.*` family, labelled with `labels` (typically the
    /// resolver class the cache belongs to).
    pub fn export(&self, reg: &mut obs::Registry, labels: &[(&'static str, &str)]) {
        reg.inc_by("dns.cache.hits", labels, self.hits);
        reg.inc_by("dns.cache.ambient_hits", labels, self.ambient_hits);
        reg.inc_by("dns.cache.misses", labels, self.misses);
        reg.inc_by("dns.cache.evictions", labels, self.evictions);
    }
}

/// The resolver cache.
#[derive(Debug)]
pub struct DnsCache {
    entries: BTreeMap<CacheKey, Entry>,
    capacity: usize,
    max_ttl: SimDuration,
    ambient: Option<AmbientModel>,
    /// Counters.
    pub stats: CacheStats,
}

impl DnsCache {
    /// An empty cache holding at most `capacity` entries, capping stored
    /// TTLs at `max_ttl`.
    pub fn new(capacity: usize, max_ttl: SimDuration) -> Self {
        DnsCache {
            entries: BTreeMap::new(),
            capacity: capacity.max(1),
            max_ttl,
            ambient: None,
            stats: CacheStats::default(),
        }
    }

    /// Enables the ambient-load warmth model.
    pub fn with_ambient(mut self, ambient: AmbientModel) -> Self {
        self.ambient = Some(ambient);
        self
    }

    /// Number of live entries (including expired-but-unevicted ones).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts records under `key`. `rcode` is `NxDomain` for negative
    /// entries; `ttl` is the zone TTL (clamped by the cache's `max_ttl`).
    pub fn insert(
        &mut self,
        key: CacheKey,
        records: Vec<ResourceRecord>,
        rcode: Rcode,
        ttl: SimDuration,
        now: SimTime,
    ) {
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            self.evict(now);
        }
        let ttl = ttl.min(self.max_ttl);
        self.entries.insert(
            key,
            Entry {
                records,
                rcode,
                expires_at: now + ttl,
                original_ttl: ttl,
            },
        );
    }

    /// Looks up `key`; may refresh a stale entry via the ambient model.
    pub fn lookup(&mut self, key: &CacheKey, now: SimTime) -> CacheOutcome {
        let ambient = self.ambient;
        let Some(entry) = self.entries.get_mut(key) else {
            self.stats.misses += 1;
            return CacheOutcome::Miss;
        };
        let fresh = now < entry.expires_at;
        if !fresh {
            let warm = ambient
                .map(|a| a.is_warm(now, entry.original_ttl))
                .unwrap_or(false);
            if !warm {
                self.stats.misses += 1;
                return CacheOutcome::Miss;
            }
            // Another (imaginary) user just refreshed this entry.
            entry.expires_at = now + entry.original_ttl;
            self.stats.ambient_hits += 1;
        } else {
            self.stats.hits += 1;
        }
        let remaining = entry.expires_at.since(now);
        let records = entry
            .records
            .iter()
            .map(|rr| {
                let mut rr = rr.clone();
                rr.ttl = remaining.as_secs().min(rr.ttl as u64) as u32;
                rr
            })
            .collect();
        CacheOutcome::Hit {
            records,
            rcode: entry.rcode,
        }
    }

    /// Evicts expired entries; if none were expired, evicts the entries
    /// closest to expiry until 10% of capacity is free.
    fn evict(&mut self, now: SimTime) {
        let before = self.entries.len();
        self.entries.retain(|_, e| e.expires_at > now);
        let mut evicted = before - self.entries.len();
        if self.entries.len() >= self.capacity {
            let target = self.capacity - self.capacity / 10;
            let mut by_expiry: Vec<(SimTime, CacheKey)> = self
                .entries
                .iter()
                .map(|(k, e)| (e.expires_at, k.clone()))
                .collect();
            by_expiry.sort();
            for (_, key) in by_expiry {
                if self.entries.len() < target.max(1) {
                    break;
                }
                self.entries.remove(&key);
                evicted += 1;
            }
        }
        self.stats.evictions += evicted as u64;
    }

    /// Drops everything (used when reconfiguring infrastructure mid-run).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnswire::rdata::RData;
    use std::net::Ipv4Addr;

    fn key(name: &str) -> CacheKey {
        (DnsName::parse(name).unwrap(), RecordType::A, None)
    }

    fn a_record(name: &str, ttl: u32) -> ResourceRecord {
        ResourceRecord::new(
            DnsName::parse(name).unwrap(),
            ttl,
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        )
    }

    fn cache() -> DnsCache {
        DnsCache::new(100, SimDuration::from_secs(3600))
    }

    #[test]
    fn hit_within_ttl() {
        let mut c = cache();
        let t0 = SimTime::ZERO;
        c.insert(
            key("a.test"),
            vec![a_record("a.test", 60)],
            Rcode::NoError,
            SimDuration::from_secs(60),
            t0,
        );
        let out = c.lookup(&key("a.test"), t0 + SimDuration::from_secs(30));
        match out {
            CacheOutcome::Hit { records, rcode } => {
                assert_eq!(rcode, Rcode::NoError);
                assert_eq!(records.len(), 1);
                // TTL rebased to remaining 30s.
                assert_eq!(records[0].ttl, 30);
            }
            CacheOutcome::Miss => panic!("expected hit"),
        }
        assert_eq!(c.stats.hits, 1);
    }

    #[test]
    fn miss_after_expiry() {
        let mut c = cache();
        let t0 = SimTime::ZERO;
        c.insert(
            key("a.test"),
            vec![a_record("a.test", 60)],
            Rcode::NoError,
            SimDuration::from_secs(60),
            t0,
        );
        let out = c.lookup(&key("a.test"), t0 + SimDuration::from_secs(61));
        assert_eq!(out, CacheOutcome::Miss);
        assert_eq!(c.stats.misses, 1);
    }

    #[test]
    fn negative_entries_are_cached() {
        let mut c = cache();
        let t0 = SimTime::ZERO;
        c.insert(
            key("missing.test"),
            vec![],
            Rcode::NxDomain,
            SimDuration::from_secs(60),
            t0,
        );
        match c.lookup(&key("missing.test"), t0 + SimDuration::from_secs(1)) {
            CacheOutcome::Hit { records, rcode } => {
                assert!(records.is_empty());
                assert_eq!(rcode, Rcode::NxDomain);
            }
            CacheOutcome::Miss => panic!("expected negative hit"),
        }
    }

    #[test]
    fn ttl_is_capped() {
        let mut c = DnsCache::new(10, SimDuration::from_secs(100));
        let t0 = SimTime::ZERO;
        c.insert(
            key("a.test"),
            vec![a_record("a.test", 999_999)],
            Rcode::NoError,
            SimDuration::from_secs(999_999),
            t0,
        );
        assert_eq!(
            c.lookup(&key("a.test"), t0 + SimDuration::from_secs(101)),
            CacheOutcome::Miss
        );
    }

    #[test]
    fn capacity_bound_evicts() {
        let mut c = DnsCache::new(10, SimDuration::from_secs(3600));
        let t0 = SimTime::ZERO;
        for i in 0..25 {
            c.insert(
                key(&format!("n{i}.test")),
                vec![a_record(&format!("n{i}.test"), 60)],
                Rcode::NoError,
                SimDuration::from_secs(60),
                t0,
            );
        }
        assert!(c.len() <= 11, "len {}", c.len());
        assert!(c.stats.evictions > 0);
    }

    #[test]
    fn expired_entries_evicted_first() {
        let mut c = DnsCache::new(10, SimDuration::from_secs(3600));
        let t0 = SimTime::ZERO;
        for i in 0..9 {
            c.insert(
                key(&format!("old{i}.test")),
                vec![],
                Rcode::NoError,
                SimDuration::from_secs(1),
                t0,
            );
        }
        let later = t0 + SimDuration::from_secs(100);
        c.insert(
            key("keep.test"),
            vec![a_record("keep.test", 600)],
            Rcode::NoError,
            SimDuration::from_secs(600),
            later,
        );
        // Inserting one more at capacity drops the expired ones, not keep.
        c.insert(
            key("new.test"),
            vec![a_record("new.test", 600)],
            Rcode::NoError,
            SimDuration::from_secs(600),
            later,
        );
        assert!(matches!(
            c.lookup(&key("keep.test"), later + SimDuration::from_secs(1)),
            CacheOutcome::Hit { .. }
        ));
    }

    #[test]
    fn ambient_model_revives_stale_entries_in_phase() {
        let ambient = AmbientModel {
            period: SimDuration::from_secs(100),
            phase: SimDuration::ZERO,
        };
        let mut c = cache().with_ambient(ambient);
        let t0 = SimTime::ZERO;
        c.insert(
            key("pop.test"),
            vec![a_record("pop.test", 60)],
            Rcode::NoError,
            SimDuration::from_secs(60),
            t0,
        );
        // t=150: (150s % 100s)=50s < ttl 60s -> warm.
        let warm_t = t0 + SimDuration::from_secs(150);
        assert!(matches!(
            c.lookup(&key("pop.test"), warm_t),
            CacheOutcome::Hit { .. }
        ));
        assert_eq!(c.stats.ambient_hits, 1);
        // t=380: (380 % 100)=80 > 60 -> cold... but the warm hit at t=150
        // rebased expiry to t=210, so check from a fresh cache state.
        let mut c2 = cache().with_ambient(ambient);
        c2.insert(
            key("pop.test"),
            vec![a_record("pop.test", 60)],
            Rcode::NoError,
            SimDuration::from_secs(60),
            t0,
        );
        let cold_t = t0 + SimDuration::from_secs(380);
        assert_eq!(c2.lookup(&key("pop.test"), cold_t), CacheOutcome::Miss);
    }

    #[test]
    fn ambient_warm_fraction_tracks_ttl_over_period() {
        let ambient = AmbientModel {
            period: SimDuration::from_secs(300),
            phase: SimDuration::from_secs(17),
        };
        let ttl = SimDuration::from_secs(60);
        let mut warm = 0;
        let n = 10_000;
        for i in 0..n {
            let t = SimTime::from_micros(i as u64 * 1_234_567);
            if ambient.is_warm(t, ttl) {
                warm += 1;
            }
        }
        let frac = warm as f64 / n as f64;
        assert!((frac - 0.2).abs() < 0.02, "warm fraction {frac}");
    }

    #[test]
    fn update_overwrites_without_eviction() {
        let mut c = DnsCache::new(1, SimDuration::from_secs(3600));
        let t0 = SimTime::ZERO;
        c.insert(
            key("a.test"),
            vec![a_record("a.test", 60)],
            Rcode::NoError,
            SimDuration::from_secs(60),
            t0,
        );
        c.insert(
            key("a.test"),
            vec![a_record("a.test", 90)],
            Rcode::NoError,
            SimDuration::from_secs(90),
            t0,
        );
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats.evictions, 0);
    }
}
