//! Builders for the global DNS hierarchy: a root zone, TLD zones, and
//! delegations down to authoritative servers.

use crate::zone::Zone;
use dnswire::name::DnsName;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Assembles the root and TLD zones from a set of domain delegations.
///
/// ```
/// use dnssim::hierarchy::HierarchyBuilder;
/// use std::net::Ipv4Addr;
///
/// let mut h = HierarchyBuilder::new();
/// h.add_tld("com", Ipv4Addr::new(192, 5, 6, 30));
/// h.add_domain("example.com", Ipv4Addr::new(198, 51, 100, 53));
/// let built = h.build();
/// assert_eq!(built.tlds.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct HierarchyBuilder {
    /// tld label -> server address.
    tlds: BTreeMap<String, Ipv4Addr>,
    /// domain -> authoritative server address.
    domains: BTreeMap<String, Ipv4Addr>,
}

/// The assembled zones, ready to be installed on authoritative servers.
#[derive(Debug)]
pub struct BuiltHierarchy {
    /// The root zone (install on the root server).
    pub root: Zone,
    /// TLD zones with the address of the server that should host each.
    pub tlds: Vec<(String, Ipv4Addr, Zone)>,
}

impl HierarchyBuilder {
    /// An empty hierarchy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a TLD served at `addr`.
    pub fn add_tld(&mut self, label: &str, addr: Ipv4Addr) -> &mut Self {
        self.tlds.insert(label.to_string(), addr);
        self
    }

    /// Delegates `domain` (e.g. `example.com`) to an authoritative server at
    /// `addr`. The TLD must have been registered first.
    pub fn add_domain(&mut self, domain: &str, addr: Ipv4Addr) -> &mut Self {
        // detlint: allow(D4) -- builder over the static zone catalog; an
        // invalid name must abort topology construction, not limp on
        let name = DnsName::parse(domain).expect("valid domain");
        let tld = name
            .labels()
            .last()
            .map(|l| String::from_utf8_lossy(l).into_owned())
            // detlint: allow(D4) -- DnsName::parse produces at least one label
            // for a non-root name accepted above
            .expect("domain has a TLD");
        assert!(
            self.tlds.contains_key(&tld),
            "TLD {tld} not registered before domain {domain}"
        );
        self.domains.insert(domain.to_string(), addr);
        self
    }

    /// Produces the root and TLD zones.
    pub fn build(self) -> BuiltHierarchy {
        let mut root = Zone::new(DnsName::root());
        let mut tld_zones: BTreeMap<String, Zone> = BTreeMap::new();
        for (label, addr) in &self.tlds {
            // detlint: allow(D4) -- builder over the static zone catalog; an
            // invalid name must abort topology construction, not limp on
            let tld_name = DnsName::parse(label).expect("valid tld");
            // detlint: allow(D4) -- "ns" is a literal, always a valid label
            let ns_host = tld_name.child("ns").expect("ns label");
            root.delegate(tld_name.clone(), vec![(ns_host, *addr)]);
            tld_zones.insert(label.clone(), Zone::new(tld_name));
        }
        for (domain, addr) in &self.domains {
            // detlint: allow(D4) -- builder over the static zone catalog; an
            // invalid name must abort topology construction, not limp on
            let name = DnsName::parse(domain).expect("valid domain");
            let tld = name
                .labels()
                .last()
                .map(|l| String::from_utf8_lossy(l).into_owned())
                // detlint: allow(D4) -- DnsName::parse produces at least one
                // label for a non-root name accepted above
                .expect("tld");
            // detlint: allow(D4) -- add_domain asserted the TLD was
            // registered, so its zone exists
            let zone = tld_zones.get_mut(&tld).expect("tld zone exists");
            // detlint: allow(D4) -- "ns1" is a literal, always a valid label
            let ns_host = name.child("ns1").expect("ns1 label");
            zone.delegate(name, vec![(ns_host, *addr)]);
        }
        BuiltHierarchy {
            root,
            tlds: tld_zones
                .into_iter()
                .map(|(label, zone)| {
                    let addr = self.tlds[&label];
                    (label, addr, zone)
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnswire::message::Rcode;
    use dnswire::rdata::{RData, RecordType};

    fn n(s: &str) -> DnsName {
        DnsName::parse(s).unwrap()
    }

    fn ip(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr::new(a, b, c, d)
    }

    #[test]
    fn root_refers_to_tld() {
        let mut h = HierarchyBuilder::new();
        h.add_tld("com", ip(192, 5, 6, 30));
        h.add_domain("example.com", ip(198, 51, 100, 53));
        let built = h.build();
        let out = built.root.lookup(&n("www.example.com"), RecordType::A);
        assert_eq!(out.rcode, Rcode::NoError);
        assert!(!out.authoritative);
        assert_eq!(out.additionals[0].rdata.as_a(), Some(ip(192, 5, 6, 30)));
    }

    #[test]
    fn tld_refers_to_domain() {
        let mut h = HierarchyBuilder::new();
        h.add_tld("com", ip(192, 5, 6, 30));
        h.add_domain("example.com", ip(198, 51, 100, 53));
        let built = h.build();
        let (_, addr, com) = &built.tlds[0];
        assert_eq!(*addr, ip(192, 5, 6, 30));
        let out = com.lookup(&n("www.example.com"), RecordType::A);
        assert!(!out.authoritative);
        assert_eq!(out.additionals[0].rdata.as_a(), Some(ip(198, 51, 100, 53)));
        assert!(matches!(out.authorities[0].rdata, RData::Ns(_)));
    }

    #[test]
    fn multiple_tlds_and_domains() {
        let mut h = HierarchyBuilder::new();
        h.add_tld("com", ip(192, 5, 6, 30));
        h.add_tld("net", ip(192, 5, 6, 31));
        h.add_tld("example", ip(192, 5, 6, 32));
        h.add_domain("buzzfeed.com", ip(198, 51, 100, 1));
        h.add_domain("provider.net", ip(198, 51, 100, 2));
        h.add_domain("probe.example", ip(198, 51, 100, 3));
        let built = h.build();
        assert_eq!(built.tlds.len(), 3);
        let out = built.root.lookup(&n("m.provider.net"), RecordType::A);
        assert_eq!(out.additionals[0].rdata.as_a(), Some(ip(192, 5, 6, 31)));
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn domain_requires_tld() {
        let mut h = HierarchyBuilder::new();
        h.add_domain("example.com", ip(1, 2, 3, 4));
    }
}
