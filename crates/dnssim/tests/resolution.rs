//! End-to-end resolution tests: a client node, a forwarder, a recursive
//! resolver, and a full root → TLD → authoritative hierarchy on a simulated
//! network.

use dnssim::authority::{AuthoritativeServer, WhoamiZone, DNS_PORT};
use dnssim::cache::AmbientModel;
use dnssim::client::{resolve, whoami};
use dnssim::forwarder::{Forwarder, UpstreamPolicy};
use dnssim::hierarchy::HierarchyBuilder;
use dnssim::recursive::{RecursiveResolver, ResolverConfig};
use dnssim::zone::Zone;
use dnswire::message::Rcode;
use dnswire::name::DnsName;
use dnswire::rdata::RecordType;
use netsim::engine::Network;
use netsim::latency::LatencyModel;
use netsim::time::SimDuration;
use netsim::topo::{Asn, Coord, NodeId, NodeKind, Topology};
use std::net::Ipv4Addr;

fn ip(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
    Ipv4Addr::new(a, b, c, d)
}

fn n(s: &str) -> DnsName {
    DnsName::parse(s).unwrap()
}

struct World {
    net: Network,
    client: NodeId,
    forwarder_addr: Ipv4Addr,
    resolver_addr: Ipv4Addr,
}

/// client -- fwd -- resolver -- hub -- {root, tld(com/example), auth, probe}
fn build_world(ambient: Option<AmbientModel>) -> World {
    let mut t = Topology::new();
    let hub = t.add_node(
        "hub",
        NodeKind::Router,
        Asn(100),
        Coord::default(),
        vec![ip(203, 0, 0, 1)],
    );
    let client = t.add_node(
        "client",
        NodeKind::Host,
        Asn(1),
        Coord::default(),
        vec![ip(10, 0, 0, 1)],
    );
    let fwd = t.add_node(
        "fwd",
        NodeKind::Host,
        Asn(1),
        Coord::default(),
        vec![ip(10, 0, 53, 1)],
    );
    let rsl = t.add_node(
        "resolver",
        NodeKind::Host,
        Asn(2),
        Coord::default(),
        vec![ip(66, 174, 0, 1)],
    );
    let root = t.add_node(
        "root",
        NodeKind::Host,
        Asn(100),
        Coord::default(),
        vec![ip(198, 41, 0, 4)],
    );
    let tld_com = t.add_node(
        "tld-com",
        NodeKind::Host,
        Asn(100),
        Coord::default(),
        vec![ip(192, 5, 6, 30)],
    );
    let tld_example = t.add_node(
        "tld-example",
        NodeKind::Host,
        Asn(100),
        Coord::default(),
        vec![ip(192, 5, 6, 32)],
    );
    let auth = t.add_node(
        "auth",
        NodeKind::Host,
        Asn(200),
        Coord::default(),
        vec![ip(198, 51, 100, 53)],
    );
    let probe = t.add_node(
        "probe-adns",
        NodeKind::Host,
        Asn(300),
        Coord::default(),
        vec![ip(198, 51, 200, 53)],
    );

    t.add_link(client, fwd, LatencyModel::constant_ms(5));
    t.add_link(fwd, rsl, LatencyModel::constant_ms(10));
    t.add_link(rsl, hub, LatencyModel::constant_ms(5));
    t.add_link(client, hub, LatencyModel::constant_ms(40)); // direct path for public use
    for server in [root, tld_com, tld_example, auth, probe] {
        t.add_link(server, hub, LatencyModel::constant_ms(5));
    }

    let mut net = Network::new(t, 2014);

    // Hierarchy.
    let mut h = HierarchyBuilder::new();
    h.add_tld("com", ip(192, 5, 6, 30));
    h.add_tld("example", ip(192, 5, 6, 32));
    h.add_domain("buzzfeed.com", ip(198, 51, 100, 53));
    h.add_domain("probe.example", ip(198, 51, 200, 53));
    let built = h.build();

    let mut root_srv = AuthoritativeServer::new();
    root_srv.add_zone(built.root);
    net.register_service(root, DNS_PORT, Box::new(root_srv));

    for (label, _, zone) in built.tlds {
        let mut srv = AuthoritativeServer::new();
        srv.add_zone(zone);
        let node = if label == "com" { tld_com } else { tld_example };
        net.register_service(node, DNS_PORT, Box::new(srv));
    }

    // buzzfeed.com zone with a CNAME into the same zone.
    let mut z = Zone::new(n("buzzfeed.com"));
    z.add_cname(n("www.buzzfeed.com"), 30, n("edge.buzzfeed.com"));
    z.add_a(n("edge.buzzfeed.com"), 30, ip(192, 0, 2, 10));
    z.add_a(n("edge.buzzfeed.com"), 30, ip(192, 0, 2, 11));
    let mut auth_srv = AuthoritativeServer::new();
    auth_srv.add_zone(z);
    net.register_service(auth, DNS_PORT, Box::new(auth_srv));

    // The measurement probe ADNS with the whoami zone.
    let mut probe_srv = AuthoritativeServer::new();
    probe_srv.add_dynamic(Box::new(WhoamiZone::new(n("whoami.probe.example"))));
    net.register_service(probe, DNS_PORT, Box::new(probe_srv));

    // Recursive resolver.
    let mut cfg = ResolverConfig::new(vec![ip(198, 41, 0, 4)]);
    cfg.ambient = ambient;
    net.register_service(rsl, DNS_PORT, Box::new(RecursiveResolver::new(cfg)));

    // Client-facing forwarder.
    net.register_service(
        fwd,
        DNS_PORT,
        Box::new(Forwarder::new(
            vec![ip(66, 174, 0, 1)],
            UpstreamPolicy::Sticky,
        )),
    );

    World {
        net,
        client,
        forwarder_addr: ip(10, 0, 53, 1),
        resolver_addr: ip(66, 174, 0, 1),
    }
}

#[test]
fn full_recursive_resolution_with_cname_chain() {
    let mut w = build_world(None);
    let lookup = resolve(
        &mut w.net,
        w.client,
        w.forwarder_addr,
        &n("www.buzzfeed.com"),
        RecordType::A,
    );
    assert!(lookup.ok(), "lookup failed: {lookup:?}");
    let addrs = lookup.addrs();
    assert_eq!(addrs, vec![ip(192, 0, 2, 10), ip(192, 0, 2, 11)]);
    assert_eq!(lookup.canonical_name().unwrap(), n("edge.buzzfeed.com"));
    // Cold resolution walks client->fwd->resolver->root->tld->auth.
    let ms = lookup.elapsed.unwrap().as_millis_f64();
    assert!(ms > 80.0, "cold resolution too fast: {ms}ms");
}

#[test]
fn second_lookup_is_served_from_cache() {
    let mut w = build_world(None);
    let cold = resolve(
        &mut w.net,
        w.client,
        w.forwarder_addr,
        &n("www.buzzfeed.com"),
        RecordType::A,
    );
    let warm = resolve(
        &mut w.net,
        w.client,
        w.forwarder_addr,
        &n("www.buzzfeed.com"),
        RecordType::A,
    );
    assert!(cold.ok() && warm.ok());
    let (c, h) = (
        cold.elapsed.unwrap().as_millis_f64(),
        warm.elapsed.unwrap().as_millis_f64(),
    );
    // Warm skips root/tld/auth: only client->fwd->resolver round trip (~30ms).
    assert!(h < c / 2.0, "warm {h}ms vs cold {c}ms");
    assert!(warm.addrs() == cold.addrs());
}

#[test]
fn cache_expires_after_ttl() {
    let mut w = build_world(None);
    let _ = resolve(
        &mut w.net,
        w.client,
        w.forwarder_addr,
        &n("www.buzzfeed.com"),
        RecordType::A,
    );
    // Move past the 30s TTL.
    let later = w.net.now() + SimDuration::from_secs(120);
    w.net.skip_to(later);
    let again = resolve(
        &mut w.net,
        w.client,
        w.forwarder_addr,
        &n("www.buzzfeed.com"),
        RecordType::A,
    );
    let ms = again.elapsed.unwrap().as_millis_f64();
    // The A record expired so the resolver must go back upstream — but the
    // long-TTL NS/glue survive, so it asks the authoritative server directly
    // (faster than the fully cold root→TLD walk, slower than a cache hit).
    assert!(ms > 45.0, "expected an upstream resolution, got {ms}ms");
    assert!(
        ms < 80.0,
        "expected the root/TLD walk to be skipped, got {ms}ms"
    );
}

#[test]
fn ambient_model_keeps_popular_records_warm() {
    // Period == TTL -> the imaginary refresher always re-queried within TTL,
    // so stale entries are always warm.
    let ambient = AmbientModel {
        period: SimDuration::from_secs(30),
        phase: SimDuration::ZERO,
    };
    let mut w = build_world(Some(ambient));
    let _ = resolve(
        &mut w.net,
        w.client,
        w.forwarder_addr,
        &n("www.buzzfeed.com"),
        RecordType::A,
    );
    let later = w.net.now() + SimDuration::from_secs(3600);
    w.net.skip_to(later);
    let again = resolve(
        &mut w.net,
        w.client,
        w.forwarder_addr,
        &n("www.buzzfeed.com"),
        RecordType::A,
    );
    let ms = again.elapsed.unwrap().as_millis_f64();
    assert!(ms < 40.0, "expected warm-path resolution, got {ms}ms");
}

#[test]
fn nxdomain_propagates_and_negative_caches() {
    let mut w = build_world(None);
    let miss = resolve(
        &mut w.net,
        w.client,
        w.forwarder_addr,
        &n("nope.buzzfeed.com"),
        RecordType::A,
    );
    let resp = miss.response.expect("response arrived");
    assert_eq!(resp.header.rcode, Rcode::NxDomain);
    let cold_ms = miss.elapsed.unwrap().as_millis_f64();
    // Negative cache makes the second miss fast.
    let again = resolve(
        &mut w.net,
        w.client,
        w.forwarder_addr,
        &n("nope.buzzfeed.com"),
        RecordType::A,
    );
    let warm_ms = again.elapsed.unwrap().as_millis_f64();
    assert_eq!(again.response.unwrap().header.rcode, Rcode::NxDomain);
    assert!(warm_ms < cold_ms / 2.0, "warm {warm_ms} cold {cold_ms}");
}

#[test]
fn whoami_reveals_external_resolver_not_forwarder() {
    let mut w = build_world(None);
    let (lookup, external) = whoami(
        &mut w.net,
        w.client,
        w.forwarder_addr,
        &n("whoami.probe.example"),
    );
    assert!(lookup.ok());
    // The device is configured with the forwarder, but the ADNS saw the
    // external recursive resolver — the paper's indirect-resolution finding.
    assert_eq!(external, Some(w.resolver_addr));
    assert_ne!(external, Some(w.forwarder_addr));
}

#[test]
fn whoami_nonces_defeat_caching() {
    let mut w = build_world(None);
    let (a, ext_a) = whoami(
        &mut w.net,
        w.client,
        w.forwarder_addr,
        &n("whoami.probe.example"),
    );
    let (b, ext_b) = whoami(
        &mut w.net,
        w.client,
        w.forwarder_addr,
        &n("whoami.probe.example"),
    );
    assert!(a.ok() && b.ok());
    assert_eq!(ext_a, ext_b);
    // Both lookups must have taken the full path (no cache hit on nonce).
    let (ta, tb) = (
        a.elapsed.unwrap().as_millis_f64(),
        b.elapsed.unwrap().as_millis_f64(),
    );
    assert!(
        tb > ta * 0.4,
        "second whoami suspiciously fast: {tb} vs {ta}"
    );
}

#[test]
fn direct_resolver_query_skips_the_forwarder() {
    let mut w = build_world(None);
    let direct = resolve(
        &mut w.net,
        w.client,
        w.resolver_addr,
        &n("www.buzzfeed.com"),
        RecordType::A,
    );
    assert!(direct.ok());
    assert_eq!(direct.addrs().len(), 2);
}

#[test]
fn unknown_domain_gets_refused_rcode_from_hierarchy() {
    let mut w = build_world(None);
    let lookup = resolve(
        &mut w.net,
        w.client,
        w.forwarder_addr,
        &n("www.unknown-tld.zz"),
        RecordType::A,
    );
    // The root has no .zz delegation: NXDOMAIN from the root propagates.
    let resp = lookup.response.expect("resolved to an error");
    assert_eq!(resp.header.rcode, Rcode::NxDomain);
}

#[test]
fn big_answers_truncate_for_non_edns_clients() {
    use dnswire::builder::QueryBuilder;
    use dnswire::message::Message;
    use netsim::engine::FlowResult;

    let mut w = build_world(None);
    // Install a zone with an oversized TXT RRset on the authoritative
    // server's node (a separate apex the hierarchy already delegates:
    // reuse buzzfeed.com's server via a direct query).
    let auth_addr = ip(198, 51, 100, 53);
    let auth_node = w.net.topo().owner_of(auth_addr).unwrap();
    let mut srv = dnssim::authority::AuthoritativeServer::new();
    let mut z = dnssim::zone::Zone::new(n("big.example"));
    for i in 0..20 {
        z.add(dnswire::message::ResourceRecord::new(
            n("fat.big.example"),
            60,
            dnswire::rdata::RData::Txt(vec![format!("{i:0>60}")]),
        ));
    }
    srv.add_zone(z);
    let _ = w
        .net
        .unregister_service(auth_node, dnssim::authority::DNS_PORT);
    w.net
        .register_service(auth_node, dnssim::authority::DNS_PORT, Box::new(srv));

    let ask = |w: &mut World, edns: bool| -> Message {
        let mut q = QueryBuilder::new(9, "fat.big.example", RecordType::Txt)
            .build()
            .unwrap();
        if edns {
            q.advertise_udp_size(4096);
        }
        let flow = w.net.udp_request(
            w.client,
            auth_addr,
            dnssim::authority::DNS_PORT,
            q.encode().unwrap(),
            netsim::time::SimDuration::from_secs(3),
        );
        match w.net.run_until(flow).result {
            FlowResult::Response { payload, .. } => Message::decode(&payload).unwrap(),
            other => panic!("no response: {other:?}"),
        }
    };
    // Classic 512-byte querier: truncated, empty, TC set.
    let classic = ask(&mut w, false);
    assert!(classic.header.flags.truncated, "TC not set");
    assert!(classic.answers.is_empty());
    // EDNS querier advertising 4096: the full RRset.
    let edns = ask(&mut w, true);
    assert!(!edns.header.flags.truncated);
    assert_eq!(edns.answers.len(), 20);
}

#[test]
fn resolver_retries_past_an_unresponsive_root() {
    // Same world, but the resolver's root hints start with a blackhole.
    let mut w = build_world(None);
    let mut cfg = ResolverConfig::new(vec![ip(203, 0, 113, 99), ip(198, 41, 0, 4)]);
    cfg.inflight_deadline = netsim::time::SimDuration::from_millis(800);
    let rsl_node = w.net.topo().owner_of(w.resolver_addr).unwrap();
    let old = w
        .net
        .unregister_service(rsl_node, dnssim::authority::DNS_PORT);
    assert!(old.is_some());
    w.net.register_service(
        rsl_node,
        dnssim::authority::DNS_PORT,
        Box::new(RecursiveResolver::new(cfg)),
    );
    let lookup = resolve(
        &mut w.net,
        w.client,
        w.forwarder_addr,
        &n("www.buzzfeed.com"),
        RecordType::A,
    );
    // The first attempt times out after 800 ms (the resolver's timer
    // fires), then the retry against the live root succeeds while the
    // client is still waiting.
    assert!(lookup.ok(), "retry did not rescue the lookup: {lookup:?}");
    assert!(lookup.elapsed.unwrap() > netsim::time::SimDuration::from_millis(800));
    assert_eq!(lookup.addrs().len(), 2);
}

#[test]
fn resolution_is_deterministic() {
    let run = || {
        let mut w = build_world(None);
        let l = resolve(
            &mut w.net,
            w.client,
            w.forwarder_addr,
            &n("www.buzzfeed.com"),
            RecordType::A,
        );
        (l.elapsed.map(|e| e.as_micros()), l.addrs())
    };
    assert_eq!(run(), run());
}
