//! Property-based tests for dnssim: cache invariants and zone lookup
//! totality over arbitrary inputs.

use dnssim::cache::{AmbientModel, CacheOutcome, DnsCache};
use dnssim::zone::Zone;
use dnswire::message::{Rcode, ResourceRecord};
use dnswire::name::DnsName;
use dnswire::rdata::{RData, RecordType};
use netsim::time::{SimDuration, SimTime};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9][a-z0-9-]{0,12}").unwrap()
}

fn arb_name() -> impl Strategy<Value = DnsName> {
    proptest::collection::vec(arb_label(), 1..4)
        .prop_map(|ls| DnsName::from_labels(ls.iter().map(|l| l.as_bytes())).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn cache_never_serves_expired_entries_without_ambient(
        name in arb_name(),
        ttl_s in 1u64..600,
        probe_offset_s in 0u64..1200,
    ) {
        let mut cache = DnsCache::new(64, SimDuration::from_secs(3600));
        let t0 = SimTime::from_micros(1);
        let rr = ResourceRecord::new(name.clone(), ttl_s as u32, RData::A(Ipv4Addr::new(1, 2, 3, 4)));
        cache.insert(
            (name.clone(), RecordType::A, None),
            vec![rr],
            Rcode::NoError,
            SimDuration::from_secs(ttl_s),
            t0,
        );
        let probe = t0 + SimDuration::from_secs(probe_offset_s);
        let out = cache.lookup(&(name, RecordType::A, None), probe);
        if probe_offset_s < ttl_s {
            prop_assert!(matches!(out, CacheOutcome::Hit { .. }), "fresh entry missed");
        } else {
            prop_assert_eq!(out, CacheOutcome::Miss, "expired entry served");
        }
    }

    #[test]
    fn cache_hit_ttls_never_exceed_remaining_lifetime(
        name in arb_name(),
        ttl_s in 2u64..600,
        probe_frac in 0.0f64..0.99,
    ) {
        let mut cache = DnsCache::new(64, SimDuration::from_secs(3600));
        let t0 = SimTime::from_micros(1);
        let rr = ResourceRecord::new(name.clone(), ttl_s as u32, RData::A(Ipv4Addr::new(1, 2, 3, 4)));
        cache.insert(
            (name.clone(), RecordType::A, None),
            vec![rr],
            Rcode::NoError,
            SimDuration::from_secs(ttl_s),
            t0,
        );
        let elapsed = (ttl_s as f64 * probe_frac) as u64;
        let probe = t0 + SimDuration::from_secs(elapsed);
        if let CacheOutcome::Hit { records, .. } = cache.lookup(&(name, RecordType::A, None), probe) {
            for r in records {
                prop_assert!(r.ttl as u64 <= ttl_s - elapsed, "rebased TTL too long");
            }
        } else {
            prop_assert!(false, "fresh entry missed");
        }
    }

    #[test]
    fn cache_respects_capacity(names in proptest::collection::vec(arb_name(), 1..80)) {
        let cap = 16;
        let mut cache = DnsCache::new(cap, SimDuration::from_secs(3600));
        let t0 = SimTime::from_micros(1);
        for name in names {
            cache.insert(
                (name, RecordType::A, None),
                vec![],
                Rcode::NoError,
                SimDuration::from_secs(60),
                t0,
            );
            prop_assert!(cache.len() <= cap + 1, "capacity exceeded: {}", cache.len());
        }
    }

    #[test]
    fn ambient_warm_fraction_approximates_ttl_over_period(
        ttl_s in 10u64..120,
        period_mult in 2u64..8,
        phase_s in 0u64..1000,
    ) {
        let period_s = ttl_s * period_mult;
        let ambient = AmbientModel {
            period: SimDuration::from_secs(period_s),
            phase: SimDuration::from_secs(phase_s),
        };
        let samples = 4000;
        let warm = (0..samples)
            .filter(|i| {
                ambient.is_warm(
                    SimTime::from_micros(i * 1_777_777),
                    SimDuration::from_secs(ttl_s),
                )
            })
            .count();
        let frac = warm as f64 / samples as f64;
        let expect = 1.0 / period_mult as f64;
        prop_assert!((frac - expect).abs() < 0.1, "warm {frac:.2} vs expected {expect:.2}");
    }

    #[test]
    fn zone_lookup_is_total_and_consistent(
        zone_apex in arb_label(),
        records in proptest::collection::vec((arb_label(), any::<[u8; 4]>()), 0..12),
        queries in proptest::collection::vec(arb_label(), 1..12),
    ) {
        let apex = DnsName::parse(&format!("{zone_apex}.test")).unwrap();
        let mut zone = Zone::new(apex.clone());
        let mut inserted = std::collections::HashSet::new();
        for (label, octets) in &records {
            let name = apex.child(label).unwrap();
            zone.add_a(name.clone(), 60, Ipv4Addr::from(*octets));
            inserted.insert(name);
        }
        for q in queries {
            let qname = apex.child(&q).unwrap();
            let out = zone.lookup(&qname, RecordType::A);
            if inserted.contains(&qname) {
                prop_assert_eq!(out.rcode, Rcode::NoError);
                prop_assert!(!out.answers.is_empty(), "existing name had no answers");
                for rr in &out.answers {
                    prop_assert_eq!(&rr.name, &qname);
                }
            } else {
                prop_assert_eq!(out.rcode, Rcode::NxDomain);
                prop_assert!(out.answers.is_empty());
                prop_assert!(!out.authorities.is_empty(), "negative without SOA");
            }
        }
    }
}
