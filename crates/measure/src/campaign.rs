//! The fleet campaign driver: periodic experiments across every device for
//! weeks of simulated time, daily churn passes, and the university-vantage
//! reachability probes of Table 4.

use crate::experiment::run_experiment;
use crate::record::{Dataset, ExternalReachProbe};
use crate::spec::ExperimentSpec;
use crate::world::World;
use netsim::time::{SimDuration, SimTime};

/// Campaign shape. The paper ran five months at roughly hourly cadence
/// (280 k experiments); the default here is a six-week campaign at 4-hour
/// cadence, which preserves every longitudinal effect at ~1/7 the cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignConfig {
    /// Simulated days.
    pub days: u32,
    /// Experiments per device per day.
    pub experiments_per_day: u32,
    /// Per-experiment behaviour.
    pub spec: ExperimentSpec,
    /// Day on which the university probes carrier resolvers (Table 4).
    pub external_probe_day: Option<u32>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            days: 42,
            experiments_per_day: 6,
            spec: ExperimentSpec::default(),
            external_probe_day: Some(21),
        }
    }
}

impl CampaignConfig {
    /// A small campaign for tests and benches.
    pub fn quick() -> Self {
        CampaignConfig {
            days: 4,
            experiments_per_day: 3,
            spec: ExperimentSpec::light(),
            external_probe_day: Some(2),
        }
    }
}

/// Runs the campaign, consuming simulated time on `world`.
pub fn run_campaign(world: &mut World, cfg: &CampaignConfig) -> Dataset {
    let mut dataset = Dataset {
        domains: world.catalog.iter().map(|e| e.domain.clone()).collect(),
        carrier_names: world
            .carriers
            .iter()
            .map(|c| c.profile.name.to_string())
            .collect(),
        carrier_public: world.carriers.iter().map(|c| c.public_prefix).collect(),
        ..Dataset::default()
    };
    let slot_len = SimDuration::from_hours(24) / cfg.experiments_per_day.max(1) as u64;
    let device_count = world.devices.len();
    let mut seq = vec![0u32; device_count];
    for day in 0..cfg.days {
        let day_start = SimTime::ZERO + SimDuration::from_days(day as u64);
        // Daily churn pass (commuting, bearer re-homing); route rebuilds are
        // batched into one recompute.
        let mut dirty = false;
        for i in 0..device_count {
            let World {
                net,
                carriers,
                devices,
                rng,
                ..
            } = world;
            let d = &mut devices[i];
            dirty |= d.daily_churn(net, &mut carriers[d.carrier], rng);
        }
        if dirty {
            world.net.rebuild_routes();
        }
        for slot in 0..cfg.experiments_per_day {
            let slot_start = day_start + slot_len * slot as u64;
            for (i, device_seq) in seq.iter_mut().enumerate() {
                // Stagger devices so they do not fire simultaneously.
                let t = slot_start + SimDuration::from_secs(13 * i as u64);
                world.net.skip_to(t);
                let record = run_experiment(world, i, *device_seq, &cfg.spec);
                *device_seq += 1;
                dataset.records.push(record);
            }
        }
        if cfg.external_probe_day == Some(day) {
            dataset.external_reach = probe_external_reachability(world, &cfg.spec);
        }
    }
    dataset
}

/// Table 4: from the university vantage point, ping and traceroute every
/// carrier's external resolvers.
pub fn probe_external_reachability(world: &mut World, spec: &ExperimentSpec) -> Vec<ExternalReachProbe> {
    let mut probes = Vec::new();
    let university = world.university;
    for (c_idx, carrier) in world.carriers.iter().enumerate() {
        for &(_, addr) in &carrier.external_resolvers {
            let ping = world.net.ping_train(university, addr, spec.ping_count);
            let trace = world.net.traceroute(university, addr, spec.trace_max_ttl);
            probes.push(ExternalReachProbe {
                carrier: c_idx as u8,
                target: addr,
                ping_ok: ping.reachable(),
                traceroute_reached: trace.reached,
                responding_hops: trace.responding_hops().len() as u8,
            });
        }
    }
    probes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{build_world, WorldConfig};

    #[test]
    fn quick_campaign_produces_records_for_all_devices() {
        let mut world = build_world(WorldConfig::quick(77));
        let cfg = CampaignConfig {
            days: 2,
            experiments_per_day: 2,
            spec: ExperimentSpec::light(),
            external_probe_day: Some(0),
        };
        let ds = run_campaign(&mut world, &cfg);
        assert_eq!(ds.records.len(), world.devices.len() * 4);
        assert!(!ds.external_reach.is_empty());
        assert!(ds.resolution_count() > 0);
        // Timestamps are monotone within a device.
        for dev in 0..world.devices.len() {
            let ts: Vec<_> = ds
                .records
                .iter()
                .filter(|r| r.device_id as usize == dev)
                .map(|r| r.t)
                .collect();
            assert!(ts.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn external_probes_never_traceroute_into_carriers() {
        let mut world = build_world(WorldConfig::quick(78));
        let probes = probe_external_reachability(&mut world, &ExperimentSpec::light());
        assert!(probes.iter().all(|p| !p.traceroute_reached));
    }

    #[test]
    fn campaign_is_deterministic() {
        let run = |seed| {
            let mut world = build_world(WorldConfig::quick(seed));
            let cfg = CampaignConfig {
                days: 1,
                experiments_per_day: 1,
                spec: ExperimentSpec::light(),
                external_probe_day: None,
            };
            let ds = run_campaign(&mut world, &cfg);
            ds.records
                .iter()
                .flat_map(|r| r.lookups.iter().map(|l| l.elapsed_us))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
