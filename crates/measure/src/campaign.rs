//! The fleet campaign driver: periodic experiments across every device for
//! weeks of simulated time, daily churn passes, and the university-vantage
//! reachability probes of Table 4.
//!
//! The campaign runs per carrier shard. Shards share no mutable state, so
//! the driver executes them on a scoped thread pool and then merges their
//! records in canonical carrier/device/sequence order — output is
//! bit-for-bit identical for every thread count.

use crate::experiment::run_experiment_in_shard;
use crate::metrics::harvest_shard;
use crate::record::{Dataset, ExperimentRecord, ExternalReachProbe};
use crate::spec::ExperimentSpec;
use crate::world::{Backbone, CarrierShard, World};
use netsim::time::{SimDuration, SimTime};
use rand::Rng as _;

/// Campaign shape. The paper ran five months at roughly hourly cadence
/// (280 k experiments); the default here is a six-week campaign at 4-hour
/// cadence, which preserves every longitudinal effect at ~1/7 the cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignConfig {
    /// Simulated days.
    pub days: u32,
    /// Experiments per device per day.
    pub experiments_per_day: u32,
    /// Per-experiment behaviour.
    pub spec: ExperimentSpec,
    /// Day on which the university probes carrier resolvers (Table 4).
    pub external_probe_day: Option<u32>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            days: 42,
            experiments_per_day: 6,
            spec: ExperimentSpec::default(),
            external_probe_day: Some(21),
        }
    }
}

impl CampaignConfig {
    /// A small campaign for tests and benches.
    pub fn quick() -> Self {
        CampaignConfig {
            days: 4,
            experiments_per_day: 3,
            spec: ExperimentSpec::light(),
            external_probe_day: Some(2),
        }
    }
}

/// How many OS threads the campaign driver may use. Results are identical
/// for every setting — the knob trades wall-clock time only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// One thread per carrier shard, capped by the machine's available
    /// parallelism.
    #[default]
    Auto,
    /// Exactly `n` threads (`0` and `1` both mean single-threaded).
    Threads(usize),
}

impl Parallelism {
    /// Resolves to a concrete thread count for `shards` shards.
    pub fn resolve(self, shards: usize) -> usize {
        let threads = match self {
            Parallelism::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            Parallelism::Threads(n) => n.max(1),
        };
        threads.min(shards.max(1))
    }
}

/// Offset of experiment slot `slot` within a day. Slot starts are spread
/// over the full 24 h with the division remainder distributed across slots
/// (`⌊day · k / n⌋`), so the last inter-slot gap is never inflated by the
/// truncation that plain `24h / n` division would accumulate.
fn slot_offset(slot: u32, experiments_per_day: u32) -> SimDuration {
    let n = experiments_per_day.max(1) as u64;
    let day_us = SimDuration::from_hours(24).as_micros();
    SimDuration::from_micros(day_us * slot as u64 / n)
}

/// One per-shard progress tick, emitted after each simulated day.
#[derive(Debug, Clone, Copy)]
pub struct ProgressEvent<'a> {
    /// Shard (= carrier) index.
    pub shard: usize,
    /// Carrier name.
    pub carrier: &'a str,
    /// Day just completed (0-based).
    pub day: u32,
    /// Total days in the campaign.
    pub days: u32,
    /// Records this shard has produced so far.
    pub records: usize,
    /// Engine events this shard has dispatched so far.
    pub events: u64,
}

/// A progress callback, invoked from shard worker threads (hence `Sync`).
/// It observes wall-clock-free facts only; what the caller does with them
/// (a stderr line, a profiler note) is host-plane business.
pub type ProgressFn = dyn Fn(ProgressEvent<'_>) + Sync;

/// One shard's campaign output, in (day, slot, device) order.
struct ShardRun {
    records: Vec<ExperimentRecord>,
    external_reach: Vec<ExternalReachProbe>,
    metrics: obs::Registry,
}

/// The campaign's full observed output: the dataset plus the merged
/// sim-plane metric registry.
pub struct CampaignRun {
    /// The merged dataset, in canonical record order.
    pub dataset: Dataset,
    /// Per-shard registries folded in canonical carrier order.
    pub metrics: obs::Registry,
}

/// Runs the full campaign on one shard. This is the whole per-carrier
/// workload: daily churn, every experiment slot, and (on the probe day)
/// the university's reachability probes of this carrier's resolvers.
fn run_shard_campaign(
    backbone: &Backbone,
    shard: &mut CarrierShard,
    cfg: &CampaignConfig,
    progress: Option<&ProgressFn>,
) -> ShardRun {
    let mut records = Vec::with_capacity(
        cfg.days as usize * cfg.experiments_per_day as usize * shard.devices.len(),
    );
    let mut external_reach = Vec::new();
    let mut seq = vec![0u32; shard.devices.len()];
    // Gateway sites the fleet has ever attached a bearer to. Small fleets
    // on site-rich carriers (Sprint: 9 devices, 49 sites) would otherwise
    // never visit the tail, so §5.2's egress census under-counts.
    let mut visited = vec![false; shard.carrier.sites.len()];
    for d in &shard.devices {
        visited[d.site] = true;
    }
    // High-water mark of the engine's completed-flow backlog, sampled just
    // before each reap: proves the drain policy keeps it bounded no matter
    // how many days the campaign runs.
    let mut completed_high_water = 0u64;
    for day in 0..cfg.days {
        let day_start = SimTime::ZERO + SimDuration::from_days(day as u64);
        // Daily churn pass (commuting, bearer re-homing); route rebuilds are
        // batched into one recompute.
        let mut dirty = false;
        for i in 0..shard.devices.len() {
            let CarrierShard {
                net,
                carrier,
                devices,
                rng,
                ..
            } = shard;
            dirty |= devices[i].daily_churn(net, carrier, rng);
        }
        for d in &shard.devices {
            visited[d.site] = true;
        }
        // Egress-coverage nudge: while any gateway site has never hosted a
        // bearer, re-home one (rotation-lane-chosen) device to the
        // lowest-index unvisited site for the day. Carriers whose fleet
        // already covers every site never reach this draw, so their
        // schedules are untouched.
        if let Some(target) = visited.iter().position(|v| !v) {
            let i = shard.rotation_rng.gen_range(0..shard.devices.len());
            let CarrierShard {
                net,
                carrier,
                devices,
                ..
            } = shard;
            devices[i].reattach(net, carrier, target);
            visited[target] = true;
            dirty = true;
        }
        if dirty {
            shard.net.rebuild_routes();
        }
        for slot in 0..cfg.experiments_per_day {
            let slot_start = day_start + slot_offset(slot, cfg.experiments_per_day);
            for (i, device_seq) in seq.iter_mut().enumerate() {
                // Stagger devices so they do not fire simultaneously; keyed
                // on the fleet-global device id so the schedule is
                // independent of how devices are sharded.
                let id = shard.devices[i].id as u64;
                let t = slot_start + SimDuration::from_secs(13 * id);
                shard.net.skip_to(t);
                // Reap outcomes nobody polled from earlier experiments so
                // the completed-flow map stays bounded over a campaign.
                completed_high_water = completed_high_water.max(shard.net.completed_len() as u64);
                shard.net.take_completed_before(t);
                let record = run_experiment_in_shard(backbone, shard, i, *device_seq, &cfg.spec);
                *device_seq += 1;
                records.push(record);
            }
        }
        if cfg.external_probe_day == Some(day) {
            external_reach = probe_shard_reachability(backbone, shard, &cfg.spec);
        }
        if let Some(tick) = progress {
            tick(ProgressEvent {
                shard: shard.index,
                carrier: shard.carrier.profile.name,
                day,
                days: cfg.days,
                records: records.len(),
                events: shard.net.stats.events,
            });
        }
    }
    let mut metrics = obs::Registry::new();
    harvest_shard(backbone, shard, &records, &mut metrics);
    metrics.gauge_set(
        "campaign.completed_backlog",
        &[("carrier", shard.carrier.profile.name)],
        completed_high_water,
    );
    ShardRun {
        records,
        external_reach,
        metrics,
    }
}

/// Merges per-shard outputs into the canonical dataset order: for each
/// (day, slot) block, shard 0's devices, then shard 1's, … — i.e. global
/// device order, exactly as a single-threaded global loop would emit them.
fn merge_shard_runs(world: &World, cfg: &CampaignConfig, runs: Vec<ShardRun>) -> Dataset {
    let mut dataset = Dataset {
        domains: world
            .backbone
            .catalog
            .iter()
            .map(|e| e.domain.clone())
            .collect(),
        carrier_names: world
            .shards
            .iter()
            .map(|s| s.carrier.profile.name.to_string())
            .collect(),
        carrier_public: world
            .shards
            .iter()
            .map(|s| s.carrier.public_prefix)
            .collect(),
        ..Dataset::default()
    };
    let blocks = cfg.days as usize * cfg.experiments_per_day as usize;
    let sizes: Vec<usize> = world.shards.iter().map(|s| s.devices.len()).collect();
    let mut cursors: Vec<std::vec::IntoIter<ExperimentRecord>> = Vec::with_capacity(runs.len());
    for run in &runs {
        debug_assert_eq!(run.records.len() % blocks.max(1), 0);
    }
    let mut externals = Vec::new();
    for run in runs {
        cursors.push(run.records.into_iter());
        externals.push(run.external_reach);
    }
    dataset
        .records
        .reserve(cursors.iter().map(|c| c.len()).sum());
    for _ in 0..blocks {
        for (cursor, &n) in cursors.iter_mut().zip(&sizes) {
            for _ in 0..n {
                dataset
                    .records
                    // detlint: allow(D4) -- block sizes were computed from the
                    // shard outputs being drained, so the cursor cannot run
                    // short
                    .push(cursor.next().expect("shard produced a full block"));
            }
        }
    }
    // External probes merge in carrier order (each shard probed only its
    // own carrier).
    dataset.external_reach = externals.into_iter().flatten().collect();
    dataset
}

/// Runs the campaign, consuming simulated time on `world`, with automatic
/// thread-count selection. See [`run_campaign_with`].
pub fn run_campaign(world: &mut World, cfg: &CampaignConfig) -> Dataset {
    run_campaign_with(world, cfg, Parallelism::Auto)
}

/// Runs the campaign with an explicit parallelism policy. Shards execute
/// independently (possibly concurrently); the dataset is assembled in
/// canonical order, so the result is byte-identical for every thread count.
pub fn run_campaign_with(
    world: &mut World,
    cfg: &CampaignConfig,
    parallelism: Parallelism,
) -> Dataset {
    run_campaign_observed(world, cfg, parallelism, None).dataset
}

/// Runs the campaign and returns both the dataset and the merged sim-plane
/// metric registry, optionally reporting per-shard progress. Per-shard
/// registries are folded in canonical carrier order, so the registry — and
/// any bytes exported from it — is identical for every thread count.
pub fn run_campaign_observed(
    world: &mut World,
    cfg: &CampaignConfig,
    parallelism: Parallelism,
    progress: Option<&ProgressFn>,
) -> CampaignRun {
    let backbone = std::sync::Arc::clone(&world.backbone);
    let threads = parallelism.resolve(world.shards.len());
    let runs: Vec<ShardRun> = if threads <= 1 {
        world
            .shards
            .iter_mut()
            .map(|s| run_shard_campaign(&backbone, s, cfg, progress))
            .collect()
    } else {
        // Deal shards into `threads` contiguous chunks; each worker drains
        // its chunk in order. Chunking only affects scheduling, never
        // results.
        let n = world.shards.len();
        let per = n.div_ceil(threads);
        let mut slots: Vec<Option<ShardRun>> = (0..n).map(|_| None).collect();
        std::thread::scope(|scope| {
            for (shard_chunk, out_chunk) in world.shards.chunks_mut(per).zip(slots.chunks_mut(per))
            {
                let backbone = &backbone;
                scope.spawn(move || {
                    for (shard, out) in shard_chunk.iter_mut().zip(out_chunk.iter_mut()) {
                        *out = Some(run_shard_campaign(backbone, shard, cfg, progress));
                    }
                });
            }
        });
        slots
            .into_iter()
            // detlint: allow(D4) -- the scope joined every worker and each
            // worker fills its own slot; an empty slot means a panic the join
            // already propagated
            .map(|s| s.expect("worker covered every shard"))
            .collect()
    };
    let mut metrics = obs::Registry::new();
    for run in &runs {
        metrics.merge_from(&run.metrics);
    }
    CampaignRun {
        dataset: merge_shard_runs(world, cfg, runs),
        metrics,
    }
}

/// Table 4 for one shard: from the university vantage point, ping and
/// traceroute this carrier's external resolvers.
fn probe_shard_reachability(
    backbone: &Backbone,
    shard: &mut CarrierShard,
    spec: &ExperimentSpec,
) -> Vec<ExternalReachProbe> {
    let university = backbone.university;
    let mut probes = Vec::new();
    for &(_, addr) in &shard.carrier.external_resolvers {
        let ping = shard.net.ping_train(university, addr, spec.ping_count);
        let trace = shard.net.traceroute(university, addr, spec.trace_max_ttl);
        probes.push(ExternalReachProbe {
            carrier: shard.index as u8,
            target: addr,
            ping_ok: ping.reachable(),
            traceroute_reached: trace.reached,
            responding_hops: trace.responding_hops().len() as u8,
        });
    }
    probes
}

/// Table 4: from the university vantage point, ping and traceroute every
/// carrier's external resolvers.
pub fn probe_external_reachability(
    world: &mut World,
    spec: &ExperimentSpec,
) -> Vec<ExternalReachProbe> {
    let backbone = std::sync::Arc::clone(&world.backbone);
    world
        .shards
        .iter_mut()
        .flat_map(|s| probe_shard_reachability(&backbone, s, spec))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{build_world, WorldConfig};

    #[test]
    fn quick_campaign_produces_records_for_all_devices() {
        let mut world = build_world(WorldConfig::quick(77));
        let cfg = CampaignConfig {
            days: 2,
            experiments_per_day: 2,
            spec: ExperimentSpec::light(),
            external_probe_day: Some(0),
        };
        let ds = run_campaign(&mut world, &cfg);
        assert_eq!(ds.records.len(), world.device_count() * 4);
        assert!(!ds.external_reach.is_empty());
        assert!(ds.resolution_count() > 0);
        // Timestamps are monotone within a device.
        for dev in 0..world.device_count() {
            let ts: Vec<_> = ds
                .records
                .iter()
                .filter(|r| r.device_id as usize == dev)
                .map(|r| r.t)
                .collect();
            assert!(ts.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn records_merge_in_global_device_order() {
        let mut world = build_world(WorldConfig::quick(79));
        let cfg = CampaignConfig {
            days: 1,
            experiments_per_day: 2,
            spec: ExperimentSpec::light(),
            external_probe_day: None,
        };
        let n = world.device_count();
        let ds = run_campaign(&mut world, &cfg);
        for (i, r) in ds.records.iter().enumerate() {
            assert_eq!(r.device_id as usize, i % n, "record {i} out of order");
        }
    }

    #[test]
    fn external_probes_never_traceroute_into_carriers() {
        let mut world = build_world(WorldConfig::quick(78));
        let probes = probe_external_reachability(&mut world, &ExperimentSpec::light());
        assert!(probes.iter().all(|p| !p.traceroute_reached));
    }

    #[test]
    fn campaign_is_deterministic() {
        let run = |seed| {
            let mut world = build_world(WorldConfig::quick(seed));
            let cfg = CampaignConfig {
                days: 1,
                experiments_per_day: 1,
                spec: ExperimentSpec::light(),
                external_probe_day: None,
            };
            let ds = run_campaign(&mut world, &cfg);
            ds.records
                .iter()
                .flat_map(|r| r.lookups.iter().map(|l| l.elapsed_us))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let run = |par: Parallelism| {
            let mut world = build_world(WorldConfig::quick(11));
            let cfg = CampaignConfig {
                days: 1,
                experiments_per_day: 2,
                spec: ExperimentSpec::light(),
                external_probe_day: Some(0),
            };
            run_campaign_with(&mut world, &cfg, par)
        };
        let serial = run(Parallelism::Threads(1));
        let sharded = run(Parallelism::Threads(6));
        let odd = run(Parallelism::Threads(4));
        assert_eq!(serial, sharded);
        assert_eq!(serial, odd);
    }

    #[test]
    fn slot_offsets_span_the_day_without_drift() {
        // 7 does not divide 24 h evenly; the remainder must be spread so
        // the last slot still starts within the day and gaps differ by at
        // most one microsecond.
        let n = 7u32;
        let day = SimDuration::from_hours(24).as_micros();
        let offsets: Vec<u64> = (0..n).map(|s| slot_offset(s, n).as_micros()).collect();
        assert_eq!(offsets[0], 0);
        assert!(*offsets.last().unwrap() < day);
        let gaps: Vec<u64> = offsets.windows(2).map(|w| w[1] - w[0]).collect();
        let (lo, hi) = (gaps.iter().min().unwrap(), gaps.iter().max().unwrap());
        assert!(hi - lo <= 1, "uneven slot gaps: {gaps:?}");
        // The day wraps cleanly into the next day's slot 0.
        assert!(day - offsets.last().unwrap() >= *lo);
        // Even divisors reproduce the exact old schedule.
        assert_eq!(slot_offset(2, 3).as_micros(), day * 2 / 3);
    }

    #[test]
    fn parallelism_resolves_sanely() {
        assert_eq!(Parallelism::Threads(0).resolve(6), 1);
        assert_eq!(Parallelism::Threads(1).resolve(6), 1);
        assert_eq!(Parallelism::Threads(4).resolve(6), 4);
        assert_eq!(Parallelism::Threads(64).resolve(6), 6);
        assert!(Parallelism::Auto.resolve(6) >= 1);
        assert!(Parallelism::Auto.resolve(6) <= 6);
    }
}
