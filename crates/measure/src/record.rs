//! Measurement records: compact, analysis-ready rows for every probe the
//! experiment suite performs, plus the dataset container and CSV export.

use cellsim::radio::RadioTech;
use dnswire::name::DnsName;
use netsim::addr::Prefix;
use netsim::time::SimTime;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::net::Ipv4Addr;

pub use dnssim::client::Outcome;

/// Which resolver a measurement went through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ResolverKind {
    /// The carrier-configured ("local") resolver.
    Local,
    /// Google-like public DNS.
    Google,
    /// OpenDNS-like public DNS.
    OpenDns,
}

impl ResolverKind {
    /// All kinds, in the order the experiment probes them.
    pub fn all() -> [ResolverKind; 3] {
        [
            ResolverKind::Local,
            ResolverKind::Google,
            ResolverKind::OpenDns,
        ]
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            ResolverKind::Local => "local",
            ResolverKind::Google => "google",
            ResolverKind::OpenDns => "opendns",
        }
    }
}

/// One timed DNS lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsTiming {
    /// Resolver used.
    pub resolver: ResolverKind,
    /// Address that was queried.
    pub resolver_addr: Ipv4Addr,
    /// Index into the dataset's domain catalog.
    pub domain_idx: u8,
    /// 1 for the first (cache-state-unknown) lookup, 2 for the back-to-back
    /// second one (Fig. 7).
    pub attempt: u8,
    /// Resolution time in microseconds; `None` on timeout.
    pub elapsed_us: Option<u32>,
    /// A-record answers (recorded for attempt 1 only; attempt 2 repeats).
    pub addrs: Vec<Ipv4Addr>,
    /// How the resolution concluded (the failure taxonomy).
    pub outcome: Outcome,
}

/// Result of a whoami probe: the resolver identity pair of §4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolverIdentity {
    /// Resolver used.
    pub resolver: ResolverKind,
    /// The client-facing address that was queried.
    pub queried_addr: Ipv4Addr,
    /// The external-facing address the ADNS observed.
    pub external_addr: Option<Ipv4Addr>,
}

/// What a resolver latency probe targeted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProbeTarget {
    /// The configured (client-facing) resolver.
    ClientFacing,
    /// The whoami-discovered external resolver.
    External,
    /// The Google VIP.
    GoogleVip,
    /// The OpenDNS VIP.
    OpenDnsVip,
}

impl ProbeTarget {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            ProbeTarget::ClientFacing => "client-facing",
            ProbeTarget::External => "external",
            ProbeTarget::GoogleVip => "google-vip",
            ProbeTarget::OpenDnsVip => "opendns-vip",
        }
    }
}

/// One resolver latency probe (Figs. 4 and 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolverProbe {
    /// What was probed.
    pub target: ProbeTarget,
    /// The probed address.
    pub addr: Ipv4Addr,
    /// Minimum ping RTT in µs; `None` when unanswered.
    pub rtt_us: Option<u32>,
}

/// One replica measurement (Figs. 2, 10, 14; §5.2 traceroutes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaProbe {
    /// Domain whose resolution produced this replica.
    pub domain_idx: u8,
    /// Resolver that produced it.
    pub via: ResolverKind,
    /// Replica address.
    pub addr: Ipv4Addr,
    /// Minimum ping RTT in µs.
    pub rtt_us: Option<u32>,
    /// HTTP time-to-first-byte in µs.
    pub ttfb_us: Option<u32>,
    /// Responding traceroute hops (empty when tracing was not sampled this
    /// experiment).
    pub trace_hops: Vec<Ipv4Addr>,
}

/// Everything one experiment produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentRecord {
    /// Fleet-wide device id.
    pub device_id: u32,
    /// Carrier index.
    pub carrier: u8,
    /// Experiment start time.
    pub t: SimTime,
    /// Radio technology active during the experiment.
    pub radio: RadioTech,
    /// Coarse device location (the paper rounds to a 100 m area).
    pub x_km: f32,
    /// Coarse device location.
    pub y_km: f32,
    /// Whether the device is stationary (Fig. 9 filter).
    pub is_static: bool,
    /// The device's (private) IP at experiment time.
    pub device_ip: Ipv4Addr,
    /// Gateway site the bearer was attached to.
    pub gateway_site: u16,
    /// Configured resolver address.
    pub configured_dns: Ipv4Addr,
    /// Timed lookups.
    pub lookups: Vec<DnsTiming>,
    /// whoami results.
    pub identities: Vec<ResolverIdentity>,
    /// Resolver latency probes.
    pub resolver_probes: Vec<ResolverProbe>,
    /// Replica probes.
    pub replica_probes: Vec<ReplicaProbe>,
}

impl ExperimentRecord {
    /// The external resolver observed via the local path, if any.
    pub fn local_external(&self) -> Option<Ipv4Addr> {
        self.identities
            .iter()
            .find(|i| i.resolver == ResolverKind::Local)
            .and_then(|i| i.external_addr)
    }
}

/// A Table 4 probe from the university vantage point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExternalReachProbe {
    /// Carrier index.
    pub carrier: u8,
    /// Probed resolver address.
    pub target: Ipv4Addr,
    /// Whether any ping was answered.
    pub ping_ok: bool,
    /// Whether traceroute reached the resolver.
    pub traceroute_reached: bool,
    /// Responding hops before silence/arrival.
    pub responding_hops: u8,
}

/// A full campaign's output.
#[derive(Debug, Default, PartialEq)]
pub struct Dataset {
    /// Per-experiment records.
    pub records: Vec<ExperimentRecord>,
    /// University-vantage reachability probes (Table 4).
    pub external_reach: Vec<ExternalReachProbe>,
    /// Domain catalog (`domain_idx` → name).
    pub domains: Vec<DnsName>,
    /// Carrier names (`carrier` → name).
    pub carrier_names: Vec<String>,
    /// Each carrier's public prefix (egress-point detection needs to know
    /// which hops are inside the carrier).
    pub carrier_public: Vec<Prefix>,
}

impl Dataset {
    /// Total DNS resolutions performed.
    pub fn resolution_count(&self) -> usize {
        self.records.iter().map(|r| r.lookups.len()).sum()
    }

    /// Records for one carrier.
    pub fn of_carrier(&self, carrier: usize) -> impl Iterator<Item = &ExperimentRecord> {
        self.records
            .iter()
            .filter(move |r| r.carrier as usize == carrier)
    }

    /// Writes the four raw CSV tables into `dir` (created if needed).
    pub fn write_csvs(&self, dir: &std::path::Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join("lookups.csv"), self.lookups_csv())?;
        std::fs::write(dir.join("replicas.csv"), self.replicas_csv())?;
        std::fs::write(dir.join("identities.csv"), self.identities_csv())?;
        std::fs::write(dir.join("outcomes.csv"), self.outcomes_csv())?;
        Ok(())
    }

    /// Aggregate lookup-outcome counts per (carrier, resolver class):
    /// the failure-taxonomy table. Rows are emitted in deterministic
    /// (carrier, resolver, outcome) order; zero-count combinations are
    /// omitted.
    pub fn outcomes_csv(&self) -> String {
        let mut counts: BTreeMap<(u8, ResolverKind, Outcome), u64> = BTreeMap::new();
        for r in &self.records {
            for l in &r.lookups {
                *counts
                    .entry((r.carrier, l.resolver, l.outcome))
                    .or_insert(0) += 1;
            }
        }
        let mut out = String::from("carrier,resolver,outcome,count\n");
        for ((carrier, resolver, outcome), n) in &counts {
            let _ = writeln!(
                out,
                "{},{},{},{}",
                self.carrier_names[*carrier as usize],
                resolver.label(),
                outcome.label(),
                n,
            );
        }
        out
    }

    /// CSV of the lookup table (one row per timed lookup).
    pub fn lookups_csv(&self) -> String {
        let mut out = String::from(
            "device,carrier,t_s,radio,resolver,resolver_addr,domain,attempt,elapsed_ms\n",
        );
        for r in &self.records {
            for l in &r.lookups {
                let _ = writeln!(
                    out,
                    "{},{},{},{},{},{},{},{},{}",
                    r.device_id,
                    self.carrier_names[r.carrier as usize],
                    r.t.as_secs(),
                    r.radio.label(),
                    l.resolver.label(),
                    l.resolver_addr,
                    self.domains[l.domain_idx as usize],
                    l.attempt,
                    l.elapsed_us
                        .map(|us| format!("{:.3}", us as f64 / 1000.0))
                        .unwrap_or_else(|| "timeout".into()),
                );
            }
        }
        out
    }

    /// CSV of replica probes.
    pub fn replicas_csv(&self) -> String {
        let mut out = String::from("device,carrier,t_s,domain,via,replica,ping_ms,ttfb_ms\n");
        for r in &self.records {
            for p in &r.replica_probes {
                let _ = writeln!(
                    out,
                    "{},{},{},{},{},{},{},{}",
                    r.device_id,
                    self.carrier_names[r.carrier as usize],
                    r.t.as_secs(),
                    self.domains[p.domain_idx as usize],
                    p.via.label(),
                    p.addr,
                    p.rtt_us
                        .map(|us| format!("{:.3}", us as f64 / 1000.0))
                        .unwrap_or_else(|| "".into()),
                    p.ttfb_us
                        .map(|us| format!("{:.3}", us as f64 / 1000.0))
                        .unwrap_or_else(|| "".into()),
                );
            }
        }
        out
    }

    /// CSV of whoami identities (the LDNS-pair table behind §4.1/4.5).
    pub fn identities_csv(&self) -> String {
        let mut out = String::from("device,carrier,t_s,resolver,queried,external\n");
        for r in &self.records {
            for i in &r.identities {
                let _ = writeln!(
                    out,
                    "{},{},{},{},{},{}",
                    r.device_id,
                    self.carrier_names[r.carrier as usize],
                    r.t.as_secs(),
                    i.resolver.label(),
                    i.queried_addr,
                    i.external_addr
                        .map(|a| a.to_string())
                        .unwrap_or_else(|| "".into()),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dataset() -> Dataset {
        let mut ds = Dataset {
            domains: vec![DnsName::parse("m.yelp.com").unwrap()],
            carrier_names: vec!["AT&T".into()],
            ..Dataset::default()
        };
        ds.records.push(ExperimentRecord {
            device_id: 3,
            carrier: 0,
            t: SimTime::from_micros(7_000_000),
            radio: RadioTech::Lte,
            x_km: 1.0,
            y_km: 2.0,
            is_static: true,
            device_ip: Ipv4Addr::new(10, 0, 0, 9),
            gateway_site: 2,
            configured_dns: Ipv4Addr::new(100, 0, 0, 1),
            lookups: vec![DnsTiming {
                resolver: ResolverKind::Local,
                resolver_addr: Ipv4Addr::new(100, 0, 0, 1),
                domain_idx: 0,
                attempt: 1,
                elapsed_us: Some(42_000),
                addrs: vec![Ipv4Addr::new(90, 0, 1, 1)],
                outcome: Outcome::Ok,
            }],
            identities: vec![ResolverIdentity {
                resolver: ResolverKind::Local,
                queried_addr: Ipv4Addr::new(100, 0, 0, 1),
                external_addr: Some(Ipv4Addr::new(100, 110, 0, 1)),
            }],
            resolver_probes: vec![],
            replica_probes: vec![ReplicaProbe {
                domain_idx: 0,
                via: ResolverKind::Local,
                addr: Ipv4Addr::new(90, 0, 1, 1),
                rtt_us: Some(51_000),
                ttfb_us: None,
                trace_hops: vec![],
            }],
        });
        ds
    }

    #[test]
    fn csv_exports_have_headers_and_rows() {
        let ds = sample_dataset();
        let lookups = ds.lookups_csv();
        assert!(lookups.starts_with("device,carrier"));
        assert!(lookups.contains("m.yelp.com"));
        assert!(lookups.contains("42.000"));
        let replicas = ds.replicas_csv();
        assert!(replicas.contains("90.0.1.1"));
        assert!(replicas.contains("51.000"));
        let ids = ds.identities_csv();
        assert!(ids.contains("100.110.0.1"));
    }

    #[test]
    fn outcomes_csv_aggregates_per_carrier_and_resolver() {
        let mut ds = sample_dataset();
        ds.records[0].lookups.push(DnsTiming {
            resolver: ResolverKind::Google,
            resolver_addr: Ipv4Addr::new(8, 8, 8, 8),
            domain_idx: 0,
            attempt: 1,
            elapsed_us: None,
            addrs: vec![],
            outcome: Outcome::ServFail,
        });
        let csv = ds.outcomes_csv();
        assert!(csv.starts_with("carrier,resolver,outcome,count\n"));
        assert!(csv.contains("AT&T,local,ok,1"));
        assert!(csv.contains("AT&T,google,servfail,1"));
        // Zero-count combinations are omitted.
        assert!(!csv.contains(",timeout,"));
    }

    #[test]
    fn resolution_count_sums_lookups() {
        let ds = sample_dataset();
        assert_eq!(ds.resolution_count(), 1);
    }

    #[test]
    fn local_external_accessor() {
        let ds = sample_dataset();
        assert_eq!(
            ds.records[0].local_external(),
            Some(Ipv4Addr::new(100, 110, 0, 1))
        );
    }

    #[test]
    fn of_carrier_filters() {
        let ds = sample_dataset();
        assert_eq!(ds.of_carrier(0).count(), 1);
        assert_eq!(ds.of_carrier(1).count(), 0);
    }
}
