//! World assembly: the simulated internet the measurement campaign runs
//! against — backbone, DNS hierarchy, probe ADNS, public DNS deployments,
//! CDNs, the six carriers, and the device fleet.
//!
//! The world is split into a shared, immutable [`Backbone`] (topology
//! template, zone data, CDN knowledge tables) and one [`CarrierShard`] per
//! carrier. Each shard owns a complete discrete-event engine cloned from the
//! template plus its carrier's devices and a private RNG stream derived from
//! the master seed and the carrier index. Experiments only ever touch the
//! device's own carrier, so shards never communicate: the campaign can run
//! them on any number of threads and produce bit-identical results.

use cdnsim::catalog::{mobile_domains, CatalogEntry, PROVIDER_COUNT, PROVIDER_NAMES};
use cdnsim::cdn::{Cdn, CdnConfig, Replica};
use cdnsim::edge::EdgeZone;
use cdnsim::mapping::MappingZone;
use cellsim::build::{build_carrier, install_carrier_services, CarrierNet, GeoRegion};
use cellsim::device::{create_devices, Device};
use cellsim::profile::{six_carriers, CarrierProfile, Country};
use dnssim::authority::{AuthoritativeServer, WhoamiZone, DNS_PORT};
use dnssim::hierarchy::HierarchyBuilder;
use dnssim::recursive::{RecursiveResolver, ResolverConfig, ServerFaults};
use dnssim::tcp::{TcpDnsServer, DNS_TCP_PORT};
use dnssim::zone::Zone;
use dnswire::name::DnsName;
use netsim::addr::Prefix;
use netsim::engine::Network;
use netsim::fault::{FaultPlan, LinkFault, Spike, Window};
use netsim::queue::QueueKind;
use netsim::tcplite::TcpHttpServer;
use netsim::time::SimDuration;
use netsim::topo::{Asn, Coord, NodeId, NodeKind, Topology};
use netsim::HTTP_PORT;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// World-level tuning.
#[derive(Debug, Clone, PartialEq)]
pub struct WorldConfig {
    /// Master seed; every run with the same config is bit-identical.
    pub seed: u64,
    /// Fleet scaling (1.0 = Table 1's 158 clients).
    pub fleet_scale: f64,
    /// Gateway scaling (1.0 = §5.2's LTE-era counts; ~0.1 approximates the
    /// 4–6 egress points of the Xu et al. 3G era for ablations).
    pub gateway_scale: f64,
    /// Ambient cache-warmth period divided by record TTL controls the
    /// first-lookup hit rate (None disables the model; see `dnssim::cache`).
    pub ambient_period: Option<SimDuration>,
    /// Google-like public DNS site count (paper: ~30 /24 clusters).
    pub google_sites: usize,
    /// OpenDNS-like site count.
    pub opendns_sites: usize,
    /// Deploy the paper's §9 future-work fix: carrier resolvers announce
    /// RFC 7871 client subnets (NAT-aware), and CDNs geolocate the carrier
    /// egress /24s from their server logs. Off by default — the paper's
    /// world.
    pub ecs: bool,
    /// Build the pre-LTE world of Xu et al. (SIGMETRICS'11): 4–6 gateways
    /// per carrier and no LTE radio — the baseline §2 argues has been
    /// overtaken.
    pub three_g_era: bool,
    /// Deterministic fault injection profile. `None` (the default) makes
    /// zero RNG draws and leaves every output byte-identical to a
    /// fault-free build; the other profiles layer chaos on the links and
    /// carrier resolvers and switch experiments to the hardened client.
    pub fault_profile: FaultProfile,
    /// Event-queue implementation each shard engine dispatches from. All
    /// kinds produce byte-identical outputs (the determinism suite checks
    /// heap vs wheel); the knob exists for A/B benchmarking.
    pub queue: QueueKind,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: 2014,
            fleet_scale: 1.0,
            gateway_scale: 1.0,
            // CDN TTL 30 s / period 37.5 s ≈ 80% warm — Fig. 7's ~20% miss.
            ambient_period: Some(SimDuration::from_micros(37_500_000)),
            google_sites: 30,
            opendns_sites: 16,
            ecs: false,
            three_g_era: false,
            fault_profile: FaultProfile::None,
            queue: QueueKind::default(),
        }
    }
}

impl WorldConfig {
    /// A small world for tests and quick benches: reduced fleet and
    /// gateway counts, same structure.
    pub fn quick(seed: u64) -> Self {
        WorldConfig {
            seed,
            fleet_scale: 0.15,
            gateway_scale: 0.35,
            ..WorldConfig::default()
        }
    }
}

/// A named bundle of fault-injection parameters. Profiles are the only
/// supported way to turn chaos on: they pin every knob so a profile name
/// plus a seed fully determines the failure schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultProfile {
    /// No faults. Zero RNG draws on every fault path; outputs are
    /// byte-identical to a build without the fault layer.
    #[default]
    None,
    /// The cellular baseline: light Bernoulli link loss, periodic gateway
    /// maintenance outages, bufferbloat latency spikes, and occasional
    /// carrier-resolver SERVFAILs / forced truncations / blackouts.
    Cellular,
    /// Everything in `Cellular`, turned up, plus faults on the public
    /// resolvers — for exercising failover and the failure taxonomy.
    Stress,
}

impl FaultProfile {
    /// Parses a CLI profile name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "none" => Some(FaultProfile::None),
            "cellular" => Some(FaultProfile::Cellular),
            "stress" => Some(FaultProfile::Stress),
            _ => None,
        }
    }

    /// The profile's CLI name.
    pub fn label(&self) -> &'static str {
        match self {
            FaultProfile::None => "none",
            FaultProfile::Cellular => "cellular",
            FaultProfile::Stress => "stress",
        }
    }

    /// Whether any fault is configured (drives the classic/hardened
    /// client-policy switch).
    pub fn is_active(&self) -> bool {
        !matches!(self, FaultProfile::None)
    }

    /// The link-level fault applied globally to the shard's engine.
    pub fn link_fault(&self) -> Option<LinkFault> {
        let outage = |period_h: u64, offset_min: u64, dur_s: u64| Window {
            period: SimDuration::from_secs(period_h * 3_600),
            offset: SimDuration::from_secs(offset_min * 60),
            duration: SimDuration::from_secs(dur_s),
        };
        match self {
            FaultProfile::None => None,
            FaultProfile::Cellular => Some(LinkFault {
                loss: 0.012,
                outage: Some(outage(6, 90, 40)),
                spike: Some(Spike {
                    window: outage(3, 20, 120),
                    factor_x1000: 3_000,
                    extra: SimDuration::from_millis(150),
                }),
            }),
            FaultProfile::Stress => Some(LinkFault {
                loss: 0.03,
                outage: Some(outage(3, 45, 90)),
                spike: Some(Spike {
                    window: outage(2, 10, 300),
                    factor_x1000: 5_000,
                    extra: SimDuration::from_millis(400),
                }),
            }),
        }
    }

    /// Fault knobs for the carriers' own resolver pools.
    pub fn carrier_resolver_faults(&self) -> ServerFaults {
        let blackout = |period_h: u64, offset_h: u64, dur_s: u64| Window {
            period: SimDuration::from_secs(period_h * 3_600),
            offset: SimDuration::from_secs(offset_h * 3_600),
            duration: SimDuration::from_secs(dur_s),
        };
        match self {
            FaultProfile::None => ServerFaults::default(),
            FaultProfile::Cellular => ServerFaults {
                servfail_prob: 0.02,
                truncate_prob: 0.04,
                unresponsive: Some(blackout(8, 5, 30)),
            },
            FaultProfile::Stress => ServerFaults {
                servfail_prob: 0.06,
                truncate_prob: 0.08,
                unresponsive: Some(blackout(4, 1, 120)),
            },
        }
    }

    /// Fault knobs for the public (Google-like / OpenDNS-like) resolvers.
    /// Only `Stress` faults them — under `Cellular` they stay clean so
    /// failover has somewhere to land.
    pub fn public_resolver_faults(&self) -> ServerFaults {
        match self {
            FaultProfile::Stress => ServerFaults {
                servfail_prob: 0.02,
                truncate_prob: 0.02,
                unresponsive: None,
            },
            _ => ServerFaults::default(),
        }
    }
}

/// One public-DNS deployment (Google-like or OpenDNS-like).
#[derive(Debug)]
pub struct PublicDns {
    /// Display name.
    pub name: &'static str,
    /// The anycast VIP devices are pointed at.
    pub vip: Ipv4Addr,
    /// Site nodes with their egress addresses (each site is one /24).
    pub sites: Vec<PublicSite>,
}

/// One public-DNS site.
#[derive(Debug)]
pub struct PublicSite {
    /// The site's node.
    pub node: NodeId,
    /// Its /24.
    pub prefix: Prefix,
    /// Egress addresses upstream queries rotate over.
    pub egress_addrs: Vec<Ipv4Addr>,
    /// Location.
    pub coord: Coord,
}

/// One CDN provider deployment.
#[derive(Debug)]
pub struct CdnNet {
    /// Provider index into `PROVIDER_NAMES`.
    pub provider: usize,
    /// The selection logic (shared with the mapping zones).
    pub cdn: Arc<Cdn>,
    /// Replica nodes with their addresses.
    pub replicas: Vec<(NodeId, Ipv4Addr)>,
    /// The provider's ADNS node and address.
    pub adns: (NodeId, Ipv4Addr),
}

/// Seed-stream lanes: every independent RNG stream in the world derives its
/// seed from `(master, lane, index)` so streams never alias across lanes or
/// carriers. Public so the host-plane serving crates (`serve`, `loadgen`)
/// can derive their query-mix streams from the same master seed without
/// declaring lanes of their own (detlint D8 keeps declarations here).
pub mod lane {
    /// Backbone assembly (CDN POP placement jitter).
    pub const BACKBONE: u64 = 0;
    /// Per-carrier topology/device construction.
    pub const CARRIER: u64 = 1;
    /// Per-shard campaign stream (churn, bearer reassignment).
    pub const CAMPAIGN: u64 = 2;
    /// Per-shard engine stream (link latency sampling, loss).
    pub const ENGINE: u64 = 3;
    /// Per-shard fault-injection stream (chaos Bernoulli draws). A
    /// dedicated lane so enabling faults never perturbs the engine RNG.
    pub const FAULT: u64 = 4;
    /// Per-shard device-rotation stream (§5.2 egress-coverage nudge). A
    /// dedicated lane so the nudge never perturbs churn or engine draws.
    pub const ROTATION: u64 = 5;
    /// Per-carrier serving-plane query-mix stream (loadgen scripts). A
    /// dedicated lane so live serving never perturbs campaign replay.
    pub const SERVE: u64 = 6;
    /// Per-carrier wire-chaos stream (loadgen adversarial mutations:
    /// bit-flips, garbage datagrams, floods, TCP frame abuse). A dedicated
    /// lane so enabling chaos never perturbs the scripted query mix.
    pub const WIRE_CHAOS: u64 = 7;
}

/// Derives an independent seed for `(lane, index)` from the master seed
/// (SplitMix64 finalizer over a lane/index-keyed state).
pub fn derive_seed(master: u64, lane: u64, index: u64) -> u64 {
    let mut z = master
        ^ lane.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ index.wrapping_mul(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The immutable part of the world, shared (via `Arc`) by every carrier
/// shard: the full topology template, the DNS hierarchy's zone data, CDN
/// deployments with their knowledge tables, and the public-DNS plan.
///
/// Nothing here is ever mutated after [`build_world`] returns, so shards on
/// different threads can read it concurrently without synchronization.
pub struct Backbone {
    /// Configuration the world was built from.
    pub config: WorldConfig,
    /// The complete topology (backbone + hierarchy + public DNS + CDNs +
    /// all six carriers and their devices). Each shard's engine runs on a
    /// clone of this template.
    pub template: Topology,
    /// Domain catalog (Table 2).
    pub catalog: Vec<CatalogEntry>,
    /// The whoami probe zone (queried with nonce labels).
    pub probe_zone: DnsName,
    /// The university vantage point (Table 4 probes).
    pub university: NodeId,
    /// Root server hint.
    pub roots: Vec<Ipv4Addr>,
    /// Public DNS services: `[0]` Google-like, `[1]` OpenDNS-like.
    pub public_dns: Vec<PublicDns>,
    /// CDN providers (knowledge tables behind `Arc`, shared by all shards).
    pub cdns: Vec<CdnNet>,
    /// Root server node and zone.
    root: (NodeId, Zone),
    /// TLD server nodes and zones.
    tlds: Vec<(NodeId, Zone)>,
    /// Probe ADNS node and its static apex zone.
    probe: (NodeId, Zone),
}

impl Backbone {
    /// Creates a fresh engine for shard `index`: the topology template is
    /// cloned and every shard-independent service (DNS hierarchy, probe
    /// ADNS, CDN authorities and replicas, public-DNS resolvers + anycast)
    /// is instantiated on it. Carrier services are installed by the caller.
    fn spawn_engine(&self, index: usize) -> Network {
        let mut net = Network::new_with_queue(
            self.template.clone(),
            derive_seed(self.config.seed, lane::ENGINE, index as u64),
            self.config.queue,
        );

        // Chaos layer: the plan draws from its own seed lane, so shards
        // with no faults configured are byte-identical to a build without
        // the fault module.
        if let Some(fault) = self.config.fault_profile.link_fault() {
            net.install_fault_plan(
                FaultPlan::new(derive_seed(self.config.seed, lane::FAULT, index as u64))
                    .with_global(fault),
            );
        }

        // DNS hierarchy.
        let mut root_srv = AuthoritativeServer::new();
        root_srv.add_zone(self.root.1.clone());
        net.register_service(self.root.0, DNS_PORT, Box::new(root_srv));
        for (node, zone) in &self.tlds {
            let mut srv = AuthoritativeServer::new();
            srv.add_zone(zone.clone());
            net.register_service(*node, DNS_PORT, Box::new(srv));
        }

        // Probe ADNS: whoami dynamic zone under a static apex.
        let mut probe_srv = AuthoritativeServer::new();
        probe_srv.add_zone(self.probe.1.clone());
        probe_srv.add_dynamic(Box::new(WhoamiZone::new(self.probe_zone.clone())));
        net.register_service(self.probe.0, DNS_PORT, Box::new(probe_srv));

        // CDNs: mapping + edge zones over the shared knowledge tables,
        // replica HTTP servers.
        for cdn_net in &self.cdns {
            let p = cdn_net.provider;
            let mut adns = AuthoritativeServer::new();
            for entry in self.catalog.iter().filter(|e| e.provider == p) {
                adns.add_dynamic(Box::new(MappingZone::new(
                    entry.zone.clone(),
                    DnsName::parse(&format!("edge.{}.example", PROVIDER_NAMES[p]))
                        // detlint: allow(D4) -- zone name is a static format
                        // literal, always parseable
                        .expect("valid edge suffix"),
                    Arc::clone(&cdn_net.cdn),
                )));
            }
            adns.add_dynamic(Box::new(EdgeZone::new(
                DnsName::parse(&format!("edge.{}.example", PROVIDER_NAMES[p]))
                    // detlint: allow(D4) -- zone name is a static format
                    // literal, always parseable
                    .expect("valid edge zone"),
                Arc::clone(&cdn_net.cdn),
            )));
            net.register_service(cdn_net.adns.0, DNS_PORT, Box::new(adns));
            for &(node, _) in &cdn_net.replicas {
                // Index pages of ~16 KiB served over TCP-lite: TTFB pays the
                // real handshake and the transfer pays segmentation + loss.
                net.register_service(
                    node,
                    HTTP_PORT,
                    Box::new(TcpHttpServer::new(16 * 1024, SimDuration::from_millis(8))),
                );
            }
        }

        // Public DNS recursive resolvers + anycast VIPs. Each site also
        // answers DNS-over-TCP (registration is event-free until queried,
        // so fault-free runs are unaffected).
        let public_faults = self.config.fault_profile.public_resolver_faults();
        for pd in &self.public_dns {
            for site in &pd.sites {
                let mut cfg = ResolverConfig::new(self.roots.clone());
                cfg.egress_addrs = site.egress_addrs.clone();
                cfg.faults = public_faults;
                if let Some(period) = self.config.ambient_period {
                    cfg.ambient = Some(dnssim::cache::AmbientModel {
                        period,
                        phase: SimDuration::from_micros(
                            site.prefix.network().octets()[2] as u64 * 4_999_999,
                        ),
                    });
                }
                net.register_service(site.node, DNS_PORT, Box::new(RecursiveResolver::new(cfg)));
                net.register_service(site.node, DNS_TCP_PORT, Box::new(TcpDnsServer::new()));
            }
            net.add_anycast(pd.vip, pd.sites.iter().map(|s| s.node).collect());
        }

        net
    }
}

/// One carrier's slice of the world: a full engine (cloned from the
/// backbone template, with this carrier's services and middleboxes
/// installed), the carrier's network plan, its devices, and a private
/// campaign RNG stream.
pub struct CarrierShard {
    /// Carrier index (position in [`World::shards`]).
    pub index: usize,
    /// This shard's discrete-event engine.
    pub net: Network,
    /// The carrier built on this shard.
    pub carrier: CarrierNet,
    /// This carrier's devices (`Device::id` stays fleet-global).
    pub devices: Vec<Device>,
    /// Campaign-level RNG (stream derived from the master seed and the
    /// carrier index; distinct from the engine's).
    pub rng: StdRng,
    /// Rotation RNG for the daily egress-coverage nudge (its own seed lane,
    /// so carriers with full coverage never consume a draw).
    pub rotation_rng: StdRng,
}

/// The assembled world: the shared backbone plus one shard per carrier.
pub struct World {
    /// Immutable shared state.
    pub backbone: Arc<Backbone>,
    /// Per-carrier shards, in canonical carrier order.
    pub shards: Vec<CarrierShard>,
}

/// Well-known public DNS VIPs.
pub const GOOGLE_VIP: Ipv4Addr = Ipv4Addr::new(8, 8, 8, 8);
/// OpenDNS VIP.
pub const OPENDNS_VIP: Ipv4Addr = Ipv4Addr::new(208, 67, 222, 222);

/// Backbone POP locations: a US mesh plus a Korean cluster.
fn backbone_coords() -> Vec<Coord> {
    let mut v = Vec::new();
    // 12 US metros on the carrier map (0..4200 x 0..2500).
    let us = [
        (250.0, 600.0),   // Seattle-ish
        (300.0, 1500.0),  // Bay Area
        (500.0, 1900.0),  // LA
        (1300.0, 1800.0), // Phoenix/Dallas corridor west
        (1900.0, 1900.0), // Dallas
        (1700.0, 1000.0), // Denver
        (2500.0, 800.0),  // Chicago
        (2700.0, 1700.0), // Atlanta
        (3300.0, 2100.0), // Miami
        (3500.0, 900.0),  // DC
        (3700.0, 700.0),  // NYC
        (3400.0, 500.0),  // Boston
    ];
    for (x, y) in us {
        v.push(Coord { x_km: x, y_km: y });
    }
    // 3 Korean POPs.
    let kr = [(9600.0, 600.0), (9700.0, 800.0), (9750.0, 700.0)];
    for (x, y) in kr {
        v.push(Coord { x_km: x, y_km: y });
    }
    v
}

/// Number of US POPs in [`backbone_coords`].
const US_POPS: usize = 12;

/// Builds the complete world: the backbone topology once, then the six
/// carrier shards (engine clone + services) concurrently — shard assembly
/// is pure per carrier, so the thread interleaving cannot affect the
/// result.
pub fn build_world(config: WorldConfig) -> World {
    let mut rng = StdRng::seed_from_u64(derive_seed(config.seed, lane::BACKBONE, 0));
    let mut topo = Topology::new();

    // --- Backbone ---
    let coords = backbone_coords();
    let mut pops: Vec<(NodeId, Coord)> = Vec::new();
    for (i, &coord) in coords.iter().enumerate() {
        let node = topo.add_node(
            format!("pop-{i}"),
            NodeKind::Router,
            Asn(3356),
            coord,
            vec![Ipv4Addr::new(80, 0, i as u8, 1)],
        );
        pops.push((node, coord));
    }
    // US ring + chords.
    for i in 0..US_POPS {
        let (a, _) = pops[i];
        let (b, _) = pops[(i + 1) % US_POPS];
        topo.add_wired_link(a, b);
    }
    for &(i, j) in &[(0usize, 6usize), (1, 4), (4, 9), (6, 10), (2, 4)] {
        topo.add_wired_link(pops[i].0, pops[j].0);
    }
    // Korean triangle + two trans-Pacific links.
    for &(i, j) in &[(12usize, 13usize), (13, 14), (12, 14)] {
        topo.add_wired_link(pops[i].0, pops[j].0);
    }
    topo.add_wired_link(pops[0].0, pops[12].0);
    topo.add_wired_link(pops[1].0, pops[13].0);

    let us_pops: Vec<(NodeId, Coord)> = pops[..US_POPS].to_vec();
    let kr_pops: Vec<(NodeId, Coord)> = pops[US_POPS..].to_vec();

    // --- DNS hierarchy servers ---
    let root_addr = Ipv4Addr::new(198, 41, 0, 4);
    let root_node = topo.add_node(
        "root-dns",
        NodeKind::Host,
        Asn(397),
        pops[9].1,
        vec![root_addr],
    );
    topo.add_link(root_node, pops[9].0, netsim::LatencyModel::constant_ms(1));

    let tld_specs = [
        ("com", Ipv4Addr::new(192, 5, 6, 30), 6),
        ("org", Ipv4Addr::new(192, 5, 6, 31), 10),
        ("example", Ipv4Addr::new(192, 5, 6, 32), 9),
    ];
    let mut tld_nodes = Vec::new();
    for (label, addr, pop) in tld_specs {
        let node = topo.add_node(
            format!("tld-{label}"),
            NodeKind::Host,
            Asn(397),
            pops[pop].1,
            vec![addr],
        );
        topo.add_link(node, pops[pop].0, netsim::LatencyModel::constant_ms(1));
        tld_nodes.push((label, addr, node));
    }

    // Probe ADNS (whoami) near the university.
    let probe_addr = Ipv4Addr::new(198, 51, 200, 53);
    let probe_node = topo.add_node(
        "probe-adns",
        NodeKind::Host,
        Asn(103),
        pops[6].1,
        vec![probe_addr],
    );
    topo.add_link(probe_node, pops[6].0, netsim::LatencyModel::constant_ms(1));

    // University vantage point (Northwestern-ish, near Chicago POP).
    let university = topo.add_node(
        "university",
        NodeKind::Host,
        Asn(103),
        pops[6].1,
        vec![Ipv4Addr::new(129, 105, 5, 5)],
    );
    topo.add_link(university, pops[6].0, netsim::LatencyModel::constant_ms(1));

    // --- Public DNS sites ---
    /// (name, vip, sites, addrs per site, first two octets, KR site share)
    type PublicPlan = (&'static str, Ipv4Addr, usize, u8, [u8; 2], usize);
    let public_plans: Vec<PublicPlan> = vec![
        (
            "GoogleDNS",
            GOOGLE_VIP,
            config.google_sites,
            6,
            [173, 194],
            5,
        ),
        (
            "OpenDNS",
            OPENDNS_VIP,
            config.opendns_sites,
            4,
            [204, 194],
            3,
        ),
    ];
    let mut public_dns: Vec<PublicDns> = Vec::new();
    for (name, vip, site_count, per_site, octets, kr_share) in public_plans {
        let mut sites = Vec::new();
        for s in 0..site_count {
            let (pop, coord) = if site_count - s <= kr_share {
                kr_pops[s % kr_pops.len()]
            } else {
                us_pops[s % us_pops.len()]
            };
            let prefix: Prefix = format!("{}.{}.{}.0/24", octets[0], octets[1], s)
                .parse()
                // detlint: allow(D4) -- the format string constructs a
                // syntactically valid /24 prefix
                .expect("valid site prefix");
            let egress_addrs: Vec<Ipv4Addr> =
                (1..=per_site).map(|k| prefix.addr(k as u32)).collect();
            let node = topo.add_node(
                format!("{name}-site-{s}"),
                NodeKind::Host,
                Asn(15169),
                coord,
                egress_addrs.clone(),
            );
            topo.add_link(node, pop, netsim::LatencyModel::constant_ms(1));
            sites.push(PublicSite {
                node,
                prefix,
                egress_addrs,
                coord,
            });
        }
        public_dns.push(PublicDns { name, vip, sites });
    }

    // --- CDN replicas and ADNS ---
    let catalog = mobile_domains();
    let provider_pops = [30usize, 20, 25, 8];
    let provider_kr = [6usize, 4, 5, 0];
    let mut cdn_plans = Vec::new();
    for p in 0..PROVIDER_COUNT {
        let mut replicas = Vec::new();
        let mut replica_nodes = Vec::new();
        for s in 0..provider_pops[p] {
            let (pop, base) = if provider_pops[p] - s <= provider_kr[p] {
                kr_pops[s % kr_pops.len()]
            } else {
                us_pops[(s + p) % us_pops.len()]
            };
            // Spread POPs around the metro.
            let coord = Coord {
                x_km: base.x_km + rng.gen_range(-60.0..60.0),
                y_km: base.y_km + rng.gen_range(-60.0..60.0),
            };
            let addr = Ipv4Addr::new(90 + p as u8, 0, s as u8, 1);
            let node = topo.add_node(
                format!("{}-pop-{s}", PROVIDER_NAMES[p]),
                NodeKind::Host,
                Asn(20940 + p as u32),
                coord,
                vec![addr],
            );
            topo.add_wired_link(node, pop);
            replica_nodes.push((node, addr));
            replicas.push(Replica { addr, coord });
        }
        let adns_addr = Ipv4Addr::new(90 + p as u8, 53, 0, 1);
        let adns_pop = us_pops[(4 + p) % us_pops.len()];
        let adns_node = topo.add_node(
            format!("{}-adns", PROVIDER_NAMES[p]),
            NodeKind::Host,
            Asn(20940 + p as u32),
            adns_pop.1,
            vec![adns_addr],
        );
        topo.add_link(adns_node, adns_pop.0, netsim::LatencyModel::constant_ms(1));
        cdn_plans.push((replicas, replica_nodes, adns_node, adns_addr));
    }

    // --- Carriers ---
    // Each carrier's nodes (and devices) are built with its own derived RNG
    // stream, so a carrier's layout depends only on the master seed and its
    // index — the property that lets shards be reassembled independently.
    let mut carrier_profiles = six_carriers();
    if config.three_g_era {
        carrier_profiles = carrier_profiles
            .into_iter()
            .map(|p| p.as_three_g())
            .collect();
    }
    for p in carrier_profiles.iter_mut() {
        p.client_count = ((p.client_count as f64 * config.fleet_scale).round() as usize).max(1);
        p.gateway_count = ((p.gateway_count as f64 * config.gateway_scale).round() as usize).max(2);
    }
    let mut carriers = Vec::new();
    let mut device_groups: Vec<Vec<Device>> = Vec::new();
    let mut next_device_id = 0usize;
    for (i, profile) in carrier_profiles.into_iter().enumerate() {
        let mut crng = StdRng::seed_from_u64(derive_seed(config.seed, lane::CARRIER, i as u64));
        let region = match profile.country {
            Country::Us => GeoRegion::us(),
            Country::SouthKorea => GeoRegion::south_korea(),
        };
        let backbone = match profile.country {
            Country::Us => &us_pops,
            Country::SouthKorea => &kr_pops,
        };
        let mut carrier = build_carrier(&mut topo, i, profile, region, backbone, &mut crng);
        let devices = create_devices(&mut topo, &mut carrier, next_device_id, &mut crng);
        next_device_id += devices.len();
        carriers.push(carrier);
        device_groups.push(devices);
    }

    // --- Hierarchy zones ---
    let mut h = HierarchyBuilder::new();
    for (label, addr, _) in &tld_nodes {
        h.add_tld(label, *addr);
    }
    h.add_domain("probe.example", probe_addr);
    for entry in &catalog {
        let (_, _, _, adns_addr) = &cdn_plans[entry.provider];
        h.add_domain(&entry.zone.to_string(), *adns_addr);
    }
    for p in 0..PROVIDER_COUNT {
        let (_, _, _, adns_addr) = &cdn_plans[p];
        h.add_domain(&format!("{}.example", PROVIDER_NAMES[p]), *adns_addr);
    }
    let built = h.build();
    let tlds: Vec<(NodeId, Zone)> = built
        .tlds
        .into_iter()
        .map(|(label, _, zone)| {
            let (_, _, node) = tld_nodes
                .iter()
                .find(|(l, _, _)| *l == label)
                // detlint: allow(D4) -- tld_nodes was built from the same TLD
                // list being mapped here
                .expect("tld node exists");
            (*node, zone)
        })
        .collect();

    // Probe apex (static part; the whoami zone is dynamic per engine).
    // detlint: allow(D4) -- static zone-name literals always parse
    let probe_zone = DnsName::parse("whoami.probe.example").expect("valid probe zone");
    // detlint: allow(D4) -- static zone-name literals always parse
    let mut probe_apex = Zone::new(DnsName::parse("probe.example").expect("valid"));
    probe_apex.add_a(
        // detlint: allow(D4) -- static zone-name literals always parse
        DnsName::parse("probe.example").expect("valid"),
        3600,
        probe_addr,
    );

    // --- CDN knowledge tables (immutable once built, shared by shards) ---
    let mut cdns = Vec::new();
    for (p, (replicas, replica_nodes, adns_node, adns_addr)) in cdn_plans.into_iter().enumerate() {
        let mut cdn = Cdn::new(CdnConfig::new(PROVIDER_NAMES[p]), replicas);
        // Measured prefixes: public-DNS site /24s and the university.
        for pd in &public_dns {
            for site in &pd.sites {
                cdn.add_measured(site.prefix, site.coord);
            }
        }
        cdn.add_measured(Prefix::slash24_of(Ipv4Addr::new(129, 105, 5, 5)), pops[6].1);
        // Under an ECS deployment, CDNs learn the carrier egress /24s'
        // locations from their own server logs (those NAT addresses appear
        // as HTTP clients every day).
        if config.ecs {
            for carrier in &carriers {
                for site in &carrier.sites {
                    cdn.add_measured(Prefix::slash24_of(site.egress_addr), site.coord);
                }
            }
        }
        // Coarse believed-centroids for the unprobeable carrier blocks: the
        // carrier's main peering metro.
        for carrier in &carriers {
            let centroid = match carrier.profile.country {
                Country::Us => us_pops[4].1, // Dallas-ish
                Country::SouthKorea => kr_pops[0].1,
            };
            let first_octet = carrier.public_prefix.network().octets()[0];
            cdn.add_coarse_centroid(first_octet, centroid);
            // Geo-database anchor per resolver /24: the true location of
            // the prefix's first member. Regionally right for that member,
            // and distant for the members from other regions sharing the
            // /24 — the paper's mis-association mechanism.
            let mut seen: std::collections::BTreeSet<Prefix> = std::collections::BTreeSet::new();
            for &(node, addr) in &carrier.external_resolvers {
                let prefix = Prefix::slash24_of(addr);
                if seen.insert(prefix) {
                    cdn.add_prefix_anchor(prefix, topo.node(node).coord);
                }
            }
        }
        cdns.push(CdnNet {
            provider: p,
            cdn: Arc::new(cdn),
            replicas: replica_nodes,
            adns: (adns_node, adns_addr),
        });
    }

    let backbone = Arc::new(Backbone {
        template: topo,
        catalog,
        probe_zone,
        university,
        roots: vec![root_addr],
        public_dns,
        cdns,
        root: (root_node, built.root),
        tlds,
        probe: (probe_node, probe_apex),
        config,
    });

    // --- Shards ---
    // Assembled concurrently: each shard's engine, services, and RNG depend
    // only on the backbone and the carrier index.
    let shards: Vec<CarrierShard> = std::thread::scope(|scope| {
        let handles: Vec<_> = carriers
            .into_iter()
            .zip(device_groups)
            .enumerate()
            .map(|(i, (carrier, devices))| {
                let backbone = &backbone;
                scope.spawn(move || make_shard(backbone, i, carrier, devices))
            })
            .collect();
        handles
            .into_iter()
            // detlint: allow(D4) -- join() propagates a shard worker's panic
            // instead of silently dropping its devices
            .map(|h| h.join().expect("shard assembly panicked"))
            .collect()
    });

    World { backbone, shards }
}

/// Assembles one carrier shard: engine clone + shared services + this
/// carrier's services/middleboxes, plus the initial bearer-churn schedule.
fn make_shard(
    backbone: &Backbone,
    index: usize,
    carrier: CarrierNet,
    mut devices: Vec<Device>,
) -> CarrierShard {
    let config = &backbone.config;
    let mut net = backbone.spawn_engine(index);
    install_carrier_services(
        &mut net,
        &carrier,
        &backbone.roots,
        config.ambient_period,
        config.ecs,
        config.fault_profile.carrier_resolver_faults(),
    );

    // Schedule each device's first IP-reassignment from the shard's own
    // campaign stream.
    let mut rng = StdRng::seed_from_u64(derive_seed(config.seed, lane::CAMPAIGN, index as u64));
    for d in devices.iter_mut() {
        let mean = carrier.profile.ip_reassign_mean.as_micros();
        let jitter: f64 = -rng.gen_range(1e-9_f64..1.0_f64).ln();
        d.next_ip_change =
            netsim::SimTime::ZERO + SimDuration::from_micros((mean as f64 * jitter).floor() as u64);
    }

    CarrierShard {
        index,
        net,
        carrier,
        devices,
        rng,
        rotation_rng: StdRng::seed_from_u64(derive_seed(config.seed, lane::ROTATION, index as u64)),
    }
}

impl World {
    /// Configuration the world was built from.
    pub fn config(&self) -> &WorldConfig {
        &self.backbone.config
    }

    /// Number of carriers (= shards).
    pub fn carrier_count(&self) -> usize {
        self.shards.len()
    }

    /// The network plan of one carrier.
    pub fn carrier(&self, index: usize) -> &CarrierNet {
        &self.shards[index].carrier
    }

    /// Carrier index by name.
    pub fn carrier_index(&self, name: &str) -> Option<usize> {
        self.shards
            .iter()
            .position(|s| s.carrier.profile.name == name)
    }

    /// The profile of a carrier.
    pub fn profile(&self, carrier: usize) -> &CarrierProfile {
        &self.shards[carrier].carrier.profile
    }

    /// Total device count across all shards.
    pub fn device_count(&self) -> usize {
        self.shards.iter().map(|s| s.devices.len()).sum()
    }

    /// The device with fleet-global index `idx` (devices are numbered
    /// carrier-major, in shard order).
    pub fn device(&self, idx: usize) -> &Device {
        let (shard, local) = self.locate_device(idx);
        &self.shards[shard].devices[local]
    }

    /// Maps a fleet-global device index to `(shard, local)` coordinates.
    pub fn locate_device(&self, idx: usize) -> (usize, usize) {
        let mut offset = 0;
        for (s, shard) in self.shards.iter().enumerate() {
            if idx < offset + shard.devices.len() {
                return (s, idx - offset);
            }
            offset += shard.devices.len();
        }
        // detlint: allow(D4) -- a fleet-global device index out of range is a
        // driver bug; clamping would attribute records to the wrong device
        panic!("device index {idx} out of range ({} devices)", offset);
    }

    /// Fleet-global indices of the devices on one carrier.
    pub fn devices_of(&self, carrier: usize) -> Vec<usize> {
        let offset: usize = self.shards[..carrier].iter().map(|s| s.devices.len()).sum();
        (offset..offset + self.shards[carrier].devices.len()).collect()
    }

    /// Node count of the (per-shard) topology.
    pub fn node_count(&self) -> usize {
        self.backbone.template.node_count()
    }

    /// Engine events dispatched across all shards.
    pub fn total_events(&self) -> u64 {
        self.shards.iter().map(|s| s.net.stats.events).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_world_builds() {
        let w = build_world(WorldConfig::quick(7));
        assert_eq!(w.shards.len(), 6);
        assert!(w.device_count() > 0);
        assert_eq!(w.backbone.public_dns.len(), 2);
        assert_eq!(w.backbone.cdns.len(), 4);
        assert_eq!(w.backbone.catalog.len(), 9);
    }

    #[test]
    fn full_world_matches_paper_scale() {
        let w = build_world(WorldConfig::default());
        assert_eq!(w.device_count(), 158);
        let us_gateways: usize = w
            .shards
            .iter()
            .filter(|s| s.carrier.profile.country == Country::Us)
            .map(|s| s.carrier.sites.len())
            .sum();
        assert_eq!(us_gateways, 11 + 45 + 62 + 49);
        assert_eq!(w.backbone.public_dns[0].sites.len(), 30);
    }

    #[test]
    fn world_is_deterministic() {
        let a = build_world(WorldConfig::quick(3));
        let b = build_world(WorldConfig::quick(3));
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.device_count(), b.device_count());
        for (x, y) in a
            .shards
            .iter()
            .flat_map(|s| &s.devices)
            .zip(b.shards.iter().flat_map(|s| &s.devices))
        {
            assert_eq!(x.ip, y.ip);
            assert_eq!(x.configured_dns, y.configured_dns);
        }
    }

    #[test]
    fn device_ids_are_fleet_global_and_carrier_major() {
        let w = build_world(WorldConfig::quick(9));
        let mut expected = 0usize;
        for shard in &w.shards {
            for d in &shard.devices {
                assert_eq!(d.id, expected);
                assert_eq!(d.carrier, shard.index);
                expected += 1;
            }
        }
        assert_eq!(expected, w.device_count());
        // locate_device inverts the global numbering.
        for g in 0..w.device_count() {
            assert_eq!(w.device(g).id, g);
        }
    }

    #[test]
    fn seed_lanes_do_not_alias() {
        let mut seen = std::collections::HashSet::new();
        for lane in 0..5u64 {
            for idx in 0..6u64 {
                assert!(seen.insert(derive_seed(2014, lane, idx)));
            }
        }
        // Distinct master seeds shift every lane.
        assert_ne!(derive_seed(1, 0, 0), derive_seed(2, 0, 0));
    }
}
