#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `measure` — the paper's measurement library and campaign harness: the
//! experiment of §3.2 (bootstrap ping, 9-domain resolutions against local
//! and public resolvers, whoami resolver discovery, ping/traceroute/HTTP
//! probes of every replica), the fleet campaign driver, the university
//! reachability probes, and the simulated world everything runs against.

pub mod campaign;
pub mod experiment;
pub mod metrics;
pub mod record;
pub mod spec;
pub mod world;

pub use campaign::{
    probe_external_reachability, run_campaign, run_campaign_observed, run_campaign_with,
    CampaignConfig, CampaignRun, Parallelism, ProgressEvent, ProgressFn,
};
pub use experiment::{run_experiment, run_experiment_in_shard};
pub use netsim::queue::QueueKind;
pub use record::{
    Dataset, DnsTiming, ExperimentRecord, ExternalReachProbe, Outcome, ProbeTarget, ReplicaProbe,
    ResolverIdentity, ResolverKind, ResolverProbe,
};
pub use spec::ExperimentSpec;
pub use world::{
    build_world, Backbone, CarrierShard, CdnNet, FaultProfile, PublicDns, PublicSite, World,
    WorldConfig, GOOGLE_VIP, OPENDNS_VIP,
};
