//! Sim-plane metric harvest: folds every layer's counters into one
//! [`obs::Registry`] per shard.
//!
//! The harvest runs once at the end of each shard's campaign, on the
//! shard's own thread, and reads only shard-local simulation state —
//! engine [`netsim::engine::NetStats`], fault-plan counters, DNS service
//! stats reached through `Network::service_as`, and the shard's own
//! experiment records. Per-shard registries are merged in canonical
//! carrier order by the campaign driver, so the folded registry (and the
//! `metrics.json` it exports to) is byte-identical for every thread
//! count.

use crate::record::ExperimentRecord;
use crate::world::{Backbone, CarrierShard};
use dnssim::forwarder::Forwarder;
use dnssim::recursive::RecursiveResolver;
use dnssim::DNS_PORT;
use obs::Registry;

/// Harvests every instrument one shard contributes: engine and fault
/// counters, the carrier's client-facing and external resolver stats, the
/// public-DNS resolvers running on this shard's engine clone, and the
/// per-record campaign taxonomy.
pub fn harvest_shard(
    backbone: &Backbone,
    shard: &CarrierShard,
    records: &[ExperimentRecord],
    reg: &mut Registry,
) {
    let carrier = shard.carrier.profile.name;
    let labels = [("carrier", carrier)];

    shard.net.stats.export(reg, &labels);
    if let Some(plan) = shard.net.fault_plan() {
        plan.stats.export(reg, &labels);
    }

    // Client-facing resolvers (anycast instances live on gateway sites,
    // unicast ones on dedicated forwarder nodes).
    let forwarder_nodes = shard
        .carrier
        .sites
        .iter()
        .filter_map(|s| s.forwarder)
        .chain(shard.carrier.forwarder_nodes.iter().map(|(n, _, _)| *n));
    for node in forwarder_nodes {
        if let Some(fwd) = shard.net.service_as::<Forwarder>(node, DNS_PORT) {
            let fl = [("carrier", carrier), ("class", "client_facing")];
            fwd.stats.export(reg, &fl);
            if let Some(cache) = fwd.cache() {
                cache.stats.export(reg, &fl);
            }
        }
    }

    // The carrier's external recursive resolvers.
    for &(node, _) in &shard.carrier.external_resolvers {
        if let Some(res) = shard.net.service_as::<RecursiveResolver>(node, DNS_PORT) {
            let el = [("carrier", carrier), ("class", "external")];
            res.stats.export(reg, &el);
            res.cache().stats.export(reg, &el);
        }
    }

    // Public-DNS resolvers: each shard's engine clone runs its own copy,
    // serving only this shard's devices, so their counters are shard-local
    // too. Label by provider name, keep the carrier label so merge never
    // collapses distinct shards.
    for pd in &backbone.public_dns {
        for site in &pd.sites {
            if let Some(res) = shard
                .net
                .service_as::<RecursiveResolver>(site.node, DNS_PORT)
            {
                let pl = [
                    ("carrier", carrier),
                    ("class", "public"),
                    ("provider", pd.name),
                ];
                res.stats.export(reg, &pl);
                res.cache().stats.export(reg, &pl);
            }
        }
    }

    harvest_records(records, carrier, reg);
}

/// Folds one shard's experiment records into the registry: experiment and
/// probe counts, the client-side outcome taxonomy (per resolver class),
/// and lookup-latency histograms over sim-time micros.
pub fn harvest_records(records: &[ExperimentRecord], carrier: &str, reg: &mut Registry) {
    let labels = [("carrier", carrier)];
    reg.inc_by("campaign.experiments", &labels, records.len() as u64);
    for r in records {
        reg.inc_by("campaign.lookups", &labels, r.lookups.len() as u64);
        reg.inc_by(
            "campaign.identity_probes",
            &labels,
            r.identities.len() as u64,
        );
        reg.inc_by(
            "campaign.resolver_probes",
            &labels,
            r.resolver_probes.len() as u64,
        );
        reg.inc_by(
            "campaign.replica_probes",
            &labels,
            r.replica_probes.len() as u64,
        );
        for l in &r.lookups {
            let ol = [
                ("carrier", carrier),
                ("resolver", l.resolver.label()),
                ("outcome", l.outcome.label()),
            ];
            reg.inc("dns.lookup.outcomes", &ol);
            if let Some(us) = l.elapsed_us {
                let hl = [("carrier", carrier), ("resolver", l.resolver.label())];
                reg.observe_us("dns.lookup_us", &hl, us as u64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{DnsTiming, Outcome, ResolverKind};
    use std::net::Ipv4Addr;

    fn record_with(outcome: Outcome, elapsed_us: Option<u32>) -> ExperimentRecord {
        let mut r = ExperimentRecord {
            device_id: 0,
            carrier: 0,
            t: netsim::time::SimTime::ZERO,
            radio: cellsim::radio::RadioTech::Lte,
            x_km: 0.0,
            y_km: 0.0,
            is_static: true,
            device_ip: Ipv4Addr::new(10, 0, 0, 1),
            gateway_site: 0,
            configured_dns: Ipv4Addr::new(10, 0, 0, 53),
            lookups: Vec::new(),
            identities: Vec::new(),
            resolver_probes: Vec::new(),
            replica_probes: Vec::new(),
        };
        r.lookups.push(DnsTiming {
            resolver: ResolverKind::Local,
            resolver_addr: Ipv4Addr::new(10, 0, 0, 53),
            domain_idx: 0,
            attempt: 1,
            elapsed_us,
            addrs: Vec::new(),
            outcome,
        });
        r
    }

    #[test]
    fn record_harvest_counts_outcomes_and_latency() {
        let records = vec![
            record_with(Outcome::Ok, Some(900)),
            record_with(Outcome::Timeout, None),
        ];
        let mut reg = Registry::new();
        harvest_records(&records, "AT&T", &mut reg);
        let labels = [("carrier", "AT&T")];
        assert_eq!(reg.counter_value("campaign.experiments", &labels), 2);
        assert_eq!(reg.counter_value("campaign.lookups", &labels), 2);
        assert_eq!(
            reg.counter_value(
                "dns.lookup.outcomes",
                &[
                    ("carrier", "AT&T"),
                    ("outcome", "ok"),
                    ("resolver", "local")
                ],
            ),
            1
        );
        assert_eq!(
            reg.counter_value(
                "dns.lookup.outcomes",
                &[
                    ("carrier", "AT&T"),
                    ("outcome", "timeout"),
                    ("resolver", "local"),
                ],
            ),
            1
        );
        // Only the answered lookup lands in the latency histogram.
        let h = reg
            .histogram(
                "dns.lookup_us",
                &[("carrier", "AT&T"), ("resolver", "local")],
            )
            .unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 900);
    }
}
