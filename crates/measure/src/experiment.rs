//! One experiment, exactly as §3.2 describes it: bootstrap ping (radio
//! promotion), DNS resolutions of the nine domains against the local and
//! both public resolvers (twice, back-to-back), whoami resolutions to
//! discover external-facing resolvers, pings/traceroutes to resolvers, and
//! ping/traceroute/HTTP-GET probes to every replica returned.

use crate::record::{
    DnsTiming, ExperimentRecord, ProbeTarget, ReplicaProbe, ResolverIdentity, ResolverKind,
    ResolverProbe,
};
use crate::spec::ExperimentSpec;
use crate::world::{Backbone, CarrierShard, World, GOOGLE_VIP, OPENDNS_VIP};
use dnssim::client::{resolve_with, whoami_with, ClientPolicy};
use dnswire::rdata::RecordType;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// The client policy an experiment uses against `raddr`. Fault-free worlds
/// keep the seed's classic fixed-ladder client so their outputs stay
/// byte-identical; fault profiles switch to the hardened path (exponential
/// backoff, TCP fallback on truncation, failover to the next public
/// resolver in the chain).
fn policy_for(backbone: &Backbone, primary: Ipv4Addr) -> ClientPolicy {
    if !backbone.config.fault_profile.is_active() {
        return ClientPolicy::classic();
    }
    let fallbacks = if primary == GOOGLE_VIP {
        vec![OPENDNS_VIP]
    } else {
        vec![GOOGLE_VIP]
    };
    ClientPolicy::hardened(fallbacks)
}

/// Runs one experiment for the device at fleet-global index `device_idx`.
/// `seq` is the device's experiment counter (drives probe subsampling
/// rotation). Convenience wrapper over [`run_experiment_in_shard`] for
/// drivers holding a whole [`World`].
pub fn run_experiment(
    world: &mut World,
    device_idx: usize,
    seq: u32,
    spec: &ExperimentSpec,
) -> ExperimentRecord {
    let (shard_idx, local_idx) = world.locate_device(device_idx);
    let backbone = std::sync::Arc::clone(&world.backbone);
    run_experiment_in_shard(
        &backbone,
        &mut world.shards[shard_idx],
        local_idx,
        seq,
        spec,
    )
}

/// Runs one experiment on a single carrier shard. Everything the experiment
/// touches — engine, carrier, device, RNG — lives on the shard; the
/// backbone contributes only immutable data (catalog, probe zone). This is
/// the unit the parallel campaign driver schedules across threads.
pub fn run_experiment_in_shard(
    backbone: &Backbone,
    shard: &mut CarrierShard,
    device_idx: usize,
    seq: u32,
    spec: &ExperimentSpec,
) -> ExperimentRecord {
    let CarrierShard {
        net,
        carrier,
        devices,
        rng,
        ..
    } = shard;
    let catalog = &backbone.catalog;
    let probe_zone = &backbone.probe_zone;
    let device = &mut devices[device_idx];
    let now = net.now();

    // Bearer churn that came due between experiments.
    if device.next_ip_change <= now {
        device.reassign_ip(net, carrier, rng, now, 0.3);
    }
    device.maybe_resample_radio(&carrier.profile, net.topo_mut(), rng);

    // Radio promotion, then the bootstrap ping that §3.2 uses to mask it.
    let promotion = device.wake_radio(now);
    let start = now + promotion;
    net.skip_to(start);
    let _ = net.ping_train(device.node, device.configured_dns, 1);

    let resolvers: [(ResolverKind, Ipv4Addr); 3] = [
        (ResolverKind::Local, device.configured_dns),
        (ResolverKind::Google, GOOGLE_VIP),
        (ResolverKind::OpenDns, OPENDNS_VIP),
    ];

    // DNS resolutions: every domain against every resolver, twice.
    let mut lookups = Vec::with_capacity(catalog.len() * resolvers.len() * 2);
    // replica addr -> every (domain, via) that returned it this experiment.
    let mut replica_seen: BTreeMap<Ipv4Addr, Vec<(u8, ResolverKind)>> = BTreeMap::new();
    let mut replica_order: Vec<Ipv4Addr> = Vec::new();
    let attempts = if spec.double_lookup { 2 } else { 1 };
    for (d_idx, entry) in catalog.iter().enumerate() {
        for &(kind, raddr) in &resolvers {
            let policy = policy_for(backbone, raddr);
            for attempt in 1..=attempts {
                let lookup = resolve_with(
                    net,
                    device.node,
                    raddr,
                    &entry.domain,
                    RecordType::A,
                    &policy,
                );
                let addrs = if attempt == 1 {
                    lookup.addrs()
                } else {
                    Vec::new()
                };
                if attempt == 1 {
                    for &a in &lookup.addrs() {
                        let combos = replica_seen.entry(a).or_insert_with(|| {
                            replica_order.push(a);
                            Vec::new()
                        });
                        let combo = (d_idx as u8, kind);
                        if !combos.contains(&combo) {
                            combos.push(combo);
                        }
                    }
                }
                lookups.push(DnsTiming {
                    resolver: kind,
                    resolver_addr: raddr,
                    domain_idx: d_idx as u8,
                    attempt,
                    elapsed_us: lookup.elapsed.map(|e| e.as_micros() as u32),
                    addrs,
                    outcome: lookup.outcome,
                });
            }
        }
    }

    // whoami per resolver (§3.2's "resolution of clients' resolver IPs").
    let mut identities = Vec::with_capacity(3);
    for &(kind, raddr) in &resolvers {
        let policy = policy_for(backbone, raddr);
        let (_, external) = whoami_with(net, device.node, raddr, probe_zone, &policy);
        identities.push(ResolverIdentity {
            resolver: kind,
            queried_addr: raddr,
            external_addr: external,
        });
    }
    let local_external = identities
        .iter()
        .find(|i| i.resolver == ResolverKind::Local)
        .and_then(|i| i.external_addr);

    // Resolver latency probes (Figs. 4 and 11).
    let mut resolver_probes = Vec::new();
    let mut probe_resolver = |net: &mut netsim::Network, target: ProbeTarget, addr: Ipv4Addr| {
        let report = net.ping_train(device.node, addr, spec.ping_count);
        resolver_probes.push(ResolverProbe {
            target,
            addr,
            rtt_us: report.min_rtt().map(|r| r.as_micros() as u32),
        });
    };
    probe_resolver(net, ProbeTarget::ClientFacing, device.configured_dns);
    if let Some(ext) = local_external {
        if ext != device.configured_dns {
            probe_resolver(net, ProbeTarget::External, ext);
        }
    }
    probe_resolver(net, ProbeTarget::GoogleVip, GOOGLE_VIP);
    probe_resolver(net, ProbeTarget::OpenDnsVip, OPENDNS_VIP);
    if seq.is_multiple_of(spec.resolver_trace_every) {
        // Traceroutes to the resolver tier; structural data only (the paper
        // found tunnelling renders hop counts moot, which our transparent
        // core reproduces).
        let _ = net.traceroute(device.node, device.configured_dns, spec.trace_max_ttl);
        if let Some(ext) = local_external {
            let _ = net.traceroute(device.node, ext, spec.trace_max_ttl);
        }
    }

    // Replica probes: ping + HTTP GET to every distinct replica, traceroute
    // to a rotating subsample.
    let mut measured: BTreeMap<Ipv4Addr, (Option<u32>, Option<u32>)> = BTreeMap::new();
    let mut replica_probes = Vec::new();
    for (i, &addr) in replica_order.iter().enumerate() {
        let (rtt_us, ttfb_us) = {
            let entry = measured.entry(addr).or_insert_with(|| {
                let ping = net.ping_train(device.node, addr, spec.ping_count);
                let rtt = ping.min_rtt().map(|r| r.as_micros() as u32);
                let ttfb = if spec.http_probes {
                    net.tcp_get(
                        device.node,
                        addr,
                        "/index.html",
                        netsim::time::SimDuration::from_secs(20),
                    )
                    .ttfb
                    .map(|t| t.as_micros() as u32)
                } else {
                    None
                };
                (rtt, ttfb)
            });
            *entry
        };
        // Rotate which replicas get traced so the corpus covers all of them
        // over time without tracing everything every hour.
        let trace_hops =
            if (i + seq as usize) % replica_order.len().max(1) < spec.replica_trace_sample {
                net.traceroute(device.node, addr, spec.trace_max_ttl)
                    .responding_hops()
            } else {
                Vec::new()
            };
        for (k, &(d_idx, via)) in replica_seen[&addr].iter().enumerate() {
            replica_probes.push(ReplicaProbe {
                domain_idx: d_idx,
                via,
                addr,
                rtt_us,
                ttfb_us,
                // Attach the trace to the first combo only, so egress
                // analysis does not double-count one traceroute.
                trace_hops: if k == 0 {
                    trace_hops.clone()
                } else {
                    Vec::new()
                },
            });
        }
    }

    let coord = device.coord();
    ExperimentRecord {
        device_id: device.id as u32,
        carrier: device.carrier as u8,
        t: start,
        radio: device.tech,
        x_km: coord.x_km as f32,
        y_km: coord.y_km as f32,
        is_static: device.is_static(),
        device_ip: device.ip,
        gateway_site: device.site as u16,
        configured_dns: device.configured_dns,
        lookups,
        identities,
        resolver_probes,
        replica_probes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{build_world, WorldConfig};

    #[test]
    fn experiment_produces_complete_record() {
        let mut world = build_world(WorldConfig::quick(42));
        let spec = ExperimentSpec::light();
        let record = run_experiment(&mut world, 0, 0, &spec);
        // 9 domains x 3 resolvers x 2 attempts.
        assert_eq!(record.lookups.len(), 9 * 3 * 2);
        assert_eq!(record.identities.len(), 3);
        // Local resolutions must have succeeded and returned replicas.
        let local_ok = record
            .lookups
            .iter()
            .filter(|l| l.resolver == ResolverKind::Local && l.attempt == 1)
            .filter(|l| l.elapsed_us.is_some() && !l.addrs.is_empty())
            .count();
        assert!(local_ok >= 7, "only {local_ok}/9 local lookups succeeded");
        assert!(!record.replica_probes.is_empty());
        // whoami through the local path reveals an external resolver that
        // differs from the configured one (indirect resolution).
        let ext = record.local_external().expect("external discovered");
        assert_ne!(ext, record.configured_dns);
    }

    #[test]
    fn public_lookups_also_succeed() {
        let mut world = build_world(WorldConfig::quick(43));
        let spec = ExperimentSpec::light();
        let record = run_experiment(&mut world, 1, 0, &spec);
        for kind in [ResolverKind::Google, ResolverKind::OpenDns] {
            let ok = record
                .lookups
                .iter()
                .filter(|l| l.resolver == kind && l.attempt == 1 && l.elapsed_us.is_some())
                .count();
            assert!(ok >= 7, "{kind:?}: only {ok}/9 lookups succeeded");
        }
    }

    #[test]
    fn second_lookup_is_not_slower_than_first_on_average() {
        let mut world = build_world(WorldConfig::quick(44));
        let spec = ExperimentSpec::light();
        let record = run_experiment(&mut world, 0, 0, &spec);
        let mean = |attempt: u8| {
            let xs: Vec<u32> = record
                .lookups
                .iter()
                .filter(|l| l.resolver == ResolverKind::Local && l.attempt == attempt)
                .filter_map(|l| l.elapsed_us)
                .collect();
            xs.iter().map(|&x| x as f64).sum::<f64>() / xs.len().max(1) as f64
        };
        assert!(
            mean(2) <= mean(1) * 1.05,
            "2nd {} vs 1st {}",
            mean(2),
            mean(1)
        );
    }

    #[test]
    fn replica_probes_have_latency() {
        let mut world = build_world(WorldConfig::quick(45));
        let spec = ExperimentSpec::light();
        let record = run_experiment(&mut world, 0, 0, &spec);
        let with_rtt = record
            .replica_probes
            .iter()
            .filter(|p| p.rtt_us.is_some())
            .count();
        assert!(
            with_rtt * 2 >= record.replica_probes.len(),
            "{with_rtt}/{}",
            record.replica_probes.len()
        );
        let with_ttfb = record
            .replica_probes
            .iter()
            .filter(|p| p.ttfb_us.is_some())
            .count();
        assert!(with_ttfb > 0);
    }
}
