//! Experiment specification, mirroring §3.2 of the paper.

/// What one experiment does and how aggressively it probes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentSpec {
    /// Ping probes per target.
    pub ping_count: u32,
    /// Maximum traceroute depth.
    pub trace_max_ttl: u8,
    /// Traceroute at most this many replicas per experiment (rotating);
    /// the paper's 2.4 M pings/traceroutes/GETs over 280 k experiments
    /// imply per-experiment subsampling.
    pub replica_trace_sample: usize,
    /// Run resolver traceroutes every Nth experiment of a device.
    pub resolver_trace_every: u32,
    /// Issue the back-to-back second lookup (Fig. 7).
    pub double_lookup: bool,
    /// Probe replicas with HTTP GETs.
    pub http_probes: bool,
}

impl Default for ExperimentSpec {
    fn default() -> Self {
        ExperimentSpec {
            ping_count: 2,
            trace_max_ttl: 16,
            replica_trace_sample: 2,
            resolver_trace_every: 4,
            double_lookup: true,
            http_probes: true,
        }
    }
}

impl ExperimentSpec {
    /// A lighter spec for tests and microbenches.
    pub fn light() -> Self {
        ExperimentSpec {
            ping_count: 1,
            trace_max_ttl: 12,
            replica_trace_sample: 1,
            resolver_trace_every: 8,
            double_lookup: true,
            http_probes: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_modest() {
        let s = ExperimentSpec::default();
        assert!(s.ping_count <= 3);
        assert!(s.replica_trace_sample <= 3);
        assert!(s.double_lookup);
    }

    #[test]
    fn light_is_lighter() {
        let d = ExperimentSpec::default();
        let l = ExperimentSpec::light();
        assert!(l.ping_count <= d.ping_count);
        assert!(l.replica_trace_sample <= d.replica_trace_sample);
    }
}
