//! Property-based tests for the analysis toolkit: CDF algebra, cosine
//! similarity bounds, and KS-statistic behaviour.

use analysis::{Cdf, ReplicaMap};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_samples() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..10_000.0, 1..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn quantiles_are_monotone_and_within_range(samples in arb_samples()) {
        let cdf = Cdf::new(samples.clone());
        let lo = cdf.quantile(0.0).unwrap();
        let hi = cdf.quantile(1.0).unwrap();
        let mut prev = lo;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = cdf.quantile(q).unwrap();
            prop_assert!(v >= prev, "quantiles not monotone");
            prop_assert!(v >= lo && v <= hi);
            prev = v;
        }
        let mean = cdf.mean().unwrap();
        prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9);
    }

    #[test]
    fn fraction_leq_is_monotone_from_zero_to_one(samples in arb_samples()) {
        let cdf = Cdf::new(samples);
        let mut prev = 0.0;
        for i in 0..=40 {
            let x = i as f64 * 250.0;
            let f = cdf.fraction_leq(x);
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(f >= prev);
            prev = f;
        }
        prop_assert_eq!(cdf.fraction_leq(f64::MAX), 1.0);
    }

    #[test]
    fn series_is_a_valid_cdf_sketch(samples in arb_samples(), points in 1usize..40) {
        let cdf = Cdf::new(samples);
        let series = cdf.series(points);
        prop_assert_eq!(series.len(), points);
        for w in series.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            prop_assert!(w[0].1 < w[1].1);
        }
        prop_assert!((series.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_is_commutative_in_distribution(a in arb_samples(), b in arb_samples()) {
        let ab = Cdf::new(a.clone()).merge(&Cdf::new(b.clone()));
        let ba = Cdf::new(b).merge(&Cdf::new(a));
        prop_assert_eq!(ab.samples(), ba.samples());
    }

    #[test]
    fn ks_statistic_is_a_bounded_symmetric_premetric(a in arb_samples(), b in arb_samples()) {
        let ca = Cdf::new(a);
        let cb = Cdf::new(b);
        let d = ca.ks_statistic(&cb);
        prop_assert!((0.0..=1.0).contains(&d));
        prop_assert!((d - cb.ks_statistic(&ca)).abs() < 1e-12, "not symmetric");
        prop_assert!(ca.ks_statistic(&ca) < 1e-12, "not reflexive");
    }

    #[test]
    fn cosine_similarity_is_bounded_and_symmetric(
        a_obs in proptest::collection::vec((0u8..32, 1usize..5), 1..40),
        b_obs in proptest::collection::vec((0u8..32, 1usize..5), 1..40),
    ) {
        let build = |obs: &[(u8, usize)]| {
            let mut m = ReplicaMap::default();
            for &(ip, n) in obs {
                for _ in 0..n {
                    m.observe(Ipv4Addr::new(90, 0, ip, 1));
                }
            }
            m
        };
        let ma = build(&a_obs);
        let mb = build(&b_obs);
        let sim = ma.cosine_similarity(&mb);
        prop_assert!((0.0..=1.0).contains(&sim), "similarity {sim} out of bounds");
        prop_assert!((sim - mb.cosine_similarity(&ma)).abs() < 1e-12);
        // Self-similarity is exactly 1.
        prop_assert!((ma.cosine_similarity(&ma) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn replica_map_ratios_form_a_distribution(
        obs in proptest::collection::vec(0u8..64, 1..100),
    ) {
        let mut m = ReplicaMap::default();
        for ip in &obs {
            m.observe(Ipv4Addr::new(91, 0, *ip, 1));
        }
        prop_assert_eq!(m.total(), obs.len());
        let sum: f64 = m.iter().map(|(ip, _)| m.ratio(ip)).sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        for (_, count) in m.iter() {
            prop_assert!(count >= 1);
        }
    }
}
