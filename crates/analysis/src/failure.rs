//! Failure-rate analysis over the lookup outcome taxonomy: how often each
//! carrier's resolutions degraded or failed, split by resolver class.
//! Fault-free campaigns produce all-`ok` tables; fault-profile campaigns
//! surface the injected chaos here.

use crate::table::render_table;
use measure::record::{Dataset, Outcome, ResolverKind};
use std::collections::BTreeMap;

/// Outcome counts for one (carrier, resolver class) cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureRow {
    /// Carrier name.
    pub carrier: String,
    /// Resolver class.
    pub resolver: ResolverKind,
    /// Counts indexed like [`Outcome::ALL`].
    pub counts: [u64; Outcome::ALL.len()],
}

impl FailureRow {
    /// Total lookups in this cell.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Count for one outcome.
    pub fn count(&self, outcome: Outcome) -> u64 {
        let idx = Outcome::ALL
            .iter()
            .position(|o| *o == outcome)
            .expect("outcome is in Outcome::ALL");
        self.counts[idx]
    }

    /// Fraction of lookups that ended without a usable answer.
    pub fn failure_rate(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let failed: u64 = Outcome::ALL
            .iter()
            .zip(self.counts.iter())
            .filter(|(o, _)| !o.answered())
            .map(|(_, n)| n)
            .sum();
        failed as f64 / total as f64
    }

    /// Fraction that answered only via a degraded path (TCP retry or
    /// failover).
    pub fn degraded_rate(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let degraded = self.count(Outcome::TruncatedRecovered) + self.count(Outcome::FailedOver);
        degraded as f64 / total as f64
    }
}

/// Aggregates lookup outcomes per (carrier, resolver class), in
/// deterministic carrier-then-resolver order. Cells with no lookups are
/// omitted.
pub fn failure_rates(ds: &Dataset) -> Vec<FailureRow> {
    let mut counts: BTreeMap<(u8, ResolverKind), [u64; Outcome::ALL.len()]> = BTreeMap::new();
    for r in &ds.records {
        for l in &r.lookups {
            let cell = counts.entry((r.carrier, l.resolver)).or_default();
            let idx = Outcome::ALL
                .iter()
                .position(|o| *o == l.outcome)
                .expect("outcome is in Outcome::ALL");
            cell[idx] += 1;
        }
    }
    counts
        .into_iter()
        .map(|((carrier, resolver), cell)| FailureRow {
            carrier: ds.carrier_names[carrier as usize].clone(),
            resolver,
            counts: cell,
        })
        .collect()
}

/// Renders the failure-taxonomy table: one row per (carrier, resolver
/// class) with per-outcome counts and the derived failure/degraded rates.
pub fn render_failure_report(ds: &Dataset) -> String {
    let rows = failure_rates(ds);
    let mut headers = vec!["carrier", "resolver"];
    headers.extend(Outcome::ALL.iter().map(|o| o.label()));
    headers.push("fail%");
    headers.push("degraded%");
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            let mut cells = vec![row.carrier.clone(), row.resolver.label().to_string()];
            cells.extend(row.counts.iter().map(|n| n.to_string()));
            cells.push(format!("{:.2}", row.failure_rate() * 100.0));
            cells.push(format!("{:.2}", row.degraded_rate() * 100.0));
            cells
        })
        .collect();
    render_table(
        "Lookup outcomes per carrier and resolver class",
        &headers,
        &table_rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellsim::radio::RadioTech;
    use measure::record::{DnsTiming, ExperimentRecord};
    use netsim::time::SimTime;
    use std::net::Ipv4Addr;

    fn timing(resolver: ResolverKind, outcome: Outcome) -> DnsTiming {
        DnsTiming {
            resolver,
            resolver_addr: Ipv4Addr::new(8, 8, 8, 8),
            domain_idx: 0,
            attempt: 1,
            elapsed_us: outcome.answered().then_some(10_000),
            addrs: vec![],
            outcome,
        }
    }

    fn dataset(lookups: Vec<DnsTiming>) -> Dataset {
        Dataset {
            carrier_names: vec!["AT&T".into()],
            records: vec![ExperimentRecord {
                device_id: 0,
                carrier: 0,
                t: SimTime::ZERO,
                radio: RadioTech::Lte,
                x_km: 0.0,
                y_km: 0.0,
                is_static: true,
                device_ip: Ipv4Addr::new(10, 0, 0, 1),
                gateway_site: 0,
                configured_dns: Ipv4Addr::new(100, 0, 0, 1),
                lookups,
                identities: vec![],
                resolver_probes: vec![],
                replica_probes: vec![],
            }],
            ..Dataset::default()
        }
    }

    #[test]
    fn rates_count_failures_and_degradations() {
        let ds = dataset(vec![
            timing(ResolverKind::Local, Outcome::Ok),
            timing(ResolverKind::Local, Outcome::Ok),
            timing(ResolverKind::Local, Outcome::ServFail),
            timing(ResolverKind::Local, Outcome::TruncatedRecovered),
        ]);
        let rows = failure_rates(&ds);
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.total(), 4);
        assert_eq!(row.count(Outcome::ServFail), 1);
        assert!((row.failure_rate() - 0.25).abs() < 1e-12);
        assert!((row.degraded_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn rows_split_by_resolver_class() {
        let ds = dataset(vec![
            timing(ResolverKind::Local, Outcome::Ok),
            timing(ResolverKind::Google, Outcome::Timeout),
        ]);
        let rows = failure_rates(&ds);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].resolver, ResolverKind::Local);
        assert_eq!(rows[1].resolver, ResolverKind::Google);
        assert!((rows[1].failure_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn report_renders_all_outcome_columns() {
        let ds = dataset(vec![timing(ResolverKind::Local, Outcome::Unreachable)]);
        let report = render_failure_report(&ds);
        for o in Outcome::ALL {
            assert!(report.contains(o.label()), "missing column {}", o.label());
        }
        assert!(report.contains("AT&T"));
    }
}
