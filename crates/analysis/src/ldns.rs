//! LDNS-pair analysis: pairing consistency (Table 3), client↔resolver
//! temporal churn (Figs. 8, 9, 12), and resolver counting (Table 5).

use measure::record::{Dataset, ResolverKind};
use netsim::addr::Prefix;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// Table 3 row: the LDNS pair structure of one carrier.
#[derive(Debug, Clone, PartialEq)]
pub struct LdnsPairSummary {
    /// Distinct client-facing resolver addresses observed.
    pub client_facing: usize,
    /// Distinct external-facing resolver addresses observed.
    pub external: usize,
    /// Distinct (client-facing, external) pairs.
    pub pairs: usize,
    /// Pairing consistency in percent: the measurement-weighted share of
    /// each client-facing resolver's dominant external pairing (§4: a
    /// client resolver balanced equally over two externals scores 50%).
    pub consistency_pct: f64,
}

/// Computes the Table 3 row for one carrier.
pub fn ldns_pairs(ds: &Dataset, carrier: usize) -> LdnsPairSummary {
    // (client-facing) -> external -> count
    let mut by_cf: BTreeMap<Ipv4Addr, BTreeMap<Ipv4Addr, usize>> = BTreeMap::new();
    for r in ds.of_carrier(carrier) {
        for id in &r.identities {
            if id.resolver == ResolverKind::Local {
                if let Some(ext) = id.external_addr {
                    *by_cf
                        .entry(id.queried_addr)
                        .or_default()
                        .entry(ext)
                        .or_insert(0) += 1;
                }
            }
        }
    }
    let mut externals: BTreeSet<Ipv4Addr> = BTreeSet::new();
    let mut pairs = 0usize;
    let mut total = 0usize;
    let mut dominant = 0usize;
    for exts in by_cf.values() {
        pairs += exts.len();
        let sum: usize = exts.values().sum();
        let max = exts.values().copied().max().unwrap_or(0);
        total += sum;
        dominant += max;
        externals.extend(exts.keys().copied());
    }
    LdnsPairSummary {
        client_facing: by_cf.len(),
        external: externals.len(),
        pairs,
        consistency_pct: if total == 0 {
            0.0
        } else {
            100.0 * dominant as f64 / total as f64
        },
    }
}

/// One point of a resolver-enumeration time series (Figs. 8, 9, 12): at
/// time `t_hours`, the device observed its `ip_index`-th distinct resolver
/// IP and `prefix_index`-th distinct /24, in order of first appearance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnumPoint {
    /// Observation time in hours since the campaign start.
    pub t_hours: f64,
    /// Order-of-appearance index of the resolver IP (1-based).
    pub ip_index: usize,
    /// Order-of-appearance index of the resolver /24 (1-based).
    pub prefix_index: usize,
}

/// Enumerates the external resolvers one device observed over time through
/// the given resolver path.
pub fn resolver_enumeration(ds: &Dataset, device_id: u32, kind: ResolverKind) -> Vec<EnumPoint> {
    let mut ip_order: Vec<Ipv4Addr> = Vec::new();
    let mut prefix_order: Vec<Prefix> = Vec::new();
    let mut points = Vec::new();
    for r in ds.records.iter().filter(|r| r.device_id == device_id) {
        for id in &r.identities {
            if id.resolver != kind {
                continue;
            }
            let Some(ext) = id.external_addr else {
                continue;
            };
            let ip_index = match ip_order.iter().position(|&a| a == ext) {
                Some(i) => i + 1,
                None => {
                    ip_order.push(ext);
                    ip_order.len()
                }
            };
            let p = Prefix::slash24_of(ext);
            let prefix_index = match prefix_order.iter().position(|&q| q == p) {
                Some(i) => i + 1,
                None => {
                    prefix_order.push(p);
                    prefix_order.len()
                }
            };
            points.push(EnumPoint {
                t_hours: r.t.as_secs() as f64 / 3600.0,
                ip_index,
                prefix_index,
            });
        }
    }
    points
}

/// Distinct external resolver IPs and /24s a device saw (summary of the
/// enumeration — "a client within LG U+'s network witnessed over 65
/// external resolver IPs … within only 2 /24 prefixes").
pub fn churn_summary(points: &[EnumPoint]) -> (usize, usize) {
    let ips = points.iter().map(|p| p.ip_index).max().unwrap_or(0);
    let prefixes = points.iter().map(|p| p.prefix_index).max().unwrap_or(0);
    (ips, prefixes)
}

/// Fig. 9: enumeration restricted to records within `radius_km` of the
/// device's dominant location (the paper uses a 1 km-radius cluster).
pub fn static_location_enumeration(ds: &Dataset, device_id: u32, radius_km: f64) -> Vec<EnumPoint> {
    let recs: Vec<_> = ds
        .records
        .iter()
        .filter(|r| r.device_id == device_id)
        .collect();
    if recs.is_empty() {
        return Vec::new();
    }
    // Centroid of all observations.
    let cx = recs.iter().map(|r| r.x_km as f64).sum::<f64>() / recs.len() as f64;
    let cy = recs.iter().map(|r| r.y_km as f64).sum::<f64>() / recs.len() as f64;
    let mut ip_order: Vec<Ipv4Addr> = Vec::new();
    let mut prefix_order: Vec<Prefix> = Vec::new();
    let mut points = Vec::new();
    for r in recs {
        let dx = r.x_km as f64 - cx;
        let dy = r.y_km as f64 - cy;
        if (dx * dx + dy * dy).sqrt() > radius_km {
            continue;
        }
        let Some(ext) = r.local_external() else {
            continue;
        };
        let ip_index = match ip_order.iter().position(|&a| a == ext) {
            Some(i) => i + 1,
            None => {
                ip_order.push(ext);
                ip_order.len()
            }
        };
        let p = Prefix::slash24_of(ext);
        let prefix_index = match prefix_order.iter().position(|&q| q == p) {
            Some(i) => i + 1,
            None => {
                prefix_order.push(p);
                prefix_order.len()
            }
        };
        points.push(EnumPoint {
            t_hours: r.t.as_secs() as f64 / 3600.0,
            ip_index,
            prefix_index,
        });
    }
    points
}

/// Table 5 cell: distinct resolver IPs and /24s observed from a carrier via
/// one resolver path.
pub fn resolver_counts(ds: &Dataset, carrier: usize, kind: ResolverKind) -> (usize, usize) {
    let mut ips: BTreeSet<Ipv4Addr> = BTreeSet::new();
    let mut prefixes: BTreeSet<Prefix> = BTreeSet::new();
    for r in ds.of_carrier(carrier) {
        for id in &r.identities {
            if id.resolver == kind {
                if let Some(ext) = id.external_addr {
                    ips.insert(ext);
                    prefixes.insert(Prefix::slash24_of(ext));
                }
            }
        }
    }
    (ips.len(), prefixes.len())
}

/// The device with the most records on a carrier (used to pick the
/// representative client the Fig. 8/12 panels plot).
pub fn busiest_device(ds: &Dataset, carrier: usize) -> Option<u32> {
    let mut counts: BTreeMap<u32, usize> = BTreeMap::new();
    for r in ds.of_carrier(carrier) {
        *counts.entry(r.device_id).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .max_by_key(|&(id, n)| (n, std::cmp::Reverse(id)))
        .map(|(id, _)| id)
}

/// Like [`busiest_device`] but restricted to stationary devices (the
/// Fig. 9 population: churn despite no movement).
pub fn busiest_static_device(ds: &Dataset, carrier: usize) -> Option<u32> {
    let mut counts: BTreeMap<u32, usize> = BTreeMap::new();
    for r in ds.of_carrier(carrier).filter(|r| r.is_static) {
        *counts.entry(r.device_id).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .max_by_key(|&(id, n)| (n, std::cmp::Reverse(id)))
        .map(|(id, _)| id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use measure::record::{ExperimentRecord, ResolverIdentity};
    use netsim::time::SimTime;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr::new(a, b, c, d)
    }

    fn rec(device: u32, t_hours: u64, cf: Ipv4Addr, ext: Option<Ipv4Addr>) -> ExperimentRecord {
        ExperimentRecord {
            device_id: device,
            carrier: 0,
            t: SimTime::from_micros(t_hours * 3_600_000_000),
            radio: cellsim::radio::RadioTech::Lte,
            x_km: 0.0,
            y_km: 0.0,
            is_static: true,
            device_ip: ip(10, 0, 0, 1),
            gateway_site: 0,
            configured_dns: cf,
            lookups: vec![],
            identities: vec![ResolverIdentity {
                resolver: ResolverKind::Local,
                queried_addr: cf,
                external_addr: ext,
            }],
            resolver_probes: vec![],
            replica_probes: vec![],
        }
    }

    fn ds(records: Vec<ExperimentRecord>) -> Dataset {
        Dataset {
            records,
            carrier_names: vec!["A".into()],
            ..Dataset::default()
        }
    }

    #[test]
    fn consistency_of_balanced_pool_is_50pct() {
        let cf = ip(100, 53, 0, 1);
        let ds = ds(vec![
            rec(1, 0, cf, Some(ip(100, 110, 0, 1))),
            rec(1, 1, cf, Some(ip(100, 110, 0, 2))),
            rec(1, 2, cf, Some(ip(100, 110, 0, 1))),
            rec(1, 3, cf, Some(ip(100, 110, 0, 2))),
        ]);
        let s = ldns_pairs(&ds, 0);
        assert_eq!(s.client_facing, 1);
        assert_eq!(s.external, 2);
        assert_eq!(s.pairs, 2);
        assert!((s.consistency_pct - 50.0).abs() < 1e-9);
    }

    #[test]
    fn sticky_pairing_is_100pct() {
        let cf = ip(100, 53, 0, 1);
        let ds = ds(vec![
            rec(1, 0, cf, Some(ip(100, 110, 0, 1))),
            rec(1, 1, cf, Some(ip(100, 110, 0, 1))),
        ]);
        let s = ldns_pairs(&ds, 0);
        assert_eq!(s.pairs, 1);
        assert!((s.consistency_pct - 100.0).abs() < 1e-9);
    }

    #[test]
    fn enumeration_orders_by_first_appearance() {
        let cf = ip(100, 53, 0, 1);
        let ds = ds(vec![
            rec(1, 0, cf, Some(ip(100, 110, 0, 1))),
            rec(1, 1, cf, Some(ip(100, 111, 0, 9))),
            rec(1, 2, cf, Some(ip(100, 110, 0, 1))),
            rec(1, 3, cf, Some(ip(100, 110, 0, 7))),
        ]);
        let pts = resolver_enumeration(&ds, 1, ResolverKind::Local);
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[0].ip_index, 1);
        assert_eq!(pts[1].ip_index, 2);
        assert_eq!(pts[2].ip_index, 1);
        assert_eq!(pts[3].ip_index, 3);
        // /24 indexes: 100.110.0/24 then 100.111.0/24 then back then same.
        assert_eq!(pts[3].prefix_index, 1);
        assert_eq!(churn_summary(&pts), (3, 2));
    }

    #[test]
    fn static_filter_drops_remote_records() {
        let cf = ip(100, 53, 0, 1);
        let mut far = rec(1, 1, cf, Some(ip(100, 111, 0, 9)));
        far.x_km = 500.0;
        let ds = ds(vec![rec(1, 0, cf, Some(ip(100, 110, 0, 1))), far]);
        // Centroid is at x=250; both records are >1 km away from it, so an
        // aggressive radius keeps nothing, a generous one keeps both.
        assert!(static_location_enumeration(&ds, 1, 1.0).is_empty());
        assert_eq!(static_location_enumeration(&ds, 1, 1000.0).len(), 2);
    }

    #[test]
    fn resolver_counts_dedupe() {
        let cf = ip(100, 53, 0, 1);
        let ds = ds(vec![
            rec(1, 0, cf, Some(ip(100, 110, 0, 1))),
            rec(1, 1, cf, Some(ip(100, 110, 0, 1))),
            rec(2, 1, cf, Some(ip(100, 110, 0, 2))),
        ]);
        assert_eq!(resolver_counts(&ds, 0, ResolverKind::Local), (2, 1));
        assert_eq!(resolver_counts(&ds, 0, ResolverKind::Google), (0, 0));
    }

    #[test]
    fn busiest_device_picks_max_records() {
        let cf = ip(100, 53, 0, 1);
        let ds = ds(vec![
            rec(1, 0, cf, None),
            rec(2, 0, cf, None),
            rec(2, 1, cf, None),
        ]);
        assert_eq!(busiest_device(&ds, 0), Some(2));
        assert_eq!(busiest_device(&ds, 3), None);
    }
}
