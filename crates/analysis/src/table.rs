//! Plain-text rendering of tables and CDF series, shared by the `repro`
//! harness and the examples.

use crate::cdf::Cdf;
use std::fmt::Write as _;

/// Renders an aligned text table.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let mut header_line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(header_line, "{h:<w$}  ", w = w);
    }
    let _ = writeln!(out, "{}", header_line.trim_end());
    let _ = writeln!(out, "{}", "-".repeat(header_line.trim_end().len()));
    for row in rows {
        let mut line = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(line, "{cell:<w$}  ", w = w);
        }
        let _ = writeln!(out, "{}", line.trim_end());
    }
    out
}

/// Renders one or more labeled CDFs as percentile rows (one row per
/// percentile, one column per series) — the textual form of each figure.
pub fn render_cdfs(title: &str, series: &[(&str, &Cdf)], unit: &str) -> String {
    let percentiles = [5, 10, 25, 50, 75, 80, 90, 95, 99];
    let headers: Vec<String> = std::iter::once("pct".to_string())
        .chain(series.iter().map(|(name, _)| name.to_string()))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let rows: Vec<Vec<String>> = percentiles
        .iter()
        .map(|&p| {
            let mut row = vec![format!("p{p}")];
            for (_, cdf) in series {
                row.push(
                    cdf.quantile(p as f64 / 100.0)
                        .map(|v| format!("{v:.1}{unit}"))
                        .unwrap_or_else(|| "-".into()),
                );
            }
            row
        })
        .collect();
    let mut out = render_table(title, &header_refs, &rows);
    let counts: Vec<String> = series
        .iter()
        .map(|(name, cdf)| format!("{name}: n={}", cdf.len()))
        .collect();
    let _ = writeln!(out, "[{}]", counts.join(", "));
    out
}

/// Renders labeled CDFs as an ASCII plot (x = value up to the pooled p99,
/// y = cumulative fraction), one glyph per series. Used by the repro
/// harness for the single-panel figures.
pub fn render_ascii_cdf(
    series: &[(&str, &Cdf)],
    unit: &str,
    width: usize,
    height: usize,
) -> String {
    const GLYPHS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];
    let width = width.clamp(20, 160);
    let height = height.clamp(5, 40);
    let nonempty: Vec<&(&str, &Cdf)> = series.iter().filter(|(_, c)| !c.is_empty()).collect();
    if nonempty.is_empty() {
        return String::from("(no samples)\n");
    }
    let x_min = nonempty
        .iter()
        .filter_map(|(_, c)| c.quantile(0.0))
        .fold(f64::MAX, f64::min);
    let x_max = nonempty
        .iter()
        .filter_map(|(_, c)| c.quantile(0.99))
        .fold(f64::MIN, f64::max);
    let span = (x_max - x_min).max(1e-9);
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, cdf)) in nonempty.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for (col, column) in (0..width).zip(0..) {
            let x = x_min + span * col as f64 / (width - 1) as f64;
            let f = cdf.fraction_leq(x);
            let row = ((1.0 - f) * (height - 1) as f64).round() as usize;
            grid[row.min(height - 1)][column] = glyph;
        }
    }
    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let frac = 1.0 - r as f64 / (height - 1) as f64;
        let label = if r == 0 || r == height - 1 || r == height / 2 {
            format!("{frac:>4.2} |")
        } else {
            String::from("     |")
        };
        let line: String = row.iter().collect();
        let _ = writeln!(out, "{label}{}", line.trim_end());
    }
    let _ = writeln!(out, "     +{}", "-".repeat(width));
    let _ = writeln!(
        out,
        "      {:<w$}{:>w2$}",
        format!("{x_min:.0}{unit}"),
        format!("{x_max:.0}{unit} (p99)"),
        w = width / 2,
        w2 = width - width / 2,
    );
    let legend: Vec<String> = nonempty
        .iter()
        .enumerate()
        .map(|(i, (name, _))| format!("{} {name}", GLYPHS[i % GLYPHS.len()]))
        .collect();
    let _ = writeln!(out, "      [{}]", legend.join("   "));
    out
}

/// CSV form of labeled CDF series (value, cumulative fraction per series).
pub fn cdfs_csv(series: &[(&str, &Cdf)], points: usize) -> String {
    let mut out = String::from("series,value,cum_frac\n");
    for (name, cdf) in series {
        for (v, q) in cdf.series(points) {
            let _ = writeln!(out, "{name},{v:.3},{q:.4}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned_and_complete() {
        let t = render_table(
            "Demo",
            &["name", "value"],
            &[
                vec!["alpha".into(), "1".into()],
                vec!["b".into(), "22222".into()],
            ],
        );
        assert!(t.contains("== Demo =="));
        assert!(t.contains("alpha"));
        assert!(t.contains("22222"));
        // All data lines have the same column start for the second column.
        let lines: Vec<&str> = t.lines().skip(1).collect();
        let col = lines[0].find("value").unwrap();
        assert_eq!(lines[2].find('1'), Some(col));
    }

    #[test]
    fn cdf_render_contains_percentiles() {
        let c = Cdf::new((1..=100).map(|x| x as f64).collect());
        let s = render_cdfs("Fig X", &[("local", &c)], "ms");
        assert!(s.contains("p50"));
        // Nearest-rank on 1..=100 at q=0.5 lands on the 51st sample.
        assert!(s.contains("51.0ms"));
        assert!(s.contains("n=100"));
    }

    #[test]
    fn empty_cdf_renders_dashes() {
        let c = Cdf::default();
        let s = render_cdfs("Fig Y", &[("empty", &c)], "ms");
        assert!(s.contains('-'));
    }

    #[test]
    fn ascii_plot_renders_monotone_curves() {
        let fast = Cdf::new((10..110).map(|x| x as f64).collect());
        let slow = Cdf::new((50..250).map(|x| x as f64).collect());
        let plot = render_ascii_cdf(&[("fast", &fast), ("slow", &slow)], "ms", 60, 12);
        assert!(plot.contains('*'));
        assert!(plot.contains('o'));
        assert!(plot.contains("fast"));
        assert!(plot.contains("1.00 |"));
        assert!(plot.contains("0.00 |"));
        // The fast curve's glyph appears left of the slow curve's at the top.
        let top_star = plot.lines().position(|l| l.contains('*')).unwrap();
        let top_o = plot.lines().position(|l| l.contains('o')).unwrap();
        assert!(top_star <= top_o, "fast curve should reach 1.0 first");
    }

    #[test]
    fn ascii_plot_handles_empty_series() {
        let empty = Cdf::default();
        let plot = render_ascii_cdf(&[("none", &empty)], "ms", 40, 8);
        assert_eq!(plot, "(no samples)\n");
    }

    #[test]
    fn csv_has_rows_per_series() {
        let c = Cdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        let csv = cdfs_csv(&[("a", &c), ("b", &c)], 4);
        assert_eq!(csv.lines().count(), 1 + 8);
        assert!(csv.starts_with("series,value,cum_frac"));
    }
}
