//! Table 4: external reachability of carrier DNS resolvers.

use measure::record::Dataset;

/// One Table 4 row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReachSummary {
    /// Carrier name.
    pub carrier: String,
    /// Resolvers probed.
    pub total: usize,
    /// Resolvers that answered ping from the university.
    pub ping: usize,
    /// Resolvers reached by traceroute.
    pub traceroute: usize,
}

/// Summarizes the university-vantage probes per carrier.
pub fn reachability(ds: &Dataset) -> Vec<ReachSummary> {
    (0..ds.carrier_names.len())
        .map(|c| {
            let probes: Vec<_> = ds
                .external_reach
                .iter()
                .filter(|p| p.carrier as usize == c)
                .collect();
            ReachSummary {
                carrier: ds.carrier_names[c].clone(),
                total: probes.len(),
                ping: probes.iter().filter(|p| p.ping_ok).count(),
                traceroute: probes.iter().filter(|p| p.traceroute_reached).count(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use measure::record::ExternalReachProbe;
    use std::net::Ipv4Addr;

    #[test]
    fn summarizes_per_carrier() {
        let ds = Dataset {
            carrier_names: vec!["A".into(), "B".into()],
            external_reach: vec![
                ExternalReachProbe {
                    carrier: 0,
                    target: Ipv4Addr::new(100, 110, 0, 1),
                    ping_ok: true,
                    traceroute_reached: false,
                    responding_hops: 3,
                },
                ExternalReachProbe {
                    carrier: 0,
                    target: Ipv4Addr::new(100, 110, 0, 2),
                    ping_ok: false,
                    traceroute_reached: false,
                    responding_hops: 2,
                },
                ExternalReachProbe {
                    carrier: 1,
                    target: Ipv4Addr::new(101, 110, 0, 1),
                    ping_ok: false,
                    traceroute_reached: false,
                    responding_hops: 1,
                },
            ],
            ..Dataset::default()
        };
        let rows = reachability(&ds);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].total, 2);
        assert_eq!(rows[0].ping, 1);
        assert_eq!(rows[0].traceroute, 0);
        assert_eq!(rows[1].ping, 0);
    }
}
