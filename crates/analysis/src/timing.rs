//! Resolution-time extraction for Figs. 3, 5, 6, 7, and 13.

use crate::cdf::Cdf;
use cellsim::radio::RadioTech;
use measure::record::{Dataset, ResolverKind};
use std::collections::BTreeMap;

/// Milliseconds from a microsecond option.
fn ms(us: Option<u32>) -> Option<f64> {
    us.map(|u| u as f64 / 1000.0)
}

/// Fig. 3: per carrier, DNS resolution time (local resolver) grouped by the
/// radio technology active during the resolution.
pub fn resolution_by_radio(ds: &Dataset, carrier: usize) -> BTreeMap<RadioTech, Cdf> {
    let mut buckets: BTreeMap<RadioTech, Vec<f64>> = BTreeMap::new();
    for r in ds.of_carrier(carrier) {
        for l in &r.lookups {
            if l.resolver == ResolverKind::Local && l.attempt == 1 {
                if let Some(v) = ms(l.elapsed_us) {
                    buckets.entry(r.radio).or_default().push(v);
                }
            }
        }
    }
    buckets.into_iter().map(|(k, v)| (k, Cdf::new(v))).collect()
}

/// Figs. 5/6 and 13: per carrier, resolution-time CDF for one resolver kind
/// (first lookups only, so cache state matches the paper's methodology).
pub fn resolution_cdf(ds: &Dataset, carrier: usize, kind: ResolverKind) -> Cdf {
    Cdf::from_iter(ds.of_carrier(carrier).flat_map(|r| {
        r.lookups
            .iter()
            .filter(move |l| l.resolver == kind && l.attempt == 1)
            .filter_map(|l| ms(l.elapsed_us))
    }))
}

/// Fig. 7: first vs second back-to-back lookup CDFs, US carriers combined
/// (pass the US carrier indices).
pub fn cache_comparison(ds: &Dataset, carriers: &[usize]) -> (Cdf, Cdf) {
    let collect = |attempt: u8| {
        Cdf::from_iter(
            ds.records
                .iter()
                .filter(|r| carriers.contains(&(r.carrier as usize)))
                .flat_map(move |r| {
                    r.lookups
                        .iter()
                        .filter(move |l| l.resolver == ResolverKind::Local && l.attempt == attempt)
                        .filter_map(|l| ms(l.elapsed_us))
                }),
        )
    };
    (collect(1), collect(2))
}

/// Estimated cache-miss fraction from the back-to-back pair: the fraction
/// of first lookups that took at least `threshold_ms` longer than their
/// paired second lookup.
pub fn cache_miss_fraction(ds: &Dataset, carriers: &[usize], threshold_ms: f64) -> f64 {
    let mut pairs = 0usize;
    let mut misses = 0usize;
    for r in ds
        .records
        .iter()
        .filter(|r| carriers.contains(&(r.carrier as usize)))
    {
        // lookups are ordered attempt 1 then attempt 2 per (domain, kind).
        let locals: Vec<_> = r
            .lookups
            .iter()
            .filter(|l| l.resolver == ResolverKind::Local)
            .collect();
        for pair in locals.chunks(2) {
            if let [first, second] = pair {
                if let (Some(a), Some(b)) = (ms(first.elapsed_us), ms(second.elapsed_us)) {
                    pairs += 1;
                    if a - b >= threshold_ms {
                        misses += 1;
                    }
                }
            }
        }
    }
    if pairs == 0 {
        0.0
    } else {
        misses as f64 / pairs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnswire::name::DnsName;
    use measure::record::{DnsTiming, ExperimentRecord};
    use netsim::time::SimTime;
    use std::net::Ipv4Addr;

    fn record(carrier: u8, radio: RadioTech, locals_us: &[(u8, Option<u32>)]) -> ExperimentRecord {
        ExperimentRecord {
            device_id: 0,
            carrier,
            t: SimTime::ZERO,
            radio,
            x_km: 0.0,
            y_km: 0.0,
            is_static: true,
            device_ip: Ipv4Addr::new(10, 0, 0, 1),
            gateway_site: 0,
            configured_dns: Ipv4Addr::new(100, 0, 0, 1),
            lookups: locals_us
                .iter()
                .map(|&(attempt, us)| DnsTiming {
                    resolver: ResolverKind::Local,
                    resolver_addr: Ipv4Addr::new(100, 0, 0, 1),
                    domain_idx: 0,
                    attempt,
                    elapsed_us: us,
                    addrs: vec![],
                    outcome: if us.is_some() {
                        measure::record::Outcome::Ok
                    } else {
                        measure::record::Outcome::Timeout
                    },
                })
                .collect(),
            identities: vec![],
            resolver_probes: vec![],
            replica_probes: vec![],
        }
    }

    fn dataset(records: Vec<ExperimentRecord>) -> Dataset {
        Dataset {
            records,
            domains: vec![DnsName::parse("m.yelp.com").unwrap()],
            carrier_names: vec!["A".into(), "B".into()],
            ..Dataset::default()
        }
    }

    #[test]
    fn groups_by_radio() {
        let ds = dataset(vec![
            record(0, RadioTech::Lte, &[(1, Some(40_000))]),
            record(0, RadioTech::Umts, &[(1, Some(200_000))]),
            record(1, RadioTech::Lte, &[(1, Some(42_000))]),
        ]);
        let by_radio = resolution_by_radio(&ds, 0);
        assert_eq!(by_radio.len(), 2);
        assert_eq!(by_radio[&RadioTech::Lte].median(), Some(40.0));
        assert_eq!(by_radio[&RadioTech::Umts].median(), Some(200.0));
    }

    #[test]
    fn resolution_cdf_filters_attempt_and_kind() {
        let ds = dataset(vec![record(
            0,
            RadioTech::Lte,
            &[(1, Some(50_000)), (2, Some(10_000))],
        )]);
        let c = resolution_cdf(&ds, 0, ResolverKind::Local);
        assert_eq!(c.len(), 1);
        assert_eq!(c.median(), Some(50.0));
    }

    #[test]
    fn cache_comparison_splits_attempts() {
        let ds = dataset(vec![record(
            0,
            RadioTech::Lte,
            &[(1, Some(90_000)), (2, Some(30_000))],
        )]);
        let (first, second) = cache_comparison(&ds, &[0]);
        assert_eq!(first.median(), Some(90.0));
        assert_eq!(second.median(), Some(30.0));
    }

    #[test]
    fn miss_fraction_thresholds() {
        let ds = dataset(vec![
            record(0, RadioTech::Lte, &[(1, Some(90_000)), (2, Some(30_000))]),
            record(0, RadioTech::Lte, &[(1, Some(31_000)), (2, Some(30_000))]),
        ]);
        let f = cache_miss_fraction(&ds, &[0], 20.0);
        assert!((f - 0.5).abs() < 1e-12);
        // Timeouts are excluded from pairs.
        let ds2 = dataset(vec![record(0, RadioTech::Lte, &[(1, None), (2, Some(1))])]);
        assert_eq!(cache_miss_fraction(&ds2, &[0], 20.0), 0.0);
    }
}
