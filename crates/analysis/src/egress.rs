//! Egress-point detection (§5.2): "we calculated the number of egress
//! points observed by our clients by looking for the first traceroute hop
//! outside a mobile operator's network, taking the previous hop as the
//! network egress point."

use measure::record::Dataset;
use netsim::addr::Prefix;
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

/// All egress points observed for one carrier across the traceroute corpus.
pub fn egress_points(ds: &Dataset, carrier: usize) -> BTreeSet<Ipv4Addr> {
    let inside = ds.carrier_public.get(carrier).copied();
    let mut points = BTreeSet::new();
    for r in ds.of_carrier(carrier) {
        for p in &r.replica_probes {
            if let Some(e) = egress_of_trace(&p.trace_hops, inside) {
                points.insert(e);
            }
        }
    }
    points
}

/// The egress point of one traceroute: the last responding in-carrier hop
/// immediately before the first out-of-carrier hop.
pub fn egress_of_trace(hops: &[Ipv4Addr], inside: Option<Prefix>) -> Option<Ipv4Addr> {
    let inside = inside?;
    let mut last_inside: Option<Ipv4Addr> = None;
    for &hop in hops {
        if inside.contains(hop) {
            last_inside = Some(hop);
        } else if let Some(e) = last_inside {
            return Some(e);
        }
    }
    None
}

/// Per-carrier egress counts, in carrier order (§5.2's 11/45/62/49 row).
pub fn egress_counts(ds: &Dataset) -> Vec<usize> {
    (0..ds.carrier_names.len())
        .map(|c| egress_points(ds, c).len())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr::new(a, b, c, d)
    }

    fn inside() -> Option<Prefix> {
        Some("100.0.0.0/8".parse().unwrap())
    }

    #[test]
    fn finds_last_inside_hop_before_exit() {
        let hops = vec![
            ip(100, 1, 3, 1), // carrier egress router
            ip(80, 0, 4, 1),  // backbone
            ip(90, 0, 2, 1),  // replica
        ];
        assert_eq!(egress_of_trace(&hops, inside()), Some(ip(100, 1, 3, 1)));
    }

    #[test]
    fn silent_interiors_do_not_confuse_detection() {
        // Transparent MPLS hops do not respond, so the first responding hop
        // is already the egress router.
        let hops = vec![ip(100, 1, 7, 1), ip(80, 0, 0, 1)];
        assert_eq!(egress_of_trace(&hops, inside()), Some(ip(100, 1, 7, 1)));
    }

    #[test]
    fn no_exit_means_no_egress() {
        let hops = vec![ip(100, 1, 3, 1), ip(100, 1, 4, 1)];
        assert_eq!(egress_of_trace(&hops, inside()), None);
        assert_eq!(egress_of_trace(&[], inside()), None);
    }

    #[test]
    fn trace_that_starts_outside_yields_none() {
        let hops = vec![ip(80, 0, 0, 1), ip(90, 0, 1, 1)];
        assert_eq!(egress_of_trace(&hops, inside()), None);
    }

    #[test]
    fn missing_prefix_yields_none() {
        let hops = vec![ip(100, 1, 3, 1), ip(80, 0, 0, 1)];
        assert_eq!(egress_of_trace(&hops, None), None);
    }
}
