#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `analysis` — the paper's analysis toolkit: empirical CDFs, resolution
//! timing extraction (Figs. 3, 5–7, 13), LDNS pairing and churn analysis
//! (Table 3, Figs. 8/9/12, Table 5), replica maps with cosine similarity
//! (Figs. 2, 10, 14), egress-point detection (§5.2), and external
//! reachability summaries (Table 4), plus text/CSV rendering shared by the
//! `repro` harness.

pub mod cdf;
pub mod egress;
pub mod failure;
pub mod ldns;
pub mod reach;
pub mod replica;
pub mod report;
pub mod table;
pub mod timing;

pub use cdf::Cdf;
pub use egress::{egress_counts, egress_of_trace, egress_points};
pub use failure::{failure_rates, render_failure_report, FailureRow};
pub use ldns::{
    busiest_device, busiest_static_device, churn_summary, ldns_pairs, resolver_counts,
    resolver_enumeration, static_location_enumeration, EnumPoint, LdnsPairSummary,
};
pub use reach::{reachability, ReachSummary};
pub use replica::{
    cosine_by_prefix, public_equal_or_better, relative_replica_latency, replica_percent_increase,
    resolver_replica_maps, ReplicaMap,
};
pub use report::{all_carrier_reports, carrier_report};
pub use table::{cdfs_csv, render_ascii_cdf, render_cdfs, render_table};
pub use timing::{cache_comparison, cache_miss_fraction, resolution_by_radio, resolution_cdf};
