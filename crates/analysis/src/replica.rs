//! Replica-selection analysis: per-user differential replica performance
//! (Fig. 2), resolver-keyed replica maps and cosine similarity (Fig. 10),
//! and the local-vs-public relative replica latency comparison (Fig. 14).

use crate::cdf::Cdf;
use measure::record::{Dataset, ResolverKind};
use netsim::addr::Prefix;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// A replica usage map: for one observer (user or resolver), the fraction
/// of observations in which each replica was used — §5's
/// `<(ip₁, ratio₁), …, (ipₙ, ratioₙ)>` vector.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ReplicaMap {
    counts: BTreeMap<Ipv4Addr, usize>,
    total: usize,
}

impl ReplicaMap {
    /// Records one observation of `replica`.
    pub fn observe(&mut self, replica: Ipv4Addr) {
        *self.counts.entry(replica).or_insert(0) += 1;
        self.total += 1;
    }

    /// Number of distinct replicas.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Total observations.
    pub fn total(&self) -> usize {
        self.total
    }

    /// The usage ratio of one replica.
    pub fn ratio(&self, replica: Ipv4Addr) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            *self.counts.get(&replica).unwrap_or(&0) as f64 / self.total as f64
        }
    }

    /// Cosine similarity between two maps (§5's formula): the dot product
    /// of the ratio vectors over the product of their norms; 0 = disjoint
    /// replica sets, 1 = identical usage distribution.
    pub fn cosine_similarity(&self, other: &ReplicaMap) -> f64 {
        if self.total == 0 || other.total == 0 {
            return 0.0;
        }
        let dot: f64 = self
            .counts
            .keys()
            .map(|&ip| self.ratio(ip) * other.ratio(ip))
            .sum();
        let norm = |m: &ReplicaMap| -> f64 {
            m.counts
                .keys()
                .map(|&ip| m.ratio(ip).powi(2))
                .sum::<f64>()
                .sqrt()
        };
        let denom = norm(self) * norm(other);
        if denom == 0.0 {
            0.0
        } else {
            (dot / denom).clamp(0.0, 1.0)
        }
    }

    /// Iterates over `(replica, count)`.
    pub fn iter(&self) -> impl Iterator<Item = (Ipv4Addr, usize)> + '_ {
        self.counts.iter().map(|(&ip, &n)| (ip, n))
    }
}

/// Fig. 2: for each user of a carrier and one domain, the percent increase
/// in mean latency of each replica the user was directed to, relative to
/// the best replica that user ever saw. One sample per (user, replica).
pub fn replica_percent_increase(ds: &Dataset, carrier: usize, domain_idx: u8) -> Cdf {
    // user -> replica -> (sum_us, n)
    let mut per_user: BTreeMap<u32, BTreeMap<Ipv4Addr, (u64, u32)>> = BTreeMap::new();
    for r in ds.of_carrier(carrier) {
        for p in &r.replica_probes {
            if p.domain_idx != domain_idx || p.via != ResolverKind::Local {
                continue;
            }
            if let Some(us) = p.rtt_us {
                let e = per_user
                    .entry(r.device_id)
                    .or_default()
                    .entry(p.addr)
                    .or_insert((0, 0));
                e.0 += us as u64;
                e.1 += 1;
            }
        }
    }
    let mut samples = Vec::new();
    for replicas in per_user.values() {
        let means: Vec<f64> = replicas
            .values()
            .map(|&(sum, n)| sum as f64 / n as f64)
            .collect();
        let Some(best) = means.iter().copied().reduce(f64::min) else {
            continue;
        };
        if best <= 0.0 {
            continue;
        }
        for m in means {
            samples.push((m - best) / best * 100.0);
        }
    }
    Cdf::new(samples)
}

/// Builds resolver-keyed replica maps for one domain: external resolver →
/// usage map of the replicas its answers pointed at (from the lookup
/// answers through the local path, attributed to the external resolver the
/// same experiment's whoami observed).
pub fn resolver_replica_maps(
    ds: &Dataset,
    carrier: usize,
    domain_idx: u8,
) -> BTreeMap<Ipv4Addr, ReplicaMap> {
    let mut maps: BTreeMap<Ipv4Addr, ReplicaMap> = BTreeMap::new();
    for r in ds.of_carrier(carrier) {
        let Some(ext) = r.local_external() else {
            continue;
        };
        for l in &r.lookups {
            if l.resolver == ResolverKind::Local && l.attempt == 1 && l.domain_idx == domain_idx {
                let map = maps.entry(ext).or_default();
                for &a in &l.addrs {
                    map.observe(a);
                }
            }
        }
    }
    maps
}

/// Fig. 10: cosine similarities of replica maps between resolver pairs in
/// the same /24 and pairs in different /24s.
pub fn cosine_by_prefix(maps: &BTreeMap<Ipv4Addr, ReplicaMap>) -> (Cdf, Cdf) {
    let resolvers: Vec<(&Ipv4Addr, &ReplicaMap)> = maps.iter().collect();
    let mut same = Vec::new();
    let mut diff = Vec::new();
    for i in 0..resolvers.len() {
        for j in (i + 1)..resolvers.len() {
            let (a_ip, a_map) = resolvers[i];
            let (b_ip, b_map) = resolvers[j];
            let sim = a_map.cosine_similarity(b_map);
            if Prefix::slash24_of(*a_ip) == Prefix::slash24_of(*b_ip) {
                same.push(sim);
            } else {
                diff.push(sim);
            }
        }
    }
    (Cdf::new(same), Cdf::new(diff))
}

/// Fig. 14: relative replica latency of a public resolver's choices vs the
/// local resolver's, one sample per (experiment, domain), with replicas
/// aggregated by /24 ("the aggregation shifts the results toward equal
/// performance"). Negative = public chose a faster replica.
pub fn relative_replica_latency(ds: &Dataset, carrier: usize, public: ResolverKind) -> Cdf {
    let mut samples = Vec::new();
    for r in ds.of_carrier(carrier) {
        // Best latency per /24 across the experiment's probes.
        let mut by_prefix: BTreeMap<Prefix, u32> = BTreeMap::new();
        let mut domains: Vec<u8> = Vec::new();
        for p in &r.replica_probes {
            if !domains.contains(&p.domain_idx) {
                domains.push(p.domain_idx);
            }
            if let Some(us) = p.rtt_us {
                let key = Prefix::slash24_of(p.addr);
                by_prefix
                    .entry(key)
                    .and_modify(|v| *v = (*v).min(us))
                    .or_insert(us);
            }
        }
        for &d in &domains {
            let best_for = |kind: ResolverKind| -> Option<u32> {
                r.replica_probes
                    .iter()
                    .filter(|p| p.via == kind && p.domain_idx == d)
                    .filter_map(|p| by_prefix.get(&Prefix::slash24_of(p.addr)).copied())
                    .min()
            };
            if let (Some(local), Some(pub_lat)) = (best_for(ResolverKind::Local), best_for(public))
            {
                if local > 0 {
                    samples.push((pub_lat as f64 - local as f64) / local as f64 * 100.0);
                }
            }
        }
    }
    Cdf::new(samples)
}

/// The abstract's headline: the fraction of experiments in which the public
/// resolver's replicas performed equal to or better than the local ones.
pub fn public_equal_or_better(ds: &Dataset, carrier: usize, public: ResolverKind) -> f64 {
    let cdf = relative_replica_latency(ds, carrier, public);
    cdf.fraction_leq(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr::new(a, b, c, d)
    }

    #[test]
    fn cosine_identical_maps_is_one() {
        let mut a = ReplicaMap::default();
        let mut b = ReplicaMap::default();
        for _ in 0..4 {
            a.observe(ip(90, 0, 1, 1));
            b.observe(ip(90, 0, 1, 1));
        }
        a.observe(ip(90, 0, 2, 1));
        b.observe(ip(90, 0, 2, 1));
        assert!((a.cosine_similarity(&b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cosine_disjoint_maps_is_zero() {
        let mut a = ReplicaMap::default();
        let mut b = ReplicaMap::default();
        a.observe(ip(90, 0, 1, 1));
        b.observe(ip(90, 0, 9, 1));
        assert_eq!(a.cosine_similarity(&b), 0.0);
    }

    #[test]
    fn cosine_partial_overlap_is_between() {
        let mut a = ReplicaMap::default();
        let mut b = ReplicaMap::default();
        a.observe(ip(90, 0, 1, 1));
        a.observe(ip(90, 0, 2, 1));
        b.observe(ip(90, 0, 1, 1));
        b.observe(ip(90, 0, 3, 1));
        let sim = a.cosine_similarity(&b);
        assert!(sim > 0.0 && sim < 1.0, "{sim}");
    }

    #[test]
    fn cosine_is_symmetric() {
        let mut a = ReplicaMap::default();
        let mut b = ReplicaMap::default();
        a.observe(ip(1, 1, 1, 1));
        a.observe(ip(2, 2, 2, 2));
        b.observe(ip(2, 2, 2, 2));
        assert!((a.cosine_similarity(&b) - b.cosine_similarity(&a)).abs() < 1e-12);
    }

    #[test]
    fn ratios_sum_to_one() {
        let mut m = ReplicaMap::default();
        m.observe(ip(1, 1, 1, 1));
        m.observe(ip(1, 1, 1, 1));
        m.observe(ip(2, 2, 2, 2));
        let sum: f64 = m.iter().map(|(ip, _)| m.ratio(ip)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(m.distinct(), 2);
        assert_eq!(m.total(), 3);
    }

    #[test]
    fn empty_maps_similarity_is_zero() {
        let a = ReplicaMap::default();
        let b = ReplicaMap::default();
        assert_eq!(a.cosine_similarity(&b), 0.0);
    }
}
