//! Empirical cumulative distribution functions — the workhorse of every
//! figure in the paper.

/// An empirical CDF over `f64` samples.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples (non-finite values are dropped). Total:
    /// never panics, whatever the input — NaN/±inf are filtered and the
    /// sort is `total_cmp`, so a non-finite value slipping past the filter
    /// could only misorder, never abort.
    pub fn new(mut samples: Vec<f64>) -> Self {
        samples.retain(|x| x.is_finite());
        samples.sort_by(f64::total_cmp);
        Cdf { sorted: samples }
    }

    /// Builds from an iterator.
    #[allow(clippy::should_implement_trait)] // fallible-free convenience
    pub fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Self::new(iter.into_iter().collect())
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The q-quantile (0 ≤ q ≤ 1) by nearest-rank; `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.sorted.len() as f64 - 1.0) * q).round() as usize;
        Some(self.sorted[idx])
    }

    /// Median.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
    }

    /// Fraction of samples ≤ `x`.
    pub fn fraction_leq(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let pos = self.sorted.partition_point(|&v| v <= x);
        pos as f64 / self.sorted.len() as f64
    }

    /// Fraction of samples exactly equal to `x` (within `eps`).
    pub fn fraction_eq(&self, x: f64, eps: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let lo = self.sorted.partition_point(|&v| v < x - eps);
        let hi = self.sorted.partition_point(|&v| v <= x + eps);
        (hi - lo) as f64 / self.sorted.len() as f64
    }

    /// `points` evenly spaced (value, cumulative probability) rows for
    /// plotting — what the `repro` harness prints per figure.
    pub fn series(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points == 0 {
            return Vec::new();
        }
        let n = self.sorted.len();
        (0..points)
            .map(|i| {
                let q = (i as f64 + 1.0) / points as f64;
                let idx = ((n as f64 * q).ceil() as usize).min(n) - 1;
                (self.sorted[idx], q)
            })
            .collect()
    }

    /// Underlying sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Merges two CDFs.
    pub fn merge(&self, other: &Cdf) -> Cdf {
        let mut all = self.sorted.clone();
        all.extend_from_slice(&other.sorted);
        Cdf::new(all)
    }

    /// Bootstrap confidence interval for the median: resamples with
    /// replacement `iters` times (deterministic from `seed`) and returns
    /// the (2.5%, 97.5%) percentile interval of the resampled medians.
    pub fn median_ci(&self, seed: u64, iters: usize) -> Option<(f64, f64)> {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        if self.sorted.is_empty() {
            return None;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.sorted.len();
        let mut medians: Vec<f64> = (0..iters.max(10))
            .map(|_| {
                // Median of a bootstrap resample without materializing it:
                // draw n indices and take the middle order statistic.
                let mut idxs: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
                idxs.sort_unstable();
                self.sorted[idxs[n / 2]]
            })
            .collect();
        // Samples are finite by construction, but keep this path total too:
        // filter again at this ingest point and sort with `total_cmp`.
        medians.retain(|x| x.is_finite());
        if medians.is_empty() {
            return None;
        }
        medians.sort_by(f64::total_cmp);
        let lo = medians[(medians.len() as f64 * 0.025).floor() as usize];
        let hi = medians[((medians.len() as f64 * 0.975).floor() as usize).min(medians.len() - 1)];
        Some((lo, hi))
    }

    /// Two-sample Kolmogorov–Smirnov statistic: the maximum vertical
    /// distance between the two empirical CDFs. Used to check that a
    /// regenerated figure keeps its shape across seeds, and by the ablation
    /// harness to quantify how much a mechanism moves a distribution.
    pub fn ks_statistic(&self, other: &Cdf) -> f64 {
        if self.is_empty() || other.is_empty() {
            return 1.0;
        }
        let mut d: f64 = 0.0;
        let (mut i, mut j) = (0usize, 0usize);
        let (a, b) = (&self.sorted, &other.sorted);
        while i < a.len() && j < b.len() {
            // Step past the next distinct value in both arrays together so
            // ties do not create a phantom gap.
            let x = a[i].min(b[j]);
            while i < a.len() && a[i] <= x {
                i += 1;
            }
            while j < b.len() && b[j] <= x {
                j += 1;
            }
            let fa = i as f64 / a.len() as f64;
            let fb = j as f64 / b.len() as f64;
            d = d.max((fa - fb).abs());
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_on_known_data() {
        let c = Cdf::new(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(c.quantile(0.0), Some(1.0));
        assert_eq!(c.median(), Some(3.0));
        assert_eq!(c.quantile(1.0), Some(5.0));
        assert_eq!(c.mean(), Some(3.0));
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn fraction_leq_counts_correctly() {
        let c = Cdf::new(vec![10.0, 20.0, 30.0, 40.0]);
        assert_eq!(c.fraction_leq(5.0), 0.0);
        assert_eq!(c.fraction_leq(20.0), 0.5);
        assert_eq!(c.fraction_leq(100.0), 1.0);
    }

    #[test]
    fn fraction_eq_with_ties() {
        let c = Cdf::new(vec![0.0, 0.0, 0.0, 5.0, 10.0]);
        assert!((c.fraction_eq(0.0, 1e-9) - 0.6).abs() < 1e-12);
        assert_eq!(c.fraction_eq(7.0, 1e-9), 0.0);
    }

    #[test]
    fn series_is_monotone_and_spans() {
        let samples: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        let c = Cdf::new(samples);
        let s = c.series(10);
        assert_eq!(s.len(), 10);
        assert_eq!(s[9], (100.0, 1.0));
        assert!(s.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 < w[1].1));
    }

    #[test]
    fn handles_empty_and_nan() {
        let c = Cdf::new(vec![f64::NAN, f64::INFINITY]);
        assert!(c.quantile(0.5).is_none() || c.len() == 1);
        let empty = Cdf::new(vec![]);
        assert!(empty.is_empty());
        assert!(empty.median().is_none());
        assert!(empty.series(5).is_empty());
        assert_eq!(empty.fraction_leq(1.0), 0.0);
    }

    #[test]
    fn nan_heavy_input_never_panics() {
        // Regression: every ingest point must be total. Before, a NaN that
        // reached a comparator aborted via `partial_cmp(..).expect(..)`.
        let dirty = vec![
            f64::NAN,
            3.0,
            f64::NEG_INFINITY,
            1.0,
            f64::NAN,
            f64::INFINITY,
            2.0,
            -0.0,
        ];
        let c = Cdf::new(dirty.clone());
        assert_eq!(c.samples(), &[-0.0, 1.0, 2.0, 3.0]);
        // Nearest-rank median of 4 samples: index (3 * 0.5).round() = 2.
        assert_eq!(c.median(), Some(2.0));
        // Merge and from_iter funnel through the same filter.
        let m = c.merge(&Cdf::from_iter(dirty));
        assert_eq!(m.len(), 8);
        // Bootstrap path stays total as well.
        let (lo, hi) = m.median_ci(3, 100).unwrap();
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi);
        // Queries at NaN do not panic either (partition_point on finite data).
        assert_eq!(Cdf::new(vec![f64::NAN]).len(), 0);
    }

    #[test]
    fn merge_combines_samples() {
        let a = Cdf::new(vec![1.0, 2.0]);
        let b = Cdf::new(vec![3.0, 4.0]);
        let m = a.merge(&b);
        assert_eq!(m.len(), 4);
        assert_eq!(m.quantile(1.0), Some(4.0));
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let c = Cdf::new(vec![5.0, 1.0, 3.0]);
        assert_eq!(c.samples(), &[1.0, 3.0, 5.0]);
    }

    #[test]
    fn ks_identical_is_zero_disjoint_is_one() {
        let a = Cdf::new((0..100).map(|x| x as f64).collect());
        assert!(a.ks_statistic(&a) < 1e-12);
        let b = Cdf::new((1000..1100).map(|x| x as f64).collect());
        assert!((a.ks_statistic(&b) - 1.0).abs() < 1e-12);
        // Symmetric.
        assert!((a.ks_statistic(&b) - b.ks_statistic(&a)).abs() < 1e-12);
    }

    #[test]
    fn ks_half_shifted() {
        // Half the mass disjoint -> D = 0.5.
        let a = Cdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        let b = Cdf::new(vec![3.0, 4.0, 5.0, 6.0]);
        assert!((a.ks_statistic(&b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ks_empty_is_one() {
        let a = Cdf::new(vec![1.0]);
        let empty = Cdf::default();
        assert_eq!(a.ks_statistic(&empty), 1.0);
    }

    #[test]
    fn bootstrap_ci_brackets_the_median() {
        let c = Cdf::new((0..500).map(|x| x as f64).collect());
        let (lo, hi) = c.median_ci(7, 400).unwrap();
        let med = c.median().unwrap();
        assert!(lo <= med && med <= hi, "[{lo}, {hi}] vs {med}");
        // Interval is narrow for a large, smooth sample.
        assert!(hi - lo < 100.0, "CI too wide: [{lo}, {hi}]");
        // Deterministic from the seed.
        assert_eq!(c.median_ci(7, 400), c.median_ci(7, 400));
        assert!(Cdf::default().median_ci(7, 100).is_none());
    }
}
