//! Per-carrier profile reports: everything the dataset says about one
//! operator in a single text block (the §4 "characterization" as a
//! generated document).

use crate::cdf::Cdf;
use crate::egress::egress_points;
use crate::ldns::{busiest_device, churn_summary, ldns_pairs, resolver_enumeration};
use crate::replica::{public_equal_or_better, replica_percent_increase};
use crate::timing::resolution_cdf;
use measure::record::{Dataset, ProbeTarget, ResolverKind};
use std::fmt::Write as _;

fn fmt_ms(v: Option<f64>) -> String {
    v.map(|x| format!("{x:.0}ms")).unwrap_or_else(|| "-".into())
}

/// Builds the profile report for one carrier.
pub fn carrier_report(ds: &Dataset, carrier: usize) -> String {
    let name = &ds.carrier_names[carrier];
    let mut out = String::new();
    let _ = writeln!(out, "=== Carrier profile: {name} ===");

    // Fleet and volume.
    let devices: std::collections::BTreeSet<u32> =
        ds.of_carrier(carrier).map(|r| r.device_id).collect();
    let experiments = ds.of_carrier(carrier).count();
    let _ = writeln!(
        out,
        "fleet: {} devices, {experiments} experiments",
        devices.len()
    );

    // DNS infrastructure (Table 3 row).
    let pairs = ldns_pairs(ds, carrier);
    let _ = writeln!(
        out,
        "ldns: {} client-facing, {} external, {} pairs, {:.0}% pairing consistency",
        pairs.client_facing, pairs.external, pairs.pairs, pairs.consistency_pct
    );

    // Resolution performance.
    let local = resolution_cdf(ds, carrier, ResolverKind::Local);
    let google = resolution_cdf(ds, carrier, ResolverKind::Google);
    let _ = writeln!(
        out,
        "resolution: local p50 {} / p90 {}; google p50 {} / p90 {}",
        fmt_ms(local.median()),
        fmt_ms(local.quantile(0.9)),
        fmt_ms(google.median()),
        fmt_ms(google.quantile(0.9)),
    );

    // Resolver distances (Fig 4/11 row).
    let rtt_for = |target: ProbeTarget| {
        Cdf::from_iter(ds.of_carrier(carrier).flat_map(move |r| {
            r.resolver_probes
                .iter()
                .filter(move |p| p.target == target)
                .filter_map(|p| p.rtt_us.map(|us| us as f64 / 1000.0))
        }))
    };
    let _ = writeln!(
        out,
        "resolver rtt p50: client-facing {}, external {}, google {}",
        fmt_ms(rtt_for(ProbeTarget::ClientFacing).median()),
        fmt_ms(rtt_for(ProbeTarget::External).median()),
        fmt_ms(rtt_for(ProbeTarget::GoogleVip).median()),
    );

    // Churn (Fig 8 row for the representative device).
    if let Some(dev) = busiest_device(ds, carrier) {
        let points = resolver_enumeration(ds, dev, ResolverKind::Local);
        let (ips, prefixes) = churn_summary(&points);
        let _ = writeln!(
            out,
            "churn (device {dev}): {ips} distinct external IPs across {prefixes} /24s"
        );
    }

    // Opaqueness (Table 4 row).
    let probes: Vec<_> = ds
        .external_reach
        .iter()
        .filter(|p| p.carrier as usize == carrier)
        .collect();
    if !probes.is_empty() {
        let _ = writeln!(
            out,
            "external reachability: {}/{} pingable, {}/{} traceroutable",
            probes.iter().filter(|p| p.ping_ok).count(),
            probes.len(),
            probes.iter().filter(|p| p.traceroute_reached).count(),
            probes.len(),
        );
    }

    // Egress points (§5.2).
    let _ = writeln!(
        out,
        "egress points observed: {}",
        egress_points(ds, carrier).len()
    );

    // Replica damage (Fig 2 pooled) and public comparison (Fig 14).
    let mut inflation = Cdf::default();
    for d in 0..ds.domains.len() {
        inflation = inflation.merge(&replica_percent_increase(ds, carrier, d as u8));
    }
    let _ = writeln!(
        out,
        "replica inflation vs user's best: p50 {}, p90 {}",
        inflation
            .median()
            .map(|v| format!("+{v:.0}%"))
            .unwrap_or_else(|| "-".into()),
        inflation
            .quantile(0.9)
            .map(|v| format!("+{v:.0}%"))
            .unwrap_or_else(|| "-".into()),
    );
    let _ = writeln!(
        out,
        "public replicas equal-or-better: {:.0}% of experiments",
        public_equal_or_better(ds, carrier, ResolverKind::Google) * 100.0
    );
    out
}

/// Reports for every carrier, concatenated.
pub fn all_carrier_reports(ds: &Dataset) -> String {
    let mut out = String::new();
    for c in 0..ds.carrier_names.len() {
        out.push_str(&carrier_report(ds, c));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnswire::name::DnsName;

    #[test]
    fn empty_dataset_reports_do_not_panic() {
        let ds = Dataset {
            carrier_names: vec!["A".into(), "B".into()],
            domains: vec![DnsName::parse("m.yelp.com").unwrap()],
            ..Dataset::default()
        };
        let text = all_carrier_reports(&ds);
        assert!(text.contains("Carrier profile: A"));
        assert!(text.contains("Carrier profile: B"));
        assert!(text.contains("fleet: 0 devices"));
    }
}
