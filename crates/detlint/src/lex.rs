//! Spanned source preparation: the first stage of the detlint pipeline.
//!
//! Turns one `.rs` source into a [`SourceFile`]: per-line *sanitized code*
//! that is *length-preserving* (string/char-literal contents and block
//! comments are blanked with spaces, never spliced out), so any byte offset
//! found in the sanitized text is also the 1-based column in the original
//! line. Alongside the code it extracts line comments with their spans,
//! the `#[cfg(test)]`-gated line mask, and every `detlint:` marker
//! (`allow(...)` suppressions and `hot` hot-path annotations).

use crate::Rule;
use std::collections::BTreeSet;

/// A `// detlint: allow(...)` suppression marker.
#[derive(Debug, Clone)]
pub struct AllowMarker {
    /// 1-based line the marker comment sits on.
    pub line: usize,
    /// 1-based column of the `//` that opens the comment.
    pub col: usize,
    /// 1-based line the marker suppresses (same line, or the next line
    /// holding code when the marker stands alone).
    pub target: usize,
    /// The rules it names.
    pub rules: Vec<Rule>,
}

/// One prepared source file.
#[derive(Debug, Default)]
pub struct SourceFile {
    /// Raw source lines (for snippets in diagnostics).
    pub raw: Vec<String>,
    /// Sanitized code, length-preserving per line: string/char contents and
    /// block comments blanked, line comments truncated off the end.
    pub code: Vec<String>,
    /// Line comments: `(col_of_slashes_1based, text_after_slashes)`.
    pub comments: Vec<Option<(usize, String)>>,
    /// Whether each line sits inside `#[cfg(test)]`-gated code.
    pub is_test: Vec<bool>,
    /// Rules suppressed per line by valid allow-markers.
    pub allowed: Vec<BTreeSet<Rule>>,
    /// Index into `markers` of the marker targeting each line (if any).
    pub marker_of_line: Vec<Option<usize>>,
    /// All valid allow-markers, in line order.
    pub markers: Vec<AllowMarker>,
    /// Lines carrying a `// detlint: hot` annotation.
    pub hot_lines: Vec<usize>,
    /// Malformed-marker diagnostics: `(line, col, message)`.
    pub marker_errors: Vec<(usize, usize, String)>,
}

impl SourceFile {
    /// Number of lines.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// True for an empty file.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// The raw text of a 1-based line (empty when out of range).
    pub fn raw_line(&self, line: usize) -> &str {
        line.checked_sub(1)
            .and_then(|i| self.raw.get(i))
            .map(String::as_str)
            .unwrap_or("")
    }
}

/// Splits one line into length-preserving sanitized code and an optional
/// trailing line comment `(col_1based, text)`. String and char-literal
/// contents are blanked with spaces so banned tokens inside them never
/// fire, while every surviving byte keeps its original column. `in_str`
/// carries open-string state across lines, so multi-line string literals
/// (including `\`-continued format strings) stay blanked on every line.
fn sanitize_line(line: &str, in_str: &mut bool) -> (String, Option<(usize, String)>) {
    let bytes = line.as_bytes();
    let mut code = Vec::with_capacity(bytes.len());
    let in_str = &mut *in_str;
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if *in_str {
            match c {
                b'\\' => {
                    // The escape and the escaped byte are both blanked.
                    code.push(b' ');
                    if i + 1 < bytes.len() {
                        code.push(b' ');
                        i += 1;
                    }
                }
                b'"' => {
                    code.push(c);
                    *in_str = false;
                }
                _ => code.push(b' '),
            }
        } else {
            match c {
                b'"' => {
                    code.push(c);
                    *in_str = true;
                }
                b'\'' => {
                    // Char literal vs lifetime: a literal closes within a
                    // few bytes ('x', '\n', '\u{..}'); a lifetime never
                    // closes. Scan ahead conservatively and blank the body.
                    let mut j = i + 1;
                    if j < bytes.len() && bytes[j] == b'\\' {
                        j += 2;
                        while j < bytes.len() && bytes[j] != b'\'' {
                            j += 1;
                        }
                        code.push(c);
                        code.extend(std::iter::repeat_n(b' ', j.min(bytes.len()) - i - 1));
                        if j < bytes.len() {
                            code.push(b'\'');
                        }
                        i = j;
                    } else if j + 1 < bytes.len() && bytes[j + 1] == b'\'' {
                        code.extend([b'\'', b' ', b'\'']);
                        i = j + 1;
                    } else {
                        // Lifetime: keep as-is.
                        code.push(c);
                    }
                }
                b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                    return (
                        String::from_utf8_lossy(&code).into_owned(),
                        Some((i + 1, line[i + 2..].to_string())),
                    );
                }
                _ => code.push(c),
            }
        }
        i += 1;
    }
    (String::from_utf8_lossy(&code).into_owned(), None)
}

/// Blanks `/* ... */` block comments in place (length-preserving), carrying
/// the open state across lines.
fn blank_block_comments(code: &mut [String], comments: &mut [Option<(usize, usize, String)>]) {
    let mut in_block = false;
    for (idx, line) in code.iter_mut().enumerate() {
        let bytes = line.as_bytes().to_vec();
        let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
        let mut i = 0;
        while i < bytes.len() {
            if in_block {
                if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                    out.extend([b' ', b' ']);
                    in_block = false;
                    i += 2;
                } else {
                    out.push(b' ');
                    i += 1;
                }
            } else if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                out.extend([b' ', b' ']);
                in_block = true;
                i += 2;
            } else {
                out.push(bytes[i]);
                i += 1;
            }
        }
        if in_block {
            // Any trailing line comment captured on an in-block line was
            // really comment-in-comment text: drop it.
            comments[idx] = None;
        }
        *line = String::from_utf8_lossy(&out).into_owned();
    }
}

/// Marks the `#[cfg(test)]`-gated region: from the attribute through the
/// close of the brace block it gates.
fn mark_test_regions(code: &[String]) -> Vec<bool> {
    let mut is_test = vec![false; code.len()];
    let mut i = 0;
    while i < code.len() {
        if code[i].contains("#[cfg(test)]") {
            let mut depth: i32 = 0;
            let mut opened = false;
            let mut j = i;
            while j < code.len() {
                is_test[j] = true;
                for ch in code[j].chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    is_test
}

/// Parses a `detlint: allow(<rules>) -- <reason>` marker out of a comment.
/// The marker must be the comment's entire content (doc comments that
/// merely *mention* markers mid-sentence are not markers). Returns
/// `Err(message)` when the marker is malformed.
fn parse_allow(comment: &str) -> Option<Result<Vec<Rule>, String>> {
    let head = comment.trim_start_matches(['/', '!']).trim_start();
    let rest = head.strip_prefix("detlint:")?.trim_start();
    if rest == "hot" {
        return None; // handled separately
    }
    let Some(rest) = rest.strip_prefix("allow") else {
        return Some(Err(
            "detlint marker must be `allow(<rule>[, <rule>]) -- <reason>` or `hot`".to_string(),
        ));
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Some(Err("detlint allow-marker is missing `(`".to_string()));
    };
    let Some(close) = rest.find(')') else {
        return Some(Err("detlint allow-marker is missing `)`".to_string()));
    };
    let mut rules = Vec::new();
    for part in rest[..close].split(',') {
        match Rule::from_id(part) {
            Some(r) => rules.push(r),
            None => {
                return Some(Err(format!(
                    "unknown rule `{}` in allow-marker",
                    part.trim()
                )))
            }
        }
    }
    if rules.is_empty() {
        return Some(Err("allow-marker names no rules".to_string()));
    }
    let tail = rest[close + 1..].trim_start();
    let Some(reason) = tail.strip_prefix("--") else {
        return Some(Err(
            "allow-marker needs a written reason: `-- <why this is safe>`".to_string(),
        ));
    };
    if reason.trim().is_empty() {
        return Some(Err(
            "allow-marker reason is empty; write why the suppression is sound".to_string(),
        ));
    }
    Some(Ok(rules))
}

/// Whether a comment is exactly the hot-path annotation `detlint: hot`.
fn is_hot_marker(comment: &str) -> bool {
    comment
        .trim_start_matches(['/', '!'])
        .trim()
        .strip_prefix("detlint:")
        .is_some_and(|rest| rest.trim() == "hot")
}

/// Prepares one source file for the item/rule passes.
pub fn prepare(source: &str) -> SourceFile {
    let raw: Vec<String> = source.lines().map(str::to_string).collect();
    let mut code = Vec::with_capacity(raw.len());
    let mut spanned_comments: Vec<Option<(usize, usize, String)>> = Vec::with_capacity(raw.len());
    let mut in_str = false;
    for line in &raw {
        let (c, m) = sanitize_line(line, &mut in_str);
        code.push(c);
        spanned_comments.push(m.map(|(col0, text)| (0, col0, text)));
    }
    blank_block_comments(&mut code, &mut spanned_comments);

    let is_test = mark_test_regions(&code);

    let mut allowed: Vec<BTreeSet<Rule>> = vec![BTreeSet::new(); code.len()];
    let mut marker_of_line: Vec<Option<usize>> = vec![None; code.len()];
    let mut markers = Vec::new();
    let mut hot_lines = Vec::new();
    let mut marker_errors = Vec::new();
    let mut comments: Vec<Option<(usize, String)>> = Vec::with_capacity(code.len());

    for (i, sc) in spanned_comments.iter().enumerate() {
        let Some((_, col0, text)) = sc else {
            comments.push(None);
            continue;
        };
        let col = *col0; // column of the first `/`
        if is_hot_marker(text) {
            hot_lines.push(i + 1);
        } else {
            match parse_allow(text) {
                None => {}
                Some(Err(msg)) => marker_errors.push((i + 1, col, msg)),
                Some(Ok(rules)) => {
                    let standalone = code[i].trim().is_empty();
                    let target = if standalone {
                        (i + 1..code.len()).find(|&j| !code[j].trim().is_empty())
                    } else {
                        Some(i)
                    };
                    if let Some(t) = target {
                        allowed[t].extend(rules.iter().copied());
                        marker_of_line[t] = Some(markers.len());
                    }
                    markers.push(AllowMarker {
                        line: i + 1,
                        col,
                        target: target.map(|t| t + 1).unwrap_or(i + 1),
                        rules,
                    });
                }
            }
        }
        comments.push(Some((col, text.clone())));
    }

    SourceFile {
        raw,
        code,
        comments,
        is_test,
        allowed,
        marker_of_line,
        markers,
        hot_lines,
        marker_errors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitizing_is_length_preserving() {
        for line in [
            "let s = \"Instant::now() inside a string\"; call();",
            "let c = 'x'; let esc = '\\n'; let life: &'static str = \"\";",
            "a /* mid */ b",
        ] {
            let (code, _) = sanitize_line(line, &mut false);
            assert_eq!(code.len(), line.len(), "{line:?} -> {code:?}");
        }
    }

    #[test]
    fn multiline_strings_stay_blanked() {
        let sf = prepare(
            "let s = \"first line\\n\\\n     // detlint: not a marker, Instant::now()\";\nlet x = 1;\n",
        );
        assert!(sf.marker_errors.is_empty());
        assert!(sf.comments[1].is_none());
        assert!(!sf.code[1].contains("Instant::now"));
        assert!(sf.code[2].contains("let x = 1;"));
    }

    #[test]
    fn block_comments_blank_in_place() {
        let sf = prepare("let a = 1; /* HashMap\nstill comment */ let b = 2;\n");
        assert_eq!(sf.code[0].trim_end(), "let a = 1;");
        assert!(!sf.code[1].contains("comment"));
        assert!(sf.code[1].contains("let b = 2;"));
        assert_eq!(sf.code[1].find("let b").unwrap(), 17);
    }

    #[test]
    fn columns_survive_strings() {
        let sf = prepare("let x = \"no\"; map.iter();\n");
        let col = sf.code[0].find(".iter(").unwrap();
        assert_eq!(&sf.raw[0][col..col + 6], ".iter(");
    }

    #[test]
    fn hot_marker_is_recognized() {
        let sf = prepare("// detlint: hot\nfn f() {}\n");
        assert_eq!(sf.hot_lines, vec![1]);
        assert!(sf.markers.is_empty());
        assert!(sf.marker_errors.is_empty());
    }

    #[test]
    fn allow_marker_records_target_and_col() {
        let sf = prepare("// detlint: allow(D2) -- test fixture reason\nlet t = Instant::now();\n");
        assert_eq!(sf.markers.len(), 1);
        assert_eq!(sf.markers[0].target, 2);
        assert!(sf.allowed[1].contains(&Rule::D2));
    }
}
