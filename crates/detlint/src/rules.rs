//! Rule passes: per-file (local) checks and workspace-wide (global) flow
//! analyses over the facts extracted by [`crate::model`].
//!
//! Local rules (D1–D7, D10, D11, marker shape) need one prepared file;
//! global rules need the whole record set: **D8** seed-lane provenance
//! follows seed parameters backwards through the call graph, **D9** panic
//! reachability walks forward from `// detlint: hot` entry points to
//! panic sinks, and **D12** cross-checks emitted metric names against the
//! CI baseline/allowlist. All rules emit *raw* findings here; suppression
//! (and allow-marker consumption accounting) happens centrally in the
//! crate root.

use crate::lex::SourceFile;
use crate::model::{CallKind, FileFacts, SeedArg};
use crate::{FileCtx, FileRecord, Finding, Rule, HOST_PLANE_CRATES, SIM_CRATES};
use std::collections::{BTreeMap, BTreeSet};

/// Sim-plane registry mutators whose first argument is the metric name and
/// must be a `&'static str` literal at the call site (D7).
const OBS_MUTATORS: &[&str] = &[".inc(", ".inc_by(", ".gauge_set(", ".observe_us("];

/// Calls whose return value carries a typed lookup `Outcome` and must not
/// be dropped with `let _ =` (D6).
const D6_CALLS: &[&str] = &[
    "resolve(",
    "resolve_with(",
    "whoami(",
    "whoami_with(",
    "run_experiment",
];

/// Methods whose receiver's iteration order escapes into program behaviour.
const D1_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Allocation/formatting constructs banned inside `// detlint: hot`
/// functions (D10).
const D10_TOKENS: &[(&str, &str)] = &[
    ("Vec::new(", "Vec::new"),
    (".to_vec()", "to_vec"),
    (".clone()", "clone"),
    ("format!", "format!"),
    ("String::from(", "String::from"),
    ("Box::new(", "Box::new"),
];

/// Comparator-taking adapters checked for `partial_cmp` misuse (D11a).
const D11_SORTS: &[&str] = &[
    ".sort_by(",
    ".sort_unstable_by(",
    ".max_by(",
    ".min_by(",
    ".binary_search_by(",
];

/// Ordered collections that must not be keyed by floats (D11b).
const D11_FLOAT_KEYS: &[&str] = &[
    "BTreeMap<f32",
    "BTreeMap<f64",
    "BTreeSet<f32",
    "BTreeSet<f64",
    "BinaryHeap<f32",
    "BinaryHeap<f64",
];

/// Integer targets of a float `as` cast (D11c).
const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Rounding adapters that make a float→int cast explicit and total.
const ROUNDERS: &[&str] = &[".round()", ".floor()", ".ceil()", ".trunc()"];

/// Method names shadowing std container/iterator APIs: heuristic method
/// resolution skips them, because an unqualified `.push(` is almost always
/// `Vec::push`, not a workspace method, and the false edges would poison
/// the D9 reachability pass. Workspace methods with these names are still
/// analysed when reached by path-qualified calls.
const AMBIENT_METHODS: &[&str] = &[
    "push",
    "pop",
    "get",
    "get_mut",
    "insert",
    "remove",
    "clear",
    "len",
    "is_empty",
    "contains",
    "contains_key",
    "iter",
    "next",
    "clone",
    "extend",
    "drain",
    "take",
    "sort",
    "last",
    "first",
    "count",
    "sum",
    "min",
    "max",
    "rev",
    "chain",
    "zip",
    "any",
    "all",
    "position",
    "peek",
    "entry",
    "append",
    "find",
    "map",
    "filter",
    "fmt",
    "cmp",
    "partial_cmp",
    "eq",
    "hash",
    "default",
    "from",
    "into",
    "as_ref",
    "as_mut",
    "to_string",
    "write",
    "read",
    "flush",
];

fn mk(
    file: &str,
    sf: &SourceFile,
    line: usize,
    col: usize,
    rule: Rule,
    message: String,
) -> Finding {
    Finding {
        file: file.to_string(),
        line,
        col,
        rule,
        message,
        snippet: {
            let raw = sf.raw_line(line);
            (!raw.is_empty()).then(|| raw.to_string())
        },
    }
}

/// The trailing identifier of `s`, if any (`self.entries` → `entries`).
fn trailing_ident(s: &str) -> Option<&str> {
    let s = s.trim_end();
    let end = s.len();
    let start = s
        .rfind(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .map(|i| i + s[i..].chars().next().map(char::len_utf8).unwrap_or(1))
        .unwrap_or(0);
    if start >= end {
        return None;
    }
    let ident = &s[start..end];
    if ident.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return None;
    }
    Some(ident)
}

/// If the text before a `HashMap`/`HashSet` occurrence binds the collection
/// to a name (`entries: HashMap<…>`, `let mut m = HashMap::new()`), returns
/// that name.
fn bind_target(prefix: &str) -> Option<String> {
    let p = prefix.trim_end();
    let p = p.strip_suffix("std::collections::").unwrap_or(p);
    let p = p.strip_suffix("collections::").unwrap_or(p);
    let p = p.trim_end();
    let p = match p
        .strip_suffix("mut")
        .map(str::trim_end)
        .and_then(|q| q.strip_suffix('&'))
    {
        Some(q) => q,
        None => p.strip_suffix('&').unwrap_or(p),
    };
    let p = p.trim_end();
    if let Some(before_colon) = p.strip_suffix(':') {
        if before_colon.ends_with(':') {
            return None;
        }
        return trailing_ident(before_colon).map(str::to_string);
    }
    if let Some(before_eq) = p.strip_suffix('=') {
        if before_eq.ends_with(['=', '>', '<', '!', '+', '-', '*', '/']) {
            return None;
        }
        return trailing_ident(before_eq).map(str::to_string);
    }
    None
}

/// Collects every name bound to a hash collection on a non-test line.
fn hash_bound_names(sf: &SourceFile) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for (i, code) in sf.code.iter().enumerate() {
        if sf.is_test[i] || code.trim_start().starts_with("use ") {
            continue;
        }
        for needle in ["HashMap", "HashSet"] {
            let mut from = 0;
            while let Some(pos) = code[from..].find(needle) {
                let at = from + pos;
                let after = code[at + needle.len()..].chars().next();
                if after.is_some_and(|c| c.is_ascii_alphanumeric() || c == '_') {
                    from = at + needle.len();
                    continue;
                }
                if let Some(name) = bind_target(&code[..at]) {
                    names.insert(name);
                }
                from = at + needle.len();
            }
        }
    }
    names
}

/// Position of a `let _ =` wildcard discard, if the line has one.
fn find_let_discard(code: &str) -> Option<usize> {
    const NEEDLE: &str = "let _ =";
    let mut from = 0;
    while let Some(pos) = code[from..].find(NEEDLE) {
        let at = from + pos;
        let before = code[..at].chars().next_back();
        if before.is_none_or(|c| !(c.is_ascii_alphanumeric() || c == '_')) {
            return Some(at);
        }
        from = at + NEEDLE.len();
    }
    None
}

/// Position of a `for ` keyword token, if the line has one.
fn find_for_keyword(code: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(pos) = code[from..].find("for ") {
        let at = from + pos;
        let before = code[..at].chars().next_back();
        if before.is_none_or(|c| !(c.is_ascii_alphanumeric() || c == '_')) {
            return Some(at);
        }
        from = at + 4;
    }
    None
}

/// Whether `s` is a bare receiver path (`self.entries`, `groups`) rather
/// than an arbitrary expression.
fn is_plain_path(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

/// Whether `s` is an integer literal (optionally suffixed/underscored).
fn is_int_literal(s: &str) -> bool {
    let t = s.trim();
    let t = INT_TYPES
        .iter()
        .find_map(|suf| t.strip_suffix(suf))
        .unwrap_or(t)
        .trim_end_matches('_');
    !t.is_empty() && t.chars().all(|c| c.is_ascii_digit() || c == '_')
}

/// All local (single-file) raw findings for one prepared file.
pub(crate) fn local_findings(
    file: &str,
    sf: &SourceFile,
    facts: &FileFacts,
    ctx: &FileCtx,
) -> Vec<Finding> {
    let mut out = Vec::new();

    for (line, col, msg) in &sf.marker_errors {
        out.push(mk(file, sf, *line, *col, Rule::Marker, msg.clone()));
    }

    // D5: crate roots must forbid unsafe code.
    if ctx.is_crate_root
        && !sf
            .code
            .iter()
            .any(|c| c.contains("#![forbid(unsafe_code)]"))
    {
        out.push(mk(
            file,
            sf,
            1,
            1,
            Rule::D5,
            "crate root is missing #![forbid(unsafe_code)]".to_string(),
        ));
    }

    let hash_names = if ctx.sim() {
        hash_bound_names(sf)
    } else {
        BTreeSet::new()
    };

    for (i, code) in sf.code.iter().enumerate() {
        if sf.is_test[i] {
            continue;
        }
        let lineno = i + 1;

        if ctx.sim() {
            // D1a: iteration-order-escaping method on a hash-bound name.
            for m in D1_METHODS {
                let needle = format!(".{m}(");
                let mut from = 0;
                while let Some(pos) = code[from..].find(&needle) {
                    let at = from + pos;
                    let recv = trailing_ident(&code[..at]).or_else(|| {
                        if !code[..at].trim().is_empty() {
                            return None;
                        }
                        (0..i)
                            .rev()
                            .map(|j| sf.code[j].as_str())
                            .find(|c| !c.trim().is_empty())
                            .and_then(trailing_ident)
                    });
                    if let Some(recv) = recv {
                        if hash_names.contains(recv) {
                            out.push(mk(
                                file,
                                sf,
                                lineno,
                                at + 1,
                                Rule::D1,
                                format!(
                                    "iteration order of hash collection `{recv}` escapes via \
                                     `.{m}()`; use BTreeMap/BTreeSet or sort first"
                                ),
                            ));
                        }
                    }
                    from = at + needle.len();
                }
            }
            // D1b: `for … in <hash-bound path>`.
            if let Some(for_at) = find_for_keyword(code) {
                if let Some(in_at) = code[for_at..].find(" in ") {
                    let expr = code[for_at + in_at + 4..]
                        .split('{')
                        .next()
                        .unwrap_or("")
                        .trim()
                        .trim_start_matches("&mut ")
                        .trim_start_matches('&');
                    if is_plain_path(expr) {
                        if let Some(last) = expr.rsplit('.').next() {
                            if hash_names.contains(last) {
                                out.push(mk(
                                    file,
                                    sf,
                                    lineno,
                                    for_at + 1,
                                    Rule::D1,
                                    format!(
                                        "`for … in {expr}` iterates hash collection `{last}` in \
                                         nondeterministic order; use BTreeMap/BTreeSet or sort \
                                         first"
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
            // D2: wall clock.
            for pat in ["Instant::now", "SystemTime::now"] {
                if let Some(at) = code.find(pat) {
                    out.push(mk(
                        file,
                        sf,
                        lineno,
                        at + 1,
                        Rule::D2,
                        format!(
                            "wall-clock read `{pat}()` in a simulation crate; use the simulated \
                             clock"
                        ),
                    ));
                }
            }
            // D3: ambient randomness.
            for pat in ["thread_rng", "from_entropy", "rand::random"] {
                if let Some(at) = code.find(pat) {
                    out.push(mk(
                        file,
                        sf,
                        lineno,
                        at + 1,
                        Rule::D3,
                        format!(
                            "ambient randomness `{pat}`; all RNG must flow from the seed lanes"
                        ),
                    ));
                }
            }
            // D7b: sim-plane registry mutators need a literal metric name.
            for m in OBS_MUTATORS {
                let mut from = 0;
                while let Some(pos) = code[from..].find(m) {
                    let at = from + pos;
                    let mut first = code[at + m.len()..].trim_start();
                    if first.is_empty() {
                        first = (i + 1..sf.code.len())
                            .map(|j| sf.code[j].trim_start())
                            .find(|c| !c.is_empty())
                            .unwrap_or("");
                    }
                    if !first.is_empty() && !first.starts_with('"') {
                        out.push(mk(
                            file,
                            sf,
                            lineno,
                            at + 2,
                            Rule::D7,
                            format!(
                                "dynamic metric name in `{}…)`; sim-plane instruments take a \
                                 `&'static str` literal name so the exported key space is fixed",
                                m.trim_end_matches('(')
                            ),
                        ));
                    }
                    from = at + m.len();
                }
            }
            d11_line(file, sf, facts, i, &mut out);
        }

        // D7a: host-plane observability outside the driver binaries.
        if !HOST_PLANE_CRATES.contains(&ctx.crate_name.as_str()) {
            if let Some(at) = code.find("obs::host") {
                out.push(mk(
                    file,
                    sf,
                    lineno,
                    at + 1,
                    Rule::D7,
                    "host-plane observability `obs::host` outside repro/bench; simulation and \
                     analysis code may only use the deterministic sim plane"
                        .to_string(),
                ));
            }
        }

        // D4: panic-freedom of hot-crate library code (line-scope).
        if ctx.hot() {
            for (pat, what) in [
                (".unwrap()", "unwrap()"),
                (".expect(", "expect()"),
                ("panic!", "panic!"),
            ] {
                if let Some(at) = code.find(pat) {
                    out.push(mk(
                        file,
                        sf,
                        lineno,
                        at + 2,
                        Rule::D4,
                        format!(
                            "`{what}` in hot-path library code; return an error, restructure, \
                             or justify with an allow-marker"
                        ),
                    ));
                }
            }
        }

        // D6: `let _ =` discarding an experiment Outcome.
        if ctx.outcome() {
            if let Some(at) = find_let_discard(code) {
                let mut rhs = code[at..].to_string();
                let mut j = i;
                while !rhs.contains(';') && j + 1 < sf.code.len() && j - i < 8 {
                    j += 1;
                    rhs.push_str(&sf.code[j]);
                }
                if let Some(call) = D6_CALLS.iter().find(|c| rhs.contains(*c)) {
                    out.push(mk(
                        file,
                        sf,
                        lineno,
                        at + 1,
                        Rule::D6,
                        format!(
                            "`let _ =` discards the typed Outcome of `{}`; record it in the \
                             dataset or propagate it",
                            call.trim_end_matches('(')
                        ),
                    ));
                }
            }
        }
    }

    // D10: allocation inside `// detlint: hot` functions.
    for f in facts.fns.iter().filter(|f| f.is_hot && !f.is_test) {
        for lineno in f.body.0..=f.body.1.min(sf.len()) {
            let code = sf.code[lineno - 1].as_str();
            for (pat, what) in D10_TOKENS {
                let mut from = 0;
                while let Some(pos) = code[from..].find(pat) {
                    let at = from + pos;
                    let col = at + 1 + usize::from(pat.starts_with('.'));
                    out.push(mk(
                        file,
                        sf,
                        lineno,
                        col,
                        Rule::D10,
                        format!(
                            "allocation `{what}` inside hot function `{}`; the hot path is \
                             zero-copy — hoist the allocation out or buffer it in the caller",
                            f.qual()
                        ),
                    ));
                    from = at + pat.len();
                }
            }
        }
    }

    out.sort_by_key(|f| (f.line, f.col, f.rule));
    out
}

/// D11 float-order hazards on one non-test line of a sim crate.
fn d11_line(file: &str, sf: &SourceFile, facts: &FileFacts, i: usize, out: &mut Vec<Finding>) {
    let code = sf.code[i].as_str();
    let lineno = i + 1;

    // D11a: partial_cmp inside comparator-taking adapters.
    for pat in D11_SORTS {
        let mut from = 0;
        while let Some(pos) = code[from..].find(pat) {
            let at = from + pos;
            let arg = crate::model::gather_paren_arg(sf, lineno, at + pat.len() - 1);
            if arg.contains("partial_cmp") && !arg.contains("total_cmp") {
                out.push(mk(
                    file,
                    sf,
                    lineno,
                    at + 2,
                    Rule::D11,
                    format!(
                        "`{}…)` comparator uses `partial_cmp`, which is not a total order on \
                         floats; use `f64::total_cmp` (or compare non-float keys)",
                        pat.trim_start_matches('.').trim_end_matches('(')
                    ),
                ));
            }
            from = at + pat.len();
        }
    }

    // D11b: float keys in ordered collections.
    for pat in D11_FLOAT_KEYS {
        if let Some(at) = code.find(pat) {
            out.push(mk(
                file,
                sf,
                lineno,
                at + 1,
                Rule::D11,
                format!(
                    "float-keyed ordered collection `{pat}…>`; float keys have no total order \
                     — key by an integer quantization instead",
                ),
            ));
        }
    }

    // D11c: float → integer `as` cast without an explicit rounding step.
    let mut from = 0;
    while let Some(pos) = code[from..].find(" as ") {
        let at = from + pos;
        from = at + 4;
        let after = &code[at + 4..];
        let target: String = after
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric())
            .collect();
        if !INT_TYPES.contains(&target.as_str()) {
            continue;
        }
        let before = code[..at].trim_end();
        if ROUNDERS.iter().any(|r| before.ends_with(r)) {
            continue;
        }
        let expr = cast_source_expr(before);
        if expr_is_float(expr, facts, lineno) {
            out.push(mk(
                file,
                sf,
                lineno,
                at + 1,
                Rule::D11,
                format!(
                    "float expression `{}` cast to `{target}` with bare `as`; make the rounding \
                     mode explicit (`.trunc()`/`.round()`/`.floor()`) so record fields are \
                     platform-stable",
                    expr.trim()
                ),
            ));
        }
    }
}

/// The source expression of an `as` cast: a trailing paren group, or a
/// trailing ident path.
fn cast_source_expr(before: &str) -> &str {
    let bytes = before.as_bytes();
    if bytes.last() == Some(&b')') {
        let mut depth = 0i32;
        for i in (0..bytes.len()).rev() {
            match bytes[i] {
                b')' => depth += 1,
                b'(' => {
                    depth -= 1;
                    if depth == 0 {
                        return &before[i..];
                    }
                }
                _ => {}
            }
        }
        return before;
    }
    let start = bytes
        .iter()
        .rposition(|&c| !(c.is_ascii_alphanumeric() || c == b'_' || c == b'.'))
        .map(|i| i + 1)
        .unwrap_or(0);
    &before[start..]
}

/// Whether a cast-source expression is visibly a float: mentions a float
/// type, contains a float literal, or is an ident tracked as float in the
/// enclosing function (float-typed param or `let x: f64` binding).
fn expr_is_float(expr: &str, facts: &FileFacts, lineno: usize) -> bool {
    let t = expr.trim();
    if t.is_empty() {
        return false;
    }
    if t.contains("f64") || t.contains("f32") {
        return true;
    }
    // Float literal: digit '.' digit anywhere in the expression.
    let b = t.as_bytes();
    for i in 1..b.len().saturating_sub(1) {
        if b[i] == b'.' && b[i - 1].is_ascii_digit() && b[i + 1].is_ascii_digit() {
            return true;
        }
    }
    // A bare ident that the enclosing fn types as float.
    if t.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        if let Some(f) = facts
            .fns
            .iter()
            .find(|f| f.body.0 <= lineno && lineno <= f.body.1)
        {
            if f.float_params.iter().any(|p| p == t) {
                return true;
            }
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Global passes: call graph, D8, D9, D12.
// ---------------------------------------------------------------------------

/// A function's identity in the workspace record set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct FnId {
    pub rec: usize,
    pub idx: usize,
}

/// The heuristic intra-workspace call graph.
pub(crate) struct CallGraph {
    /// Forward edges: caller → callees.
    pub edges: BTreeMap<FnId, Vec<FnId>>,
    /// Reverse edges with the call-site index in the caller's `calls` list.
    pub redges: BTreeMap<FnId, Vec<(FnId, usize)>>,
}

/// Builds the call graph over every non-test function in `records`.
pub(crate) fn build_graph(records: &[FileRecord]) -> CallGraph {
    // Indices over non-test fns.
    let mut path_index: BTreeMap<(&str, &str), Vec<FnId>> = BTreeMap::new();
    let mut method_index: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
    let mut bare_index: BTreeMap<(&str, &str), Vec<FnId>> = BTreeMap::new(); // (crate, name)
    for (ri, rec) in records.iter().enumerate() {
        for (fi, f) in rec.facts.fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            let id = FnId { rec: ri, idx: fi };
            match &f.impl_type {
                Some(t) => {
                    path_index.entry((t, &f.name)).or_default().push(id);
                    method_index.entry(&f.name).or_default().push(id);
                }
                None => {
                    bare_index
                        .entry((&rec.crate_name, &f.name))
                        .or_default()
                        .push(id);
                    // Free fns are also callable as `module::name(…)`.
                    let stem = file_stem(&rec.path);
                    path_index.entry((stem, &f.name)).or_default().push(id);
                    if let Some(m) = f.module.rsplit("::").next().filter(|m| !m.is_empty()) {
                        path_index.entry((m, &f.name)).or_default().push(id);
                    }
                }
            }
        }
    }

    let mut edges: BTreeMap<FnId, Vec<FnId>> = BTreeMap::new();
    let mut redges: BTreeMap<FnId, Vec<(FnId, usize)>> = BTreeMap::new();
    for (ri, rec) in records.iter().enumerate() {
        for (fi, f) in rec.facts.fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            let id = FnId { rec: ri, idx: fi };
            for (ci, call) in f.calls.iter().enumerate() {
                let targets: Vec<FnId> = match call.kind {
                    CallKind::Path => call
                        .recv
                        .as_deref()
                        .and_then(|r| path_index.get(&(r, call.name.as_str())))
                        .cloned()
                        .unwrap_or_default(),
                    CallKind::Method => {
                        if AMBIENT_METHODS.contains(&call.name.as_str()) {
                            Vec::new()
                        } else {
                            method_index
                                .get(call.name.as_str())
                                .cloned()
                                .unwrap_or_default()
                        }
                    }
                    CallKind::Bare => bare_index
                        .get(&(rec.crate_name.as_str(), call.name.as_str()))
                        .cloned()
                        .unwrap_or_default(),
                };
                for t in targets {
                    if t != id {
                        edges.entry(id).or_default().push(t);
                        redges.entry(t).or_default().push((id, ci));
                    }
                }
            }
        }
    }
    for v in edges.values_mut() {
        v.sort();
        v.dedup();
    }
    CallGraph { edges, redges }
}

fn file_stem(path: &str) -> &str {
    path.rsplit('/')
        .next()
        .unwrap_or(path)
        .trim_end_matches(".rs")
}

/// Declared metric names with their declaration site, for D12.
#[derive(Debug, Default)]
pub struct MetricDecls {
    /// name → (file, line) of its declaration.
    pub names: BTreeMap<String, (String, usize)>,
}

/// All global raw findings over the workspace record set. `decls` is
/// `None` in single-file mode, which skips the D12 cross-check.
pub(crate) fn global_findings(
    records: &[FileRecord],
    graph: &CallGraph,
    decls: Option<&MetricDecls>,
) -> Vec<Finding> {
    let mut out = Vec::new();
    d8_pass(records, graph, &mut out);
    d9_pass(records, graph, &mut out);
    if let Some(decls) = decls {
        d12_pass(records, decls, &mut out);
    }
    out.sort_by_key(|f| (f.file.clone(), f.line, f.col, f.rule));
    out
}

fn gmk(rec: &FileRecord, line: usize, col: usize, rule: Rule, message: String) -> Finding {
    Finding {
        file: rec.path.clone(),
        line,
        col,
        rule,
        message,
        snippet: None,
    }
}

/// D8: seed-lane provenance. Every RNG construction in a sim crate must
/// flow from a `lane::*` constant — directly, or through a seed parameter
/// whose workspace callers all pass lane-derived values. Also: the `lane`
/// module may only be declared in `measure`.
fn d8_pass(records: &[FileRecord], graph: &CallGraph, out: &mut Vec<Finding>) {
    for (ri, rec) in records.iter().enumerate() {
        if !SIM_CRATES.contains(&rec.crate_name.as_str()) {
            continue;
        }
        for &line in &rec.facts.lane_mods {
            if rec.crate_name != "measure" {
                out.push(gmk(
                    rec,
                    line,
                    1,
                    Rule::D8,
                    "seed lanes may only be declared in `measure`'s `lane` module; add the \
                     lane there so every stream stays centrally audited"
                        .to_string(),
                ));
            }
        }
        for (fi, f) in rec.facts.fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            for site in &f.rng_sites {
                match &site.arg {
                    SeedArg::Lane => {}
                    SeedArg::Param(p) => {
                        let id = FnId { rec: ri, idx: fi };
                        let mut visited = BTreeSet::new();
                        flag_literal_callers(records, graph, id, p, site, &mut visited, out);
                    }
                    SeedArg::Opaque(text) => {
                        out.push(gmk(
                            rec,
                            site.line,
                            site.col,
                            Rule::D8,
                            format!(
                                "`{}({text})` does not flow from a `lane::*` constant; derive \
                                 the seed via `derive_seed(master, lane::…, …)`",
                                site.ctor
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// Walks callers of `id` backwards, flagging any non-test caller that pins
/// the seed parameter `param` to an integer literal.
fn flag_literal_callers(
    records: &[FileRecord],
    graph: &CallGraph,
    id: FnId,
    param: &str,
    site: &crate::model::RngSite,
    visited: &mut BTreeSet<FnId>,
    out: &mut Vec<Finding>,
) {
    if !visited.insert(id) {
        return;
    }
    let callee = &records[id.rec].facts.fns[id.idx];
    let Some(pos) = callee.params.iter().position(|p| p == param) else {
        return;
    };
    let Some(callers) = graph.redges.get(&id) else {
        return;
    };
    for &(cid, ci) in callers {
        let crec = &records[cid.rec];
        let cf = &crec.facts.fns[cid.idx];
        let call = &cf.calls[ci];
        let args = split_args(&call.args);
        let Some(arg) = args.get(pos).map(|a| a.trim()) else {
            continue;
        };
        if arg.contains("lane::") {
            continue;
        }
        if is_int_literal(arg) {
            out.push(gmk(
                crec,
                call.line,
                call.col,
                Rule::D8,
                format!(
                    "literal seed `{arg}` flows into `{}`'s RNG at {}:{}:{}; route it through \
                     a `lane::*` constant instead",
                    callee.qual(),
                    records[id.rec].path,
                    site.line,
                    site.col
                ),
            ));
        } else if arg.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
            && cf.params.iter().any(|p| p == arg)
        {
            flag_literal_callers(records, graph, cid, arg, site, visited, out);
        }
        // Anything else (field reads, derive_seed calls without a visible
        // lane) is accepted: the heuristic only rejects what it can prove.
    }
}

/// Splits a call-argument string on top-level commas.
fn split_args(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0;
    for (i, c) in s.char_indices() {
        match c {
            '(' | '[' | '{' => depth += 1,
            ')' | ']' | '}' => depth -= 1,
            ',' if depth == 0 => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

/// D9: transitive panic reachability. BFS from every `// detlint: hot`
/// function over the call graph; any reachable panic sink is reported with
/// the shortest call chain from its hot entry point.
fn d9_pass(records: &[FileRecord], graph: &CallGraph, out: &mut Vec<Finding>) {
    let roots: Vec<FnId> = records
        .iter()
        .enumerate()
        .flat_map(|(ri, rec)| {
            rec.facts
                .fns
                .iter()
                .enumerate()
                .filter(|(_, f)| f.is_hot && !f.is_test)
                .map(move |(fi, _)| FnId { rec: ri, idx: fi })
        })
        .collect();

    // (sink fn) → (chain of FnIds from root to sink fn, inclusive).
    let mut best: BTreeMap<FnId, Vec<FnId>> = BTreeMap::new();
    for &root in &roots {
        let mut parent: BTreeMap<FnId, FnId> = BTreeMap::new();
        let mut queue = std::collections::VecDeque::from([root]);
        let mut seen = BTreeSet::from([root]);
        while let Some(id) = queue.pop_front() {
            if !records[id.rec].facts.fns[id.idx].sinks.is_empty() {
                let mut chain = vec![id];
                let mut cur = id;
                while let Some(&p) = parent.get(&cur) {
                    chain.push(p);
                    cur = p;
                }
                chain.reverse();
                let better = best
                    .get(&id)
                    .is_none_or(|existing| chain.len() < existing.len());
                if better {
                    best.insert(id, chain);
                }
            }
            if let Some(nexts) = graph.edges.get(&id) {
                for &n in nexts {
                    if seen.insert(n) {
                        parent.insert(n, id);
                        queue.push_back(n);
                    }
                }
            }
        }
    }

    for (sink_fn, chain) in &best {
        let rec = &records[sink_fn.rec];
        let f = &rec.facts.fns[sink_fn.idx];
        let chain_text = chain
            .iter()
            .map(|id| {
                let r = &records[id.rec];
                let g = &r.facts.fns[id.idx];
                format!("{} ({}:{}:{})", g.qual(), r.path, g.line, g.col)
            })
            .collect::<Vec<_>>()
            .join(" -> ");
        let root = &records[chain[0].rec].facts.fns[chain[0].idx];
        for sink in &f.sinks {
            out.push(gmk(
                rec,
                sink.line,
                sink.col,
                Rule::D9,
                format!(
                    "hot entry `{}` can reach `{}` at {}:{}:{} via {chain_text}; make the \
                     callee total or justify the sink with an allow-marker",
                    root.qual(),
                    sink.what,
                    rec.path,
                    sink.line,
                    sink.col
                ),
            ));
        }
    }
}

/// D12: metric-name cross-check between obs mutator call sites and the
/// CI baseline + allowlist.
fn d12_pass(records: &[FileRecord], decls: &MetricDecls, out: &mut Vec<Finding>) {
    let mut used: BTreeMap<&str, Vec<(usize, usize, usize)>> = BTreeMap::new(); // name → (rec, line, col)
    for (ri, rec) in records.iter().enumerate() {
        // Sim crates carry the campaign metrics; host-plane crates (the
        // serving plane) emit their own counters too — both directions of
        // the cross-check must see them.
        if !SIM_CRATES.contains(&rec.crate_name.as_str())
            && !crate::HOST_PLANE_CRATES.contains(&rec.crate_name.as_str())
        {
            continue;
        }
        for site in &rec.facts.metric_sites {
            if let Some(name) = &site.name {
                used.entry(name)
                    .or_default()
                    .push((ri, site.line, site.col));
            }
        }
    }
    for (name, sites) in &used {
        if !decls.names.contains_key(*name) {
            for &(ri, line, col) in sites {
                out.push(gmk(
                    &records[ri],
                    line,
                    col,
                    Rule::D12,
                    format!(
                        "metric `{name}` is emitted but declared in neither \
                         ci/vitals-baseline.json nor KNOWN_METRICS in scripts/vitals_check.py; \
                         declare it (or fix the typo)"
                    ),
                ));
            }
        }
    }
    for (name, (file, line)) in &decls.names {
        if !used.contains_key(name.as_str()) {
            out.push(Finding {
                file: file.clone(),
                line: *line,
                col: 1,
                rule: Rule::D12,
                message: format!(
                    "metric `{name}` is declared here but no sim-plane or host-plane call \
                     site emits it; remove the dead declaration"
                ),
                snippet: None,
            });
        }
    }
}

/// Parses metric declarations for D12 out of the baseline JSON (any quoted
/// string containing a `.`) and the `KNOWN_METRICS` list in
/// `scripts/vitals_check.py`.
pub fn load_metric_decls(root: &std::path::Path) -> MetricDecls {
    let mut decls = MetricDecls::default();
    let baseline = "ci/vitals-baseline.json";
    if let Ok(text) = std::fs::read_to_string(root.join(baseline)) {
        collect_quoted_metric_names(&text, baseline, is_metric_name, &mut decls);
    }
    let allowlist = "scripts/vitals_check.py";
    if let Ok(text) = std::fs::read_to_string(root.join(allowlist)) {
        if let Some(at) = text.find("KNOWN_METRICS") {
            let tail = &text[at..];
            let end = tail.find(']').map(|e| at + e).unwrap_or(text.len());
            let lines_before = text[..at].lines().count().saturating_sub(1);
            let mut sub = MetricDecls::default();
            collect_quoted_metric_names(&text[at..end], allowlist, is_metric_name, &mut sub);
            for (name, (file, line)) in sub.names {
                decls
                    .names
                    .entry(name)
                    .or_insert((file, line + lines_before));
            }
        }
    }
    decls
}

/// Whether a quoted string from the baseline is a metric name (dotted
/// lowercase identifier) rather than a JSON key or prose comment.
fn is_metric_name(s: &str) -> bool {
    s.contains('.')
        && s.len() < 64
        && s.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_')
}

fn collect_quoted_metric_names(
    text: &str,
    file: &str,
    keep: impl Fn(&str) -> bool,
    decls: &mut MetricDecls,
) {
    for (li, line) in text.lines().enumerate() {
        let mut rest = line;
        let mut consumed = 0;
        while let Some(q1) = rest.find('"') {
            let Some(q2) = rest[q1 + 1..].find('"') else {
                break;
            };
            let name = &rest[q1 + 1..q1 + 1 + q2];
            if !name.is_empty() && keep(name) {
                decls
                    .names
                    .entry(name.to_string())
                    .or_insert((file.to_string(), li + 1));
            }
            consumed += q1 + q2 + 2;
            rest = &line[consumed..];
        }
    }
}
