//! Diagnostic emitters: rustc-style text with code frames, JSON, SARIF
//! 2.1.0 (the shape GitHub code scanning ingests), and GitHub Actions
//! `::error` annotations.

use crate::{Finding, Rule};

/// All rules, for the SARIF rule table.
const ALL_RULES: &[(Rule, &str)] = &[
    (Rule::D1, "iteration-order escape from a hash collection"),
    (Rule::D2, "wall-clock read in a simulation crate"),
    (Rule::D3, "ambient (non-seed-lane) randomness"),
    (Rule::D4, "unwrap/expect/panic! in hot-path library code"),
    (Rule::D5, "missing #![forbid(unsafe_code)] in a crate root"),
    (Rule::D6, "discarded experiment Outcome"),
    (
        Rule::D7,
        "observability-plane breach or dynamic metric name",
    ),
    (Rule::D8, "RNG seed does not flow from a lane::* constant"),
    (
        Rule::D9,
        "hot entry point transitively reaches a panic sink",
    ),
    (Rule::D10, "allocation inside a // detlint: hot function"),
    (
        Rule::D11,
        "float-order hazard (partial_cmp sort, float key, bare as-cast)",
    ),
    (
        Rule::D12,
        "metric name missing from baseline/allowlist (or dead)",
    ),
    (Rule::Marker, "malformed or unused allow-marker"),
];

fn esc_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as `file:line:col: rule[D#]: message` with a code
/// frame under each diagnostic when the offending source line is known.
pub fn to_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!("{f}\n"));
        if let Some(snippet) = &f.snippet {
            let gutter = format!("{:>5}", f.line);
            out.push_str(&format!("{} |\n", " ".repeat(gutter.len())));
            out.push_str(&format!("{gutter} | {snippet}\n"));
            let caret_pad = " ".repeat(f.col.saturating_sub(1));
            out.push_str(&format!("{} | {caret_pad}^\n", " ".repeat(gutter.len())));
        }
    }
    out
}

/// Renders findings as a JSON array (hand-rolled; no serde in the tree).
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"file\": \"{}\", \"line\": {}, \"col\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}{}\n",
            esc_json(&f.file),
            f.line,
            f.col,
            f.rule,
            esc_json(&f.message),
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push(']');
    out
}

/// Renders findings as a minimal SARIF 2.1.0 log: one run, one driver,
/// the full rule table, and one result per finding with a physical
/// location carrying line and column.
pub fn to_sarif(findings: &[Finding]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n",
    );
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"detlint\",\n");
    out.push_str("          \"informationUri\": \"DESIGN.md\",\n");
    out.push_str("          \"version\": \"2.0.0\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, (rule, desc)) in ALL_RULES.iter().enumerate() {
        out.push_str(&format!(
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}{}\n",
            rule,
            esc_json(desc),
            if i + 1 < ALL_RULES.len() { "," } else { "" }
        ));
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "        {{\"ruleId\": \"{}\", \"level\": \"error\", \"message\": {{\"text\": \"{}\"}}, \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}, \"startColumn\": {}}}}}}}]}}{}\n",
            f.rule,
            esc_json(&f.message),
            esc_json(&f.file),
            f.line,
            f.col.max(1),
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push_str("      ]\n    }\n  ]\n}");
    out
}

/// Escapes annotation *message data* per the GitHub Actions workflow
/// command grammar.
fn esc_gh_data(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

/// Escapes annotation *property values* (file names), which additionally
/// reserve `:` and `,`.
fn esc_gh_prop(s: &str) -> String {
    esc_gh_data(s).replace(':', "%3A").replace(',', "%2C")
}

/// Renders findings as GitHub Actions `::error` workflow commands so they
/// annotate the PR diff directly.
pub fn to_github(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "::error file={},line={},col={},title=detlint {}::{}\n",
            esc_gh_prop(&f.file),
            f.line,
            f.col.max(1),
            f.rule,
            esc_gh_data(&f.message),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Finding> {
        vec![Finding {
            file: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 9,
            rule: Rule::D2,
            message: "wall-clock \"read\"".into(),
            snippet: Some("    let t = Instant::now();".into()),
        }]
    }

    #[test]
    fn text_includes_code_frame_with_caret_at_col() {
        let text = to_text(&sample());
        assert!(text.contains("crates/x/src/lib.rs:3:9: rule[D2]"));
        assert!(text.contains("    3 |     let t = Instant::now();"));
        let caret_line = text.lines().last().unwrap();
        assert_eq!(caret_line.find('^').unwrap(), "      | ".len() + 8);
    }

    #[test]
    fn sarif_has_2_1_0_shape() {
        let sarif = to_sarif(&sample());
        for needle in [
            "\"version\": \"2.1.0\"",
            "sarif-schema-2.1.0.json",
            "\"name\": \"detlint\"",
            "\"ruleId\": \"D2\"",
            "\"startLine\": 3",
            "\"startColumn\": 9",
            "\"artifactLocation\": {\"uri\": \"crates/x/src/lib.rs\"}",
        ] {
            assert!(sarif.contains(needle), "missing {needle} in:\n{sarif}");
        }
    }

    #[test]
    fn github_annotations_escape_data() {
        let mut f = sample();
        f[0].message = "50% of\nlines".into();
        let gh = to_github(&f);
        assert!(gh.starts_with("::error file=crates/x/src/lib.rs,line=3,col=9,"));
        assert!(gh.contains("50%25 of%0Alines"));
    }
}
