//! Incremental scan cache: per-file content hash → extracted facts and
//! raw local findings, stored under `target/detlint/`.
//!
//! The cache makes the workspace pass sub-second on warm runs: unchanged
//! files skip the lex/item-tree/local-rule stages entirely, and only the
//! global passes (call graph, D8/D9/D12, suppression accounting) re-run —
//! those always operate on the full fact set, so cross-file results stay
//! correct even when a single file changes. The format is a versioned,
//! line-oriented record stream written atomically (temp file + rename); a
//! version bump or any parse error invalidates the whole cache, which is
//! always safe because the cache is a pure accelerator.

use crate::lex::AllowMarker;
use crate::model::{CallKind, CallSite, FileFacts, FnInfo, MetricSite, RngSite, SeedArg, Sink};
use crate::{FileRecord, Finding, Rule};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::Path;

/// Bump when the record format or rule semantics change.
const VERSION: &str = "detlint-cache 2";

/// FNV-1a 64-bit content hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Loaded cache: path → (content hash, cached record).
#[derive(Default)]
pub(crate) struct Cache {
    pub entries: BTreeMap<String, (u64, FileRecord)>,
}

fn cache_path(root: &Path) -> std::path::PathBuf {
    root.join("target").join("detlint").join("cache.tsv")
}

fn esc(s: &str) -> String {
    if s.is_empty() {
        return "\\e".to_string();
    }
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> String {
    if s == "\\e" {
        return String::new();
    }
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

fn rule_id(rule: Rule) -> &'static str {
    rule.id()
}

fn rule_from(s: &str) -> Option<Rule> {
    if s == "marker" {
        return Some(Rule::Marker);
    }
    Rule::from_id(s)
}

/// Serializes one record under its content hash.
pub(crate) fn encode(hash: u64, rec: &FileRecord) -> String {
    let mut out = String::new();
    let p = |out: &mut String, parts: &[&str]| {
        out.push_str(&parts.join("\t"));
        out.push('\n');
    };
    p(
        &mut out,
        &[
            "F",
            &esc(&rec.path),
            &esc(&rec.crate_name),
            &format!("{hash:016x}"),
        ],
    );
    for f in &rec.raw {
        p(
            &mut out,
            &[
                "x",
                &f.line.to_string(),
                &f.col.to_string(),
                rule_id(f.rule),
                &esc(&f.message),
                &esc(f.snippet.as_deref().unwrap_or("\u{0}")),
            ],
        );
    }
    for m in &rec.markers {
        let rules: Vec<&str> = m.rules.iter().map(|r| r.id()).collect();
        p(
            &mut out,
            &[
                "m",
                &m.line.to_string(),
                &m.col.to_string(),
                &m.target.to_string(),
                &rules.join(","),
            ],
        );
    }
    for &line in &rec.facts.lane_mods {
        p(&mut out, &["L", &line.to_string()]);
    }
    for site in &rec.facts.metric_sites {
        p(
            &mut out,
            &[
                "M",
                site.mutator,
                &site.line.to_string(),
                &site.col.to_string(),
                &esc(site.name.as_deref().unwrap_or("\u{0}")),
            ],
        );
    }
    for f in &rec.facts.fns {
        let flags = format!(
            "{}{}{}",
            if f.is_pub { 'p' } else { '-' },
            if f.is_test { 't' } else { '-' },
            if f.is_hot { 'h' } else { '-' },
        );
        p(
            &mut out,
            &[
                "f",
                &f.line.to_string(),
                &f.col.to_string(),
                &f.body.0.to_string(),
                &f.body.1.to_string(),
                &flags,
                &esc(&f.name),
                &esc(f.impl_type.as_deref().unwrap_or("\u{0}")),
                &esc(&f.module),
            ],
        );
        for param in &f.params {
            let fl = if f.float_params.contains(param) {
                "1"
            } else {
                "0"
            };
            p(&mut out, &["p", &esc(param), fl]);
        }
        for c in &f.calls {
            let kind = match c.kind {
                CallKind::Method => "M",
                CallKind::Path => "P",
                CallKind::Bare => "B",
            };
            p(
                &mut out,
                &[
                    "c",
                    kind,
                    &c.line.to_string(),
                    &c.col.to_string(),
                    &esc(&c.name),
                    &esc(c.recv.as_deref().unwrap_or("\u{0}")),
                    &esc(&c.args),
                ],
            );
        }
        for s in &f.sinks {
            p(
                &mut out,
                &["s", s.what, &s.line.to_string(), &s.col.to_string()],
            );
        }
        for r in &f.rng_sites {
            let (kind, text) = match &r.arg {
                SeedArg::Lane => ("L", String::new()),
                SeedArg::Param(t) => ("P", t.clone()),
                SeedArg::Opaque(t) => ("O", t.clone()),
            };
            p(
                &mut out,
                &[
                    "r",
                    r.ctor,
                    &r.line.to_string(),
                    &r.col.to_string(),
                    kind,
                    &esc(&text),
                ],
            );
        }
    }
    out
}

/// `None` marker text used where an `Option<String>` field is absent;
/// distinguishes "no value" from "empty string".
fn opt(s: String) -> Option<String> {
    (s != "\u{0}").then_some(s)
}

/// Loads the cache; parse problems yield an empty cache (a cold rescan).
pub(crate) fn load(root: &Path) -> Cache {
    let Ok(text) = std::fs::read_to_string(cache_path(root)) else {
        return Cache::default();
    };
    parse(&text).unwrap_or_default()
}

fn parse(text: &str) -> Option<Cache> {
    let mut lines = text.lines();
    if lines.next()? != VERSION {
        return None;
    }
    let mut cache = Cache::default();
    let mut cur: Option<(u64, FileRecord)> = None;
    for line in lines {
        let parts: Vec<&str> = line.split('\t').collect();
        match *parts.first()? {
            "F" => {
                if let Some((h, rec)) = cur.take() {
                    cache.entries.insert(rec.path.clone(), (h, rec));
                }
                let hash = u64::from_str_radix(parts.get(3)?, 16).ok()?;
                cur = Some((
                    hash,
                    FileRecord {
                        path: unesc(parts.get(1)?),
                        crate_name: unesc(parts.get(2)?),
                        raw: Vec::new(),
                        facts: FileFacts::default(),
                        markers: Vec::new(),
                    },
                ));
            }
            "x" => {
                let rec = &mut cur.as_mut()?.1;
                rec.raw.push(Finding {
                    file: rec.path.clone(),
                    line: parts.get(1)?.parse().ok()?,
                    col: parts.get(2)?.parse().ok()?,
                    rule: rule_from(parts.get(3)?)?,
                    message: unesc(parts.get(4)?),
                    snippet: opt(unesc(parts.get(5)?)),
                });
            }
            "m" => {
                let rec = &mut cur.as_mut()?.1;
                let rules = parts
                    .get(4)?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(rule_from)
                    .collect::<Option<Vec<_>>>()?;
                rec.markers.push(AllowMarker {
                    line: parts.get(1)?.parse().ok()?,
                    col: parts.get(2)?.parse().ok()?,
                    target: parts.get(3)?.parse().ok()?,
                    rules,
                });
            }
            "L" => {
                cur.as_mut()?
                    .1
                    .facts
                    .lane_mods
                    .push(parts.get(1)?.parse().ok()?);
            }
            "M" => {
                let mutator = match *parts.get(1)? {
                    "inc" => "inc",
                    "inc_by" => "inc_by",
                    "gauge_set" => "gauge_set",
                    "observe_us" => "observe_us",
                    _ => return None,
                };
                cur.as_mut()?.1.facts.metric_sites.push(MetricSite {
                    mutator,
                    name: opt(unesc(parts.get(4)?)),
                    line: parts.get(2)?.parse().ok()?,
                    col: parts.get(3)?.parse().ok()?,
                });
            }
            "f" => {
                let flags = parts.get(5)?;
                cur.as_mut()?.1.facts.fns.push(FnInfo {
                    name: unesc(parts.get(6)?),
                    impl_type: opt(unesc(parts.get(7)?)),
                    module: unesc(parts.get(8)?),
                    line: parts.get(1)?.parse().ok()?,
                    col: parts.get(2)?.parse().ok()?,
                    body: (parts.get(3)?.parse().ok()?, parts.get(4)?.parse().ok()?),
                    is_pub: flags.contains('p'),
                    is_test: flags.contains('t'),
                    is_hot: flags.contains('h'),
                    params: Vec::new(),
                    float_params: Vec::new(),
                    calls: Vec::new(),
                    sinks: Vec::new(),
                    rng_sites: Vec::new(),
                });
            }
            "p" => {
                let f = cur.as_mut()?.1.facts.fns.last_mut()?;
                let name = unesc(parts.get(1)?);
                if *parts.get(2)? == "1" {
                    f.float_params.push(name.clone());
                }
                f.params.push(name);
            }
            "c" => {
                let f = cur.as_mut()?.1.facts.fns.last_mut()?;
                f.calls.push(CallSite {
                    kind: match *parts.get(1)? {
                        "M" => CallKind::Method,
                        "P" => CallKind::Path,
                        "B" => CallKind::Bare,
                        _ => return None,
                    },
                    line: parts.get(2)?.parse().ok()?,
                    col: parts.get(3)?.parse().ok()?,
                    name: unesc(parts.get(4)?),
                    recv: opt(unesc(parts.get(5)?)),
                    args: unesc(parts.get(6)?),
                });
            }
            "s" => {
                let f = cur.as_mut()?.1.facts.fns.last_mut()?;
                let what = match *parts.get(1)? {
                    "unwrap()" => "unwrap()",
                    "expect()" => "expect()",
                    "panic!" => "panic!",
                    "unreachable!" => "unreachable!",
                    _ => return None,
                };
                f.sinks.push(Sink {
                    what,
                    line: parts.get(2)?.parse().ok()?,
                    col: parts.get(3)?.parse().ok()?,
                });
            }
            "r" => {
                let f = cur.as_mut()?.1.facts.fns.last_mut()?;
                let ctor = match *parts.get(1)? {
                    "seed_from_u64" => "seed_from_u64",
                    "from_seed" => "from_seed",
                    _ => return None,
                };
                let text = unesc(parts.get(5)?);
                f.rng_sites.push(RngSite {
                    ctor,
                    line: parts.get(2)?.parse().ok()?,
                    col: parts.get(3)?.parse().ok()?,
                    arg: match *parts.get(4)? {
                        "L" => SeedArg::Lane,
                        "P" => SeedArg::Param(text),
                        "O" => SeedArg::Opaque(text),
                        _ => return None,
                    },
                });
            }
            _ => return None,
        }
    }
    if let Some((h, rec)) = cur.take() {
        cache.entries.insert(rec.path.clone(), (h, rec));
    }
    Some(cache)
}

/// Writes the cache atomically; errors are swallowed (the cache is only
/// an accelerator and the scan result is already computed).
pub(crate) fn store(root: &Path, records: &[(u64, &FileRecord)]) {
    let path = cache_path(root);
    let Some(dir) = path.parent() else { return };
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let mut out = String::from(VERSION);
    out.push('\n');
    for (hash, rec) in records {
        out.push_str(&encode(*hash, rec));
    }
    let tmp = path.with_extension("tmp");
    let write = std::fs::File::create(&tmp).and_then(|mut f| f.write_all(out.as_bytes()));
    if write.is_ok() {
        let _ = std::fs::rename(&tmp, &path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_record() {
        let src = "\
// detlint: hot
fn f(seed: u64, jitter: f64) {
    let r = StdRng::seed_from_u64(seed);
    helper(seed).unwrap();
    reg.inc(\"a.b\", &[]);
}
// detlint: allow(D2) -- fixture reason
fn g() { let t = 1; }
";
        let sf = crate::lex::prepare(src);
        let facts = crate::model::extract(&sf);
        let ctx = crate::FileCtx::new("netsim", false);
        let raw = crate::rules::local_findings("crates/netsim/src/x.rs", &sf, &facts, &ctx);
        let rec = FileRecord {
            path: "crates/netsim/src/x.rs".into(),
            crate_name: "netsim".into(),
            raw,
            facts,
            markers: sf.markers.clone(),
        };
        let hash = fnv1a(src.as_bytes());
        let text = format!("{VERSION}\n{}", encode(hash, &rec));
        let cache = parse(&text).expect("cache parses");
        let (h, back) = &cache.entries["crates/netsim/src/x.rs"];
        assert_eq!(*h, hash);
        assert_eq!(back.crate_name, "netsim");
        assert_eq!(back.raw.len(), rec.raw.len());
        assert_eq!(back.facts.fns.len(), rec.facts.fns.len());
        assert_eq!(back.facts.fns[0].params, rec.facts.fns[0].params);
        assert_eq!(back.facts.fns[0].calls.len(), rec.facts.fns[0].calls.len());
        assert_eq!(back.facts.fns[0].sinks.len(), rec.facts.fns[0].sinks.len());
        assert_eq!(back.markers.len(), rec.markers.len());
        assert_eq!(back.facts.metric_sites[0].name.as_deref(), Some("a.b"));
    }

    #[test]
    fn version_mismatch_invalidates() {
        assert!(parse("detlint-cache 1\n").is_none());
    }
}
