//! Item tree and per-file fact extraction: the second pipeline stage.
//!
//! Walks the sanitized, span-accurate code of one file (from [`crate::lex`])
//! and produces a [`FileFacts`]: the functions it defines (with module/impl
//! paths, spans, params, and `// detlint: hot` annotations), the calls each
//! body makes, the panic sinks it contains, every `SeedableRng`
//! construction with its argument expression, and every sim-plane metric
//! mutator call site. The workspace-level passes (call-graph reachability,
//! seed-lane provenance, metric cross-check) consume these facts without
//! re-reading any source.

use crate::lex::SourceFile;

/// How a call site names its callee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `.name(` — a method call; receiver type unknown.
    Method,
    /// `Recv::name(` — a path call; `recv` holds the segment before `::`.
    Path,
    /// `name(` — a bare (free-function) call.
    Bare,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    pub kind: CallKind,
    /// Callee name.
    pub name: String,
    /// For [`CallKind::Path`]: the path segment before `::` (e.g. a type).
    pub recv: Option<String>,
    /// 1-based line of the callee identifier.
    pub line: usize,
    /// 1-based column of the callee identifier.
    pub col: usize,
    /// The call's argument text (sanitized, possibly multi-line), used by
    /// the seed-provenance pass to classify what callers pass.
    pub args: String,
}

/// A potential panic site (`unwrap` / `expect` / `panic!` / `unreachable!`).
#[derive(Debug, Clone)]
pub struct Sink {
    /// Display form: `unwrap()`, `expect()`, `panic!`, `unreachable!`.
    pub what: &'static str,
    pub line: usize,
    pub col: usize,
}

/// How a `SeedableRng` construction obtains its seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeedArg {
    /// The argument expression mentions a `lane::*` constant.
    Lane,
    /// A single identifier that is a parameter of the enclosing function.
    Param(String),
    /// Anything else — a literal, a local, a field, an expression.
    Opaque(String),
}

/// One `seed_from_u64(...)` / `from_seed(...)` construction site.
#[derive(Debug, Clone)]
pub struct RngSite {
    /// The constructor token that matched.
    pub ctor: &'static str,
    /// Seed argument classification.
    pub arg: SeedArg,
    pub line: usize,
    pub col: usize,
}

/// One sim-plane metric mutator call site.
#[derive(Debug, Clone)]
pub struct MetricSite {
    /// Mutator method (`inc`, `inc_by`, `gauge_set`, `observe_us`).
    pub mutator: &'static str,
    /// The literal metric name, or `None` when the first argument is not a
    /// string literal (a dynamic name — D7 territory).
    pub name: Option<String>,
    pub line: usize,
    pub col: usize,
}

/// One function item.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Bare name.
    pub name: String,
    /// Enclosing impl target type (last path segment), if any.
    pub impl_type: Option<String>,
    /// Module path inside the file (inline `mod` names, joined with `::`).
    pub module: String,
    /// 1-based line/column of the function name.
    pub line: usize,
    pub col: usize,
    /// Inclusive 1-based body line range (header line through closing brace).
    pub body: (usize, usize),
    pub is_pub: bool,
    /// Inside `#[cfg(test)]`-gated code.
    pub is_test: bool,
    /// Carries a `// detlint: hot` annotation.
    pub is_hot: bool,
    /// Parameter names, in order (excluding `self`).
    pub params: Vec<String>,
    /// Parameter names whose written type mentions `f32`/`f64`.
    pub float_params: Vec<String>,
    pub calls: Vec<CallSite>,
    pub sinks: Vec<Sink>,
    pub rng_sites: Vec<RngSite>,
}

impl FnInfo {
    /// Qualified display name: `Type::name` or `module::name` or `name`.
    pub fn qual(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None if self.module.is_empty() => self.name.clone(),
            None => format!("{}::{}", self.module, self.name),
        }
    }
}

/// Everything the workspace passes need to know about one file.
#[derive(Debug, Default)]
pub struct FileFacts {
    pub fns: Vec<FnInfo>,
    /// Impl target type names declared in this file.
    pub impl_types: Vec<String>,
    pub metric_sites: Vec<MetricSite>,
    /// Lines declaring an inline `mod lane` (seed-lane registry).
    pub lane_mods: Vec<usize>,
}

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// The identifier ending at byte `end` (exclusive) of `s`, if any.
fn ident_ending_at(s: &str, end: usize) -> Option<&str> {
    let bytes = s.as_bytes();
    let mut start = end;
    while start > 0 && is_ident_char(bytes[start - 1]) {
        start -= 1;
    }
    if start == end || bytes[start].is_ascii_digit() {
        return None;
    }
    Some(&s[start..end])
}

const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "in", "as", "fn", "move", "else", "let",
    "mut", "ref", "break", "continue", "where", "impl", "dyn", "pub", "use", "mod", "unsafe",
    "async", "await", "box", "true", "false",
];

/// A lexical scope on the item-tree stack.
#[derive(Debug)]
enum Scope {
    Mod(String),
    Impl(String),
    /// A function body; holds its index in `facts.fns`.
    Fn(usize),
    /// Struct/enum/trait/closure/match-arm/etc.: brace-counted, nameless.
    Other,
}

/// Extracts the item tree and per-function facts from a prepared file.
pub fn extract(sf: &SourceFile) -> FileFacts {
    let mut facts = FileFacts::default();
    let mut stack: Vec<(Scope, u32)> = Vec::new(); // (scope, depth at open)
    let mut depth: u32 = 0;

    // Pending item header state, accumulated until its `{` or `;`.
    #[derive(Default)]
    struct Pending {
        kind: Option<&'static str>, // "fn" | "impl" | "mod"
        text: String,               // header text so far
        line: usize,                // line of the keyword
        col: usize,
    }
    let mut pending = Pending::default();

    for i in 0..sf.len() {
        let lineno = i + 1;
        let code = sf.code[i].as_str();
        let bytes = code.as_bytes();
        let mut j = 0usize;
        while j < bytes.len() {
            let c = bytes[j];
            if is_ident_char(c) {
                let start = j;
                while j < bytes.len() && is_ident_char(bytes[j]) {
                    j += 1;
                }
                let word = &code[start..j];
                if pending.kind.is_none() {
                    match word {
                        "fn" => {
                            pending = Pending {
                                kind: Some("fn"),
                                text: String::from("fn"),
                                line: lineno,
                                col: start + 1,
                            };
                        }
                        "impl" => {
                            pending = Pending {
                                kind: Some("impl"),
                                text: String::from("impl"),
                                line: lineno,
                                col: start + 1,
                            };
                        }
                        "mod" => {
                            pending = Pending {
                                kind: Some("mod"),
                                text: String::from("mod"),
                                line: lineno,
                                col: start + 1,
                            };
                        }
                        _ => {}
                    }
                } else {
                    pending.text.push(' ');
                    pending.text.push_str(word);
                }
                continue;
            }
            match c {
                b'{' => {
                    depth += 1;
                    let scope = match pending.kind.take() {
                        Some("fn") => {
                            let info = parse_fn_header(&pending.text, sf, &stack, pending.line);
                            let idx = facts.fns.len();
                            facts.fns.push(FnInfo {
                                line: pending.line,
                                col: pending.col,
                                body: (pending.line, pending.line),
                                ..info
                            });
                            Scope::Fn(idx)
                        }
                        Some("impl") => {
                            let ty = parse_impl_target(&pending.text);
                            if !facts.impl_types.contains(&ty) {
                                facts.impl_types.push(ty.clone());
                            }
                            Scope::Impl(ty)
                        }
                        Some("mod") => {
                            let name = pending
                                .text
                                .split_whitespace()
                                .nth(1)
                                .unwrap_or("")
                                .to_string();
                            if name == "lane" {
                                facts.lane_mods.push(pending.line);
                            }
                            Scope::Mod(name)
                        }
                        _ => Scope::Other,
                    };
                    pending = Pending::default();
                    stack.push((scope, depth));
                }
                b'}' => {
                    if let Some((scope, open_depth)) = stack.last() {
                        if *open_depth == depth {
                            if let Scope::Fn(idx) = scope {
                                facts.fns[*idx].body.1 = lineno;
                            }
                            stack.pop();
                        }
                    }
                    depth = depth.saturating_sub(1);
                }
                b';' if pending.kind.is_some() && brackets_balanced(&pending.text) => {
                    // `mod name;`, trait method decl, extern fn: no body.
                    pending = Pending::default();
                }
                _ => {
                    if pending.kind.is_some() {
                        pending.text.push(c as char);
                    }
                }
            }
            j += 1;
        }
        if pending.kind.is_some() {
            pending.text.push(' ');
        }
    }

    // Close any function bodies left open by unbalanced input.
    for (scope, _) in &stack {
        if let Scope::Fn(idx) = scope {
            facts.fns[*idx].body.1 = sf.len();
        }
    }

    // Body-level facts per function.
    for idx in 0..facts.fns.len() {
        let (lo, hi) = facts.fns[idx].body;
        let f = &facts.fns[idx];
        let calls = extract_calls(sf, lo, hi, &f.impl_type);
        let sinks = extract_sinks(sf, lo, hi);
        let rng_sites = extract_rng_sites(sf, lo, hi, &f.params);
        let f = &mut facts.fns[idx];
        f.calls = calls;
        f.sinks = sinks;
        f.rng_sites = rng_sites;
    }

    facts.metric_sites = extract_metric_sites(sf);
    facts
}

/// The target type of an accumulated `impl` header: the word after the
/// last ` for ` (`impl Trait for Type`), else the first type word after
/// `impl` (skipping a leading generic parameter list). Generic arguments
/// and path prefixes are stripped to the bare type name.
fn parse_impl_target(text: &str) -> String {
    let body = text.strip_prefix("impl").unwrap_or(text);
    let chosen = match body.rfind(" for ") {
        Some(at) => &body[at + 5..],
        None => {
            // Skip `<T: Bound>` generics ahead of the type.
            let mut rest = body.trim_start();
            if rest.starts_with('<') {
                let mut depth = 0i32;
                let mut cut = rest.len();
                for (i, c) in rest.char_indices() {
                    match c {
                        '<' => depth += 1,
                        '>' => {
                            depth -= 1;
                            if depth == 0 {
                                cut = i + 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                rest = &rest[cut..];
            }
            rest
        }
    };
    let chosen = chosen.trim_start();
    let head: &str = chosen
        .split(|c: char| c == '<' || c == '{' || c.is_whitespace())
        .next()
        .unwrap_or("");
    head.rsplit("::")
        .next()
        .unwrap_or(head)
        .trim_matches(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .to_string()
}

fn brackets_balanced(text: &str) -> bool {
    let mut round = 0i32;
    let mut angle = 0i32;
    for c in text.chars() {
        match c {
            '(' => round += 1,
            ')' => round -= 1,
            '<' => angle += 1,
            '>' => angle = (angle - 1).max(0), // `->` and comparisons skew this; clamp
            _ => {}
        }
    }
    round <= 0 && angle <= 0
}

/// Parses an accumulated `fn` header (`fn name<..>(params) -> T`) into an
/// [`FnInfo`] skeleton (spans/body filled by the caller).
fn parse_fn_header(text: &str, sf: &SourceFile, stack: &[(Scope, u32)], line: usize) -> FnInfo {
    let after_fn = text.strip_prefix("fn").unwrap_or(text).trim_start();
    let name: String = after_fn
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();

    // Parameter list: text between the first top-level parens.
    let mut params = Vec::new();
    let mut float_params = Vec::new();
    if let Some(open) = after_fn.find('(') {
        let inner = slice_to_matching_paren(&after_fn[open..]);
        for part in split_top_commas(inner) {
            let part = part.trim();
            if part.is_empty() || part == "self" || part.ends_with("self") {
                continue;
            }
            let Some((pat, ty)) = part.split_once(':') else {
                continue;
            };
            let pname = pat
                .trim()
                .trim_start_matches("mut ")
                .trim()
                .trim_start_matches('&')
                .trim()
                .to_string();
            if pname.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') && !pname.is_empty() {
                if ty.contains("f64") || ty.contains("f32") {
                    float_params.push(pname.clone());
                }
                params.push(pname);
            }
        }
    }

    let impl_type = stack.iter().rev().find_map(|(s, _)| match s {
        Scope::Impl(t) => Some(t.clone()),
        _ => None,
    });
    let module = stack
        .iter()
        .filter_map(|(s, _)| match s {
            Scope::Mod(m) if !m.is_empty() => Some(m.as_str()),
            _ => None,
        })
        .collect::<Vec<_>>()
        .join("::");

    let is_test = sf.is_test.get(line - 1).copied().unwrap_or(false);
    let is_hot = fn_is_hot(sf, line);
    let is_pub = text_has_pub(sf, line);

    FnInfo {
        name,
        impl_type,
        module,
        line,
        col: 0,
        body: (line, line),
        is_pub,
        is_test,
        is_hot,
        params,
        float_params,
        calls: Vec::new(),
        sinks: Vec::new(),
        rng_sites: Vec::new(),
    }
}

/// Whether the `fn` at `line` carries a `// detlint: hot` annotation: on
/// the header line itself, or standing above it with only attributes and
/// comments in between.
fn fn_is_hot(sf: &SourceFile, line: usize) -> bool {
    if sf.hot_lines.contains(&line) {
        return true;
    }
    let mut l = line - 1; // 1-based line above the header
    while l >= 1 {
        if sf.hot_lines.contains(&l) {
            return true;
        }
        let code = sf.code[l - 1].trim();
        let is_attr_or_comment = code.is_empty() || code.starts_with("#[");
        if !is_attr_or_comment {
            return false;
        }
        // An empty code line that carried no comment at all ends the search
        // only if it is truly blank source (not a comment-only line).
        if code.is_empty() && sf.comments[l - 1].is_none() && sf.raw[l - 1].trim().is_empty() {
            return false;
        }
        l -= 1;
    }
    false
}

/// Whether the `fn` at `line` is `pub` (same line, before the keyword).
fn text_has_pub(sf: &SourceFile, line: usize) -> bool {
    sf.code
        .get(line - 1)
        .map(|c| {
            c.split("fn")
                .next()
                .is_some_and(|before| before.contains("pub"))
        })
        .unwrap_or(false)
}

/// The text inside the first paren group of `s` (which starts with `(`),
/// up to its matching close paren (multi-line headers are accumulated into
/// one string before this is called).
fn slice_to_matching_paren(s: &str) -> &str {
    let mut depth = 0i32;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return &s[1..i];
                }
            }
            _ => {}
        }
    }
    &s[1..]
}

/// Splits on commas at paren/angle/bracket depth zero.
fn split_top_commas(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0;
    for (i, c) in s.char_indices() {
        match c {
            '(' | '[' | '<' => depth += 1,
            ')' | ']' | '>' => depth -= 1,
            ',' if depth <= 0 => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

/// Extracts call sites from a body line range.
fn extract_calls(
    sf: &SourceFile,
    lo: usize,
    hi: usize,
    impl_type: &Option<String>,
) -> Vec<CallSite> {
    let mut calls = Vec::new();
    for lineno in lo..=hi.min(sf.len()) {
        let code = sf.code[lineno - 1].as_str();
        let bytes = code.as_bytes();
        let mut j = 0usize;
        while j < bytes.len() {
            if !is_ident_char(bytes[j]) {
                j += 1;
                continue;
            }
            let start = j;
            while j < bytes.len() && is_ident_char(bytes[j]) {
                j += 1;
            }
            let word = &code[start..j];
            // Must be directly followed by `(` (allowing `::<T>(` turbofish
            // is out of scope for the heuristic graph).
            if bytes.get(j) != Some(&b'(') {
                continue;
            }
            if KEYWORDS.contains(&word) || bytes.get(start.wrapping_sub(1)) == Some(&b'!') {
                continue;
            }
            // Macro invocation `name!(` — the `!` sits *after* the word.
            // (handled above via lookbehind on `!`); also skip `word!(`.
            if word.is_empty() {
                continue;
            }
            let (kind, recv) = if start >= 1 && bytes[start - 1] == b'.' {
                (CallKind::Method, None)
            } else if start >= 2 && &code[start - 2..start] == "::" {
                let seg = ident_ending_at(code, start - 2).map(|s| s.to_string());
                match seg {
                    Some(s) => {
                        let s = if s == "Self" {
                            impl_type.clone().unwrap_or(s)
                        } else {
                            s
                        };
                        (CallKind::Path, Some(s))
                    }
                    None => (CallKind::Bare, None),
                }
            } else {
                (CallKind::Bare, None)
            };
            calls.push(CallSite {
                kind,
                name: word.to_string(),
                recv,
                line: lineno,
                col: start + 1,
                args: gather_paren_arg(sf, lineno, j),
            });
        }
    }
    calls
}

/// Panic sinks in a body line range (test lines excluded by the caller's
/// use of `FnInfo::is_test`; sinks on test lines inside non-test fns do not
/// occur in practice).
fn extract_sinks(sf: &SourceFile, lo: usize, hi: usize) -> Vec<Sink> {
    let mut sinks = Vec::new();
    for lineno in lo..=hi.min(sf.len()) {
        let code = sf.code[lineno - 1].as_str();
        for (pat, what) in [
            (".unwrap()", "unwrap()"),
            (".expect(", "expect()"),
            ("panic!", "panic!"),
            ("unreachable!", "unreachable!"),
        ] {
            let mut from = 0;
            while let Some(pos) = code[from..].find(pat) {
                let at = from + pos;
                // `debug_assert!`-style containment: `panic!`/`unreachable!`
                // must start a token (not `.unwrap()`, which self-anchors).
                let ok = if pat.starts_with('.') {
                    true
                } else {
                    at == 0 || !is_ident_char(code.as_bytes()[at - 1])
                };
                if ok {
                    sinks.push(Sink {
                        what,
                        line: lineno,
                        col: at + 1 + if pat.starts_with('.') { 1 } else { 0 },
                    });
                }
                from = at + pat.len();
            }
        }
    }
    sinks.sort_by_key(|s| (s.line, s.col));
    sinks
}

/// `SeedableRng` construction sites in a body range, with the seed
/// argument classified for the D8 provenance pass.
fn extract_rng_sites(sf: &SourceFile, lo: usize, hi: usize, params: &[String]) -> Vec<RngSite> {
    const CTORS: &[&str] = &["seed_from_u64(", "from_seed("];
    let mut sites = Vec::new();
    for lineno in lo..=hi.min(sf.len()) {
        let code = sf.code[lineno - 1].as_str();
        for ctor in CTORS {
            let mut from = 0;
            while let Some(pos) = code[from..].find(ctor) {
                let at = from + pos;
                let arg_text = gather_paren_arg(sf, lineno, at + ctor.len() - 1);
                let arg = classify_seed_arg(&arg_text, params);
                sites.push(RngSite {
                    ctor: if *ctor == "seed_from_u64(" {
                        "seed_from_u64"
                    } else {
                        "from_seed"
                    },
                    arg,
                    line: lineno,
                    col: at + 1,
                });
                from = at + ctor.len();
            }
        }
    }
    sites
}

/// Gathers the argument text of a call whose `(` sits at `(line, col0)`,
/// following up to 4 continuation lines.
pub fn gather_paren_arg(sf: &SourceFile, line: usize, col0: usize) -> String {
    let mut depth = 0i32;
    let mut out = String::new();
    for (li, l) in (line..=sf.len().min(line + 4)).enumerate() {
        let code = sf.code[l - 1].as_str();
        let start = if li == 0 { col0 } else { 0 };
        for c in code[start.min(code.len())..].chars() {
            match c {
                '(' => {
                    depth += 1;
                    if depth > 1 {
                        out.push(c);
                    }
                }
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        return out;
                    }
                    out.push(c);
                }
                _ if depth >= 1 => out.push(c),
                _ => {}
            }
        }
        out.push(' ');
    }
    out
}

fn classify_seed_arg(arg: &str, params: &[String]) -> SeedArg {
    let t = arg.trim();
    if t.contains("lane::") {
        return SeedArg::Lane;
    }
    if t.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') && params.iter().any(|p| p == t) {
        return SeedArg::Param(t.to_string());
    }
    SeedArg::Opaque(t.to_string())
}

/// Sim-plane metric mutator call sites, file-wide (non-test lines only).
fn extract_metric_sites(sf: &SourceFile) -> Vec<MetricSite> {
    const MUTATORS: &[(&str, &str)] = &[
        (".inc(", "inc"),
        (".inc_by(", "inc_by"),
        (".gauge_set(", "gauge_set"),
        (".observe_us(", "observe_us"),
    ];
    let mut sites = Vec::new();
    for lineno in 1..=sf.len() {
        if sf.is_test[lineno - 1] {
            continue;
        }
        let code = sf.code[lineno - 1].as_str();
        for (pat, mutator) in MUTATORS {
            let mut from = 0;
            while let Some(pos) = code[from..].find(pat) {
                let at = from + pos;
                // First argument: a string literal? The sanitizer blanks
                // string contents but keeps the quotes, so read the raw
                // line to recover the literal name.
                let open_paren = at + pat.len() - 1;
                let name = metric_name_at(sf, lineno, open_paren);
                sites.push(MetricSite {
                    mutator,
                    name,
                    line: lineno,
                    col: at + 2,
                });
                from = at + pat.len();
            }
        }
    }
    sites
}

/// Reads the literal first argument of a mutator call whose `(` is at
/// `(line, col0)` in sanitized coordinates; `None` when the first token is
/// not a string literal.
fn metric_name_at(sf: &SourceFile, line: usize, col0: usize) -> Option<String> {
    for (li, l) in (line..=sf.len().min(line + 2)).enumerate() {
        let code = sf.code[l - 1].as_str();
        let start = if li == 0 {
            (col0 + 1).min(code.len())
        } else {
            0
        };
        let rest = &code[start..];
        let trimmed = rest.trim_start();
        if trimmed.is_empty() {
            continue;
        }
        if !trimmed.starts_with('"') {
            return None;
        }
        // Find the literal's span in the *raw* line (same columns).
        let q1 = start + (rest.len() - trimmed.len());
        let raw = sf.raw_line(l);
        let raw_bytes = raw.as_bytes();
        if q1 >= raw.len() || raw_bytes[q1] != b'"' {
            return None;
        }
        let close = raw[q1 + 1..].find('"')?;
        return Some(raw[q1 + 1..q1 + 1 + close].to_string());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::prepare;

    #[test]
    fn fn_items_and_spans() {
        let src = "\
impl Wheel {
    // detlint: hot
    pub fn push(&mut self, ev: Event) {
        self.inner.push(ev);
    }
    fn helper(a: u32, jitter: f64) -> u32 {
        a
    }
}
";
        let facts = extract(&prepare(src));
        assert_eq!(facts.fns.len(), 2);
        let push = &facts.fns[0];
        assert_eq!(push.name, "push");
        assert_eq!(push.impl_type.as_deref(), Some("Wheel"));
        assert!(push.is_hot && push.is_pub);
        assert_eq!(push.body, (3, 5));
        let helper = &facts.fns[1];
        assert!(!helper.is_hot);
        assert_eq!(helper.params, vec!["a", "jitter"]);
        assert_eq!(helper.float_params, vec!["jitter"]);
    }

    #[test]
    fn calls_are_classified() {
        let src = "\
fn f(x: &X) {
    x.handle(1);
    Wheel::advance(x);
    helper(x);
}
";
        let facts = extract(&prepare(src));
        let calls = &facts.fns[0].calls;
        let kinds: Vec<(CallKind, &str)> =
            calls.iter().map(|c| (c.kind, c.name.as_str())).collect();
        assert!(kinds.contains(&(CallKind::Method, "handle")));
        assert!(kinds.contains(&(CallKind::Path, "advance")));
        assert!(kinds.contains(&(CallKind::Bare, "helper")));
    }

    #[test]
    fn sinks_carry_spans() {
        let src = "fn f(o: Option<u8>) -> u8 {\n    o.unwrap()\n}\n";
        let facts = extract(&prepare(src));
        let s = &facts.fns[0].sinks[0];
        assert_eq!((s.what, s.line), ("unwrap()", 2));
        assert_eq!(s.col, 7);
    }

    #[test]
    fn rng_sites_classify_lane_param_and_opaque() {
        let src = "\
fn f(seed: u64) {
    let a = StdRng::seed_from_u64(derive_seed(master, lane::ENGINE, 0));
    let b = StdRng::seed_from_u64(seed);
    let c = StdRng::seed_from_u64(42);
}
";
        let facts = extract(&prepare(src));
        let args: Vec<&SeedArg> = facts.fns[0].rng_sites.iter().map(|r| &r.arg).collect();
        assert_eq!(args[0], &SeedArg::Lane);
        assert_eq!(args[1], &SeedArg::Param("seed".into()));
        assert!(matches!(args[2], SeedArg::Opaque(t) if t == "42"));
    }

    #[test]
    fn metric_sites_recover_literal_names() {
        let src = "\
fn export(reg: &mut Registry) {
    reg.inc(\"campaign.experiments\", &[]);
    reg.inc_by(
        \"net.flow_timeouts_cancelled\",
        &[],
        3,
    );
    reg.inc(dynamic_name, &[]);
}
";
        let facts = extract(&prepare(src));
        let names: Vec<Option<&str>> = facts
            .metric_sites
            .iter()
            .map(|m| m.name.as_deref())
            .collect();
        assert_eq!(
            names,
            vec![
                Some("campaign.experiments"),
                Some("net.flow_timeouts_cancelled"),
                None
            ]
        );
    }

    #[test]
    fn lane_mod_is_recorded() {
        let facts = extract(&prepare("mod lane {\n    pub const X: u64 = 0;\n}\n"));
        assert_eq!(facts.lane_mods, vec![1]);
    }
}
