//! CLI for the `detlint` workspace determinism-and-safety lint pass.
//!
//! Usage:
//!
//! ```text
//! cargo run -p detlint                     # text diagnostics, exit 1 on findings
//! cargo run -p detlint -- --format json    # JSON report (for CI artifacts)
//! cargo run -p detlint -- --root ../other  # lint another workspace
//! ```

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut format = Format::Text;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("json") => format = Format::Json,
                Some("text") => format = Format::Text,
                other => {
                    eprintln!(
                        "detlint: --format expects `text` or `json`, got {:?}",
                        other.unwrap_or("<missing>")
                    );
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("detlint: --root expects a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "detlint: workspace determinism-and-safety lint pass\n\n\
                     OPTIONS:\n  \
                     --format <text|json>  output format (default: text)\n  \
                     --root <path>         workspace root (default: discovered from manifest dir)\n\n\
                     Rules: D1 hash-iteration-order escape, D2 wall clock, D3 ambient RNG,\n\
                     D4 panic in hot-path library code, D5 missing #![forbid(unsafe_code)],\n\
                     D6 discarded experiment Outcome, D7 observability-plane breach\n\
                     (host-plane profiling outside repro/bench, or a dynamic metric name).\n\
                     Suppress with an inline comment marker: detlint: allow(D#) -- <reason>."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("detlint: unknown argument `{other}` (see --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let start = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
            match detlint::find_workspace_root(&start) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "detlint: no [workspace] manifest found above {}",
                        start.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let findings = match detlint::scan_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("detlint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    match format {
        Format::Text => {
            for f in &findings {
                println!("{f}");
            }
            if findings.is_empty() {
                eprintln!("detlint: workspace clean");
            } else {
                eprintln!("detlint: {} finding(s)", findings.len());
            }
        }
        Format::Json => println!("{}", detlint::to_json(&findings)),
    }

    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

enum Format {
    Text,
    Json,
}
