//! CLI for the `detlint` workspace determinism-and-safety lint pass.
//!
//! Usage:
//!
//! ```text
//! cargo run -p detlint                      # text diagnostics, exit 1 on findings
//! cargo run -p detlint -- --format json     # JSON report (for CI artifacts)
//! cargo run -p detlint -- --format sarif    # SARIF 2.1.0 (GitHub code scanning)
//! cargo run -p detlint -- --format github   # ::error annotations on the PR diff
//! cargo run -p detlint -- --no-cache        # ignore target/detlint/ scan cache
//! cargo run -p detlint -- --root ../other   # lint another workspace
//! ```
//!
//! Exit codes: 0 clean, 1 lint findings, 2 internal scan errors (bad
//! arguments, unreadable or non-UTF-8 files — printed to stderr, never
//! folded into the findings stream).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut format = Format::Text;
    let mut root: Option<PathBuf> = None;
    let mut use_cache = true;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("json") => format = Format::Json,
                Some("text") => format = Format::Text,
                Some("sarif") => format = Format::Sarif,
                Some("github") => format = Format::Github,
                other => {
                    eprintln!(
                        "detlint: --format expects `text`, `json`, `sarif` or `github`, got {:?}",
                        other.unwrap_or("<missing>")
                    );
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("detlint: --root expects a path");
                    return ExitCode::from(2);
                }
            },
            "--no-cache" => use_cache = false,
            "--help" | "-h" => {
                println!(
                    "detlint: workspace determinism-and-safety lint pass\n\n\
                     OPTIONS:\n  \
                     --format <text|json|sarif|github>  output format (default: text)\n  \
                     --root <path>    workspace root (default: discovered from manifest dir)\n  \
                     --no-cache       ignore the target/detlint/ incremental scan cache\n\n\
                     Rules: D1 hash-iteration-order escape, D2 wall clock, D3 ambient RNG,\n\
                     D4 panic in hot-path library code, D5 missing #![forbid(unsafe_code)],\n\
                     D6 discarded experiment Outcome, D7 observability-plane breach,\n\
                     D8 seed-lane provenance, D9 transitive panic reachability from\n\
                     // detlint: hot entry points, D10 hot-path allocation, D11 float-order\n\
                     hazards, D12 metric-name cross-check against ci/vitals-baseline.json\n\
                     and KNOWN_METRICS in scripts/vitals_check.py.\n\
                     Suppress with an inline comment marker: detlint: allow(D#) -- <reason>.\n\
                     A marker that suppresses nothing is itself an error.\n\n\
                     EXIT CODES: 0 clean, 1 findings, 2 internal scan error."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("detlint: unknown argument `{other}` (see --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let start = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
            match detlint::find_workspace_root(&start) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "detlint: no [workspace] manifest found above {}",
                        start.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = detlint::scan_workspace_report(&root, use_cache);
    let findings = &report.findings;

    match format {
        Format::Text => {
            print!("{}", detlint::report::to_text(findings));
            if findings.is_empty() {
                eprintln!("detlint: workspace clean");
            } else {
                eprintln!("detlint: {} finding(s)", findings.len());
            }
        }
        Format::Json => println!("{}", detlint::to_json(findings)),
        Format::Sarif => println!("{}", detlint::report::to_sarif(findings)),
        Format::Github => print!("{}", detlint::report::to_github(findings)),
    }

    if !report.errors.is_empty() {
        for e in &report.errors {
            eprintln!("detlint: scan error: {e}");
        }
        return ExitCode::from(2);
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

enum Format {
    Text,
    Json,
    Sarif,
    Github,
}
