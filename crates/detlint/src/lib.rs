//! `detlint`: a workspace determinism-and-safety lint pass.
//!
//! The campaign's headline guarantee is *byte-identical CSVs and metrics
//! for every thread count, seed, and queue implementation* (DESIGN.md §4,
//! §8). That invariant is easy to break silently: one `for` loop over a
//! `HashMap`, one `Instant::now()`, one `thread_rng()` in a simulation
//! path and replays diverge while every unit test stays green. `detlint`
//! makes those hazards a compile gate instead of a hope — zero deps, no
//! syn, in the spirit of the vendored stubs.
//!
//! Since v2 the scanner is a real pipeline (DESIGN.md §9): a spanned,
//! length-preserving lexer ([`lex`], line *and* column), an item tree with
//! per-function facts ([`model`]), and a heuristic intra-workspace call
//! graph feeding flow-aware passes. Rules:
//!
//! - **D1** — no iteration-order escape from hash collections (`for … in`,
//!   `.iter()`, `.keys()`, `.drain()`, …) in the simulation/analysis
//!   crates. Use `BTreeMap`/`BTreeSet`, or sort before iterating.
//! - **D2** — no wall clock (`Instant::now`, `SystemTime::now`) in
//!   simulation crates; only the simulated clock may drive behaviour.
//! - **D3** — no ambient randomness (`thread_rng`, `from_entropy`,
//!   `rand::random`); all RNG must flow from the seed lanes.
//! - **D4** — no `unwrap()`/`expect()`/`panic!` in non-test library code of
//!   the hot-path crates (`netsim`, `dnssim`, `measure`) without a marker.
//! - **D5** — every crate root carries `#![forbid(unsafe_code)]`.
//! - **D6** — no `let _ =` discarding an experiment result's typed
//!   `Outcome` in `measure`/`analysis`.
//! - **D7** — the observability planes stay separated: `obs::host` only in
//!   the driver binaries, and sim-plane metric names must be literals.
//! - **D8** — seed-lane provenance: every `seed_from_u64`/`from_seed` in a
//!   sim crate must flow from a `lane::*` constant, directly or through a
//!   seed parameter whose callers pass lane-derived values; new lanes may
//!   only be declared in `measure`'s `lane` module.
//! - **D9** — transitive panic reachability: functions annotated
//!   `// detlint: hot` must not reach `unwrap`/`expect`/`panic!`/
//!   `unreachable!` through the call graph; the diagnostic names the
//!   shortest offending chain and is suppressible only at the sink.
//! - **D10** — no allocation (`Vec::new`, `to_vec`, `clone`, `format!`,
//!   `String::from`, `Box::new`) inside `// detlint: hot` functions.
//! - **D11** — float-order hazards: `partial_cmp` comparators in sorts,
//!   float-keyed ordered collections, bare float→int `as` casts.
//! - **D12** — metric cross-check: every sim-plane metric name must appear
//!   in `ci/vitals-baseline.json` or `KNOWN_METRICS` in
//!   `scripts/vitals_check.py`, and every declared name must be emitted.
//!
//! Suppression is explicit and audited: an inline
//! `// detlint: allow(D1) -- <reason>` marker on the offending line (or
//! alone on the line above) suppresses the named rule *only when a written
//! reason follows the `--`*. A marker without a reason is an error, and —
//! new in v2 — a marker that suppresses nothing is an error too, so stale
//! justifications cannot outlive the code they excused.

#![forbid(unsafe_code)]

mod cache;
pub mod lex;
pub mod model;
pub mod report;
mod rules;

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

pub use rules::{load_metric_decls, MetricDecls};

/// Crates whose behaviour feeds the simulation or its analysis: D1–D3,
/// D7b, D8, D11, D12 apply here. Names are the directory names under
/// `crates/`.
pub const SIM_CRATES: &[&str] = &[
    "netsim", "dnswire", "dnssim", "cellsim", "cdnsim", "measure", "analysis", "core", "obs",
];

/// Crates allowed to touch the host plane (`obs::host`, wall clocks): the
/// driver binaries, `obs` itself (the implementation), and the serving
/// plane (`serve` binds real sockets, `loadgen` paces real traffic — both
/// run on wall time by design). D7 fences everyone else onto the
/// deterministic sim plane, and D2/D3 stay fully gated in sim crates.
pub const HOST_PLANE_CRATES: &[&str] = &["repro", "bench", "obs", "serve", "loadgen"];

/// Hot-path crates where D4 (panic-freedom of library code) applies. In
/// these crates an audited `allow(D4)` marker also discharges D9 at the
/// same sink — one audit, not two.
pub const HOT_CRATES: &[&str] = &["netsim", "dnssim", "measure"];

/// Crates where D6 (no discarded experiment outcomes) applies.
pub const OUTCOME_CRATES: &[&str] = &["measure", "analysis"];

/// A lint rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Iteration-order escape from a hash collection.
    D1,
    /// Wall-clock read in a simulation crate.
    D2,
    /// Ambient (non-seed-lane) randomness.
    D3,
    /// `unwrap`/`expect`/`panic!` in hot-path library code.
    D4,
    /// Missing `#![forbid(unsafe_code)]` in a crate root.
    D5,
    /// `let _ =` discarding an experiment result's typed `Outcome`.
    D6,
    /// Observability-plane breach: host-plane APIs outside the drivers, or
    /// a dynamic sim-plane metric name.
    D7,
    /// RNG seed that does not flow from a `lane::*` constant.
    D8,
    /// Hot entry point that transitively reaches a panic sink.
    D9,
    /// Allocation inside a `// detlint: hot` function.
    D10,
    /// Float-order hazard.
    D11,
    /// Metric name missing from the baseline/allowlist, or dead there.
    D12,
    /// Malformed or unused allow-marker (markers are themselves linted).
    Marker,
}

impl Rule {
    /// The short identifier used in diagnostics and allow-markers.
    pub fn id(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::D3 => "D3",
            Rule::D4 => "D4",
            Rule::D5 => "D5",
            Rule::D6 => "D6",
            Rule::D7 => "D7",
            Rule::D8 => "D8",
            Rule::D9 => "D9",
            Rule::D10 => "D10",
            Rule::D11 => "D11",
            Rule::D12 => "D12",
            Rule::Marker => "marker",
        }
    }

    /// Parses a rule name as written inside `allow(...)`.
    pub fn from_id(s: &str) -> Option<Rule> {
        match s.trim().to_ascii_uppercase().as_str() {
            "D1" => Some(Rule::D1),
            "D2" => Some(Rule::D2),
            "D3" => Some(Rule::D3),
            "D4" => Some(Rule::D4),
            "D5" => Some(Rule::D5),
            "D6" => Some(Rule::D6),
            "D7" => Some(Rule::D7),
            "D8" => Some(Rule::D8),
            "D9" => Some(Rule::D9),
            "D10" => Some(Rule::D10),
            "D11" => Some(Rule::D11),
            "D12" => Some(Rule::D12),
            _ => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number (byte offset in the line).
    pub col: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
    /// The offending raw source line, for the text code frame.
    pub snippet: Option<String>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: rule[{}]: {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// Where a file sits in the workspace, which decides which rules apply.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Crate directory name (`netsim`, `analysis`, …).
    pub crate_name: String,
    /// Whether this file is the crate root (`src/lib.rs` / `src/main.rs`).
    pub is_crate_root: bool,
}

impl FileCtx {
    /// Context for a file of the named crate.
    pub fn new(crate_name: &str, is_crate_root: bool) -> Self {
        FileCtx {
            crate_name: crate_name.to_string(),
            is_crate_root,
        }
    }

    fn sim(&self) -> bool {
        SIM_CRATES.contains(&self.crate_name.as_str())
    }

    fn hot(&self) -> bool {
        HOT_CRATES.contains(&self.crate_name.as_str())
    }

    fn outcome(&self) -> bool {
        OUTCOME_CRATES.contains(&self.crate_name.as_str())
    }
}

/// One scanned file's cached/cacheable state: raw (pre-suppression) local
/// findings, extracted facts, and its allow-markers.
#[derive(Debug)]
pub struct FileRecord {
    /// Workspace-relative path.
    pub path: String,
    /// Crate directory name.
    pub crate_name: String,
    /// Local findings before suppression is applied.
    pub raw: Vec<Finding>,
    /// Item tree + flow facts.
    pub facts: model::FileFacts,
    /// Valid allow-markers whose target is non-test code.
    pub markers: Vec<lex::AllowMarker>,
}

/// Builds a [`FileRecord`] by running the lex → item-tree → local-rule
/// stages on one source file.
fn build_record(path: &str, source: &str, ctx: &FileCtx) -> FileRecord {
    let sf = lex::prepare(source);
    let facts = model::extract(&sf);
    let raw = rules::local_findings(path, &sf, &facts, ctx);
    // Markers targeting test lines are irrelevant (no rule fires there)
    // and would otherwise always read as unused.
    let markers = sf
        .markers
        .iter()
        .filter(|m| {
            !sf.is_test
                .get(m.target.saturating_sub(1))
                .copied()
                .unwrap_or(false)
        })
        .cloned()
        .collect();
    FileRecord {
        path: path.to_string(),
        crate_name: ctx.crate_name.clone(),
        raw,
        facts,
        markers,
    }
}

/// Applies allow-marker suppression to raw local + global findings,
/// tracks which markers actually suppressed something, and turns every
/// unconsumed marker into a `rule[marker]` error.
fn suppress_and_audit(records: &[FileRecord], global: Vec<Finding>) -> Vec<Finding> {
    struct FileAllow {
        /// target line → (rules allowed, marker indices targeting it).
        by_line: BTreeMap<usize, (BTreeSet<Rule>, Vec<usize>)>,
        consumed: Vec<bool>,
        hot_crate: bool,
    }
    let mut allow: BTreeMap<&str, FileAllow> = BTreeMap::new();
    for rec in records {
        let mut by_line: BTreeMap<usize, (BTreeSet<Rule>, Vec<usize>)> = BTreeMap::new();
        for (mi, m) in rec.markers.iter().enumerate() {
            let entry = by_line.entry(m.target).or_default();
            entry.0.extend(m.rules.iter().copied());
            entry.1.push(mi);
        }
        allow.insert(
            &rec.path,
            FileAllow {
                by_line,
                consumed: vec![false; rec.markers.len()],
                hot_crate: HOT_CRATES.contains(&rec.crate_name.as_str()),
            },
        );
    }

    let mut out = Vec::new();
    let locals = records.iter().flat_map(|r| r.raw.iter().cloned());
    for f in locals.chain(global) {
        if f.rule == Rule::Marker {
            out.push(f);
            continue;
        }
        let Some(fa) = allow.get_mut(f.file.as_str()) else {
            out.push(f);
            continue;
        };
        let Some((rules, idxs)) = fa.by_line.get(&f.line) else {
            out.push(f);
            continue;
        };
        // An audited D4 marker in a hot crate also discharges D9 at the
        // same sink: the panic there has already been justified once.
        let effective = if rules.contains(&f.rule) {
            Some(f.rule)
        } else if f.rule == Rule::D9 && fa.hot_crate && rules.contains(&Rule::D4) {
            Some(Rule::D4)
        } else {
            None
        };
        match effective {
            Some(via) => {
                for &mi in idxs {
                    if records
                        .iter()
                        .find(|r| r.path == f.file)
                        .is_some_and(|r| r.markers[mi].rules.contains(&via))
                    {
                        fa.consumed[mi] = true;
                    }
                }
            }
            None => out.push(f),
        }
    }

    for rec in records {
        let fa = &allow[rec.path.as_str()];
        for (mi, m) in rec.markers.iter().enumerate() {
            if !fa.consumed[mi] {
                let rules: Vec<&str> = m.rules.iter().map(|r| r.id()).collect();
                out.push(Finding {
                    file: rec.path.clone(),
                    line: m.line,
                    col: m.col,
                    rule: Rule::Marker,
                    message: format!(
                        "allow({}) marker suppresses nothing (no {} finding on line {}); \
                         remove the stale marker",
                        rules.join(", "),
                        rules.join("/"),
                        m.target
                    ),
                    snippet: None,
                });
            }
        }
    }

    out.sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    out.dedup();
    out
}

/// Scans one file's source. `file` is the label used in diagnostics. Runs
/// the local rules plus the flow passes (D8/D9) over this file's own call
/// graph; the D12 workspace cross-check needs [`scan_workspace`].
pub fn scan_file(file: &str, source: &str, ctx: &FileCtx) -> Vec<Finding> {
    let records = vec![build_record(file, source, ctx)];
    let graph = rules::build_graph(&records);
    let global = rules::global_findings(&records, &graph, None);
    suppress_and_audit(&records, global)
}

/// A workspace scan's full outcome: lint findings plus internal scan
/// errors (unreadable or non-UTF-8 files), which are *not* lint failures
/// and exit with a distinct code in the CLI.
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub errors: Vec<String>,
}

/// A workspace crate to scan.
struct Package {
    name: String,
    src: PathBuf,
}

fn packages(root: &Path) -> std::io::Result<Vec<Package>> {
    let mut packages = Vec::new();
    if root.join("src").is_dir() {
        packages.push(Package {
            name: "behind-the-curtain".to_string(),
            src: root.join("src"),
        });
    }
    for parent in ["crates", "vendor"] {
        let dir = root.join(parent);
        if !dir.is_dir() {
            continue;
        }
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.join("Cargo.toml").is_file() && p.join("src").is_dir())
            .collect();
        entries.sort();
        for p in entries {
            let name = p
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            packages.push(Package {
                name,
                src: p.join("src"),
            });
        }
    }
    Ok(packages)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scans the whole workspace rooted at `root`, with the per-file cache
/// under `target/detlint/` enabled or not. Test targets (`tests/`,
/// `benches/`, `examples/`) are skipped: every rule exempts test code,
/// and D5 applies to crate roots only.
pub fn scan_workspace_report(root: &Path, use_cache: bool) -> Report {
    let mut report = Report::default();
    let pkgs = match packages(root) {
        Ok(p) => p,
        Err(e) => {
            report.errors.push(format!("{}: {e}", root.display()));
            return report;
        }
    };
    let cached = if use_cache {
        cache::load(root)
    } else {
        Default::default()
    };

    let mut records: Vec<FileRecord> = Vec::new();
    let mut hashes: Vec<u64> = Vec::new();
    for pkg in &pkgs {
        let mut files = Vec::new();
        if let Err(e) = collect_rs(&pkg.src, &mut files) {
            report.errors.push(format!("{}: {e}", pkg.src.display()));
            continue;
        }
        files.sort();
        for f in files {
            let rel = f
                .strip_prefix(root)
                .unwrap_or(&f)
                .to_string_lossy()
                .replace('\\', "/");
            let bytes = match std::fs::read(&f) {
                Ok(b) => b,
                Err(e) => {
                    report.errors.push(format!("{rel}: {e}"));
                    continue;
                }
            };
            let hash = cache::fnv1a(&bytes);
            if let Some((h, rec)) = cached.entries.get(&rel) {
                if *h == hash && rec.crate_name == pkg.name {
                    records.push(clone_record(rec));
                    hashes.push(hash);
                    continue;
                }
            }
            let source = match String::from_utf8(bytes) {
                Ok(s) => s,
                Err(e) => {
                    report.errors.push(format!("{rel}: not valid UTF-8 ({e})"));
                    continue;
                }
            };
            let is_root = f
                .file_name()
                .is_some_and(|n| n == "lib.rs" || n == "main.rs")
                && f.parent().is_some_and(|p| p == pkg.src);
            let ctx = FileCtx::new(&pkg.name, is_root);
            records.push(build_record(&rel, &source, &ctx));
            hashes.push(hash);
        }
    }

    if use_cache {
        let pairs: Vec<(u64, &FileRecord)> = hashes.iter().copied().zip(records.iter()).collect();
        cache::store(root, &pairs);
    }

    let graph = rules::build_graph(&records);
    let decls = rules::load_metric_decls(root);
    let global = rules::global_findings(&records, &graph, Some(&decls));
    report.findings = suppress_and_audit(&records, global);
    report
}

/// Clones a cached record (records are cheap: strings and small vectors).
fn clone_record(rec: &FileRecord) -> FileRecord {
    FileRecord {
        path: rec.path.clone(),
        crate_name: rec.crate_name.clone(),
        raw: rec.raw.clone(),
        facts: model::FileFacts {
            fns: rec.facts.fns.clone(),
            impl_types: rec.facts.impl_types.clone(),
            metric_sites: rec.facts.metric_sites.clone(),
            lane_mods: rec.facts.lane_mods.clone(),
        },
        markers: rec.markers.clone(),
    }
}

/// Scans the whole workspace rooted at `root`. Internal scan errors
/// (unreadable files) surface as `Err`; lint findings are the `Ok` value.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let report = scan_workspace_report(root, true);
    if !report.errors.is_empty() {
        return Err(std::io::Error::other(report.errors.join("; ")));
    }
    Ok(report.findings)
}

/// Renders findings as a JSON array (hand-rolled; no serde in the tree).
pub fn to_json(findings: &[Finding]) -> String {
    report::to_json(findings)
}

/// Locates the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    start.ancestors().find_map(|dir| {
        let manifest = dir.join("Cargo.toml");
        let text = std::fs::read_to_string(manifest).ok()?;
        text.contains("[workspace]").then(|| dir.to_path_buf())
    })
}
