//! `detlint`: a workspace determinism-and-safety lint pass.
//!
//! The campaign's headline guarantee is *byte-identical CSVs for every
//! thread count and seed lane* (DESIGN.md §4). That invariant is easy to
//! break silently: one `for` loop over a `HashMap`, one `Instant::now()`,
//! one `thread_rng()` in a simulation path and replays diverge while every
//! unit test stays green. `detlint` makes those hazards a compile gate
//! instead of a hope, with a hand-rolled line/token scanner — no syn, no
//! registry dependencies, in the spirit of the vendored stubs.
//!
//! Rules (see DESIGN.md §5 for the full policy):
//!
//! - **D1** — no iteration-order escape from hash collections (`for … in`,
//!   `.iter()`, `.keys()`, `.values()`, `.drain()`, `.into_iter()`, …) in
//!   the simulation/analysis crates. Use `BTreeMap`/`BTreeSet`, or sort
//!   before iterating and carry an allow-marker saying why it is safe.
//! - **D2** — no wall clock (`Instant::now`, `SystemTime::now`) in
//!   simulation crates; only the simulated clock may drive behaviour.
//! - **D3** — no ambient randomness (`thread_rng`, `from_entropy`,
//!   `rand::random`); all RNG must flow from the seed lanes.
//! - **D4** — no `unwrap()`/`expect()`/`panic!` in non-test library code of
//!   the hot-path crates (`netsim`, `dnssim`, `measure`) without a marker.
//! - **D5** — every crate root carries `#![forbid(unsafe_code)]`.
//! - **D6** — no `let _ =` discarding an experiment result (`resolve`,
//!   `resolve_with`, `whoami`, `run_experiment`) in `measure`/`analysis`:
//!   every lookup carries a typed failure `Outcome` that must reach the
//!   records, not the floor.
//! - **D7** — the observability planes stay separated: host-plane
//!   (wall-clock) profiling via `obs::host` is an error outside the driver
//!   binaries (`repro`, `bench`), and sim-plane registry mutators must be
//!   called with a `&'static str` literal metric name (a dynamic name
//!   would make the exported key space input-dependent).
//!
//! Suppression is explicit and audited: an inline
//! `// detlint: allow(D1) -- <reason>` marker on the offending line (or
//! alone on the line above) suppresses the named rule *only when a written
//! reason follows the `--`*. A marker without a reason is itself an error.

#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

/// Crates whose behaviour feeds the simulation or its analysis: D1–D3
/// apply here. Names are the directory names under `crates/`.
pub const SIM_CRATES: &[&str] = &[
    "netsim", "dnswire", "dnssim", "cellsim", "cdnsim", "measure", "analysis", "core", "obs",
];

/// Crates allowed to touch the host plane (`obs::host`): the driver
/// binaries, plus `obs` itself (the implementation). D7 fences everyone
/// else onto the deterministic sim plane.
pub const HOST_PLANE_CRATES: &[&str] = &["repro", "bench", "obs"];

/// Sim-plane registry mutators whose first argument is the metric name and
/// must be a `&'static str` literal at the call site (D7).
const OBS_MUTATORS: &[&str] = &[".inc(", ".inc_by(", ".gauge_set(", ".observe_us("];

/// Hot-path crates where D4 (panic-freedom of library code) applies.
pub const HOT_CRATES: &[&str] = &["netsim", "dnssim", "measure"];

/// Crates where D6 (no discarded experiment outcomes) applies: the layers
/// that produce and consume the failure taxonomy.
pub const OUTCOME_CRATES: &[&str] = &["measure", "analysis"];

/// Calls whose return value carries a typed lookup [`Outcome`] and must not
/// be dropped with `let _ =`.
const D6_CALLS: &[&str] = &[
    "resolve(",
    "resolve_with(",
    "whoami(",
    "whoami_with(",
    "run_experiment",
];

/// Methods whose receiver's iteration order escapes into program behaviour.
const D1_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// A lint rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Iteration-order escape from a hash collection.
    D1,
    /// Wall-clock read in a simulation crate.
    D2,
    /// Ambient (non-seed-lane) randomness.
    D3,
    /// `unwrap`/`expect`/`panic!` in hot-path library code.
    D4,
    /// Missing `#![forbid(unsafe_code)]` in a crate root.
    D5,
    /// `let _ =` discarding an experiment result's typed `Outcome`.
    D6,
    /// Observability-plane breach: host-plane APIs outside the drivers, or
    /// a dynamic sim-plane metric name.
    D7,
    /// Malformed allow-marker (a marker is itself subject to lint).
    Marker,
}

impl Rule {
    /// The short identifier used in diagnostics and allow-markers.
    pub fn id(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::D3 => "D3",
            Rule::D4 => "D4",
            Rule::D5 => "D5",
            Rule::D6 => "D6",
            Rule::D7 => "D7",
            Rule::Marker => "marker",
        }
    }

    /// Parses a rule name as written inside `allow(...)`.
    pub fn from_id(s: &str) -> Option<Rule> {
        match s.trim() {
            "D1" | "d1" => Some(Rule::D1),
            "D2" | "d2" => Some(Rule::D2),
            "D3" | "d3" => Some(Rule::D3),
            "D4" | "d4" => Some(Rule::D4),
            "D5" | "d5" => Some(Rule::D5),
            "D6" | "d6" => Some(Rule::D6),
            "D7" | "d7" => Some(Rule::D7),
            _ => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: rule[{}]: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Where a file sits in the workspace, which decides which rules apply.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Crate directory name (`netsim`, `analysis`, …).
    pub crate_name: String,
    /// Whether this file is the crate root (`src/lib.rs` / `src/main.rs`).
    pub is_crate_root: bool,
}

impl FileCtx {
    /// Context for a file of the named crate.
    pub fn new(crate_name: &str, is_crate_root: bool) -> Self {
        FileCtx {
            crate_name: crate_name.to_string(),
            is_crate_root,
        }
    }

    fn sim(&self) -> bool {
        SIM_CRATES.contains(&self.crate_name.as_str())
    }

    fn hot(&self) -> bool {
        HOT_CRATES.contains(&self.crate_name.as_str())
    }

    fn outcome(&self) -> bool {
        OUTCOME_CRATES.contains(&self.crate_name.as_str())
    }
}

/// Splits one source line into its code part and its comment part (the
/// text after a `//` that is not inside a string or char literal). The
/// *contents* of string literals are blanked out in the code part, so a
/// banned pattern inside a log message never fires. Block comments are
/// handled by the caller.
fn split_comment(line: &str) -> (String, Option<String>) {
    let bytes = line.as_bytes();
    let mut code = Vec::with_capacity(bytes.len());
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if in_str {
            match c {
                b'\\' => {
                    // The escape and the escaped byte are both blanked.
                    code.push(b' ');
                    if i + 1 < bytes.len() {
                        code.push(b' ');
                        i += 1;
                    }
                }
                b'"' => {
                    code.push(c);
                    in_str = false;
                }
                _ => code.push(b' '),
            }
        } else {
            match c {
                b'"' => {
                    code.push(c);
                    in_str = true;
                }
                b'\'' => {
                    // Char literal vs lifetime: a literal closes within a
                    // few bytes ('x', '\n', '\u{..}'); a lifetime never
                    // closes. Scan ahead conservatively and blank the body.
                    let mut j = i + 1;
                    if j < bytes.len() && bytes[j] == b'\\' {
                        j += 2;
                        while j < bytes.len() && bytes[j] != b'\'' {
                            j += 1;
                        }
                        code.push(c);
                        code.extend(std::iter::repeat_n(b' ', j.min(bytes.len()) - i - 1));
                        if j < bytes.len() {
                            code.push(b'\'');
                        }
                        i = j;
                    } else if j + 1 < bytes.len() && bytes[j + 1] == b'\'' {
                        code.extend([b'\'', b' ', b'\'']);
                        i = j + 1;
                    } else {
                        // Lifetime: keep as-is.
                        code.push(c);
                    }
                }
                b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                    return (
                        String::from_utf8_lossy(&code).into_owned(),
                        Some(line[i + 2..].to_string()),
                    );
                }
                _ => code.push(c),
            }
        }
        i += 1;
    }
    (String::from_utf8_lossy(&code).into_owned(), None)
}

/// The trailing identifier of `s`, if any (`self.entries` → `entries`).
fn trailing_ident(s: &str) -> Option<&str> {
    let s = s.trim_end();
    let end = s.len();
    let start = s
        .rfind(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .map(|i| i + c_len(s, i))
        .unwrap_or(0);
    if start >= end {
        return None;
    }
    let ident = &s[start..end];
    if ident.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return None;
    }
    Some(ident)
}

fn c_len(s: &str, i: usize) -> usize {
    s[i..].chars().next().map(char::len_utf8).unwrap_or(1)
}

/// If the text before a `HashMap`/`HashSet` occurrence binds the collection
/// to a name (`entries: HashMap<…>`, `let mut m = HashMap::new()`), returns
/// that name.
fn bind_target(prefix: &str) -> Option<String> {
    let p = prefix.trim_end();
    let p = p.strip_suffix("std::collections::").unwrap_or(p);
    let p = p.strip_suffix("collections::").unwrap_or(p);
    let p = p.trim_end();
    // Reference bindings (`name: &HashMap<…>`, `name: &mut HashMap<…>`)
    // alias the collection just as well as owned ones.
    let p = match p
        .strip_suffix("mut")
        .map(str::trim_end)
        .and_then(|q| q.strip_suffix('&'))
    {
        Some(q) => q,
        None => p.strip_suffix('&').unwrap_or(p),
    };
    let p = p.trim_end();
    if let Some(before_colon) = p.strip_suffix(':') {
        // A single type-ascription colon, not a `::` path.
        if before_colon.ends_with(':') {
            return None;
        }
        return trailing_ident(before_colon).map(str::to_string);
    }
    if let Some(before_eq) = p.strip_suffix('=') {
        // Reject `==`, `>=`, `<=`, `!=`, `+=` and friends.
        if before_eq.ends_with(['=', '>', '<', '!', '+', '-', '*', '/']) {
            return None;
        }
        return trailing_ident(before_eq).map(str::to_string);
    }
    None
}

/// Collects every name bound to a hash collection in the file.
fn hash_bound_names(code_lines: &[String]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for code in code_lines {
        if code.trim_start().starts_with("use ") {
            continue;
        }
        for needle in ["HashMap", "HashSet"] {
            let mut from = 0;
            while let Some(pos) = code[from..].find(needle) {
                let at = from + pos;
                // Must be a standalone token.
                let after = code[at + needle.len()..].chars().next();
                if after.is_some_and(|c| c.is_ascii_alphanumeric() || c == '_') {
                    from = at + needle.len();
                    continue;
                }
                if let Some(name) = bind_target(&code[..at]) {
                    names.insert(name);
                }
                from = at + needle.len();
            }
        }
    }
    names
}

/// Parses a `detlint: allow(<rules>) -- <reason>` marker out of a comment.
/// The marker must be the comment's entire content (doc comments that
/// merely *mention* markers mid-sentence are not markers). Returns
/// `Err(message)` when the marker is malformed.
fn parse_marker(comment: &str) -> Option<Result<Vec<Rule>, String>> {
    let head = comment.trim_start_matches(['/', '!']).trim_start();
    let rest = head.strip_prefix("detlint:")?.trim_start();
    let Some(rest) = rest.strip_prefix("allow") else {
        return Some(Err(
            "detlint marker must be `allow(<rule>[, <rule>]) -- <reason>`".to_string(),
        ));
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Some(Err("detlint allow-marker is missing `(`".to_string()));
    };
    let Some(close) = rest.find(')') else {
        return Some(Err("detlint allow-marker is missing `)`".to_string()));
    };
    let mut rules = Vec::new();
    for part in rest[..close].split(',') {
        match Rule::from_id(part) {
            Some(r) => rules.push(r),
            None => {
                return Some(Err(format!(
                    "unknown rule `{}` in allow-marker",
                    part.trim()
                )))
            }
        }
    }
    if rules.is_empty() {
        return Some(Err("allow-marker names no rules".to_string()));
    }
    let tail = rest[close + 1..].trim_start();
    let Some(reason) = tail.strip_prefix("--") else {
        return Some(Err(
            "allow-marker needs a written reason: `-- <why this is safe>`".to_string(),
        ));
    };
    if reason.trim().is_empty() {
        return Some(Err(
            "allow-marker reason is empty; write why the suppression is sound".to_string(),
        ));
    }
    Some(Ok(rules))
}

/// Per-line derived state for one scanned file.
struct FileScan {
    /// Code with comments stripped, per line.
    code: Vec<String>,
    /// Whether each line is inside `#[cfg(test)]` gated code.
    is_test: Vec<bool>,
    /// Rules suppressed on each line by a valid allow-marker.
    allowed: Vec<BTreeSet<Rule>>,
    /// Malformed-marker findings.
    marker_findings: Vec<(usize, String)>,
}

fn prepare(source: &str) -> FileScan {
    let raw: Vec<&str> = source.lines().collect();
    let mut code = Vec::with_capacity(raw.len());
    let mut comments: Vec<Option<String>> = Vec::with_capacity(raw.len());
    let mut in_block = false;
    for line in &raw {
        if in_block {
            if let Some(end) = line.find("*/") {
                in_block = false;
                let (c, m) = split_comment(&line[end + 2..]);
                code.push(c);
                comments.push(m);
            } else {
                code.push(String::new());
                comments.push(None);
            }
            continue;
        }
        let (mut c, m) = split_comment(line);
        // Strip any block comments opening (and possibly closing) here.
        while let Some(start) = c.find("/*") {
            if let Some(end) = c[start + 2..].find("*/") {
                c = format!("{}{}", &c[..start], &c[start + 2 + end + 2..]);
            } else {
                c.truncate(start);
                in_block = true;
                break;
            }
        }
        code.push(c);
        comments.push(m);
    }

    // `#[cfg(test)]` regions: from the attribute through the close of the
    // brace block it gates.
    let mut is_test = vec![false; code.len()];
    let mut i = 0;
    while i < code.len() {
        if code[i].contains("#[cfg(test)]") {
            let mut depth: i32 = 0;
            let mut opened = false;
            let mut j = i;
            while j < code.len() {
                is_test[j] = true;
                for ch in code[j].chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }

    // Allow-markers.
    let mut allowed: Vec<BTreeSet<Rule>> = vec![BTreeSet::new(); code.len()];
    let mut marker_findings = Vec::new();
    for (i, comment) in comments.iter().enumerate() {
        let Some(comment) = comment else { continue };
        match parse_marker(comment) {
            None => {}
            Some(Err(msg)) => marker_findings.push((i + 1, msg)),
            Some(Ok(rules)) => {
                let standalone = code[i].trim().is_empty();
                let target = if standalone {
                    // The next line holding any code.
                    (i + 1..code.len()).find(|&j| !code[j].trim().is_empty())
                } else {
                    Some(i)
                };
                if let Some(t) = target {
                    allowed[t].extend(rules.iter().copied());
                }
            }
        }
    }

    FileScan {
        code,
        is_test,
        allowed,
        marker_findings,
    }
}

/// Scans one file's source. `file` is the label used in diagnostics.
pub fn scan_file(file: &str, source: &str, ctx: &FileCtx) -> Vec<Finding> {
    let scan = prepare(source);
    let mut findings = Vec::new();

    for (line, msg) in &scan.marker_findings {
        findings.push(Finding {
            file: file.to_string(),
            line: *line,
            rule: Rule::Marker,
            message: msg.clone(),
        });
    }

    // D5: crate roots must forbid unsafe code.
    if ctx.is_crate_root
        && !scan
            .code
            .iter()
            .any(|c| c.contains("#![forbid(unsafe_code)]"))
        && !scan.allowed.first().is_some_and(|a| a.contains(&Rule::D5))
    {
        findings.push(Finding {
            file: file.to_string(),
            line: 1,
            rule: Rule::D5,
            message: "crate root is missing #![forbid(unsafe_code)]".to_string(),
        });
    }

    let hash_names = if ctx.sim() {
        hash_bound_names(
            &scan
                .code
                .iter()
                .zip(&scan.is_test)
                .filter(|(_, &t)| !t)
                .map(|(c, _)| c.clone())
                .collect::<Vec<_>>(),
        )
    } else {
        BTreeSet::new()
    };

    for (i, code) in scan.code.iter().enumerate() {
        if scan.is_test[i] {
            continue;
        }
        let lineno = i + 1;
        let allowed = &scan.allowed[i];
        let push = |rule: Rule, message: String, findings: &mut Vec<Finding>| {
            if !allowed.contains(&rule) {
                findings.push(Finding {
                    file: file.to_string(),
                    line: lineno,
                    rule,
                    message,
                });
            }
        };

        if ctx.sim() {
            // D1a: iteration-order-escaping method on a hash-bound name. For
            // chains broken across lines (`self\n  .entries\n  .iter()`), the
            // receiver is the trailing identifier of the previous code line.
            for m in D1_METHODS {
                let needle = format!(".{m}(");
                let mut from = 0;
                while let Some(pos) = code[from..].find(&needle) {
                    let at = from + pos;
                    let recv = trailing_ident(&code[..at]).or_else(|| {
                        if !code[..at].trim().is_empty() {
                            return None;
                        }
                        (0..i)
                            .rev()
                            .map(|j| scan.code[j].as_str())
                            .find(|c| !c.trim().is_empty())
                            .and_then(trailing_ident)
                    });
                    if let Some(recv) = recv {
                        if hash_names.contains(recv) {
                            push(
                                Rule::D1,
                                format!(
                                    "iteration order of hash collection `{recv}` escapes via \
                                     `.{m}()`; use BTreeMap/BTreeSet or sort first"
                                ),
                                &mut findings,
                            );
                        }
                    }
                    from = at + needle.len();
                }
            }
            // D1b: `for … in <hash-bound path>`.
            if let Some(for_at) = find_for_keyword(code) {
                if let Some(in_at) = code[for_at..].find(" in ") {
                    let expr = code[for_at + in_at + 4..]
                        .split('{')
                        .next()
                        .unwrap_or("")
                        .trim()
                        .trim_start_matches("&mut ")
                        .trim_start_matches('&');
                    if is_plain_path(expr) {
                        if let Some(last) = expr.rsplit('.').next() {
                            if hash_names.contains(last) {
                                push(
                                    Rule::D1,
                                    format!(
                                        "`for … in {expr}` iterates hash collection `{last}` in \
                                         nondeterministic order; use BTreeMap/BTreeSet or sort \
                                         first"
                                    ),
                                    &mut findings,
                                );
                            }
                        }
                    }
                }
            }
            // D2: wall clock.
            for pat in ["Instant::now", "SystemTime::now"] {
                if code.contains(pat) {
                    push(
                        Rule::D2,
                        format!("wall-clock read `{pat}()` in a simulation crate; use the simulated clock"),
                        &mut findings,
                    );
                }
            }
            // D3: ambient randomness.
            for pat in ["thread_rng", "from_entropy", "rand::random"] {
                if code.contains(pat) {
                    push(
                        Rule::D3,
                        format!(
                            "ambient randomness `{pat}`; all RNG must flow from the seed lanes"
                        ),
                        &mut findings,
                    );
                }
            }
            // D7b: sim-plane registry mutators must be handed a literal
            // metric name (string contents are blanked by the scanner, but
            // the opening quote survives, so a literal first argument always
            // begins with `"`). Calls that wrap the argument list pick up
            // the first token from the next non-empty code line.
            for m in OBS_MUTATORS {
                let mut from = 0;
                while let Some(pos) = code[from..].find(m) {
                    let at = from + pos;
                    let mut first = code[at + m.len()..].trim_start();
                    if first.is_empty() {
                        first = (i + 1..scan.code.len())
                            .map(|j| scan.code[j].trim_start())
                            .find(|c| !c.is_empty())
                            .unwrap_or("");
                    }
                    if !first.is_empty() && !first.starts_with('"') {
                        push(
                            Rule::D7,
                            format!(
                                "dynamic metric name in `{}…)`; sim-plane instruments take a \
                                 `&'static str` literal name so the exported key space is fixed",
                                m.trim_end_matches('(')
                            ),
                            &mut findings,
                        );
                    }
                    from = at + m.len();
                }
            }
        }

        // D7a: host-plane (wall-clock) observability outside the driver
        // binaries. Applies to every crate that is not a driver: the host
        // plane must never leak timings into simulation or analysis code.
        if !HOST_PLANE_CRATES.contains(&ctx.crate_name.as_str()) && code.contains("obs::host") {
            push(
                Rule::D7,
                "host-plane observability `obs::host` outside repro/bench; simulation and \
                 analysis code may only use the deterministic sim plane"
                    .to_string(),
                &mut findings,
            );
        }

        if ctx.hot() {
            for (pat, what) in [
                (".unwrap()", "unwrap()"),
                (".expect(", "expect()"),
                ("panic!", "panic!"),
            ] {
                if code.contains(pat) {
                    push(
                        Rule::D4,
                        format!(
                            "`{what}` in hot-path library code; return an error, restructure, \
                             or justify with an allow-marker"
                        ),
                        &mut findings,
                    );
                }
            }
        }

        if ctx.outcome() {
            // D6: `let _ =` on an experiment call throws its typed Outcome
            // away. The discarded expression may wrap onto following lines;
            // gather through the statement's terminating `;`.
            if let Some(at) = find_let_discard(code) {
                let mut rhs = code[at..].to_string();
                let mut j = i;
                while !rhs.contains(';') && j + 1 < scan.code.len() && j - i < 8 {
                    j += 1;
                    rhs.push_str(&scan.code[j]);
                }
                if let Some(call) = D6_CALLS.iter().find(|c| rhs.contains(*c)) {
                    push(
                        Rule::D6,
                        format!(
                            "`let _ =` discards the typed Outcome of `{}`; record it in the \
                             dataset or propagate it",
                            call.trim_end_matches('(')
                        ),
                        &mut findings,
                    );
                }
            }
        }
    }

    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

/// Position right after a `let _ =` wildcard discard, if the line has one.
/// Named discards (`let _timing = …`) keep the value inspectable in a
/// debugger and do not fire.
fn find_let_discard(code: &str) -> Option<usize> {
    const NEEDLE: &str = "let _ =";
    let mut from = 0;
    while let Some(pos) = code[from..].find(NEEDLE) {
        let at = from + pos;
        let before = code[..at].chars().next_back();
        if before.is_none_or(|c| !(c.is_ascii_alphanumeric() || c == '_')) {
            return Some(at + NEEDLE.len());
        }
        from = at + NEEDLE.len();
    }
    None
}

/// Position right after a `for ` keyword token, if the line has one.
fn find_for_keyword(code: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(pos) = code[from..].find("for ") {
        let at = from + pos;
        let before = code[..at].chars().next_back();
        if before.is_none_or(|c| !(c.is_ascii_alphanumeric() || c == '_')) {
            return Some(at + 4);
        }
        from = at + 4;
    }
    None
}

/// Whether `s` is a bare receiver path (`self.entries`, `groups`) rather
/// than an arbitrary expression (whose order may already be laundered
/// through sorting adapters).
fn is_plain_path(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

/// A workspace crate to scan.
#[derive(Debug)]
struct Package {
    name: String,
    src: PathBuf,
}

/// Scans the whole workspace rooted at `root`. Test targets (`tests/`,
/// `benches/`, `examples/`) are skipped: every rule here exempts test
/// code, and D5 applies to crate roots only.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut packages = Vec::new();
    if root.join("src").is_dir() {
        packages.push(Package {
            name: "behind-the-curtain".to_string(),
            src: root.join("src"),
        });
    }
    for parent in ["crates", "vendor"] {
        let dir = root.join(parent);
        if !dir.is_dir() {
            continue;
        }
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.join("Cargo.toml").is_file() && p.join("src").is_dir())
            .collect();
        entries.sort();
        for p in entries {
            let name = p
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            packages.push(Package {
                name,
                src: p.join("src"),
            });
        }
    }

    let mut findings = Vec::new();
    for pkg in &packages {
        let mut files = Vec::new();
        collect_rs(&pkg.src, &mut files)?;
        files.sort();
        for f in files {
            let rel = f
                .strip_prefix(root)
                .unwrap_or(&f)
                .to_string_lossy()
                .replace('\\', "/");
            let is_root = f
                .file_name()
                .is_some_and(|n| n == "lib.rs" || n == "main.rs")
                && f.parent().is_some_and(|p| p == pkg.src);
            let source = std::fs::read_to_string(&f)?;
            let ctx = FileCtx::new(&pkg.name, is_root);
            findings.extend(scan_file(&rel, &source, &ctx));
        }
    }
    Ok(findings)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Renders findings as a JSON array (hand-rolled; no serde in the tree).
pub fn to_json(findings: &[Finding]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut out = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}{}\n",
            esc(&f.file),
            f.line,
            f.rule,
            esc(&f.message),
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push(']');
    out
}

/// Locates the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    start.ancestors().find_map(|dir| {
        let manifest = dir.join("Cargo.toml");
        let text = std::fs::read_to_string(manifest).ok()?;
        text.contains("[workspace]").then(|| dir.to_path_buf())
    })
}
