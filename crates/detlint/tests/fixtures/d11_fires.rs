//! D11 fixture: a `partial_cmp` comparator inside a sort adapter fires
//! exactly once; the `total_cmp` sort below it is clean.

pub fn rank(xs: &mut [(f64, u32)]) {
    xs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
}

pub fn rank_total(xs: &mut [(f64, u32)]) {
    xs.sort_by(|a, b| a.0.total_cmp(&b.0));
}
