// Malformed-marker fixture: a reasonless marker is an error, and the
// violation it points at is NOT suppressed.
#![forbid(unsafe_code)]
use std::time::Instant;

pub fn stamp() -> Instant {
    // detlint: allow(D2)
    Instant::now()
}
