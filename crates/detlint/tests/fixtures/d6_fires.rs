// D6 fixture: exactly one discarded experiment Outcome. The ping/trace/
// writeln discards are the sanctioned idiom and must stay quiet.
use std::fmt::Write as _;

pub fn run(net: &mut Net, node: u32, resolver: u32, out: &mut String) {
    let _ = net.ping_train(node, resolver, 3);
    let _ = net.traceroute(node, resolver, 30);
    let _ = writeln!(out, "probing {resolver}");
    let _ = resolve(net, node, resolver);
}
