// Host-plane fixture: wall-clock reads (line 6) and host-plane profiling
// (line 7) are the serving plane's whole job. Clean in a host-plane crate
// (serve, loadgen, repro, bench, obs); the same source scanned as a sim
// crate fires D2 and D7 by classification alone — no allow-markers.
pub fn serve_burst(reg: &mut obs::Registry) -> u64 {
    let started = std::time::Instant::now();
    let stage = obs::host::Stage::begin("serve.burst");
    reg.inc("serve.queries", &[("transport", "udp")]);
    drop(stage);
    started.elapsed().as_micros() as u64
}
