// D7 fixture: exactly one host-plane leak (line 5) and one dynamic-name
// mutator call (line 15); literal-name calls, single- and multi-line, stay
// quiet.
pub fn vitals(reg: &mut obs::Registry, name: &'static str) {
    let stage = obs::host::Stage::begin("campaign");
    reg.inc("campaign.experiments", &[]);
    reg.inc_by("net.events", &[], 3);
    reg.gauge_set("net.queue_depth", &[], 4);
    reg.observe_us("dns.lookup_us", &[], 9);
    reg.inc_by(
        "campaign.lookups",
        &[],
        2,
    );
    reg.inc(name, &[]);
    drop(stage);
}
