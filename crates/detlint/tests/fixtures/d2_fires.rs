// D2 fixture: exactly one wall-clock read.
use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}
