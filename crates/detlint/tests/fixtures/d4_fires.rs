// D4 fixture: exactly one panic source in hot-path library code.
pub fn head(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}
