// D3 fixture: exactly one ambient-randomness source.
pub fn roll() -> u8 {
    let mut rng = rand::thread_rng();
    rng.gen_range(1..=6)
}
