//! D9 fixture: a `// detlint: hot` entry reaching a panic sink through a
//! three-call chain; the diagnostic must spell out the whole chain.

// detlint: hot
pub fn dispatch(frame: &[u8]) -> u8 {
    classify(frame)
}

fn classify(frame: &[u8]) -> u8 {
    header_byte(frame)
}

fn header_byte(frame: &[u8]) -> u8 {
    *frame.first().expect("frame is non-empty")
}
