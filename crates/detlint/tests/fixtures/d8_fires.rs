//! D8 fixture: one RNG seeded through a `lane::*` constant (clean) and
//! one seeded from a bare literal (fires exactly once).

pub fn device_rngs(master: u64) -> (StdRng, StdRng) {
    let good = StdRng::seed_from_u64(derive_seed(master, lane::DEVICE, 3));
    let bad = StdRng::seed_from_u64(1234);
    (good, bad)
}
