// Wire-chaos fixture, shaped like `loadgen::chaos` + `serve::admit`: the
// chaos plan draws its RNG from the dedicated WIRE_CHAOS seed lane
// (D8-clean in every crate), while the admission path reads the wall
// clock (line 13) and the host-plane profiler (line 14) — legal only
// under host-plane crate classification.
fn plan(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}
pub fn chaos_plan(master: u64, shard: u64) -> StdRng {
    plan(derive_seed(master, lane::WIRE_CHAOS, shard))
}
pub fn admit_now(reg: &mut obs::Registry) -> u64 {
    let started = std::time::Instant::now();
    let stage = obs::host::Stage::begin("serve.admit");
    reg.inc("serve.shed", &[("reason", "rate")]);
    drop(stage);
    started.elapsed().as_micros() as u64
}
