// Suppression fixture: the same hazards as the `*_fires` fixtures, each
// carrying a well-formed allow-marker, so the scan reports nothing.
#![forbid(unsafe_code)]
use std::collections::HashMap;
use std::time::Instant;

pub fn total(scores: &HashMap<String, u64>) -> u64 {
    // detlint: allow(D1) -- fixture: order does not reach any output
    scores.values().sum()
}

pub fn stamp() -> Instant {
    Instant::now() // detlint: allow(D2) -- fixture: value is discarded
}

pub fn roll() -> u8 {
    // detlint: allow(D3, D4) -- fixture: both hazards on the next line
    rand::thread_rng().gen_range(1..=6).unwrap()
}

pub fn count(reg: &mut Registry, name: &'static str) {
    // detlint: allow(D7) -- fixture: caller guarantees a static name
    reg.inc(name, &[]);
}
