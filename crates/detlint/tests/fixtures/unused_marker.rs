//! Fixture: a well-formed allow-marker whose finding no longer exists —
//! the stale justification is itself an error.

pub fn steady() -> u32 {
    // detlint: allow(D2) -- the wall-clock read was removed in a refactor
    41 + 1
}
