// D5 fixture: a crate root with no `#![forbid(unsafe_code)]` attribute.
pub mod imaginary {}
