//! D10 fixture: one allocation inside a hot function fires; the cold
//! helper below allocates freely.

// detlint: hot
pub fn drain(events: &mut [u32]) -> usize {
    let scratch: Vec<u32> = Vec::new();
    events.len() + scratch.len()
}

pub fn cold_copy(events: &[u32]) -> Vec<u32> {
    events.to_vec()
}
