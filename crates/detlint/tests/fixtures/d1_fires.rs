// D1 fixture: exactly one iteration-order escape from a hash collection.
use std::collections::HashMap;

pub fn total(scores: &HashMap<String, u64>) -> u64 {
    let mut sum = 0;
    for (_name, n) in scores.iter() {
        sum += n;
    }
    sum
}
