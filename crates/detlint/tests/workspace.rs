//! Workspace-level behaviour over a synthetic mini-workspace on disk:
//! the D12 metric cross-check (both directions), incremental-cache reuse
//! and invalidation, and the scan-error path for unreadable input. The
//! single-file rule semantics live in `rules.rs`.

use std::fs;
use std::path::PathBuf;

use detlint::Rule;

/// Lays out a throwaway workspace with one sim crate, a CI baseline, and
/// a vitals-check allowlist, then returns its root.
fn mini_workspace(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("detlint-it-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(root.join("crates/measure/src")).unwrap();
    fs::create_dir_all(root.join("ci")).unwrap();
    fs::create_dir_all(root.join("scripts")).unwrap();
    fs::write(
        root.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/*\"]\n",
    )
    .unwrap();
    fs::write(
        root.join("crates/measure/Cargo.toml"),
        "[package]\nname = \"measure\"\n",
    )
    .unwrap();
    fs::write(
        root.join("crates/measure/src/lib.rs"),
        "#![forbid(unsafe_code)]\n\n\
         pub fn emit(reg: &mut Registry) {\n    \
         reg.inc(\"sim.good\", &[]);\n    \
         reg.inc(\"sim.rogue\", &[]);\n\
         }\n",
    )
    .unwrap();
    fs::write(
        root.join("ci/vitals-baseline.json"),
        "{\n  \"required_counters\": [\"sim.good\"]\n}\n",
    )
    .unwrap();
    fs::write(
        root.join("scripts/vitals_check.py"),
        "KNOWN_METRICS = [\n    \"sim.known\",\n]\n",
    )
    .unwrap();
    root
}

#[test]
fn d12_cross_checks_both_directions_and_cache_invalidates() {
    let root = mini_workspace("d12");

    let findings = detlint::scan_workspace(&root).expect("scan");
    let d12: Vec<_> = findings.iter().filter(|f| f.rule == Rule::D12).collect();
    assert_eq!(d12.len(), 2, "{findings:?}");
    let rogue = d12
        .iter()
        .find(|f| f.message.contains("`sim.rogue`"))
        .expect("undeclared emission flagged");
    assert_eq!(rogue.file, "crates/measure/src/lib.rs");
    assert_eq!(rogue.line, 5);
    assert!(
        rogue.message.contains("declared in neither"),
        "{}",
        rogue.message
    );
    let dead = d12
        .iter()
        .find(|f| f.message.contains("`sim.known`"))
        .expect("dead declaration flagged");
    assert_eq!(dead.file, "scripts/vitals_check.py");
    assert_eq!(dead.line, 2);
    assert!(
        dead.message
            .contains("no sim-plane or host-plane call site"),
        "{}",
        dead.message
    );
    assert_eq!(findings.len(), 2, "only D12 should fire here: {findings:?}");

    // A warm-cache rescan of the unchanged tree agrees byte for byte.
    let rescan = detlint::scan_workspace(&root).expect("warm rescan");
    assert_eq!(rescan, findings);
    assert!(root.join("target/detlint/cache.tsv").is_file());

    // Emitting the allowlisted name rewrites one file; the cache must
    // notice the content change and the dead-declaration finding clears.
    let lib = root.join("crates/measure/src/lib.rs");
    let patched = fs::read_to_string(&lib).unwrap().replace(
        "reg.inc(\"sim.rogue\", &[]);",
        "reg.inc(\"sim.rogue\", &[]);\n    reg.inc(\"sim.known\", &[]);",
    );
    fs::write(&lib, patched).unwrap();
    let after = detlint::scan_workspace(&root).expect("post-edit scan");
    assert_eq!(after.len(), 1, "{after:?}");
    assert!(
        after[0].message.contains("`sim.rogue`"),
        "{}",
        after[0].message
    );

    let _ = fs::remove_dir_all(&root);
}

#[test]
fn non_utf8_files_are_scan_errors_not_findings() {
    let root = mini_workspace("utf8");
    fs::write(
        root.join("crates/measure/src/bad.rs"),
        [0xffu8, 0xfe, b'f', b'n'],
    )
    .unwrap();

    let report = detlint::scan_workspace_report(&root, false);
    assert_eq!(report.errors.len(), 1, "{:?}", report.errors);
    assert!(report.errors[0].contains("UTF-8"), "{}", report.errors[0]);
    assert!(report.errors[0].contains("bad.rs"), "{}", report.errors[0]);
    // The readable files are still linted on a best-effort basis.
    assert!(!report.findings.is_empty());
    // The strict wrapper refuses to pretend the scan was complete.
    assert!(detlint::scan_workspace(&root).is_err());

    let _ = fs::remove_dir_all(&root);
}
