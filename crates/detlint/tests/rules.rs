//! detlint's own coverage: each rule fires exactly once on its fixture, a
//! well-formed allow-marker suppresses, a reasonless marker is an error
//! that suppresses nothing, and — since v2 — a marker that suppresses
//! nothing is itself an error. The flow rules (D8/D9) are exercised over
//! single-file call graphs here; the workspace-level passes (D12, cache,
//! scan errors) live in `workspace.rs`.

use detlint::{scan_file, FileCtx, Finding, Rule};

const D1: &str = include_str!("fixtures/d1_fires.rs");
const D2: &str = include_str!("fixtures/d2_fires.rs");
const D3: &str = include_str!("fixtures/d3_fires.rs");
const D4: &str = include_str!("fixtures/d4_fires.rs");
const D5: &str = include_str!("fixtures/d5_fires.rs");
const D6: &str = include_str!("fixtures/d6_fires.rs");
const D7: &str = include_str!("fixtures/d7_fires.rs");
const D8: &str = include_str!("fixtures/d8_fires.rs");
const D9: &str = include_str!("fixtures/d9_chain.rs");
const D10: &str = include_str!("fixtures/d10_fires.rs");
const D11: &str = include_str!("fixtures/d11_fires.rs");
const HOST_PLANE: &str = include_str!("fixtures/host_plane.rs");
const WIRE_CHAOS: &str = include_str!("fixtures/wire_chaos.rs");
const ALLOWED: &str = include_str!("fixtures/allowed.rs");
const MALFORMED: &str = include_str!("fixtures/malformed_marker.rs");
const UNUSED: &str = include_str!("fixtures/unused_marker.rs");

/// A sim + hot crate, non-root file: D1–D4 all apply.
fn sim_hot() -> FileCtx {
    FileCtx::new("netsim", false)
}

/// A sim crate outside the hot set: D4 stays quiet, so the flow rules
/// (D8–D11) can be observed in isolation.
fn sim_cold() -> FileCtx {
    FileCtx::new("cdnsim", false)
}

fn rules(findings: &[Finding]) -> Vec<Rule> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn d1_fires_exactly_once() {
    let f = scan_file("d1_fires.rs", D1, &sim_hot());
    assert_eq!(rules(&f), vec![Rule::D1], "{f:?}");
    assert_eq!(f[0].line, 6);
    assert!(f[0].col > 1, "column should be inside the line: {f:?}");
    assert!(f[0].message.contains("`scores`"), "{}", f[0].message);
    assert!(f[0].snippet.is_some(), "text frames need the raw line");
}

#[test]
fn d2_fires_exactly_once() {
    let f = scan_file("d2_fires.rs", D2, &sim_hot());
    assert_eq!(rules(&f), vec![Rule::D2], "{f:?}");
    assert_eq!(f[0].line, 5);
}

#[test]
fn d3_fires_exactly_once() {
    let f = scan_file("d3_fires.rs", D3, &sim_hot());
    assert_eq!(rules(&f), vec![Rule::D3], "{f:?}");
    assert_eq!(f[0].line, 3);
}

#[test]
fn d4_fires_exactly_once() {
    let f = scan_file("d4_fires.rs", D4, &sim_hot());
    assert_eq!(rules(&f), vec![Rule::D4], "{f:?}");
    assert_eq!(f[0].line, 3);
}

#[test]
fn d5_fires_exactly_once_on_crate_roots_only() {
    let root = FileCtx::new("netsim", true);
    let f = scan_file("d5_fires.rs", D5, &root);
    assert_eq!(rules(&f), vec![Rule::D5], "{f:?}");
    // The same file as a non-root module is fine: D5 is a root obligation.
    assert!(scan_file("d5_fires.rs", D5, &sim_hot()).is_empty());
}

#[test]
fn d6_fires_exactly_once_in_outcome_crates() {
    // The fixture discards pings, traceroutes, and a writeln — sanctioned —
    // plus exactly one resolve() Outcome, which must fire.
    let f = scan_file("d6_fires.rs", D6, &FileCtx::new("measure", false));
    assert_eq!(rules(&f), vec![Rule::D6], "{f:?}");
    assert_eq!(f[0].line, 9);
    assert!(f[0].message.contains("resolve"), "{}", f[0].message);
    // Same scope for the analysis layer.
    let f = scan_file("d6_fires.rs", D6, &FileCtx::new("analysis", false));
    assert_eq!(rules(&f), vec![Rule::D6], "{f:?}");
    // Out of scope: the DNS client itself may discard internally.
    assert!(scan_file("d6_fires.rs", D6, &FileCtx::new("dnssim", false)).is_empty());
}

#[test]
fn d6_catches_discards_wrapped_across_lines() {
    let src = "\
pub fn f(net: &mut Net) {
    let _ =
        resolve_with(net, 0, 1, &name, qtype, &policy);
}
";
    let f = scan_file("x.rs", src, &FileCtx::new("measure", false));
    assert_eq!(rules(&f), vec![Rule::D6], "{f:?}");
}

#[test]
fn d6_spares_named_bindings_and_used_results() {
    let src = "\
pub fn f(net: &mut Net) {
    let lookup = resolve(net, 0, 1);
    let _timing = resolve(net, 0, 2);
    record(lookup.outcome);
}
";
    assert!(scan_file("x.rs", src, &FileCtx::new("measure", false)).is_empty());
}

#[test]
fn d7_fires_on_host_plane_leak_and_dynamic_name() {
    let f = scan_file("d7_fires.rs", D7, &sim_hot());
    assert_eq!(rules(&f), vec![Rule::D7, Rule::D7], "{f:?}");
    assert_eq!(f[0].line, 5);
    assert!(f[0].message.contains("obs::host"), "{}", f[0].message);
    assert_eq!(f[1].line, 15);
    assert!(f[1].message.contains("static"), "{}", f[1].message);
}

#[test]
fn d7_respects_the_plane_boundaries() {
    // Driver binaries may use the host plane; they are not simulation
    // crates, so the literal-name rule does not bind there either.
    assert!(scan_file("d7.rs", D7, &FileCtx::new("repro", false)).is_empty());
    assert!(scan_file("d7.rs", D7, &FileCtx::new("bench", false)).is_empty());
    // `obs` itself implements the host plane (D7a stays quiet) but its sim
    // plane is held to the static-name rule (D7b fires).
    let f = scan_file("d7.rs", D7, &FileCtx::new("obs", false));
    assert_eq!(rules(&f), vec![Rule::D7], "{f:?}");
    assert_eq!(f[0].line, 15);
}

#[test]
fn serving_plane_crates_are_host_plane_by_classification() {
    // The serving plane reads wall clocks and host-plane profilers as its
    // whole job: `serve` and `loadgen` pass clean by crate classification,
    // no allow-markers required.
    for crate_name in ["serve", "loadgen"] {
        let f = scan_file(
            "host_plane.rs",
            HOST_PLANE,
            &FileCtx::new(crate_name, false),
        );
        assert!(f.is_empty(), "{crate_name} should be host-plane: {f:?}");
    }
    // The other direction: identical source inside a sim crate fires both
    // the wall-clock rule and the host-plane-leak rule.
    let f = scan_file("host_plane.rs", HOST_PLANE, &FileCtx::new("dnssim", false));
    assert_eq!(rules(&f), vec![Rule::D2, Rule::D7], "{f:?}");
    assert_eq!(f[0].line, 6, "Instant::now read");
    assert_eq!(f[1].line, 7, "obs::host profiling");
}

#[test]
fn wire_chaos_modules_are_host_plane_and_lane_seeded() {
    // The hostile-wire additions ride the same classification: the chaos
    // planner (`loadgen::chaos`) and admission control (`serve::admit`)
    // read wall clocks and host profilers freely in their own crates...
    for crate_name in ["serve", "loadgen"] {
        let f = scan_file(
            "wire_chaos.rs",
            WIRE_CHAOS,
            &FileCtx::new(crate_name, false),
        );
        assert!(f.is_empty(), "{crate_name} should be host-plane: {f:?}");
    }
    // ...while the chaos RNG's `derive_seed(master, lane::WIRE_CHAOS,
    // shard)` provenance satisfies D8 even under sim-crate scrutiny: the
    // same source in a sim crate fires only the clock and profiler rules,
    // never the opaque-seed rule.
    let f = scan_file("wire_chaos.rs", WIRE_CHAOS, &FileCtx::new("dnssim", false));
    assert_eq!(rules(&f), vec![Rule::D2, Rule::D7], "{f:?}");
    assert_eq!(f[0].line, 13, "Instant::now read");
    assert_eq!(f[1].line, 14, "obs::host profiling");
    assert!(
        !rules(&f).contains(&Rule::D8),
        "lane::WIRE_CHAOS-derived seeds must pass D8: {f:?}"
    );
}

#[test]
fn d7_marker_suppresses_with_reason() {
    let src = "\
pub fn f(reg: &mut Registry, name: &'static str) {
    // detlint: allow(D7) -- caller passes a static name through
    reg.inc(name, &[]);
}
";
    assert!(scan_file("x.rs", src, &sim_hot()).is_empty());
}

#[test]
fn d8_fires_exactly_once_on_opaque_seeds() {
    let f = scan_file("d8_fires.rs", D8, &FileCtx::new("cellsim", false));
    assert_eq!(rules(&f), vec![Rule::D8], "{f:?}");
    assert_eq!((f[0].line, f[0].col), (6, 23), "{f:?}");
    assert!(
        f[0].message.contains("seed_from_u64(1234)"),
        "{}",
        f[0].message
    );
    assert!(f[0].message.contains("lane::"), "{}", f[0].message);
    // Out of scope outside the simulation crates.
    assert!(scan_file("d8.rs", D8, &FileCtx::new("bench", false)).is_empty());
}

#[test]
fn d8_chases_literal_seeds_through_parameters() {
    let src = "\
fn make(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}
pub fn build() -> StdRng {
    make(99)
}
";
    let f = scan_file("x.rs", src, &sim_cold());
    assert_eq!(rules(&f), vec![Rule::D8], "{f:?}");
    assert_eq!(f[0].line, 5, "flagged at the caller pinning the literal");
    assert!(
        f[0].message.contains("literal seed `99`"),
        "{}",
        f[0].message
    );
    assert!(f[0].message.contains("`make`"), "{}", f[0].message);
}

#[test]
fn d8_accepts_lane_derived_parameters() {
    let src = "\
fn make(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}
pub fn build(master: u64) -> StdRng {
    make(derive_seed(master, lane::ENGINE, 0))
}
";
    assert!(scan_file("x.rs", src, &sim_cold()).is_empty());
}

#[test]
fn d8_lane_modules_belong_to_measure() {
    let src = "pub mod lane {\n    pub const ROGUE: u64 = 9;\n}\n";
    let f = scan_file("x.rs", src, &sim_cold());
    assert_eq!(rules(&f), vec![Rule::D8], "{f:?}");
    assert!(f[0].message.contains("measure"), "{}", f[0].message);
    assert!(scan_file("x.rs", src, &FileCtx::new("measure", false)).is_empty());
}

#[test]
fn d9_reports_the_full_chain_with_spans() {
    let f = scan_file("d9_chain.rs", D9, &sim_cold());
    assert_eq!(rules(&f), vec![Rule::D9], "{f:?}");
    assert_eq!((f[0].line, f[0].col), (14, 20), "sink span: {f:?}");
    assert_eq!(
        f[0].message,
        "hot entry `dispatch` can reach `expect()` at d9_chain.rs:14:20 via \
         dispatch (d9_chain.rs:5:5) -> classify (d9_chain.rs:9:1) -> \
         header_byte (d9_chain.rs:13:1); make the callee total or justify \
         the sink with an allow-marker"
    );
}

#[test]
fn d9_suppressible_at_the_sink_only() {
    // Marker on the sink line: consumed, scan is clean.
    let at_sink = D9.replace(
        "    *frame.first().expect(\"frame is non-empty\")",
        "    // detlint: allow(D9) -- dispatch only hands out non-empty frames\n    \
         *frame.first().expect(\"frame is non-empty\")",
    );
    assert!(scan_file("d9_chain.rs", &at_sink, &sim_cold()).is_empty());

    // Marker anywhere else on the chain suppresses nothing: the D9 finding
    // survives and the marker itself becomes an error.
    let midway = D9.replace(
        "    classify(frame)",
        "    // detlint: allow(D9) -- wrong place\n    classify(frame)",
    );
    let f = scan_file("d9_chain.rs", &midway, &sim_cold());
    assert_eq!(rules(&f), vec![Rule::Marker, Rule::D9], "{f:?}");
}

#[test]
fn d9_discharged_by_an_audited_d4_marker_in_hot_crates() {
    let src = "\
// detlint: hot
pub fn step(q: &[u32]) -> u32 {
    inner(q)
}
fn inner(q: &[u32]) -> u32 {
    // detlint: allow(D4) -- q is non-empty by construction
    q.first().copied().unwrap()
}
";
    // In a hot crate the D4 audit covers the same sink: one justification,
    // not two stacked markers.
    assert!(scan_file("x.rs", src, &sim_hot()).is_empty());
    // Outside the hot crates there is no D4 finding for the marker to
    // justify, so it consumes nothing and D9 still fires.
    let f = scan_file("x.rs", src, &sim_cold());
    assert_eq!(rules(&f), vec![Rule::Marker, Rule::D9], "{f:?}");
}

#[test]
fn d10_fires_exactly_once_inside_hot_fns() {
    let f = scan_file("d10_fires.rs", D10, &sim_cold());
    assert_eq!(rules(&f), vec![Rule::D10], "{f:?}");
    assert_eq!((f[0].line, f[0].col), (6, 29), "{f:?}");
    assert!(f[0].message.contains("Vec::new"), "{}", f[0].message);
    assert!(f[0].message.contains("`drain`"), "{}", f[0].message);
}

#[test]
fn d10_marker_suppresses_with_reason() {
    let allowed = D10.replace(
        "    let scratch: Vec<u32> = Vec::new();",
        "    // detlint: allow(D10) -- grows once, amortised over the batch\n    \
         let scratch: Vec<u32> = Vec::new();",
    );
    assert!(scan_file("d10_fires.rs", &allowed, &sim_cold()).is_empty());
}

#[test]
fn d11_partial_cmp_sort_fires_exactly_once() {
    let f = scan_file("d11_fires.rs", D11, &FileCtx::new("analysis", false));
    assert_eq!(rules(&f), vec![Rule::D11], "{f:?}");
    assert_eq!((f[0].line, f[0].col), (5, 8), "{f:?}");
    assert!(f[0].message.contains("total_cmp"), "{}", f[0].message);
}

#[test]
fn d11_float_keyed_collections_fire() {
    let src = "pub fn f(m: &BTreeMap<f64, u32>) -> usize {\n    m.len()\n}\n";
    let f = scan_file("x.rs", src, &FileCtx::new("analysis", false));
    assert_eq!(rules(&f), vec![Rule::D11], "{f:?}");
    assert!(f[0].message.contains("float-keyed"), "{}", f[0].message);
}

#[test]
fn d11_bare_float_casts_fire_and_rounded_casts_are_clean() {
    let bare = "pub fn f(x: f64) -> usize {\n    (x * 3.0) as usize\n}\n";
    let f = scan_file("x.rs", bare, &FileCtx::new("analysis", false));
    assert_eq!(rules(&f), vec![Rule::D11], "{f:?}");
    assert!(f[0].message.contains("rounding"), "{}", f[0].message);

    let rounded = "pub fn f(x: f64) -> usize {\n    (x * 3.0).floor() as usize\n}\n";
    assert!(scan_file("x.rs", rounded, &FileCtx::new("analysis", false)).is_empty());

    // Integer-to-integer casts are none of D11's business.
    let int = "pub fn f(x: u64) -> usize {\n    x as usize\n}\n";
    assert!(scan_file("x.rs", int, &FileCtx::new("analysis", false)).is_empty());
}

#[test]
fn valid_markers_suppress_everything() {
    let root = FileCtx::new("netsim", true);
    let f = scan_file("allowed.rs", ALLOWED, &root);
    assert!(f.is_empty(), "expected clean, got {f:?}");
}

#[test]
fn marker_without_reason_is_an_error_and_suppresses_nothing() {
    let root = FileCtx::new("netsim", true);
    let f = scan_file("malformed_marker.rs", MALFORMED, &root);
    assert_eq!(rules(&f), vec![Rule::Marker, Rule::D2], "{f:?}");
    let marker = f.iter().find(|x| x.rule == Rule::Marker).unwrap();
    assert!(marker.message.contains("reason"), "{}", marker.message);
}

#[test]
fn marker_with_empty_reason_is_an_error() {
    let src = "fn f() {\n    let t = std::time::Instant::now(); // detlint: allow(D2) -- \n}\n";
    let f = scan_file("x.rs", src, &sim_hot());
    assert_eq!(rules(&f), vec![Rule::D2, Rule::Marker], "{f:?}");
}

#[test]
fn marker_naming_unknown_rule_is_an_error() {
    let src = "// detlint: allow(D99) -- no such rule\nfn f() {}\n";
    let f = scan_file("x.rs", src, &sim_hot());
    assert_eq!(rules(&f), vec![Rule::Marker], "{f:?}");
}

#[test]
fn unused_marker_is_an_error() {
    let f = scan_file("unused_marker.rs", UNUSED, &sim_cold());
    assert_eq!(rules(&f), vec![Rule::Marker], "{f:?}");
    assert_eq!(f[0].line, 5);
    assert!(
        f[0].message.contains("suppresses nothing"),
        "{}",
        f[0].message
    );
    assert!(f[0].message.contains("line 6"), "{}", f[0].message);
}

#[test]
fn rules_do_not_apply_outside_their_crate_scope() {
    // D1–D3 are scoped to simulation crates, D4 to hot-path crates; a
    // support crate like `bench` triggers neither.
    let support = FileCtx::new("bench", false);
    assert!(scan_file("d1.rs", D1, &support).is_empty());
    assert!(scan_file("d2.rs", D2, &support).is_empty());
    assert!(scan_file("d3.rs", D3, &support).is_empty());
    assert!(scan_file("d4.rs", D4, &support).is_empty());
    // D4 also stays quiet in sim-but-not-hot crates like `analysis`.
    assert!(scan_file("d4.rs", D4, &FileCtx::new("analysis", false)).is_empty());
}

#[test]
fn cfg_test_code_is_exempt() {
    let src = "\
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let x: Option<u32> = None;
        x.unwrap();
        let _ = std::time::Instant::now();
    }
}
";
    assert!(scan_file("x.rs", src, &sim_hot()).is_empty());
}

#[test]
fn comments_and_strings_do_not_fire() {
    let src = "\
/// Example: `map.iter().next().unwrap()` and `Instant::now()`.
// thread_rng() is banned here.
pub fn msg() -> &'static str {
    \"no // comment starts inside this Instant::now string\"
}
";
    assert!(scan_file("x.rs", src, &sim_hot()).is_empty());
}

#[test]
fn multiline_method_chains_are_caught() {
    let src = "\
use std::collections::HashMap;
fn f(m: &HashMap<u32, u32>) -> u32 {
    m
        .values()
        .sum()
}
";
    let f = scan_file("x.rs", src, &sim_hot());
    assert_eq!(rules(&f), vec![Rule::D1], "{f:?}");
    assert_eq!(f[0].line, 4);
}

#[test]
fn for_loops_over_hash_maps_are_caught() {
    let src = "\
use std::collections::HashMap;
fn f(m: &HashMap<u32, u32>) {
    for (k, v) in &m {
        let _ = (k, v);
    }
}
";
    let f = scan_file("x.rs", src, &sim_hot());
    assert_eq!(rules(&f), vec![Rule::D1], "{f:?}");
}

#[test]
fn btree_collections_are_clean() {
    let src = "\
use std::collections::BTreeMap;
fn f(m: &BTreeMap<u32, u32>) -> u32 {
    m.values().sum()
}
";
    assert!(scan_file("x.rs", src, &sim_hot()).is_empty());
}

#[test]
fn json_output_is_escaped_and_well_formed() {
    let f = vec![Finding {
        file: "a\\b.rs".into(),
        line: 7,
        col: 3,
        rule: Rule::D2,
        message: "say \"no\"".into(),
        snippet: None,
    }];
    let json = detlint::to_json(&f);
    assert!(json.starts_with('[') && json.ends_with(']'));
    assert!(json.contains("\"rule\": \"D2\""));
    assert!(json.contains("\"col\": 3"));
    assert!(json.contains("a\\\\b.rs"));
    assert!(json.contains("say \\\"no\\\""));
    assert_eq!(detlint::to_json(&[]), "[\n]");
}

#[test]
fn sarif_output_has_the_2_1_0_shape() {
    let f = vec![Finding {
        file: "crates/x/src/lib.rs".into(),
        line: 7,
        col: 3,
        rule: Rule::D9,
        message: "chain".into(),
        snippet: None,
    }];
    let sarif = detlint::report::to_sarif(&f);
    assert!(sarif.contains("\"version\": \"2.1.0\""));
    assert!(sarif.contains("sarif-schema-2.1.0"));
    assert!(sarif.contains("\"ruleId\": \"D9\""));
    assert!(sarif.contains("\"startLine\": 7"));
    assert!(sarif.contains("\"startColumn\": 3"));
    assert!(sarif.contains("crates/x/src/lib.rs"));
}

#[test]
fn github_annotations_escape_properties_and_data() {
    let f = vec![Finding {
        file: "a.rs".into(),
        line: 2,
        col: 4,
        rule: Rule::D11,
        message: "bad: a,b\nnext".into(),
        snippet: None,
    }];
    let gh = detlint::report::to_github(&f);
    assert!(gh.starts_with("::error file=a.rs,line=2,col=4,"));
    assert!(
        gh.contains("bad%3A a%2Cb") || gh.contains("bad: a,b"),
        "{gh}"
    );
    assert!(gh.contains("%0A"), "newlines must be escaped: {gh}");
}
