//! detlint's own coverage: each rule fires exactly once on its fixture, a
//! well-formed allow-marker suppresses, and a reasonless marker is itself
//! an error that suppresses nothing.

use detlint::{scan_file, FileCtx, Finding, Rule};

const D1: &str = include_str!("fixtures/d1_fires.rs");
const D2: &str = include_str!("fixtures/d2_fires.rs");
const D3: &str = include_str!("fixtures/d3_fires.rs");
const D4: &str = include_str!("fixtures/d4_fires.rs");
const D5: &str = include_str!("fixtures/d5_fires.rs");
const D6: &str = include_str!("fixtures/d6_fires.rs");
const D7: &str = include_str!("fixtures/d7_fires.rs");
const ALLOWED: &str = include_str!("fixtures/allowed.rs");
const MALFORMED: &str = include_str!("fixtures/malformed_marker.rs");

/// A sim + hot crate, non-root file: D1–D4 all apply.
fn sim_hot() -> FileCtx {
    FileCtx::new("netsim", false)
}

fn rules(findings: &[Finding]) -> Vec<Rule> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn d1_fires_exactly_once() {
    let f = scan_file("d1_fires.rs", D1, &sim_hot());
    assert_eq!(rules(&f), vec![Rule::D1], "{f:?}");
    assert_eq!(f[0].line, 6);
    assert!(f[0].message.contains("`scores`"), "{}", f[0].message);
}

#[test]
fn d2_fires_exactly_once() {
    let f = scan_file("d2_fires.rs", D2, &sim_hot());
    assert_eq!(rules(&f), vec![Rule::D2], "{f:?}");
    assert_eq!(f[0].line, 5);
}

#[test]
fn d3_fires_exactly_once() {
    let f = scan_file("d3_fires.rs", D3, &sim_hot());
    assert_eq!(rules(&f), vec![Rule::D3], "{f:?}");
    assert_eq!(f[0].line, 3);
}

#[test]
fn d4_fires_exactly_once() {
    let f = scan_file("d4_fires.rs", D4, &sim_hot());
    assert_eq!(rules(&f), vec![Rule::D4], "{f:?}");
    assert_eq!(f[0].line, 3);
}

#[test]
fn d5_fires_exactly_once_on_crate_roots_only() {
    let root = FileCtx::new("netsim", true);
    let f = scan_file("d5_fires.rs", D5, &root);
    assert_eq!(rules(&f), vec![Rule::D5], "{f:?}");
    // The same file as a non-root module is fine: D5 is a root obligation.
    assert!(scan_file("d5_fires.rs", D5, &sim_hot()).is_empty());
}

#[test]
fn d6_fires_exactly_once_in_outcome_crates() {
    // The fixture discards pings, traceroutes, and a writeln — sanctioned —
    // plus exactly one resolve() Outcome, which must fire.
    let f = scan_file("d6_fires.rs", D6, &FileCtx::new("measure", false));
    assert_eq!(rules(&f), vec![Rule::D6], "{f:?}");
    assert_eq!(f[0].line, 9);
    assert!(f[0].message.contains("resolve"), "{}", f[0].message);
    // Same scope for the analysis layer.
    let f = scan_file("d6_fires.rs", D6, &FileCtx::new("analysis", false));
    assert_eq!(rules(&f), vec![Rule::D6], "{f:?}");
    // Out of scope: the DNS client itself may discard internally.
    assert!(scan_file("d6_fires.rs", D6, &FileCtx::new("dnssim", false)).is_empty());
}

#[test]
fn d6_catches_discards_wrapped_across_lines() {
    let src = "\
pub fn f(net: &mut Net) {
    let _ =
        resolve_with(net, 0, 1, &name, qtype, &policy);
}
";
    let f = scan_file("x.rs", src, &FileCtx::new("measure", false));
    assert_eq!(rules(&f), vec![Rule::D6], "{f:?}");
}

#[test]
fn d6_spares_named_bindings_and_used_results() {
    let src = "\
pub fn f(net: &mut Net) {
    let lookup = resolve(net, 0, 1);
    let _timing = resolve(net, 0, 2);
    record(lookup.outcome);
}
";
    assert!(scan_file("x.rs", src, &FileCtx::new("measure", false)).is_empty());
}

#[test]
fn d7_fires_on_host_plane_leak_and_dynamic_name() {
    let f = scan_file("d7_fires.rs", D7, &sim_hot());
    assert_eq!(rules(&f), vec![Rule::D7, Rule::D7], "{f:?}");
    assert_eq!(f[0].line, 5);
    assert!(f[0].message.contains("obs::host"), "{}", f[0].message);
    assert_eq!(f[1].line, 15);
    assert!(f[1].message.contains("static"), "{}", f[1].message);
}

#[test]
fn d7_respects_the_plane_boundaries() {
    // Driver binaries may use the host plane; they are not simulation
    // crates, so the literal-name rule does not bind there either.
    assert!(scan_file("d7.rs", D7, &FileCtx::new("repro", false)).is_empty());
    assert!(scan_file("d7.rs", D7, &FileCtx::new("bench", false)).is_empty());
    // `obs` itself implements the host plane (D7a stays quiet) but its sim
    // plane is held to the static-name rule (D7b fires).
    let f = scan_file("d7.rs", D7, &FileCtx::new("obs", false));
    assert_eq!(rules(&f), vec![Rule::D7], "{f:?}");
    assert_eq!(f[0].line, 15);
}

#[test]
fn d7_marker_suppresses_with_reason() {
    let src = "\
pub fn f(reg: &mut Registry, name: &'static str) {
    // detlint: allow(D7) -- caller passes a static name through
    reg.inc(name, &[]);
}
";
    assert!(scan_file("x.rs", src, &sim_hot()).is_empty());
}

#[test]
fn valid_markers_suppress_everything() {
    let root = FileCtx::new("netsim", true);
    let f = scan_file("allowed.rs", ALLOWED, &root);
    assert!(f.is_empty(), "expected clean, got {f:?}");
}

#[test]
fn marker_without_reason_is_an_error_and_suppresses_nothing() {
    let root = FileCtx::new("netsim", true);
    let f = scan_file("malformed_marker.rs", MALFORMED, &root);
    assert_eq!(rules(&f), vec![Rule::Marker, Rule::D2], "{f:?}");
    let marker = f.iter().find(|x| x.rule == Rule::Marker).unwrap();
    assert!(marker.message.contains("reason"), "{}", marker.message);
}

#[test]
fn marker_with_empty_reason_is_an_error() {
    let src = "fn f() {\n    let t = std::time::Instant::now(); // detlint: allow(D2) -- \n}\n";
    let f = scan_file("x.rs", src, &sim_hot());
    assert_eq!(rules(&f), vec![Rule::D2, Rule::Marker], "{f:?}");
}

#[test]
fn marker_naming_unknown_rule_is_an_error() {
    let src = "// detlint: allow(D9) -- no such rule\nfn f() {}\n";
    let f = scan_file("x.rs", src, &sim_hot());
    assert_eq!(rules(&f), vec![Rule::Marker], "{f:?}");
}

#[test]
fn rules_do_not_apply_outside_their_crate_scope() {
    // D1–D3 are scoped to simulation crates, D4 to hot-path crates; a
    // support crate like `bench` triggers neither.
    let support = FileCtx::new("bench", false);
    assert!(scan_file("d1.rs", D1, &support).is_empty());
    assert!(scan_file("d2.rs", D2, &support).is_empty());
    assert!(scan_file("d3.rs", D3, &support).is_empty());
    assert!(scan_file("d4.rs", D4, &support).is_empty());
    // D4 also stays quiet in sim-but-not-hot crates like `analysis`.
    assert!(scan_file("d4.rs", D4, &FileCtx::new("analysis", false)).is_empty());
}

#[test]
fn cfg_test_code_is_exempt() {
    let src = "\
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let x: Option<u32> = None;
        x.unwrap();
        let _ = std::time::Instant::now();
    }
}
";
    assert!(scan_file("x.rs", src, &sim_hot()).is_empty());
}

#[test]
fn comments_and_strings_do_not_fire() {
    let src = "\
/// Example: `map.iter().next().unwrap()` and `Instant::now()`.
// thread_rng() is banned here.
pub fn msg() -> &'static str {
    \"no // comment starts inside this Instant::now string\"
}
";
    assert!(scan_file("x.rs", src, &sim_hot()).is_empty());
}

#[test]
fn multiline_method_chains_are_caught() {
    let src = "\
use std::collections::HashMap;
fn f(m: &HashMap<u32, u32>) -> u32 {
    m
        .values()
        .sum()
}
";
    let f = scan_file("x.rs", src, &sim_hot());
    assert_eq!(rules(&f), vec![Rule::D1], "{f:?}");
    assert_eq!(f[0].line, 4);
}

#[test]
fn for_loops_over_hash_maps_are_caught() {
    let src = "\
use std::collections::HashMap;
fn f(m: &HashMap<u32, u32>) {
    for (k, v) in &m {
        let _ = (k, v);
    }
}
";
    let f = scan_file("x.rs", src, &sim_hot());
    assert_eq!(rules(&f), vec![Rule::D1], "{f:?}");
}

#[test]
fn btree_collections_are_clean() {
    let src = "\
use std::collections::BTreeMap;
fn f(m: &BTreeMap<u32, u32>) -> u32 {
    m.values().sum()
}
";
    assert!(scan_file("x.rs", src, &sim_hot()).is_empty());
}

#[test]
fn json_output_is_escaped_and_well_formed() {
    let f = vec![Finding {
        file: "a\\b.rs".into(),
        line: 7,
        rule: Rule::D2,
        message: "say \"no\"".into(),
    }];
    let json = detlint::to_json(&f);
    assert!(json.starts_with('[') && json.ends_with(']'));
    assert!(json.contains("\"rule\": \"D2\""));
    assert!(json.contains("a\\\\b.rs"));
    assert!(json.contains("say \\\"no\\\""));
    assert_eq!(detlint::to_json(&[]), "[\n]");
}
