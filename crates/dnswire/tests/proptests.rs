//! Property-based tests for the wire codec: arbitrary messages roundtrip,
//! arbitrary bytes never panic the decoder.

use dnswire::message::{Flags, Header, Message, Opcode, Question, Rcode, ResourceRecord};
use dnswire::name::DnsName;
use dnswire::rdata::{RData, RecordClass, RecordType, SoaData};
use proptest::prelude::*;
use std::net::{Ipv4Addr, Ipv6Addr};

fn arb_label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9_][a-z0-9_-]{0,14}").unwrap()
}

fn arb_name() -> impl Strategy<Value = DnsName> {
    proptest::collection::vec(arb_label(), 0..5)
        .prop_map(|labels| DnsName::from_labels(labels.iter().map(|l| l.as_bytes())).unwrap())
}

fn arb_rdata() -> impl Strategy<Value = RData> {
    prop_oneof![
        any::<[u8; 4]>().prop_map(|o| RData::A(Ipv4Addr::from(o))),
        any::<[u8; 16]>().prop_map(|o| RData::Aaaa(Ipv6Addr::from(o))),
        arb_name().prop_map(RData::Ns),
        arb_name().prop_map(RData::Cname),
        arb_name().prop_map(RData::Ptr),
        (any::<u16>(), arb_name()).prop_map(|(p, n)| RData::Mx(p, n)),
        proptest::collection::vec("[ -~]{0,40}", 1..3).prop_map(RData::Txt),
        (arb_name(), arb_name(), any::<u32>(), any::<u32>()).prop_map(
            |(mname, rname, serial, refresh)| {
                RData::Soa(SoaData {
                    mname,
                    rname,
                    serial,
                    refresh,
                    retry: 900,
                    expire: 86400,
                    minimum: 60,
                })
            }
        ),
        (0u16..=65535, proptest::collection::vec(any::<u8>(), 0..32)).prop_map(|(code, bytes)| {
            // Avoid colliding with codes the codec interprets structurally.
            let code = match RecordType::from_code(code) {
                RecordType::Unknown(c) => c,
                _ => 60000,
            };
            RData::Unknown(code, bytes)
        }),
    ]
}

fn arb_record() -> impl Strategy<Value = ResourceRecord> {
    (arb_name(), any::<u32>(), arb_rdata()).prop_map(|(name, ttl, rdata)| ResourceRecord {
        name,
        class: RecordClass::In,
        ttl,
        rdata,
    })
}

fn arb_question() -> impl Strategy<Value = Question> {
    (arb_name(), any::<u16>()).prop_map(|(qname, tcode)| Question {
        qname,
        qtype: RecordType::from_code(tcode),
        qclass: RecordClass::In,
    })
}

fn arb_message() -> impl Strategy<Value = Message> {
    (
        any::<u16>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        0u8..16,
        proptest::collection::vec(arb_question(), 0..3),
        proptest::collection::vec(arb_record(), 0..4),
        proptest::collection::vec(arb_record(), 0..3),
        proptest::collection::vec(arb_record(), 0..3),
    )
        .prop_map(
            |(id, qr, aa, tc, rd, ra, rcode, questions, answers, authorities, additionals)| {
                Message {
                    header: Header {
                        id,
                        opcode: Opcode::Query,
                        flags: Flags {
                            response: qr,
                            authoritative: aa,
                            truncated: tc,
                            recursion_desired: rd,
                            recursion_available: ra,
                        },
                        rcode: Rcode::from_code(rcode),
                    },
                    questions,
                    answers,
                    authorities,
                    additionals,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn roundtrip_arbitrary_messages(msg in arb_message()) {
        let bytes = msg.encode().unwrap();
        let decoded = Message::decode(&bytes).unwrap();
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn decoder_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Result is irrelevant; absence of panic is the property.
        let _ = Message::decode(&bytes);
    }

    #[test]
    fn decoder_never_panics_on_mutated_valid_messages(
        msg in arb_message(),
        idx in any::<prop::sample::Index>(),
        byte in any::<u8>(),
    ) {
        let mut bytes = msg.encode().unwrap();
        if !bytes.is_empty() {
            let i = idx.index(bytes.len());
            bytes[i] = byte;
        }
        let _ = Message::decode(&bytes);
    }

    #[test]
    fn reencoding_a_decoded_message_is_stable(msg in arb_message()) {
        let bytes = msg.encode().unwrap();
        let decoded = Message::decode(&bytes).unwrap();
        let bytes2 = decoded.encode().unwrap();
        prop_assert_eq!(bytes, bytes2);
    }

    #[test]
    fn name_parse_display_roundtrip(labels in proptest::collection::vec(arb_label(), 1..5)) {
        let s = labels.join(".");
        let name = DnsName::parse(&s).unwrap();
        prop_assert_eq!(name.to_string(), s.to_lowercase());
        let reparsed = DnsName::parse(&name.to_string()).unwrap();
        prop_assert_eq!(reparsed, name);
    }

    #[test]
    fn ecs_options_roundtrip(
        octets in any::<[u8; 4]>(),
        source in 0u8..=32,
        scope in 0u8..=32,
    ) {
        use dnswire::edns::{decode_options, encode_options, EdnsOption};
        let addr = std::net::Ipv4Addr::from(octets);
        let masked = {
            let mask: u32 = if source == 0 { 0 } else { u32::MAX << (32 - source) };
            std::net::Ipv4Addr::from(u32::from(addr) & mask)
        };
        let opt = EdnsOption::ClientSubnet {
            source_prefix_len: source,
            scope_prefix_len: scope,
            addr: masked,
        };
        let decoded = decode_options(&encode_options(std::slice::from_ref(&opt))).unwrap();
        prop_assert_eq!(decoded, vec![opt]);
    }

    #[test]
    fn ecs_message_attachment_survives_the_wire(
        octets in any::<[u8; 4]>(),
        source in 1u8..=32,
    ) {
        use dnswire::builder::QueryBuilder;
        let mut msg = QueryBuilder::new(3, "m.yelp.com", RecordType::A)
            .build()
            .unwrap();
        msg.set_client_subnet(std::net::Ipv4Addr::from(octets), source);
        let decoded = Message::decode(&msg.encode().unwrap()).unwrap();
        let (got_addr, got_source, got_scope) = decoded.client_subnet().unwrap();
        prop_assert_eq!(got_source, source);
        prop_assert_eq!(got_scope, 0);
        // The address must be masked to the announced prefix.
        let mask: u32 = if source == 0 { 0 } else { u32::MAX << (32 - source) };
        prop_assert_eq!(u32::from(got_addr), u32::from(std::net::Ipv4Addr::from(octets)) & mask);
    }

    #[test]
    fn ecs_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = dnswire::edns::decode_options(&bytes);
    }

    #[test]
    fn tc_bit_survives_the_wire(msg in arb_message(), tc in any::<bool>()) {
        let mut msg = msg;
        msg.header.flags.truncated = tc;
        let decoded = Message::decode(&msg.encode().unwrap()).unwrap();
        prop_assert_eq!(decoded.header.flags.truncated, tc);
        // Re-encoding keeps the bit stable too.
        let again = Message::decode(&decoded.encode().unwrap()).unwrap();
        prop_assert_eq!(again.header.flags.truncated, tc);
    }

    #[test]
    fn truncate_for_roundtrips_and_respects_the_limit(msg in arb_message(), limit in 12usize..1024) {
        let mut msg = msg;
        msg.header.flags.truncated = false;
        let original_len = msg.encode().unwrap().len();
        let truncated = msg.truncate_for(limit);
        let bytes = msg.encode().unwrap();
        if truncated {
            // Truncation only happens to over-limit messages, sets TC, and
            // strips every record section.
            prop_assert!(original_len > limit);
            prop_assert!(msg.header.flags.truncated);
            prop_assert!(msg.answers.is_empty());
            prop_assert!(msg.authorities.is_empty());
            prop_assert!(msg.additionals.is_empty());
        } else {
            prop_assert!(original_len <= limit);
            prop_assert!(!msg.header.flags.truncated);
            prop_assert_eq!(bytes.len(), original_len);
        }
        // Either way the result still roundtrips with the TC bit intact.
        let decoded = Message::decode(&bytes).unwrap();
        prop_assert_eq!(decoded.header.flags.truncated, truncated);
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn advertised_udp_size_survives_the_wire(msg in arb_message(), size in any::<u16>()) {
        let mut msg = msg;
        // Drop OPT pseudo-records a previous strategy draw may have added.
        msg.additionals.retain(|rr| !matches!(rr.rdata, RData::Opt(_)));
        prop_assert_eq!(msg.edns_udp_size(), None);
        msg.advertise_udp_size(size);
        let decoded = Message::decode(&msg.encode().unwrap()).unwrap();
        prop_assert_eq!(decoded.edns_udp_size(), Some(size));
    }

    #[test]
    fn is_under_is_reflexive_and_monotone(name in arb_name()) {
        prop_assert!(name.is_under(&name));
        prop_assert!(name.is_under(&DnsName::root()));
        if let Some(parent) = name.parent() {
            prop_assert!(name.is_under(&parent));
        }
    }
}

// --- Name decompression & zero-copy NameRef properties ---------------------

use dnswire::nameref::NameRef;
use dnswire::WireError;

/// Labels with mixed case, so comparisons must normalize to agree.
fn arb_mixed_label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[A-Za-z0-9_][A-Za-z0-9_-]{0,14}").unwrap()
}

fn arb_mixed_labels() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(arb_mixed_label(), 0..6)
}

/// Encodes labels + terminating root octet, no compression.
fn encode_plain(labels: &[String]) -> Vec<u8> {
    let mut out = Vec::new();
    for l in labels {
        out.push(l.len() as u8);
        out.extend_from_slice(l.as_bytes());
    }
    out.push(0);
    out
}

fn owned(labels: &[String]) -> DnsName {
    DnsName::from_labels(labels.iter().map(|l| l.as_bytes())).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn nameref_parse_matches_owned_decode(labels in arb_mixed_labels()) {
        let buf = encode_plain(&labels);
        let (name, consumed) = NameRef::parse(&buf, 0).unwrap();
        prop_assert_eq!(consumed, buf.len());
        prop_assert_eq!(name.label_count(), labels.len());
        let expect = owned(&labels);
        prop_assert_eq!(name.to_name(), expect.clone());
        prop_assert_eq!(name.wire_len(), expect.wire_len());
        prop_assert!(name == expect);
    }

    #[test]
    fn nameref_equality_and_order_match_owned(
        la in arb_mixed_labels(),
        lb in arb_mixed_labels(),
    ) {
        let (ba, bb) = (encode_plain(&la), encode_plain(&lb));
        let (ra, _) = NameRef::parse(&ba, 0).unwrap();
        let (rb, _) = NameRef::parse(&bb, 0).unwrap();
        let (oa, ob) = (owned(&la), owned(&lb));
        prop_assert_eq!(ra.cmp(&rb), oa.cmp(&ob));
        prop_assert_eq!(ra == rb, oa == ob);
        prop_assert_eq!(ra.cmp_name(&ob), oa.cmp(&ob));
        prop_assert_eq!(ra == ob, oa == ob);
        prop_assert_eq!(ra.to_string(), oa.to_string());
    }

    #[test]
    fn pointer_chains_expand_to_the_full_name(
        suffix in proptest::collection::vec(arb_mixed_label(), 1..4),
        prefix in proptest::collection::vec(arb_mixed_label(), 1..3),
        pad in 0usize..8,
    ) {
        // Suffix at the front of the buffer (after some padding bytes the
        // walk never touches), then prefix labels ending in a pointer to it.
        let mut buf = vec![0xFFu8; pad];
        let suffix_at = buf.len();
        buf.extend_from_slice(&encode_plain(&suffix));
        let name_at = buf.len();
        for l in &prefix {
            buf.push(l.len() as u8);
            buf.extend_from_slice(l.as_bytes());
        }
        buf.extend_from_slice(&(0xC000u16 | suffix_at as u16).to_be_bytes());
        let (name, consumed) = NameRef::parse(&buf, name_at).unwrap();
        // Consumes only the in-sequence bytes: prefix labels + the pointer.
        prop_assert_eq!(consumed, buf.len() - name_at);
        let full: Vec<String> = prefix.iter().chain(suffix.iter()).cloned().collect();
        prop_assert_eq!(name.to_name(), owned(&full));
    }

    #[test]
    fn forward_and_self_pointers_are_rejected(
        labels in proptest::collection::vec(arb_mixed_label(), 0..3),
        ahead in 0u16..64,
    ) {
        // A pointer targeting its own position or beyond can never resolve.
        let mut buf = encode_plain(&labels);
        buf.pop(); // replace the root octet with a bad pointer
        let at = buf.len();
        let target = at as u16 + ahead;
        buf.extend_from_slice(&(0xC000 | target).to_be_bytes());
        buf.resize(buf.len() + ahead as usize + 4, 0);
        prop_assert!(matches!(
            NameRef::parse(&buf, 0).unwrap_err(),
            WireError::BadCompressionPointer { .. }
        ));
    }

    #[test]
    fn deep_backward_pointer_chains_hit_the_jump_bound(extra in 0usize..4) {
        // buf[0] is the root; then a chain of pointers each referencing the
        // previous one. 128 jumps are legal, 129+ trip the loop guard.
        for chain_len in [1usize, 127, 128, 129, 129 + extra] {
            let mut buf = vec![0u8];
            let mut prev = 0usize;
            let mut start = 0usize;
            for _ in 0..chain_len {
                start = buf.len();
                buf.extend_from_slice(&(0xC000u16 | prev as u16).to_be_bytes());
                prev = start;
            }
            let got = NameRef::parse(&buf, start);
            if chain_len <= 128 {
                let (name, consumed) = got.unwrap();
                prop_assert!(name.is_root());
                prop_assert_eq!(consumed, 2);
            } else {
                prop_assert!(matches!(got.unwrap_err(), WireError::CompressionLoop));
            }
        }
    }

    #[test]
    fn chains_crossing_max_name_len_are_rejected(segments in 1usize..8) {
        // Each segment prepends a 63-byte label via a pointer to the chain so
        // far: expanded length is 1 + 64 * segments octets. Five segments
        // cross the 255-octet cap even though each hop is individually legal.
        let label = [b'x'; 63];
        let mut buf = vec![0u8]; // the root
        let mut prev = 0usize;
        for _ in 0..segments {
            let start = buf.len();
            buf.push(63);
            buf.extend_from_slice(&label);
            buf.extend_from_slice(&(0xC000u16 | prev as u16).to_be_bytes());
            prev = start;
        }
        let expanded = 1 + 64 * segments;
        let got = NameRef::parse(&buf, prev);
        if expanded <= 255 {
            let (name, _) = got.unwrap();
            prop_assert_eq!(name.wire_len(), expanded);
            prop_assert_eq!(name.label_count(), segments);
        } else {
            prop_assert!(matches!(got.unwrap_err(), WireError::NameTooLong(_)));
        }
    }

    #[test]
    fn nameref_parse_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
        start in 0usize..300,
    ) {
        // Absence of panic (and of an infinite walk) is the property; the
        // labels of any accepted name must also be iterable in bounds.
        if let Ok((name, consumed)) = NameRef::parse(&bytes, start) {
            prop_assert!(consumed <= bytes.len().saturating_sub(start));
            prop_assert!(name.wire_len() <= 255);
            let _ = name.to_name();
        }
    }
}
