//! Ergonomic construction of queries and responses.

use crate::error::WireError;
use crate::message::{Flags, Header, Message, Opcode, Question, Rcode, ResourceRecord};
use crate::name::DnsName;
use crate::rdata::{RData, RecordType};
use std::net::Ipv4Addr;

/// Builds a standard query message.
///
/// ```
/// use dnswire::builder::QueryBuilder;
/// use dnswire::rdata::RecordType;
///
/// let q = QueryBuilder::new(7, "m.example.org", RecordType::A)
///     .recursion_desired(true)
///     .build()
///     .unwrap();
/// assert!(q.header.flags.recursion_desired);
/// ```
#[derive(Debug, Clone)]
pub struct QueryBuilder {
    id: u16,
    qname: String,
    qtype: RecordType,
    recursion_desired: bool,
}

impl QueryBuilder {
    /// Starts a query for `qname` with the given transaction id.
    pub fn new(id: u16, qname: impl Into<String>, qtype: RecordType) -> Self {
        QueryBuilder {
            id,
            qname: qname.into(),
            qtype,
            recursion_desired: false,
        }
    }

    /// Sets the RD bit.
    pub fn recursion_desired(mut self, rd: bool) -> Self {
        self.recursion_desired = rd;
        self
    }

    /// Validates the name and produces the message.
    pub fn build(self) -> Result<Message, WireError> {
        let qname = DnsName::parse(&self.qname)?;
        let mut header = Header::query(self.id);
        header.flags.recursion_desired = self.recursion_desired;
        let mut msg = Message::new(header);
        msg.questions.push(Question::new(qname, self.qtype));
        Ok(msg)
    }
}

/// Builds a response to a given query, echoing its id and question.
#[derive(Debug, Clone)]
pub struct ResponseBuilder {
    msg: Message,
}

impl ResponseBuilder {
    /// Starts a response mirroring `query`'s id, RD bit, and question
    /// section.
    pub fn for_query(query: &Message) -> Self {
        let header = Header {
            id: query.header.id,
            opcode: query.header.opcode,
            flags: Flags {
                response: true,
                recursion_desired: query.header.flags.recursion_desired,
                ..Flags::default()
            },
            rcode: Rcode::NoError,
        };
        let mut msg = Message::new(header);
        msg.questions = query.questions.clone();
        ResponseBuilder { msg }
    }

    /// Starts a response from scratch (used by servers synthesizing errors
    /// for unparseable queries).
    pub fn new(id: u16) -> Self {
        let mut header = Header::query(id);
        header.flags.response = true;
        ResponseBuilder {
            msg: Message::new(header),
        }
    }

    /// Sets the AA bit.
    pub fn authoritative(mut self, aa: bool) -> Self {
        self.msg.header.flags.authoritative = aa;
        self
    }

    /// Sets the RA bit.
    pub fn recursion_available(mut self, ra: bool) -> Self {
        self.msg.header.flags.recursion_available = ra;
        self
    }

    /// Sets the response code.
    pub fn rcode(mut self, rcode: Rcode) -> Self {
        self.msg.header.rcode = rcode;
        self
    }

    /// Appends an answer record.
    pub fn answer(mut self, rr: ResourceRecord) -> Self {
        self.msg.answers.push(rr);
        self
    }

    /// Appends an A answer for `name`.
    pub fn answer_a(self, name: DnsName, ttl: u32, addr: Ipv4Addr) -> Self {
        self.answer(ResourceRecord::new(name, ttl, RData::A(addr)))
    }

    /// Appends a CNAME answer for `name`.
    pub fn answer_cname(self, name: DnsName, ttl: u32, target: DnsName) -> Self {
        self.answer(ResourceRecord::new(name, ttl, RData::Cname(target)))
    }

    /// Appends an authority record.
    pub fn authority(mut self, rr: ResourceRecord) -> Self {
        self.msg.authorities.push(rr);
        self
    }

    /// Appends an additional record.
    pub fn additional(mut self, rr: ResourceRecord) -> Self {
        self.msg.additionals.push(rr);
        self
    }

    /// Finishes the message.
    pub fn build(self) -> Message {
        self.msg
    }
}

/// Convenience check: does `response` plausibly answer `query`?
/// (Matching id, QR set, and an identical first question.)
pub fn response_matches(query: &Message, response: &Message) -> bool {
    response.header.id == query.header.id
        && response.header.flags.response
        && match (query.questions.first(), response.questions.first()) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
}

/// The opcode every message built here uses.
pub const DEFAULT_OPCODE: Opcode = Opcode::Query;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_builder_produces_valid_query() {
        let q = QueryBuilder::new(42, "m.yelp.com", RecordType::A)
            .recursion_desired(true)
            .build()
            .unwrap();
        assert_eq!(q.header.id, 42);
        assert!(!q.header.flags.response);
        assert!(q.header.flags.recursion_desired);
        assert_eq!(q.questions.len(), 1);
        assert_eq!(q.questions[0].qtype, RecordType::A);
    }

    #[test]
    fn query_builder_rejects_invalid_name() {
        assert!(QueryBuilder::new(1, "bad name.com", RecordType::A)
            .build()
            .is_err());
    }

    #[test]
    fn response_builder_mirrors_query() {
        let q = QueryBuilder::new(9, "example.com", RecordType::A)
            .recursion_desired(true)
            .build()
            .unwrap();
        let r = ResponseBuilder::for_query(&q)
            .authoritative(true)
            .recursion_available(true)
            .answer_a(
                DnsName::parse("example.com").unwrap(),
                60,
                Ipv4Addr::new(198, 51, 100, 7),
            )
            .build();
        assert!(response_matches(&q, &r));
        assert!(r.header.flags.authoritative);
        assert!(r.header.flags.recursion_desired);
        assert_eq!(r.answer_addrs(), vec![Ipv4Addr::new(198, 51, 100, 7)]);
    }

    #[test]
    fn response_matches_rejects_mismatches() {
        let q = QueryBuilder::new(9, "example.com", RecordType::A)
            .build()
            .unwrap();
        let other = QueryBuilder::new(9, "elsewhere.com", RecordType::A)
            .build()
            .unwrap();
        let r = ResponseBuilder::for_query(&other).build();
        assert!(!response_matches(&q, &r));
        let mut not_response = q.clone();
        not_response.header.flags.response = false;
        assert!(!response_matches(&q, &not_response));
    }

    #[test]
    fn nxdomain_response() {
        let q = QueryBuilder::new(3, "missing.example.com", RecordType::A)
            .build()
            .unwrap();
        let r = ResponseBuilder::for_query(&q)
            .rcode(Rcode::NxDomain)
            .build();
        assert_eq!(r.header.rcode, Rcode::NxDomain);
        assert!(r.answers.is_empty());
    }
}
