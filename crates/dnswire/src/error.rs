//! Error types for wire-format encoding and decoding.

use std::fmt;

/// Errors produced while encoding or decoding DNS messages.
///
/// Decoding operates on untrusted bytes, so every structural violation maps
/// to a distinct variant rather than a panic; encoding can only fail on
/// internal limits (oversized names, too many records).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before a complete field could be read.
    Truncated {
        /// What was being parsed when the input ran out.
        context: &'static str,
    },
    /// A label exceeded 63 octets.
    LabelTooLong(usize),
    /// A full name exceeded 255 octets on the wire.
    NameTooLong(usize),
    /// A label contained a byte outside the supported hostname alphabet.
    InvalidLabelByte(u8),
    /// An empty label appeared in a position other than the root.
    EmptyLabel,
    /// A compression pointer pointed at or past its own position
    /// (forward pointers are forbidden by RFC 1035 §4.1.4).
    BadCompressionPointer {
        /// Offset the pointer referenced.
        target: usize,
        /// Offset the pointer itself was read from.
        at: usize,
    },
    /// Followed more compression pointers than any legal message can contain.
    CompressionLoop,
    /// A label length byte used the reserved `0b10`/`0b01` prefixes.
    ReservedLabelType(u8),
    /// The RDLENGTH field disagreed with the actual RDATA encoding.
    RdataLengthMismatch {
        /// Declared RDLENGTH.
        declared: usize,
        /// Bytes actually consumed.
        consumed: usize,
    },
    /// A record type that requires structured RDATA carried too few bytes.
    BadRdata(&'static str),
    /// Message exceeded the 64 KiB UDP/TCP framing limit while encoding.
    MessageTooLong(usize),
    /// Trailing garbage followed a structurally complete message.
    TrailingBytes(usize),
    /// Unknown opcode/rcode/class outside what this implementation models.
    Unsupported(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { context } => {
                write!(f, "message truncated while reading {context}")
            }
            WireError::LabelTooLong(n) => write!(f, "label of {n} octets exceeds 63"),
            WireError::NameTooLong(n) => write!(f, "name of {n} octets exceeds 255"),
            WireError::InvalidLabelByte(b) => write!(f, "invalid byte {b:#04x} in label"),
            WireError::EmptyLabel => write!(f, "empty label inside a name"),
            WireError::BadCompressionPointer { target, at } => {
                write!(f, "compression pointer at {at} references {target}")
            }
            WireError::CompressionLoop => write!(f, "compression pointer loop"),
            WireError::ReservedLabelType(b) => {
                write!(f, "reserved label type bits in {b:#04x}")
            }
            WireError::RdataLengthMismatch { declared, consumed } => {
                write!(f, "rdata length {declared} but consumed {consumed}")
            }
            WireError::BadRdata(what) => write!(f, "malformed rdata: {what}"),
            WireError::MessageTooLong(n) => write!(f, "message of {n} bytes exceeds 65535"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            WireError::Unsupported(what) => write!(f, "unsupported: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = WireError::Truncated { context: "header" };
        assert!(e.to_string().contains("header"));
        let e = WireError::BadCompressionPointer { target: 9, at: 4 };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(WireError::CompressionLoop, WireError::CompressionLoop);
        assert_ne!(WireError::EmptyLabel, WireError::CompressionLoop);
    }
}
