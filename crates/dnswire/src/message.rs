//! DNS message structure and the wire codec, including name compression.

use crate::error::WireError;
use crate::name::DnsName;
use crate::nameref::NameRef;
use crate::rdata::{RData, RecordClass, RecordType};
use std::collections::HashMap;

/// Maximum encoded message size (16-bit length framing).
pub const MAX_MESSAGE_LEN: usize = 65_535;

/// Largest offset a 14-bit compression pointer can reference.
const MAX_POINTER_TARGET: usize = 0x3FFF;

/// Query/response operation codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// Standard query.
    Query,
    /// Inverse query (obsolete, preserved for fidelity).
    IQuery,
    /// Server status request.
    Status,
    /// Anything else.
    Other(u8),
}

impl Opcode {
    /// 4-bit wire code.
    pub fn code(self) -> u8 {
        match self {
            Opcode::Query => 0,
            Opcode::IQuery => 1,
            Opcode::Status => 2,
            Opcode::Other(c) => c & 0x0F,
        }
    }

    /// Maps a 4-bit wire code to an opcode.
    pub fn from_code(code: u8) -> Self {
        match code & 0x0F {
            0 => Opcode::Query,
            1 => Opcode::IQuery,
            2 => Opcode::Status,
            c => Opcode::Other(c),
        }
    }
}

/// Response codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rcode {
    /// No error.
    NoError,
    /// The server could not interpret the query.
    FormErr,
    /// Internal server failure.
    ServFail,
    /// Name does not exist (authoritative).
    NxDomain,
    /// Not implemented.
    NotImp,
    /// Refused by policy.
    Refused,
    /// Anything else.
    Other(u8),
}

impl Rcode {
    /// 4-bit wire code.
    pub fn code(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::Other(c) => c & 0x0F,
        }
    }

    /// Maps a 4-bit wire code to an rcode.
    pub fn from_code(code: u8) -> Self {
        match code & 0x0F {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            c => Rcode::Other(c),
        }
    }
}

/// Header flag bits (everything in the second 16-bit word except opcode and
/// rcode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Flags {
    /// QR: this message is a response.
    pub response: bool,
    /// AA: the responding server is authoritative for the zone.
    pub authoritative: bool,
    /// TC: the response was truncated.
    pub truncated: bool,
    /// RD: recursion desired.
    pub recursion_desired: bool,
    /// RA: recursion available.
    pub recursion_available: bool,
}

/// Fixed 12-byte message header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Header {
    /// Transaction identifier chosen by the querier.
    pub id: u16,
    /// Operation code.
    pub opcode: Opcode,
    /// Flag bits.
    pub flags: Flags,
    /// Response code.
    pub rcode: Rcode,
}

impl Header {
    /// A query header with the given transaction id.
    pub fn query(id: u16) -> Self {
        Header {
            id,
            opcode: Opcode::Query,
            flags: Flags::default(),
            rcode: Rcode::NoError,
        }
    }

    fn encode(&self, counts: [u16; 4], out: &mut Vec<u8>) {
        out.extend_from_slice(&self.id.to_be_bytes());
        let mut hi: u8 = 0;
        if self.flags.response {
            hi |= 0x80;
        }
        hi |= self.opcode.code() << 3;
        if self.flags.authoritative {
            hi |= 0x04;
        }
        if self.flags.truncated {
            hi |= 0x02;
        }
        if self.flags.recursion_desired {
            hi |= 0x01;
        }
        let mut lo: u8 = 0;
        if self.flags.recursion_available {
            lo |= 0x80;
        }
        lo |= self.rcode.code();
        out.push(hi);
        out.push(lo);
        for c in counts {
            out.extend_from_slice(&c.to_be_bytes());
        }
    }

    fn decode(cur: &mut Cursor<'_>) -> Result<(Header, [u16; 4]), WireError> {
        let id = cur.read_u16("header id")?;
        let hi = cur.read_u8("header flags")?;
        let lo = cur.read_u8("header flags")?;
        let header = Header {
            id,
            opcode: Opcode::from_code((hi >> 3) & 0x0F),
            flags: Flags {
                response: hi & 0x80 != 0,
                authoritative: hi & 0x04 != 0,
                truncated: hi & 0x02 != 0,
                recursion_desired: hi & 0x01 != 0,
                recursion_available: lo & 0x80 != 0,
            },
            rcode: Rcode::from_code(lo & 0x0F),
        };
        let mut counts = [0u16; 4];
        for c in &mut counts {
            *c = cur.read_u16("header counts")?;
        }
        Ok((header, counts))
    }
}

/// A question section entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Question {
    /// Queried name.
    pub qname: DnsName,
    /// Queried type.
    pub qtype: RecordType,
    /// Queried class.
    pub qclass: RecordClass,
}

impl Question {
    /// An `IN`-class question.
    pub fn new(qname: DnsName, qtype: RecordType) -> Self {
        Question {
            qname,
            qtype,
            qclass: RecordClass::In,
        }
    }
}

/// A resource record in the answer, authority, or additional section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceRecord {
    /// Owner name.
    pub name: DnsName,
    /// Class (IN for everything in this simulation).
    pub class: RecordClass,
    /// Time to live in seconds.
    pub ttl: u32,
    /// Typed record data; the record type is derived from it.
    pub rdata: RData,
}

impl ResourceRecord {
    /// An `IN`-class record.
    pub fn new(name: DnsName, ttl: u32, rdata: RData) -> Self {
        ResourceRecord {
            name,
            class: RecordClass::In,
            ttl,
            rdata,
        }
    }

    /// The record type, derived from the RDATA variant.
    pub fn record_type(&self) -> RecordType {
        self.rdata.record_type()
    }
}

/// A complete DNS message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Header word.
    pub header: Header,
    /// Question section.
    pub questions: Vec<Question>,
    /// Answer section.
    pub answers: Vec<ResourceRecord>,
    /// Authority section.
    pub authorities: Vec<ResourceRecord>,
    /// Additional section.
    pub additionals: Vec<ResourceRecord>,
}

impl Message {
    /// An empty message with the given header.
    pub fn new(header: Header) -> Self {
        Message {
            header,
            questions: Vec::new(),
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// Encodes to wire format with name compression.
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        for (len, what) in [
            (self.questions.len(), "question count"),
            (self.answers.len(), "answer count"),
            (self.authorities.len(), "authority count"),
            (self.additionals.len(), "additional count"),
        ] {
            if len > u16::MAX as usize {
                return Err(WireError::Unsupported(what));
            }
        }
        let mut out = Vec::with_capacity(128);
        self.header.encode(
            [
                self.questions.len() as u16,
                self.answers.len() as u16,
                self.authorities.len() as u16,
                self.additionals.len() as u16,
            ],
            &mut out,
        );
        let mut offsets = HashMap::new();
        for q in &self.questions {
            let mut enc = NameEncoder::new(&mut out, &mut offsets);
            enc.put_name(&q.qname)?;
            enc.put_u16(q.qtype.code());
            enc.put_u16(q.qclass.code());
        }
        for rr in self
            .answers
            .iter()
            .chain(&self.authorities)
            .chain(&self.additionals)
        {
            let mut enc = NameEncoder::new(&mut out, &mut offsets);
            enc.put_name(&rr.name)?;
            enc.put_u16(rr.rdata.record_type().code());
            enc.put_u16(rr.class.code());
            enc.put_u32(rr.ttl);
            // Reserve RDLENGTH, encode RDATA, then patch the length in.
            let len_pos = enc.reserve_u16();
            let rdata_start = enc.pos();
            rr.rdata.encode(&mut enc)?;
            let rdlen = enc.pos() - rdata_start;
            if rdlen > u16::MAX as usize {
                return Err(WireError::MessageTooLong(rdlen));
            }
            enc.patch_u16(len_pos, rdlen as u16);
        }
        if out.len() > MAX_MESSAGE_LEN {
            return Err(WireError::MessageTooLong(out.len()));
        }
        Ok(out)
    }

    /// Decodes from wire format, rejecting trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<Message, WireError> {
        let mut cur = Cursor::new(bytes);
        let (header, counts) = Header::decode(&mut cur)?;
        let mut questions = Vec::with_capacity(counts[0].min(64) as usize);
        for _ in 0..counts[0] {
            let qname = cur.read_name()?;
            let qtype = RecordType::from_code(cur.read_u16("qtype")?);
            let qclass = RecordClass::from_code(cur.read_u16("qclass")?);
            questions.push(Question {
                qname,
                qtype,
                qclass,
            });
        }
        let mut sections: [Vec<ResourceRecord>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for (i, section) in sections.iter_mut().enumerate() {
            for _ in 0..counts[i + 1] {
                section.push(Self::decode_record(&mut cur)?);
            }
        }
        if cur.pos() != bytes.len() {
            return Err(WireError::TrailingBytes(bytes.len() - cur.pos()));
        }
        let [answers, authorities, additionals] = sections;
        Ok(Message {
            header,
            questions,
            answers,
            authorities,
            additionals,
        })
    }

    fn decode_record(cur: &mut Cursor<'_>) -> Result<ResourceRecord, WireError> {
        let name = cur.read_name()?;
        let rtype = RecordType::from_code(cur.read_u16("rr type")?);
        let class = RecordClass::from_code(cur.read_u16("rr class")?);
        let ttl = cur.read_u32("rr ttl")?;
        let rdlen = cur.read_u16("rr rdlength")? as usize;
        let rdata = RData::decode(cur, rtype, rdlen)?;
        Ok(ResourceRecord {
            name,
            class,
            ttl,
            rdata,
        })
    }

    /// All A-record addresses in the answer section, in order.
    pub fn answer_addrs(&self) -> Vec<std::net::Ipv4Addr> {
        self.answers
            .iter()
            .filter_map(|rr| rr.rdata.as_a())
            .collect()
    }

    /// Follows the CNAME chain in the answer section starting from `name`,
    /// returning the final canonical name.
    pub fn canonical_name(&self, name: &DnsName) -> DnsName {
        let mut current = name.clone();
        // Bounded by the answer count; each step must consume one CNAME.
        for _ in 0..=self.answers.len() {
            let next = self.answers.iter().find_map(|rr| {
                if rr.name == current {
                    rr.rdata.as_cname().cloned()
                } else {
                    None
                }
            });
            match next {
                Some(n) => current = n,
                None => break,
            }
        }
        current
    }
}

/// Bounds-checked reader over a received message buffer.
///
/// `read_name` handles compression pointers with strict backward-only
/// targets and a jump bound, so hostile input cannot loop the decoder.
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    pub(crate) fn pos(&self) -> usize {
        self.pos
    }

    pub(crate) fn len(&self) -> usize {
        self.buf.len()
    }

    pub(crate) fn read_u8(&mut self, context: &'static str) -> Result<u8, WireError> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or(WireError::Truncated { context })?;
        self.pos += 1;
        Ok(b)
    }

    pub(crate) fn read_u16(&mut self, context: &'static str) -> Result<u16, WireError> {
        let b = self.take(2, context)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    pub(crate) fn read_u32(&mut self, context: &'static str) -> Result<u32, WireError> {
        let b = self.take(4, context)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(WireError::Truncated { context })?;
        if end > self.buf.len() {
            return Err(WireError::Truncated { context });
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads a possibly-compressed name starting at the cursor.
    ///
    /// Decoding is zero-copy until the final conversion: the borrowed
    /// [`NameRef`] validates structure and alphabet in place, and
    /// [`NameRef::to_name`] then allocates exactly once per label.
    // detlint: hot
    pub(crate) fn read_name(&mut self) -> Result<DnsName, WireError> {
        let (name, consumed) = NameRef::parse(self.buf, self.pos)?;
        self.pos += consumed;
        Ok(name.to_name())
    }

    /// Reads a possibly-compressed name without converting to owned form.
    // detlint: hot
    pub(crate) fn read_name_ref(&mut self) -> Result<NameRef<'a>, WireError> {
        let (name, consumed) = NameRef::parse(self.buf, self.pos)?;
        self.pos += consumed;
        Ok(name)
    }
}

/// A cheap, allocation-free view over an encoded message: fixed header
/// fields plus the first question, parsed on demand straight out of the
/// buffer. Receive hot paths use this to reject mismatched or irrelevant
/// datagrams (wrong transaction id, wrong qname) before paying for a full
/// [`Message::decode`].
pub struct MessageView<'a> {
    buf: &'a [u8],
}

impl<'a> MessageView<'a> {
    /// Wraps `buf` if it is at least a full 12-byte header.
    // detlint: hot
    pub fn new(buf: &'a [u8]) -> Result<Self, WireError> {
        if buf.len() < 12 {
            return Err(WireError::Truncated { context: "header" });
        }
        Ok(MessageView { buf })
    }

    /// Transaction id (first header word).
    pub fn id(&self) -> u16 {
        u16::from_be_bytes([self.buf[0], self.buf[1]])
    }

    /// QR bit: `true` when the message claims to be a response.
    pub fn is_response(&self) -> bool {
        self.buf[2] & 0x80 != 0
    }

    /// Question-section entry count.
    pub fn qdcount(&self) -> u16 {
        u16::from_be_bytes([self.buf[4], self.buf[5]])
    }

    /// Operation code from the header flags word.
    pub fn opcode(&self) -> Opcode {
        Opcode::from_code((self.buf[2] >> 3) & 0x0F)
    }

    /// Response code from the header flags word.
    pub fn rcode(&self) -> Rcode {
        Rcode::from_code(self.buf[3] & 0x0F)
    }

    /// RD bit: `true` when the querier asked for recursion.
    pub fn recursion_desired(&self) -> bool {
        self.buf[2] & 0x01 != 0
    }

    /// Classifies this message as a servable query — the single shared
    /// precheck every serving front end runs before paying for a full
    /// [`Message::decode`]. Exactly one place decides which malformed
    /// shapes earn which RFC rcode, so the wire server, the ground-truth
    /// replayer, and the chaos driver can never disagree.
    // detlint: hot
    pub fn precheck(&self) -> Precheck {
        if self.is_response() {
            return Precheck::Response;
        }
        if self.opcode() != Opcode::Query {
            return Precheck::NonQuery;
        }
        if self.qdcount() != 1 {
            return Precheck::BadQdCount;
        }
        match self.question() {
            Ok(Some(_)) => Precheck::Query,
            // qdcount said 1 but no question could be parsed out.
            Ok(None) | Err(_) => Precheck::Unparseable,
        }
    }

    /// Borrowed first question: `(qname, qtype, qclass)`, or `None` when
    /// the question section is empty.
    // detlint: hot
    pub fn question(&self) -> Result<Option<(NameRef<'a>, RecordType, RecordClass)>, WireError> {
        if self.qdcount() == 0 {
            return Ok(None);
        }
        let mut cur = Cursor {
            buf: self.buf,
            pos: 12,
        };
        let qname = cur.read_name_ref()?;
        let qtype = RecordType::from_code(cur.read_u16("qtype")?);
        let qclass = RecordClass::from_code(cur.read_u16("qclass")?);
        Ok(Some((qname, qtype, qclass)))
    }
}

/// Verdict of [`MessageView::precheck`]: what a serving front end owes the
/// sender per RFC 1035 §4.1.1 before any resolver work happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precheck {
    /// A well-formed single-question QUERY; safe to hand to a resolver.
    Query,
    /// QR bit set: a stray/reflected response. Never answer (answering
    /// responses is how reflection loops start) — drop.
    Response,
    /// Unsupported opcode (IQUERY/STATUS/other) — answer NOTIMP.
    NonQuery,
    /// QDCOUNT is not exactly 1 — answer FORMERR.
    BadQdCount,
    /// The question section cannot be parsed — answer FORMERR.
    Unparseable,
}

impl Precheck {
    /// The rcode owed on the wire, or `None` for verdicts that must not
    /// be answered at all ([`Precheck::Response`]) or that proceed to
    /// resolution ([`Precheck::Query`]).
    pub fn reject_rcode(self) -> Option<Rcode> {
        match self {
            Precheck::Query | Precheck::Response => None,
            Precheck::NonQuery => Some(Rcode::NotImp),
            Precheck::BadQdCount | Precheck::Unparseable => Some(Rcode::FormErr),
        }
    }
}

/// Append-only writer that performs name compression against all names
/// already emitted into the message buffer.
pub(crate) struct NameEncoder<'a> {
    out: &'a mut Vec<u8>,
    /// Map from name suffix (as label vectors) to the buffer offset where
    /// that suffix was first written uncompressed.
    offsets: &'a mut HashMap<Vec<Vec<u8>>, usize>,
}

impl<'a> NameEncoder<'a> {
    pub(crate) fn new(out: &'a mut Vec<u8>, offsets: &'a mut HashMap<Vec<Vec<u8>>, usize>) -> Self {
        NameEncoder { out, offsets }
    }

    pub(crate) fn pos(&self) -> usize {
        self.out.len()
    }

    pub(crate) fn put_bytes(&mut self, bytes: &[u8]) {
        self.out.extend_from_slice(bytes);
    }

    pub(crate) fn put_u16(&mut self, v: u16) {
        self.out.extend_from_slice(&v.to_be_bytes());
    }

    pub(crate) fn put_u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a placeholder u16 and returns its offset for later patching.
    pub(crate) fn reserve_u16(&mut self) -> usize {
        let pos = self.out.len();
        self.out.extend_from_slice(&[0, 0]);
        pos
    }

    pub(crate) fn patch_u16(&mut self, pos: usize, v: u16) {
        self.out[pos..pos + 2].copy_from_slice(&v.to_be_bytes());
    }

    /// Writes `name`, compressing against previously written suffixes and
    /// registering newly written suffixes for future reuse.
    pub(crate) fn put_name(&mut self, name: &DnsName) -> Result<(), WireError> {
        let labels = name.labels();
        for i in 0..labels.len() {
            let suffix: Vec<Vec<u8>> = labels[i..].to_vec();
            if let Some(&target) = self.offsets.get(&suffix) {
                if target <= MAX_POINTER_TARGET {
                    let pointer = 0xC000u16 | target as u16;
                    self.put_u16(pointer);
                    return Ok(());
                }
            }
            let here = self.out.len();
            if here <= MAX_POINTER_TARGET {
                self.offsets.insert(suffix, here);
            }
            let label = &labels[i];
            self.out.push(label.len() as u8);
            self.out.extend_from_slice(label);
        }
        self.out.push(0);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rdata::SoaData;
    use std::net::Ipv4Addr;

    fn name(s: &str) -> DnsName {
        DnsName::parse(s).unwrap()
    }

    fn sample_response() -> Message {
        let mut msg = Message::new(Header {
            id: 0xBEEF,
            opcode: Opcode::Query,
            flags: Flags {
                response: true,
                authoritative: true,
                recursion_desired: true,
                recursion_available: true,
                truncated: false,
            },
            rcode: Rcode::NoError,
        });
        msg.questions
            .push(Question::new(name("www.example.com"), RecordType::A));
        msg.answers.push(ResourceRecord::new(
            name("www.example.com"),
            30,
            RData::Cname(name("cdn.provider.net")),
        ));
        msg.answers.push(ResourceRecord::new(
            name("cdn.provider.net"),
            20,
            RData::A(Ipv4Addr::new(192, 0, 2, 10)),
        ));
        msg.authorities.push(ResourceRecord::new(
            name("provider.net"),
            3600,
            RData::Ns(name("ns1.provider.net")),
        ));
        msg.additionals.push(ResourceRecord::new(
            name("ns1.provider.net"),
            3600,
            RData::A(Ipv4Addr::new(192, 0, 2, 53)),
        ));
        msg
    }

    #[test]
    fn encode_decode_roundtrip() {
        let msg = sample_response();
        let bytes = msg.encode().unwrap();
        let decoded = Message::decode(&bytes).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn compression_shrinks_repeated_suffixes() {
        let msg = sample_response();
        let bytes = msg.encode().unwrap();
        // Uncompressed, the three *.provider.net names cost 18 bytes each;
        // compression must beat the naive sum of wire lengths.
        let naive: usize = 12
            + msg
                .questions
                .iter()
                .map(|q| q.qname.wire_len() + 4)
                .sum::<usize>()
            + msg
                .answers
                .iter()
                .chain(&msg.authorities)
                .chain(&msg.additionals)
                .map(|rr| rr.name.wire_len() + 10 + 18)
                .sum::<usize>();
        assert!(bytes.len() < naive, "{} !< {}", bytes.len(), naive);
    }

    #[test]
    fn header_flags_roundtrip() {
        for response in [false, true] {
            for aa in [false, true] {
                for tc in [false, true] {
                    for rd in [false, true] {
                        for ra in [false, true] {
                            let mut msg = Message::new(Header {
                                id: 7,
                                opcode: Opcode::Status,
                                flags: Flags {
                                    response,
                                    authoritative: aa,
                                    truncated: tc,
                                    recursion_desired: rd,
                                    recursion_available: ra,
                                },
                                rcode: Rcode::Refused,
                            });
                            msg.questions
                                .push(Question::new(name("a.b"), RecordType::Txt));
                            let decoded = Message::decode(&msg.encode().unwrap()).unwrap();
                            assert_eq!(decoded.header, msg.header);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn soa_roundtrip() {
        let mut msg = Message::new(Header::query(1));
        msg.authorities.push(ResourceRecord::new(
            name("example.com"),
            300,
            RData::Soa(SoaData {
                mname: name("ns1.example.com"),
                rname: name("hostmaster.example.com"),
                serial: 20_141_105,
                refresh: 7200,
                retry: 900,
                expire: 1209600,
                minimum: 60,
            }),
        ));
        let decoded = Message::decode(&msg.encode().unwrap()).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn txt_roundtrip_multiple_strings() {
        let mut msg = Message::new(Header::query(2));
        msg.answers.push(ResourceRecord::new(
            name("whoami.probe.example"),
            0,
            RData::Txt(vec!["resolver=10.1.2.3".into(), "t=99".into()]),
        ));
        let decoded = Message::decode(&msg.encode().unwrap()).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn empty_message_roundtrip() {
        let msg = Message::new(Header::query(0));
        let bytes = msg.encode().unwrap();
        assert_eq!(bytes.len(), 12);
        assert_eq!(Message::decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn rejects_trailing_garbage() {
        let msg = Message::new(Header::query(0));
        let mut bytes = msg.encode().unwrap();
        bytes.push(0xFF);
        assert_eq!(
            Message::decode(&bytes).unwrap_err(),
            WireError::TrailingBytes(1)
        );
    }

    #[test]
    fn rejects_truncated_header() {
        assert!(matches!(
            Message::decode(&[0, 1, 2]).unwrap_err(),
            WireError::Truncated { .. }
        ));
    }

    #[test]
    fn rejects_forward_pointer() {
        // Header claiming one question, then a name that points forward.
        let mut bytes = vec![0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0];
        bytes.extend_from_slice(&[0xC0, 0x20]); // pointer to offset 32 (forward)
        bytes.extend_from_slice(&[0, 1, 0, 1]);
        assert!(matches!(
            Message::decode(&bytes).unwrap_err(),
            WireError::BadCompressionPointer { .. }
        ));
    }

    #[test]
    fn rejects_reserved_label_bits() {
        let mut bytes = vec![0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0];
        bytes.push(0x80); // reserved 0b10 prefix
        bytes.extend_from_slice(&[0, 1, 0, 1]);
        assert!(matches!(
            Message::decode(&bytes).unwrap_err(),
            WireError::ReservedLabelType(_)
        ));
    }

    #[test]
    fn rejects_rdlength_mismatch() {
        // A record with declared rdlen 5 but A rdata consumes 4.
        let mut msg = Message::new(Header::query(3));
        msg.answers.push(ResourceRecord::new(
            name("x.y"),
            1,
            RData::A(Ipv4Addr::new(1, 2, 3, 4)),
        ));
        let mut bytes = msg.encode().unwrap();
        // Patch RDLENGTH (last 6 bytes are rdlen(2)+rdata(4)).
        let n = bytes.len();
        bytes[n - 6..n - 4].copy_from_slice(&5u16.to_be_bytes());
        bytes.push(9); // supply the extra byte so rdata isn't truncated
        assert!(matches!(
            Message::decode(&bytes).unwrap_err(),
            WireError::RdataLengthMismatch { .. } | WireError::TrailingBytes(_)
        ));
    }

    #[test]
    fn canonical_name_follows_cname_chain() {
        let msg = sample_response();
        let canon = msg.canonical_name(&name("www.example.com"));
        assert_eq!(canon, name("cdn.provider.net"));
        assert_eq!(msg.answer_addrs(), vec![Ipv4Addr::new(192, 0, 2, 10)]);
    }

    #[test]
    fn canonical_name_tolerates_cname_loop() {
        let mut msg = Message::new(Header::query(4));
        msg.answers.push(ResourceRecord::new(
            name("a.test"),
            1,
            RData::Cname(name("b.test")),
        ));
        msg.answers.push(ResourceRecord::new(
            name("b.test"),
            1,
            RData::Cname(name("a.test")),
        ));
        // Must terminate; the exact endpoint is unspecified but in the loop.
        let canon = msg.canonical_name(&name("a.test"));
        assert!(canon == name("a.test") || canon == name("b.test"));
    }

    #[test]
    fn unknown_record_type_is_preserved() {
        let mut msg = Message::new(Header::query(5));
        msg.answers.push(ResourceRecord::new(
            name("odd.example"),
            60,
            RData::Unknown(4242, vec![1, 2, 3, 4, 5]),
        ));
        let decoded = Message::decode(&msg.encode().unwrap()).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn pointer_jump_bound_stops_adversarial_chains() {
        // Build a message body with a long chain of pointers, each pointing
        // one step backward to another pointer.
        let mut bytes = vec![0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0];
        let base = bytes.len();
        // First entry: a real label "x" then root.
        bytes.extend_from_slice(&[1, b'x', 0]);
        // 200 pointers, each pointing at the previous pointer (or the label).
        for i in 0..200usize {
            let target = if i == 0 { base } else { base + 3 + 2 * (i - 1) };
            bytes.extend_from_slice(&[0xC0 | ((target >> 8) as u8), target as u8]);
        }
        // The question name starts at the last pointer.
        let qname_ptr = base + 3 + 2 * 199;
        let mut msg = bytes[..12].to_vec();
        msg.extend_from_slice(&bytes[12..]);
        // Construct: question name = pointer to the chain end.
        msg.extend_from_slice(&[0xC0 | ((qname_ptr >> 8) as u8), qname_ptr as u8]);
        msg.extend_from_slice(&[0, 1, 0, 1]);
        let result = Message::decode(&msg);
        // Either rejected as a loop or as trailing bytes (the chain region
        // itself is not valid message structure); it must not hang or panic.
        assert!(result.is_err());
    }

    fn query_wire(id: u16, qname: &str) -> Vec<u8> {
        let mut msg = Message::new(Header::query(id));
        msg.questions
            .push(Question::new(name(qname), RecordType::A));
        msg.encode().unwrap()
    }

    #[test]
    fn precheck_accepts_a_single_question_query() {
        let wire = query_wire(9, "m.example.com");
        let view = MessageView::new(&wire).unwrap();
        assert_eq!(view.precheck(), Precheck::Query);
        assert_eq!(view.precheck().reject_rcode(), None);
    }

    #[test]
    fn precheck_drops_stray_responses_without_an_rcode() {
        let mut wire = query_wire(9, "m.example.com");
        wire[2] |= 0x80; // set QR
        let view = MessageView::new(&wire).unwrap();
        assert_eq!(view.precheck(), Precheck::Response);
        assert_eq!(view.precheck().reject_rcode(), None);
    }

    #[test]
    fn precheck_answers_notimp_for_unsupported_opcodes() {
        for opcode in [Opcode::IQuery, Opcode::Status, Opcode::Other(7)] {
            let mut wire = query_wire(9, "m.example.com");
            wire[2] = (wire[2] & !0x78) | (opcode.code() << 3);
            let view = MessageView::new(&wire).unwrap();
            assert_eq!(view.precheck(), Precheck::NonQuery, "{opcode:?}");
            assert_eq!(view.precheck().reject_rcode(), Some(Rcode::NotImp));
        }
    }

    #[test]
    fn precheck_answers_formerr_for_bad_qdcount() {
        // QDCOUNT = 0: no question at all.
        let empty = Message::new(Header::query(3)).encode().unwrap();
        let view = MessageView::new(&empty).unwrap();
        assert_eq!(view.precheck(), Precheck::BadQdCount);
        assert_eq!(view.precheck().reject_rcode(), Some(Rcode::FormErr));

        // QDCOUNT = 2: multi-question queries are never serviced.
        let mut msg = Message::new(Header::query(4));
        msg.questions
            .push(Question::new(name("a.example"), RecordType::A));
        msg.questions
            .push(Question::new(name("b.example"), RecordType::A));
        let wire = msg.encode().unwrap();
        let view = MessageView::new(&wire).unwrap();
        assert_eq!(view.precheck(), Precheck::BadQdCount);
        assert_eq!(view.precheck().reject_rcode(), Some(Rcode::FormErr));
    }

    #[test]
    fn precheck_answers_formerr_for_unparseable_questions() {
        // Claims one question but the name bytes are a truncated label.
        let mut wire = vec![0, 5, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0];
        wire.extend_from_slice(&[63, b'x']); // label says 63 bytes, has 1
        let view = MessageView::new(&wire).unwrap();
        assert_eq!(view.precheck(), Precheck::Unparseable);
        assert_eq!(view.precheck().reject_rcode(), Some(Rcode::FormErr));
    }

    #[test]
    fn view_header_accessors_match_full_decode() {
        let mut msg = Message::new(Header {
            id: 0x0102,
            opcode: Opcode::Status,
            flags: Flags {
                response: false,
                authoritative: false,
                truncated: false,
                recursion_desired: true,
                recursion_available: false,
            },
            rcode: Rcode::Refused,
        });
        msg.questions
            .push(Question::new(name("x.example"), RecordType::A));
        let wire = msg.encode().unwrap();
        let view = MessageView::new(&wire).unwrap();
        assert_eq!(view.opcode(), Opcode::Status);
        assert_eq!(view.rcode(), Rcode::Refused);
        assert!(view.recursion_desired());
    }
}
