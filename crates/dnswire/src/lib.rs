#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `dnswire` — a from-scratch implementation of the DNS wire format (RFC 1035,
//! with the EDNS0 OPT pseudo-record from RFC 6891).
//!
//! This crate is one of the substrates of the *Behind the Curtain* (IMC 2014)
//! reproduction: the measurement library issues real DNS messages end-to-end
//! through the simulated network, so we need a complete, robust codec:
//!
//! * [`name::DnsName`] — validated domain names with case-insensitive
//!   comparison semantics.
//! * [`nameref::NameRef`] — the zero-copy decode-side counterpart: a
//!   borrowed, validated view of a wire name that parses and compares
//!   straight out of the message buffer, converting to an owned
//!   [`name::DnsName`] only at cache/record boundaries.
//!   [`message::MessageView`] builds on it for allocation-free header and
//!   first-question peeks on receive hot paths.
//! * [`message::Message`] — full message encode/decode including name
//!   compression pointers (encode-side suffix reuse, decode-side loop and
//!   bounds protection).
//! * [`rdata::RData`] — typed record data for A, AAAA, NS, CNAME, SOA, PTR,
//!   TXT, MX and OPT records.
//! * [`builder`] — ergonomic query/response construction.
//!
//! The codec never panics on untrusted input: all decode paths return
//! [`WireError`].
//!
//! # Example
//!
//! ```
//! use dnswire::builder::QueryBuilder;
//! use dnswire::message::Message;
//! use dnswire::rdata::RecordType;
//!
//! let query = QueryBuilder::new(0x1234, "www.example.com", RecordType::A)
//!     .recursion_desired(true)
//!     .build()
//!     .unwrap();
//! let bytes = query.encode().unwrap();
//! let decoded = Message::decode(&bytes).unwrap();
//! assert_eq!(decoded.header.id, 0x1234);
//! assert_eq!(decoded.questions[0].qname.to_string(), "www.example.com");
//! ```

pub mod builder;
pub mod edns;
pub mod error;
pub mod message;
pub mod name;
pub mod nameref;
pub mod rdata;

pub use edns::EdnsOption;
pub use error::WireError;
pub use message::{
    Flags, Header, Message, MessageView, Opcode, Precheck, Question, Rcode, ResourceRecord,
};
pub use name::DnsName;
pub use nameref::NameRef;
pub use rdata::{RData, RecordClass, RecordType, SoaData};
