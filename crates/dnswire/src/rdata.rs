//! Record types, classes, and typed RDATA.

use crate::error::WireError;
use crate::message::{Cursor, NameEncoder};
use crate::name::DnsName;
use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

/// DNS record types modeled by this implementation.
///
/// Unknown type codes survive decode/encode as [`RecordType::Unknown`], so
/// the codec is lossless for records it does not interpret.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RecordType {
    /// IPv4 host address.
    A,
    /// Authoritative name server.
    Ns,
    /// Canonical name (alias).
    Cname,
    /// Start of authority.
    Soa,
    /// Domain name pointer (reverse lookups).
    Ptr,
    /// Mail exchange.
    Mx,
    /// Free-form text; used by our whoami probes.
    Txt,
    /// IPv6 host address.
    Aaaa,
    /// EDNS0 pseudo-record.
    Opt,
    /// Any other type code, preserved opaquely.
    Unknown(u16),
}

impl RecordType {
    /// The 16-bit wire code.
    pub fn code(self) -> u16 {
        match self {
            RecordType::A => 1,
            RecordType::Ns => 2,
            RecordType::Cname => 5,
            RecordType::Soa => 6,
            RecordType::Ptr => 12,
            RecordType::Mx => 15,
            RecordType::Txt => 16,
            RecordType::Aaaa => 28,
            RecordType::Opt => 41,
            RecordType::Unknown(c) => c,
        }
    }

    /// Maps a wire code to a type, preserving unknown codes.
    pub fn from_code(code: u16) -> Self {
        match code {
            1 => RecordType::A,
            2 => RecordType::Ns,
            5 => RecordType::Cname,
            6 => RecordType::Soa,
            12 => RecordType::Ptr,
            15 => RecordType::Mx,
            16 => RecordType::Txt,
            28 => RecordType::Aaaa,
            41 => RecordType::Opt,
            c => RecordType::Unknown(c),
        }
    }
}

impl fmt::Display for RecordType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordType::A => write!(f, "A"),
            RecordType::Ns => write!(f, "NS"),
            RecordType::Cname => write!(f, "CNAME"),
            RecordType::Soa => write!(f, "SOA"),
            RecordType::Ptr => write!(f, "PTR"),
            RecordType::Mx => write!(f, "MX"),
            RecordType::Txt => write!(f, "TXT"),
            RecordType::Aaaa => write!(f, "AAAA"),
            RecordType::Opt => write!(f, "OPT"),
            RecordType::Unknown(c) => write!(f, "TYPE{c}"),
        }
    }
}

/// DNS record classes. Only `IN` is used by the simulation but the codec is
/// faithful to the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecordClass {
    /// The Internet class.
    In,
    /// Any other class code, preserved opaquely.
    Unknown(u16),
}

impl RecordClass {
    /// The 16-bit wire code.
    pub fn code(self) -> u16 {
        match self {
            RecordClass::In => 1,
            RecordClass::Unknown(c) => c,
        }
    }

    /// Maps a wire code to a class.
    pub fn from_code(code: u16) -> Self {
        match code {
            1 => RecordClass::In,
            c => RecordClass::Unknown(c),
        }
    }
}

/// SOA record contents (RFC 1035 §3.3.13).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SoaData {
    /// Primary name server for the zone.
    pub mname: DnsName,
    /// Mailbox of the person responsible for the zone.
    pub rname: DnsName,
    /// Zone serial number.
    pub serial: u32,
    /// Refresh interval in seconds.
    pub refresh: u32,
    /// Retry interval in seconds.
    pub retry: u32,
    /// Expiry limit in seconds.
    pub expire: u32,
    /// Minimum/negative-caching TTL in seconds.
    pub minimum: u32,
}

/// Typed record data.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RData {
    /// IPv4 address.
    A(Ipv4Addr),
    /// IPv6 address.
    Aaaa(Ipv6Addr),
    /// Name server host.
    Ns(DnsName),
    /// Alias target.
    Cname(DnsName),
    /// Reverse pointer target.
    Ptr(DnsName),
    /// Mail exchange: preference then host.
    Mx(u16, DnsName),
    /// Text strings (each at most 255 bytes on the wire).
    Txt(Vec<String>),
    /// Start of authority.
    Soa(SoaData),
    /// EDNS0 options, stored opaquely.
    Opt(Vec<u8>),
    /// Unknown record data, stored opaquely with its type code.
    Unknown(u16, Vec<u8>),
}

impl RData {
    /// The record type this data belongs to.
    pub fn record_type(&self) -> RecordType {
        match self {
            RData::A(_) => RecordType::A,
            RData::Aaaa(_) => RecordType::Aaaa,
            RData::Ns(_) => RecordType::Ns,
            RData::Cname(_) => RecordType::Cname,
            RData::Ptr(_) => RecordType::Ptr,
            RData::Mx(..) => RecordType::Mx,
            RData::Txt(_) => RecordType::Txt,
            RData::Soa(_) => RecordType::Soa,
            RData::Opt(_) => RecordType::Opt,
            RData::Unknown(code, _) => RecordType::Unknown(*code),
        }
    }

    /// Returns the IPv4 address for A records, `None` otherwise.
    pub fn as_a(&self) -> Option<Ipv4Addr> {
        match self {
            RData::A(ip) => Some(*ip),
            _ => None,
        }
    }

    /// Returns the CNAME target, `None` otherwise.
    pub fn as_cname(&self) -> Option<&DnsName> {
        match self {
            RData::Cname(n) => Some(n),
            _ => None,
        }
    }

    /// Encodes this RDATA (without the RDLENGTH prefix) into `enc`.
    ///
    /// Names inside RDATA of the classic types (NS, CNAME, PTR, SOA, MX) are
    /// eligible for compression per RFC 3597 §4 ("well-known" types only).
    pub(crate) fn encode(&self, enc: &mut NameEncoder<'_>) -> Result<(), WireError> {
        match self {
            RData::A(ip) => enc.put_bytes(&ip.octets()),
            RData::Aaaa(ip) => enc.put_bytes(&ip.octets()),
            RData::Ns(n) | RData::Cname(n) | RData::Ptr(n) => enc.put_name(n)?,
            RData::Mx(pref, host) => {
                enc.put_u16(*pref);
                enc.put_name(host)?;
            }
            RData::Txt(strings) => {
                if strings.is_empty() {
                    // RFC 1035 requires at least one character-string.
                    enc.put_bytes(&[0]);
                }
                for s in strings {
                    let bytes = s.as_bytes();
                    if bytes.len() > 255 {
                        return Err(WireError::BadRdata("txt string over 255 bytes"));
                    }
                    enc.put_bytes(&[bytes.len() as u8]);
                    enc.put_bytes(bytes);
                }
            }
            RData::Soa(soa) => {
                enc.put_name(&soa.mname)?;
                enc.put_name(&soa.rname)?;
                enc.put_u32(soa.serial);
                enc.put_u32(soa.refresh);
                enc.put_u32(soa.retry);
                enc.put_u32(soa.expire);
                enc.put_u32(soa.minimum);
            }
            RData::Opt(bytes) | RData::Unknown(_, bytes) => enc.put_bytes(bytes),
        }
        Ok(())
    }

    /// Decodes RDATA of `rtype` from exactly `rdlen` bytes at the cursor.
    pub(crate) fn decode(
        cur: &mut Cursor<'_>,
        rtype: RecordType,
        rdlen: usize,
    ) -> Result<RData, WireError> {
        let start = cur.pos();
        let end = start
            .checked_add(rdlen)
            .ok_or(WireError::Truncated { context: "rdata" })?;
        if end > cur.len() {
            return Err(WireError::Truncated { context: "rdata" });
        }
        let data = match rtype {
            RecordType::A => {
                let o = cur.take(4, "A rdata")?;
                RData::A(Ipv4Addr::new(o[0], o[1], o[2], o[3]))
            }
            RecordType::Aaaa => {
                let o = cur.take(16, "AAAA rdata")?;
                let mut b = [0u8; 16];
                b.copy_from_slice(o);
                RData::Aaaa(Ipv6Addr::from(b))
            }
            RecordType::Ns => RData::Ns(cur.read_name()?),
            RecordType::Cname => RData::Cname(cur.read_name()?),
            RecordType::Ptr => RData::Ptr(cur.read_name()?),
            RecordType::Mx => {
                let pref = cur.read_u16("MX preference")?;
                RData::Mx(pref, cur.read_name()?)
            }
            RecordType::Txt => {
                let mut strings = Vec::new();
                while cur.pos() < end {
                    let len = cur.read_u8("TXT length")? as usize;
                    let bytes = cur.take(len, "TXT string")?;
                    strings.push(String::from_utf8_lossy(bytes).into_owned());
                }
                RData::Txt(strings)
            }
            RecordType::Soa => {
                let mname = cur.read_name()?;
                let rname = cur.read_name()?;
                RData::Soa(SoaData {
                    mname,
                    rname,
                    serial: cur.read_u32("SOA serial")?,
                    refresh: cur.read_u32("SOA refresh")?,
                    retry: cur.read_u32("SOA retry")?,
                    expire: cur.read_u32("SOA expire")?,
                    minimum: cur.read_u32("SOA minimum")?,
                })
            }
            RecordType::Opt => RData::Opt(cur.take(rdlen, "OPT rdata")?.to_vec()),
            RecordType::Unknown(code) => {
                RData::Unknown(code, cur.take(rdlen, "unknown rdata")?.to_vec())
            }
        };
        let consumed = cur.pos() - start;
        if consumed != rdlen {
            return Err(WireError::RdataLengthMismatch {
                declared: rdlen,
                consumed,
            });
        }
        Ok(data)
    }
}

impl fmt::Display for RData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RData::A(ip) => write!(f, "{ip}"),
            RData::Aaaa(ip) => write!(f, "{ip}"),
            RData::Ns(n) => write!(f, "{n}"),
            RData::Cname(n) => write!(f, "{n}"),
            RData::Ptr(n) => write!(f, "{n}"),
            RData::Mx(p, h) => write!(f, "{p} {h}"),
            RData::Txt(s) => write!(f, "{:?}", s),
            RData::Soa(s) => write!(
                f,
                "{} {} {} {} {} {} {}",
                s.mname, s.rname, s.serial, s.refresh, s.retry, s.expire, s.minimum
            ),
            RData::Opt(b) => write!(f, "OPT({} bytes)", b.len()),
            RData::Unknown(code, b) => write!(f, "TYPE{code}({} bytes)", b.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_codes_roundtrip() {
        for t in [
            RecordType::A,
            RecordType::Ns,
            RecordType::Cname,
            RecordType::Soa,
            RecordType::Ptr,
            RecordType::Mx,
            RecordType::Txt,
            RecordType::Aaaa,
            RecordType::Opt,
            RecordType::Unknown(9999),
        ] {
            assert_eq!(RecordType::from_code(t.code()), t);
        }
    }

    #[test]
    fn unknown_codes_are_preserved() {
        assert_eq!(RecordType::from_code(257), RecordType::Unknown(257));
        assert_eq!(RecordClass::from_code(3), RecordClass::Unknown(3));
        assert_eq!(RecordClass::from_code(1), RecordClass::In);
    }

    #[test]
    fn rdata_type_mapping() {
        assert_eq!(
            RData::A(Ipv4Addr::new(1, 2, 3, 4)).record_type(),
            RecordType::A
        );
        assert_eq!(RData::Txt(vec!["x".into()]).record_type(), RecordType::Txt);
        assert_eq!(RData::Unknown(300, vec![]).record_type().code(), 300);
    }

    #[test]
    fn accessors() {
        let a = RData::A(Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(a.as_a(), Some(Ipv4Addr::new(10, 0, 0, 1)));
        assert!(a.as_cname().is_none());
        let target = DnsName::parse("cdn.example.net").unwrap();
        let c = RData::Cname(target.clone());
        assert_eq!(c.as_cname(), Some(&target));
        assert!(c.as_a().is_none());
    }
}
