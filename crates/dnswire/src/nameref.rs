//! Zero-copy borrowed names over a received message buffer.
//!
//! [`NameRef`] is the decode-side counterpart of [`DnsName`]: it validates a
//! (possibly compressed) wire name in place and then iterates, compares and
//! hashes labels straight out of the message buffer. Nothing is allocated
//! until [`NameRef::to_name`] converts to an owned [`DnsName`] at a cache or
//! record boundary, and that conversion allocates exactly once per label —
//! parse-and-compare paths (response filtering, cache probes) never touch
//! the allocator at all.
//!
//! Comparison semantics are identical to [`DnsName`]: case-insensitive,
//! label-wise, leftmost label most significant — so a `NameRef` can stand in
//! for an owned name in any ordered lookup without changing the order.

use crate::error::WireError;
use crate::name::{DnsName, MAX_NAME_LEN};

/// Upper bound on pointer follows while decoding one name. A legal message
/// cannot chain more pointers than it has bytes / 2; this constant is far
/// above any real chain while still bounding adversarial input.
const MAX_POINTER_JUMPS: usize = 128;

/// A validated borrowed view of a wire-format name inside `buf`,
/// starting at `start`.
///
/// Construction via [`NameRef::parse`] performs the full structural and
/// byte-alphabet validation the owned decode path does (bounds, strictly
/// backward pointers, jump bound, 255-octet name cap, LDH+underscore
/// labels), so every accessor afterwards can walk the buffer infallibly.
#[derive(Clone, Copy)]
pub struct NameRef<'a> {
    buf: &'a [u8],
    start: usize,
}

impl<'a> NameRef<'a> {
    /// Validates the name starting at `buf[start]` and returns it together
    /// with the number of bytes it occupies *in sequence* (up to and
    /// including either the root octet or the first compression pointer) —
    /// i.e. how far a cursor should advance past it.
    ///
    /// Error variants and their precedence match the original eager
    /// decoder exactly: structural errors surface during the walk, label
    /// alphabet violations after it.
    // detlint: hot
    pub fn parse(buf: &'a [u8], start: usize) -> Result<(NameRef<'a>, usize), WireError> {
        let mut wire_len = 1usize; // terminating root octet
        let mut read_pos = start;
        // Bytes consumed in sequence; set when the first pointer is met.
        let mut consumed: Option<usize> = None;
        let mut jumps = 0usize;
        loop {
            let len_byte = *buf.get(read_pos).ok_or(WireError::Truncated {
                context: "name label",
            })?;
            match len_byte & 0xC0 {
                0x00 => {
                    read_pos += 1;
                    if len_byte == 0 {
                        break;
                    }
                    let len = len_byte as usize;
                    let end = read_pos + len;
                    if end > buf.len() {
                        return Err(WireError::Truncated {
                            context: "name label",
                        });
                    }
                    wire_len += len + 1;
                    if wire_len > MAX_NAME_LEN {
                        return Err(WireError::NameTooLong(wire_len));
                    }
                    read_pos = end;
                }
                0xC0 => {
                    let second = *buf.get(read_pos + 1).ok_or(WireError::Truncated {
                        context: "compression pointer",
                    })?;
                    let target = (((len_byte & 0x3F) as usize) << 8) | second as usize;
                    if target >= read_pos {
                        return Err(WireError::BadCompressionPointer {
                            target,
                            at: read_pos,
                        });
                    }
                    jumps += 1;
                    if jumps > MAX_POINTER_JUMPS {
                        return Err(WireError::CompressionLoop);
                    }
                    if consumed.is_none() {
                        consumed = Some(read_pos + 2 - start);
                    }
                    read_pos = target;
                }
                other => {
                    return Err(WireError::ReservedLabelType(other));
                }
            }
        }
        let name = NameRef { buf, start };
        // Alphabet validation after the structural walk, in label order —
        // the same order the eager decoder reported these errors in.
        for label in name.labels() {
            for &b in label {
                let ok = b.is_ascii_alphanumeric() || b == b'-' || b == b'_';
                if !ok {
                    return Err(WireError::InvalidLabelByte(b));
                }
            }
        }
        // Lazy: after a pointer jump `read_pos` may sit before `start`, but
        // then `consumed` was recorded at the jump.
        Ok((name, consumed.unwrap_or_else(|| read_pos - start)))
    }

    /// Iterator over the labels as raw (original-case) byte slices of the
    /// message buffer, leftmost first, following compression pointers.
    pub fn labels(&self) -> LabelIter<'a> {
        LabelIter {
            buf: self.buf,
            pos: self.start,
        }
    }

    /// Number of labels (the root has zero).
    pub fn label_count(&self) -> usize {
        self.labels().count()
    }

    /// `true` for the root name.
    pub fn is_root(&self) -> bool {
        self.labels().next().is_none()
    }

    /// Length in uncompressed wire format, including length octets and the
    /// terminating zero octet (same definition as [`DnsName::wire_len`]).
    pub fn wire_len(&self) -> usize {
        1 + self.labels().map(|l| l.len() + 1).sum::<usize>()
    }

    /// Converts to an owned, lowercase-normalized [`DnsName`]. This is the
    /// single allocation point of the decode path: one `Vec` per label plus
    /// the label list, no re-validation.
    pub fn to_name(&self) -> DnsName {
        let labels: Vec<Vec<u8>> = self
            .labels()
            .map(|l| l.iter().map(u8::to_ascii_lowercase).collect())
            .collect();
        DnsName::from_validated_wire_labels(labels)
    }
}

/// Iterator over a validated name's labels; never fails because
/// [`NameRef::parse`] proved the walk terminates in bounds.
pub struct LabelIter<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Iterator for LabelIter<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        loop {
            let len_byte = *self.buf.get(self.pos)?;
            match len_byte & 0xC0 {
                0x00 => {
                    if len_byte == 0 {
                        return None;
                    }
                    let start = self.pos + 1;
                    let end = start + len_byte as usize;
                    let label = self.buf.get(start..end)?;
                    self.pos = end;
                    return Some(label);
                }
                0xC0 => {
                    let second = *self.buf.get(self.pos + 1)?;
                    self.pos = (((len_byte & 0x3F) as usize) << 8) | second as usize;
                }
                _ => return None, // unreachable post-validation
            }
        }
    }
}

fn cmp_label_seqs<'a, A, B>(a: A, b: B) -> std::cmp::Ordering
where
    A: Iterator<Item = &'a [u8]>,
    B: Iterator<Item = &'a [u8]>,
{
    let mut a = a;
    let mut b = b;
    loop {
        match (a.next(), b.next()) {
            (None, None) => return std::cmp::Ordering::Equal,
            (None, Some(_)) => return std::cmp::Ordering::Less,
            (Some(_), None) => return std::cmp::Ordering::Greater,
            (Some(la), Some(lb)) => {
                let c = la
                    .iter()
                    .map(u8::to_ascii_lowercase)
                    .cmp(lb.iter().map(u8::to_ascii_lowercase));
                if c != std::cmp::Ordering::Equal {
                    return c;
                }
            }
        }
    }
}

impl PartialEq for NameRef<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for NameRef<'_> {}

impl PartialOrd for NameRef<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for NameRef<'_> {
    /// Total order identical to [`DnsName`]'s derived order on normalized
    /// labels: lexicographic over the label list, each label compared
    /// bytewise after ASCII-lowercasing.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        cmp_label_seqs(self.labels(), other.labels())
    }
}

impl PartialEq<DnsName> for NameRef<'_> {
    fn eq(&self, other: &DnsName) -> bool {
        // DnsName labels are already lowercase; ours are lowercased on the
        // fly by the shared comparator.
        cmp_label_seqs(self.labels(), other.labels().iter().map(Vec::as_slice))
            == std::cmp::Ordering::Equal
    }
}

impl PartialEq<NameRef<'_>> for DnsName {
    fn eq(&self, other: &NameRef<'_>) -> bool {
        other == self
    }
}

impl NameRef<'_> {
    /// Ordering against an owned name, consistent with converting first:
    /// `a.cmp_name(&b) == a.to_name().cmp(&b)`.
    pub fn cmp_name(&self, other: &DnsName) -> std::cmp::Ordering {
        cmp_label_seqs(self.labels(), other.labels().iter().map(Vec::as_slice))
    }
}

impl std::fmt::Display for NameRef<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for label in self.labels() {
            if !first {
                write!(f, ".")?;
            }
            first = false;
            for &b in label {
                write!(f, "{}", b.to_ascii_lowercase() as char)?;
            }
        }
        if first {
            write!(f, ".")?;
        }
        Ok(())
    }
}

impl std::fmt::Debug for NameRef<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NameRef({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Encodes labels + root, no compression.
    fn wire(labels: &[&str]) -> Vec<u8> {
        let mut out = Vec::new();
        for l in labels {
            out.push(l.len() as u8);
            out.extend_from_slice(l.as_bytes());
        }
        out.push(0);
        out
    }

    #[test]
    fn parse_plain_name() {
        let buf = wire(&["WWW", "Example", "com"]);
        let (name, consumed) = NameRef::parse(&buf, 0).unwrap();
        assert_eq!(consumed, buf.len());
        assert_eq!(name.label_count(), 3);
        assert_eq!(name.to_string(), "www.example.com");
        assert_eq!(name.to_name(), DnsName::parse("www.example.com").unwrap());
        assert_eq!(name.wire_len(), buf.len());
    }

    #[test]
    fn parse_root() {
        let buf = vec![0u8];
        let (name, consumed) = NameRef::parse(&buf, 0).unwrap();
        assert_eq!(consumed, 1);
        assert!(name.is_root());
        assert_eq!(name.to_name(), DnsName::root());
        assert_eq!(name.to_string(), ".");
    }

    #[test]
    fn parse_follows_backward_pointer() {
        // "example.com" at 0, then "www" + pointer to 0 at offset 13.
        let mut buf = wire(&["example", "com"]);
        let target = 0u16;
        let at = buf.len();
        buf.push(3);
        buf.extend_from_slice(b"www");
        buf.extend_from_slice(&(0xC000 | target).to_be_bytes());
        let (name, consumed) = NameRef::parse(&buf, at).unwrap();
        assert_eq!(consumed, 6); // 1 + 3 + 2-byte pointer
        assert_eq!(name.to_string(), "www.example.com");
    }

    #[test]
    fn rejects_forward_pointer_and_self_pointer() {
        // Pointer at offset 0 referencing offset 0 (>= its own position).
        let buf = vec![0xC0, 0x00];
        assert!(matches!(
            NameRef::parse(&buf, 0).unwrap_err(),
            WireError::BadCompressionPointer { target: 0, at: 0 }
        ));
        // Forward pointer: label then pointer to beyond itself.
        let mut fwd = wire(&["a"]);
        fwd.pop(); // drop root
        let at = fwd.len();
        fwd.extend_from_slice(&(0xC000u16 | 40).to_be_bytes());
        assert!(matches!(
            NameRef::parse(&fwd, 0).unwrap_err(),
            WireError::BadCompressionPointer { target: 40, at } if at == at
        ));
    }

    #[test]
    fn comparisons_are_case_insensitive_and_match_owned_order() {
        let pairs = [
            (vec!["CDN", "Example", "net"], vec!["cdn", "example", "NET"]),
            (vec!["a", "b"], vec!["a", "c"]),
            (vec!["a"], vec!["a", "b"]),
            (vec!["zz"], vec!["aa", "bb"]),
        ];
        for (la, lb) in pairs {
            let ba = wire(&la.iter().map(|s| *s).collect::<Vec<_>>());
            let bb = wire(&lb.iter().map(|s| *s).collect::<Vec<_>>());
            let (ra, _) = NameRef::parse(&ba, 0).unwrap();
            let (rb, _) = NameRef::parse(&bb, 0).unwrap();
            let oa = ra.to_name();
            let ob = rb.to_name();
            assert_eq!(ra.cmp(&rb), oa.cmp(&ob), "{oa} vs {ob}");
            assert_eq!(ra == rb, oa == ob);
            assert_eq!(ra.cmp_name(&ob), oa.cmp(&ob));
            assert_eq!(ra == ob, oa == ob);
        }
    }

    #[test]
    fn invalid_label_byte_reported_after_structure() {
        let buf = wire(&["bad!"]);
        assert!(matches!(
            NameRef::parse(&buf, 0).unwrap_err(),
            WireError::InvalidLabelByte(b'!')
        ));
    }
}
