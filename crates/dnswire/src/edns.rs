//! EDNS0 (RFC 6891) options, including the Client Subnet option
//! (RFC 7871) — the mechanism the paper's conclusion points toward for
//! fixing resolver-based mislocalization ("we have started to explore
//! alternative approaches for improving CDN performance through better
//! client localization", §9).

use crate::error::WireError;
use std::net::Ipv4Addr;

/// EDNS option code for Client Subnet.
pub const OPTION_CLIENT_SUBNET: u16 = 8;
/// Address family code for IPv4 in ECS.
pub const ECS_FAMILY_IPV4: u16 = 1;

/// A parsed EDNS option.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EdnsOption {
    /// RFC 7871 Client Subnet (IPv4 only; this simulation is v4-only).
    ClientSubnet {
        /// Prefix length the sender vouches for.
        source_prefix_len: u8,
        /// Prefix length the responder used (0 in queries).
        scope_prefix_len: u8,
        /// The (truncated) client address.
        addr: Ipv4Addr,
    },
    /// Any other option, preserved opaquely.
    Unknown {
        /// Option code.
        code: u16,
        /// Raw option payload.
        data: Vec<u8>,
    },
}

impl EdnsOption {
    /// A query-side ECS option for `addr/prefix_len`.
    pub fn client_subnet(addr: Ipv4Addr, prefix_len: u8) -> Self {
        EdnsOption::ClientSubnet {
            source_prefix_len: prefix_len.min(32),
            scope_prefix_len: 0,
            addr: mask_v4(addr, prefix_len),
        }
    }
}

fn mask_v4(addr: Ipv4Addr, len: u8) -> Ipv4Addr {
    let len = len.min(32);
    let mask: u32 = if len == 0 { 0 } else { u32::MAX << (32 - len) };
    Ipv4Addr::from(u32::from(addr) & mask)
}

/// Encodes a list of EDNS options into OPT RDATA bytes.
pub fn encode_options(options: &[EdnsOption]) -> Vec<u8> {
    let mut out = Vec::new();
    for opt in options {
        match opt {
            EdnsOption::ClientSubnet {
                source_prefix_len,
                scope_prefix_len,
                addr,
            } => {
                let addr_bytes = source_prefix_len.div_ceil(8) as usize;
                out.extend_from_slice(&OPTION_CLIENT_SUBNET.to_be_bytes());
                out.extend_from_slice(&((4 + addr_bytes) as u16).to_be_bytes());
                out.extend_from_slice(&ECS_FAMILY_IPV4.to_be_bytes());
                out.push(*source_prefix_len);
                out.push(*scope_prefix_len);
                out.extend_from_slice(&addr.octets()[..addr_bytes]);
            }
            EdnsOption::Unknown { code, data } => {
                out.extend_from_slice(&code.to_be_bytes());
                out.extend_from_slice(&(data.len() as u16).to_be_bytes());
                out.extend_from_slice(data);
            }
        }
    }
    out
}

/// Decodes OPT RDATA bytes into EDNS options.
pub fn decode_options(bytes: &[u8]) -> Result<Vec<EdnsOption>, WireError> {
    let mut options = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        if pos + 4 > bytes.len() {
            return Err(WireError::Truncated {
                context: "edns option header",
            });
        }
        let code = u16::from_be_bytes([bytes[pos], bytes[pos + 1]]);
        let len = u16::from_be_bytes([bytes[pos + 2], bytes[pos + 3]]) as usize;
        pos += 4;
        if pos + len > bytes.len() {
            return Err(WireError::Truncated {
                context: "edns option body",
            });
        }
        let body = &bytes[pos..pos + len];
        pos += len;
        if code == OPTION_CLIENT_SUBNET {
            if body.len() < 4 {
                return Err(WireError::BadRdata("ecs option too short"));
            }
            let family = u16::from_be_bytes([body[0], body[1]]);
            if family != ECS_FAMILY_IPV4 {
                options.push(EdnsOption::Unknown {
                    code,
                    data: body.to_vec(),
                });
                continue;
            }
            let source_prefix_len = body[2];
            let scope_prefix_len = body[3];
            let addr_bytes = &body[4..];
            if addr_bytes.len() != source_prefix_len.div_ceil(8) as usize || addr_bytes.len() > 4 {
                return Err(WireError::BadRdata("ecs address length mismatch"));
            }
            let mut octets = [0u8; 4];
            octets[..addr_bytes.len()].copy_from_slice(addr_bytes);
            options.push(EdnsOption::ClientSubnet {
                source_prefix_len,
                scope_prefix_len,
                addr: Ipv4Addr::from(octets),
            });
        } else {
            options.push(EdnsOption::Unknown {
                code,
                data: body.to_vec(),
            });
        }
    }
    Ok(options)
}

/// Default EDNS0 UDP payload size our endpoints advertise.
pub const DEFAULT_UDP_PAYLOAD_SIZE: u16 = 4096;

/// Classic (pre-EDNS) UDP message limit (RFC 1035 §4.2.1).
pub const CLASSIC_UDP_LIMIT: usize = 512;

impl crate::message::Message {
    /// The EDNS0 UDP payload size advertised by this message's OPT record
    /// (the OPT's CLASS field, RFC 6891 §6.1.2), if any.
    pub fn edns_udp_size(&self) -> Option<u16> {
        self.additionals.iter().find_map(|rr| {
            if matches!(rr.rdata, crate::rdata::RData::Opt(_)) {
                Some(rr.class.code())
            } else {
                None
            }
        })
    }

    /// Adds (or keeps) an OPT record advertising `size` as the supported
    /// UDP payload size. Preserves existing OPT options (e.g. ECS).
    pub fn advertise_udp_size(&mut self, size: u16) {
        for rr in self.additionals.iter_mut() {
            if matches!(rr.rdata, crate::rdata::RData::Opt(_)) {
                rr.class = crate::rdata::RecordClass::from_code(size);
                return;
            }
        }
        let mut rr = crate::message::ResourceRecord::new(
            crate::name::DnsName::root(),
            0,
            crate::rdata::RData::Opt(Vec::new()),
        );
        rr.class = crate::rdata::RecordClass::from_code(size);
        self.additionals.push(rr);
    }

    /// Truncates this message for a UDP path limited to `limit` bytes:
    /// if the encoding exceeds the limit, all records are dropped and the
    /// TC bit is set, telling the client to retry with more capacity
    /// (RFC 1035 §6.2 semantics).
    pub fn truncate_for(&mut self, limit: usize) -> bool {
        let encoded = match self.encode() {
            Ok(b) => b,
            Err(_) => return false,
        };
        if encoded.len() <= limit {
            return false;
        }
        self.answers.clear();
        self.authorities.clear();
        self.additionals.clear();
        self.header.flags.truncated = true;
        true
    }

    /// The ECS option carried in this message's OPT record, if any.
    pub fn client_subnet(&self) -> Option<(Ipv4Addr, u8, u8)> {
        for rr in &self.additionals {
            if let crate::rdata::RData::Opt(bytes) = &rr.rdata {
                if let Ok(options) = decode_options(bytes) {
                    for opt in options {
                        if let EdnsOption::ClientSubnet {
                            source_prefix_len,
                            scope_prefix_len,
                            addr,
                        } = opt
                        {
                            return Some((addr, source_prefix_len, scope_prefix_len));
                        }
                    }
                }
            }
        }
        None
    }

    /// Attaches (or replaces) an ECS option announcing `addr/prefix_len`.
    pub fn set_client_subnet(&mut self, addr: Ipv4Addr, prefix_len: u8) {
        self.set_ecs_raw(addr, prefix_len, 0);
    }

    /// Attaches (or replaces) an ECS option with an explicit scope (used by
    /// authoritative responders to state the granularity of their answer).
    pub fn set_ecs_raw(&mut self, addr: Ipv4Addr, source: u8, scope: u8) {
        self.additionals
            .retain(|rr| !matches!(rr.rdata, crate::rdata::RData::Opt(_)));
        let rdata = crate::rdata::RData::Opt(encode_options(&[EdnsOption::ClientSubnet {
            source_prefix_len: source.min(32),
            scope_prefix_len: scope.min(32),
            addr: mask_v4(addr, source),
        }]));
        // OPT owner is the root; the TTL field carries EDNS flags (zeroed)
        // and the CLASS field advertises the supported UDP payload size.
        let mut rr = crate::message::ResourceRecord::new(crate::name::DnsName::root(), 0, rdata);
        rr.class = crate::rdata::RecordClass::from_code(DEFAULT_UDP_PAYLOAD_SIZE);
        self.additionals.push(rr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_ecs_roundtrips_through_the_wire() {
        use crate::builder::QueryBuilder;
        use crate::message::Message;
        use crate::rdata::RecordType;
        let mut q = QueryBuilder::new(9, "m.yelp.com", RecordType::A)
            .build()
            .unwrap();
        assert!(q.client_subnet().is_none());
        q.set_client_subnet(Ipv4Addr::new(100, 1, 7, 200), 24);
        let decoded = Message::decode(&q.encode().unwrap()).unwrap();
        assert_eq!(
            decoded.client_subnet(),
            Some((Ipv4Addr::new(100, 1, 7, 0), 24, 0))
        );
        // Setting again replaces rather than duplicates.
        let mut q2 = decoded;
        q2.set_client_subnet(Ipv4Addr::new(10, 0, 0, 1), 16);
        assert_eq!(q2.additionals.len(), 1);
        assert_eq!(
            q2.client_subnet(),
            Some((Ipv4Addr::new(10, 0, 0, 0), 16, 0))
        );
    }

    #[test]
    fn ecs_scope_is_carried() {
        use crate::builder::QueryBuilder;
        use crate::rdata::RecordType;
        let mut r = QueryBuilder::new(9, "m.yelp.com", RecordType::A)
            .build()
            .unwrap();
        r.set_ecs_raw(Ipv4Addr::new(100, 1, 7, 0), 24, 24);
        assert_eq!(
            r.client_subnet(),
            Some((Ipv4Addr::new(100, 1, 7, 0), 24, 24))
        );
    }

    #[test]
    fn udp_size_advertisement_roundtrips() {
        use crate::builder::QueryBuilder;
        use crate::message::Message;
        use crate::rdata::RecordType;
        let mut q = QueryBuilder::new(2, "m.yelp.com", RecordType::A)
            .build()
            .unwrap();
        assert_eq!(q.edns_udp_size(), None);
        q.advertise_udp_size(4096);
        let decoded = Message::decode(&q.encode().unwrap()).unwrap();
        assert_eq!(decoded.edns_udp_size(), Some(4096));
        // Setting ECS afterwards keeps (replaces) one OPT with the size.
        let mut q2 = decoded;
        q2.set_client_subnet(Ipv4Addr::new(10, 0, 0, 1), 24);
        assert_eq!(q2.edns_udp_size(), Some(DEFAULT_UDP_PAYLOAD_SIZE));
        assert!(q2.client_subnet().is_some());
    }

    #[test]
    fn truncate_for_sets_tc_and_strips_records() {
        use crate::builder::{QueryBuilder, ResponseBuilder};
        use crate::rdata::{RData, RecordType};
        let q = QueryBuilder::new(5, "big.test", RecordType::Txt)
            .build()
            .unwrap();
        let mut resp = ResponseBuilder::for_query(&q).build();
        for i in 0..20 {
            resp.answers.push(crate::message::ResourceRecord::new(
                crate::name::DnsName::parse("big.test").unwrap(),
                60,
                RData::Txt(vec![format!("{i:0>60}")]),
            ));
        }
        assert!(resp.encode().unwrap().len() > 512);
        let truncated = resp.truncate_for(512);
        assert!(truncated);
        assert!(resp.header.flags.truncated);
        assert!(resp.answers.is_empty());
        assert!(resp.encode().unwrap().len() <= 512);
        // Small messages are untouched.
        let mut small = ResponseBuilder::for_query(&q).build();
        assert!(!small.truncate_for(512));
        assert!(!small.header.flags.truncated);
    }

    #[test]
    fn ecs_roundtrip() {
        let opts = vec![EdnsOption::client_subnet(Ipv4Addr::new(100, 1, 7, 200), 24)];
        let bytes = encode_options(&opts);
        let decoded = decode_options(&bytes).unwrap();
        assert_eq!(
            decoded,
            vec![EdnsOption::ClientSubnet {
                source_prefix_len: 24,
                scope_prefix_len: 0,
                addr: Ipv4Addr::new(100, 1, 7, 0), // host bits masked
            }]
        );
    }

    #[test]
    fn ecs_truncates_address_to_prefix_bytes() {
        let opts = vec![EdnsOption::client_subnet(Ipv4Addr::new(10, 20, 30, 40), 16)];
        let bytes = encode_options(&opts);
        // code(2) + len(2) + family(2) + lens(2) + 2 address bytes.
        assert_eq!(bytes.len(), 10);
        let decoded = decode_options(&bytes).unwrap();
        match decoded[0] {
            EdnsOption::ClientSubnet { addr, .. } => {
                assert_eq!(addr, Ipv4Addr::new(10, 20, 0, 0))
            }
            _ => panic!("not ecs"),
        }
    }

    #[test]
    fn unknown_options_are_preserved() {
        let opts = vec![
            EdnsOption::Unknown {
                code: 10, // cookie
                data: vec![1, 2, 3, 4, 5, 6, 7, 8],
            },
            EdnsOption::client_subnet(Ipv4Addr::new(8, 8, 8, 0), 24),
        ];
        let bytes = encode_options(&opts);
        let decoded = decode_options(&bytes).unwrap();
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0], opts[0]);
    }

    #[test]
    fn rejects_truncated_options() {
        assert!(decode_options(&[0, 8, 0, 9, 0]).is_err());
        assert!(decode_options(&[0, 8]).is_err());
        // ECS with wrong address length.
        let bad = [0, 8, 0, 5, 0, 1, 24, 0, 1]; // /24 but 1 address byte
        assert!(decode_options(&bad).is_err());
    }

    #[test]
    fn zero_prefix_means_any() {
        let opts = vec![EdnsOption::client_subnet(Ipv4Addr::new(1, 2, 3, 4), 0)];
        let bytes = encode_options(&opts);
        let decoded = decode_options(&bytes).unwrap();
        match decoded[0] {
            EdnsOption::ClientSubnet {
                source_prefix_len,
                addr,
                ..
            } => {
                assert_eq!(source_prefix_len, 0);
                assert_eq!(addr, Ipv4Addr::new(0, 0, 0, 0));
            }
            _ => panic!("not ecs"),
        }
    }

    #[test]
    fn non_ipv4_family_falls_back_to_unknown() {
        // family 2 (IPv6) — preserved as Unknown rather than rejected.
        let raw = [0u8, 8, 0, 4, 0, 2, 0, 0];
        let decoded = decode_options(&raw).unwrap();
        assert!(matches!(decoded[0], EdnsOption::Unknown { code: 8, .. }));
    }

    #[test]
    fn empty_rdata_is_no_options() {
        assert_eq!(decode_options(&[]).unwrap(), vec![]);
    }
}
