//! Domain names: validation, normalization, hierarchy operations.

use crate::error::WireError;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::str::FromStr;

/// Maximum length of a single label in octets (RFC 1035 §2.3.4).
pub const MAX_LABEL_LEN: usize = 63;
/// Maximum length of a name on the wire, including length octets and the
/// terminating root octet (RFC 1035 §2.3.4).
pub const MAX_NAME_LEN: usize = 255;

/// A validated, absolute domain name.
///
/// Internally stored as a vector of lowercase label byte-strings; the root
/// name has zero labels. DNS name comparison is case-insensitive
/// (RFC 1035 §2.3.3), so labels are normalized to ASCII lowercase at
/// construction and `Eq`/`Hash`/`Ord` all operate on the normalized form.
#[derive(Clone, Eq, PartialEq, Ord, PartialOrd)]
pub struct DnsName {
    labels: Vec<Vec<u8>>,
}

impl DnsName {
    /// The root name (`.`).
    pub fn root() -> Self {
        DnsName { labels: Vec::new() }
    }

    /// Parses a name from presentation format (`"www.example.com"`,
    /// optionally with a trailing dot). An empty string or `"."` is the root.
    pub fn parse(s: &str) -> Result<Self, WireError> {
        if s.is_empty() || s == "." {
            return Ok(Self::root());
        }
        let trimmed = s.strip_suffix('.').unwrap_or(s);
        let mut labels = Vec::new();
        for part in trimmed.split('.') {
            labels.push(Self::validate_label(part.as_bytes())?);
        }
        let name = DnsName { labels };
        name.check_total_len()?;
        Ok(name)
    }

    /// Builds a name from label byte-strings (root-last order).
    pub fn from_labels<I, L>(iter: I) -> Result<Self, WireError>
    where
        I: IntoIterator<Item = L>,
        L: AsRef<[u8]>,
    {
        let mut labels = Vec::new();
        for l in iter {
            labels.push(Self::validate_label(l.as_ref())?);
        }
        let name = DnsName { labels };
        name.check_total_len()?;
        Ok(name)
    }

    /// Builds a name from labels that a wire-format validator
    /// ([`crate::nameref::NameRef::parse`]) has already checked and
    /// lowercased. Skips re-validation and re-allocation — this is the
    /// zero-copy decode path's single conversion point.
    pub(crate) fn from_validated_wire_labels(labels: Vec<Vec<u8>>) -> Self {
        debug_assert!(labels.iter().all(|l| {
            !l.is_empty()
                && l.len() <= MAX_LABEL_LEN
                && l.iter().all(|&b| {
                    (b.is_ascii_alphanumeric() && !b.is_ascii_uppercase()) || b == b'-' || b == b'_'
                })
        }));
        let name = DnsName { labels };
        debug_assert!(name.wire_len() <= MAX_NAME_LEN);
        name
    }

    fn validate_label(bytes: &[u8]) -> Result<Vec<u8>, WireError> {
        if bytes.is_empty() {
            return Err(WireError::EmptyLabel);
        }
        if bytes.len() > MAX_LABEL_LEN {
            return Err(WireError::LabelTooLong(bytes.len()));
        }
        let mut out = Vec::with_capacity(bytes.len());
        for &b in bytes {
            // Accept the LDH alphabet plus underscore (used by service
            // labels and our whoami probes).
            let ok = b.is_ascii_alphanumeric() || b == b'-' || b == b'_';
            if !ok {
                return Err(WireError::InvalidLabelByte(b));
            }
            out.push(b.to_ascii_lowercase());
        }
        Ok(out)
    }

    fn check_total_len(&self) -> Result<(), WireError> {
        let n = self.wire_len();
        if n > MAX_NAME_LEN {
            return Err(WireError::NameTooLong(n));
        }
        Ok(())
    }

    /// Number of labels (the root has zero).
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// `true` for the root name.
    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    /// The labels, leftmost (most specific) first.
    pub fn labels(&self) -> &[Vec<u8>] {
        &self.labels
    }

    /// Length of this name in uncompressed wire format, including each
    /// label's length octet and the terminating zero octet.
    pub fn wire_len(&self) -> usize {
        1 + self.labels.iter().map(|l| l.len() + 1).sum::<usize>()
    }

    /// The parent domain (drops the leftmost label); `None` for the root.
    pub fn parent(&self) -> Option<DnsName> {
        if self.labels.is_empty() {
            None
        } else {
            Some(DnsName {
                labels: self.labels[1..].to_vec(),
            })
        }
    }

    /// `true` if `self` equals `other` or is a descendant of it
    /// (`www.example.com` is under `example.com` and under the root).
    pub fn is_under(&self, other: &DnsName) -> bool {
        if other.labels.len() > self.labels.len() {
            return false;
        }
        let offset = self.labels.len() - other.labels.len();
        self.labels[offset..] == other.labels[..]
    }

    /// Prepends a label, producing a child name (`child("www")` of
    /// `example.com` is `www.example.com`).
    pub fn child(&self, label: &str) -> Result<DnsName, WireError> {
        let validated = Self::validate_label(label.as_bytes())?;
        let mut labels = Vec::with_capacity(self.labels.len() + 1);
        labels.push(validated);
        labels.extend(self.labels.iter().cloned());
        let name = DnsName { labels };
        name.check_total_len()?;
        Ok(name)
    }

    /// Iterator over this name and all its ancestors up to the root, most
    /// specific first: `www.example.com`, `example.com`, `com`, `.`.
    pub fn self_and_ancestors(&self) -> impl Iterator<Item = DnsName> + '_ {
        (0..=self.labels.len()).map(move |skip| DnsName {
            labels: self.labels[skip..].to_vec(),
        })
    }
}

impl Hash for DnsName {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Labels are already normalized to lowercase.
        self.labels.hash(state);
    }
}

impl fmt::Display for DnsName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.labels.is_empty() {
            return write!(f, ".");
        }
        for (i, label) in self.labels.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            for &b in label {
                write!(f, "{}", b as char)?;
            }
        }
        Ok(())
    }
}

impl fmt::Debug for DnsName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DnsName({self})")
    }
}

impl FromStr for DnsName {
    type Err = WireError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DnsName::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        let n = DnsName::parse("WWW.Example.COM").unwrap();
        assert_eq!(n.to_string(), "www.example.com");
        assert_eq!(n.label_count(), 3);
    }

    #[test]
    fn trailing_dot_is_accepted() {
        let a = DnsName::parse("example.com.").unwrap();
        let b = DnsName::parse("example.com").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn root_forms() {
        assert!(DnsName::parse("").unwrap().is_root());
        assert!(DnsName::parse(".").unwrap().is_root());
        assert_eq!(DnsName::root().to_string(), ".");
        assert_eq!(DnsName::root().wire_len(), 1);
    }

    #[test]
    fn case_insensitive_equality_and_hash() {
        use std::collections::HashSet;
        let a = DnsName::parse("CDN.Example.net").unwrap();
        let b = DnsName::parse("cdn.example.NET").unwrap();
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn rejects_bad_labels() {
        assert_eq!(DnsName::parse("a..b").unwrap_err(), WireError::EmptyLabel);
        assert!(matches!(
            DnsName::parse("bad!char.com").unwrap_err(),
            WireError::InvalidLabelByte(b'!')
        ));
        let long = "x".repeat(64);
        assert!(matches!(
            DnsName::parse(&format!("{long}.com")).unwrap_err(),
            WireError::LabelTooLong(64)
        ));
    }

    #[test]
    fn rejects_names_over_255_octets() {
        // Each label "xxxxxxxxx" costs 10 wire octets; 26 of them exceed 255.
        let label = "x".repeat(9);
        let parts: Vec<&str> = std::iter::repeat_n(label.as_str(), 26).collect();
        let joined = parts.join(".");
        assert!(matches!(
            DnsName::parse(&joined).unwrap_err(),
            WireError::NameTooLong(_)
        ));
    }

    #[test]
    fn parent_and_child() {
        let n = DnsName::parse("www.example.com").unwrap();
        let p = n.parent().unwrap();
        assert_eq!(p.to_string(), "example.com");
        assert_eq!(p.child("www").unwrap(), n);
        assert!(DnsName::root().parent().is_none());
    }

    #[test]
    fn is_under_relations() {
        let www = DnsName::parse("www.example.com").unwrap();
        let example = DnsName::parse("example.com").unwrap();
        let com = DnsName::parse("com").unwrap();
        let org = DnsName::parse("org").unwrap();
        assert!(www.is_under(&example));
        assert!(www.is_under(&com));
        assert!(www.is_under(&DnsName::root()));
        assert!(www.is_under(&www));
        assert!(!example.is_under(&www));
        assert!(!www.is_under(&org));
    }

    #[test]
    fn ancestors_iteration() {
        let n = DnsName::parse("a.b.c").unwrap();
        let all: Vec<String> = n.self_and_ancestors().map(|x| x.to_string()).collect();
        assert_eq!(all, vec!["a.b.c", "b.c", "c", "."]);
    }

    #[test]
    fn underscore_labels_allowed() {
        let n = DnsName::parse("_dns.resolver.arpa").unwrap();
        assert_eq!(n.label_count(), 3);
    }

    #[test]
    fn wire_len_matches_definition() {
        let n = DnsName::parse("ab.cde").unwrap();
        // 1+2 + 1+3 + 1(root) = 8
        assert_eq!(n.wire_len(), 8);
    }
}
