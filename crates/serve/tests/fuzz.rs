//! Hostile-wire fuzzing of the serving core: for *arbitrary* input bytes,
//! [`ServeCore::handle`] must never panic and must always return either a
//! decodable wire reply or a typed drop reason. One long-lived core takes
//! every case — sim state advancing under garbage is part of the property
//! (a poisoned input must not wedge the next query either).

use dnswire::message::MessageView;
use serve::{classify, ServeCore, Served, Transport, WireClass, WorldConfig};
use std::sync::{Mutex, OnceLock};

use proptest::prelude::*;

fn core() -> &'static Mutex<ServeCore> {
    static CORE: OnceLock<Mutex<ServeCore>> = OnceLock::new();
    CORE.get_or_init(|| Mutex::new(ServeCore::new(WorldConfig::quick(97))))
}

/// The invariant every input must satisfy: a reply that parses as a
/// response echoing a sane header, or a typed drop — never a panic, never
/// unattributable bytes.
fn check(core: &mut ServeCore, shard: usize, transport: Transport, input: &[u8]) {
    let class = classify(input);
    match core.handle(shard, transport, input) {
        Served::Reply(bytes) => {
            let view = MessageView::new(&bytes).expect("replies must parse");
            assert!(view.is_response(), "replies must set QR");
            if input.len() >= 2 {
                assert_eq!(
                    view.id(),
                    u16::from_be_bytes([input[0], input[1]]),
                    "replies must echo the transaction id"
                );
            }
            assert!(
                !matches!(class, WireClass::Silent(_)),
                "a silent classification must never earn a reply"
            );
        }
        Served::Drop(reason) => {
            // Typed, labeled, and consistent with the pure classifier for
            // in-range shards.
            assert!(!reason.label().is_empty());
            if shard < core.carrier_count() {
                assert!(
                    matches!(class, WireClass::Silent(_)),
                    "in-range drops must come from the silent class, got {class:?} for {reason:?}"
                );
            }
        }
    }
}

/// Hand-picked adversarial corpus: the shapes RFC 1035 parsers
/// historically get wrong. Pointer loops and oversized names mirror the
/// dnswire proptest corpus; the rest target the serve-plane precheck.
#[test]
fn seeded_corpus_never_panics_and_always_types() {
    let mut corpus: Vec<Vec<u8>> = vec![
        Vec::new(),
        vec![0x00],
        b"short".to_vec(),
        vec![0u8; 11],                            // one byte shy of a header
        vec![0u8; 12],                            // QDCOUNT=0
        vec![0xFF; 12],                           // QR set, all flags lit
        vec![0xFF; 512],                          // all-ones datagram
        vec![0, 7, 1, 0, 0, 1, 0, 0, 0, 0, 0, 0], // QDCOUNT=1, no question bytes
        vec![0, 8, 1, 0, 0, 2, 0, 0, 0, 0, 0, 0], // QDCOUNT=2
        // Self-referencing compression pointer in the qname.
        vec![0, 9, 1, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xC0, 0x0C, 0, 1, 0, 1],
        // Pointer one past itself (forward reference).
        vec![0, 10, 1, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xC0, 0x0D, 0, 1, 0, 1],
        // Truncated label: claims 63 octets, provides one.
        vec![0, 11, 1, 0, 0, 1, 0, 0, 0, 0, 0, 0, 63, b'x'],
    ];
    // A name whose expansion exceeds 255 octets via chained 63-byte labels.
    let mut oversized = vec![0, 12, 1, 0, 0, 1, 0, 0, 0, 0, 0, 0];
    for _ in 0..5 {
        oversized.push(63);
        oversized.extend_from_slice(&[b'a'; 63]);
    }
    oversized.extend_from_slice(&[0, 0, 1, 0, 1]);
    corpus.push(oversized);
    // A valid query with trailing garbage.
    let mut trailing = valid_query(13, "m.yelp.com");
    trailing.extend_from_slice(&[0xDE, 0xAD, 0xBE, 0xEF]);
    corpus.push(trailing);

    let mut core = core().lock().unwrap();
    let shards = core.carrier_count();
    for input in &corpus {
        for shard in [0, shards.saturating_sub(1), shards, usize::MAX] {
            check(&mut core, shard, Transport::Udp, input);
            check(&mut core, shard, Transport::Tcp, input);
        }
    }
    // The core still answers real queries after eating the whole corpus.
    let q = valid_query(0x0FFF, "m.facebook.com");
    assert!(
        matches!(core.handle(0, Transport::Udp, &q), Served::Reply(_)),
        "corpus wedged the core"
    );
}

fn valid_query(id: u16, name: &str) -> Vec<u8> {
    dnswire::builder::QueryBuilder::new(id, name, dnswire::RecordType::A)
        .recursion_desired(true)
        .build()
        .unwrap()
        .encode()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn handle_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
        shard in 0usize..8,
        tcp in any::<bool>(),
    ) {
        let transport = if tcp { Transport::Tcp } else { Transport::Udp };
        let mut core = core().lock().unwrap();
        check(&mut core, shard, transport, &bytes);
    }

    #[test]
    fn handle_never_panics_on_mutated_valid_queries(
        id in any::<u16>(),
        idx in any::<prop::sample::Index>(),
        byte in any::<u8>(),
        keep in any::<prop::sample::Index>(),
    ) {
        // A real query with one byte corrupted, then truncated anywhere:
        // the classic middlebox-mangling shape.
        let mut wire = valid_query(id, "www.buzzfeed.com");
        let i = idx.index(wire.len());
        wire[i] = byte;
        wire.truncate(keep.index(wire.len() + 1));
        let mut core = core().lock().unwrap();
        check(&mut core, 0, Transport::Udp, &wire);
    }
}
