//! The serving core: a deterministic wire-query → wire-answer function
//! over the simulated world. Everything socket-shaped lives elsewhere —
//! this module never reads the wall clock, so a second core built from the
//! same [`WorldConfig`] and fed the same per-carrier input sequence
//! produces byte-identical results (the ground-truth cross-check).
//!
//! Hostile-wire contract: [`ServeCore::handle`] accepts *arbitrary bytes*
//! and always returns either an encoded reply or a typed drop reason —
//! never a panic. Rejections (FORMERR, NOTIMP, silent drops) are pure
//! functions of the input bytes and touch no sim state, so a ground-truth
//! replica replaying the same sequence stays byte-identical even when the
//! sequence is interleaved with garbage.

use dnssim::{resolve_tcp, resolve_with, ClientPolicy};
use dnswire::edns::CLASSIC_UDP_LIMIT;
use dnswire::error::WireError;
use dnswire::message::{Header, Message, MessageView, Precheck, Rcode};
use dnswire::rdata::RecordType;
use measure::{build_world, World, WorldConfig};
use obs::Registry;

/// Which wire transport a query arrived over. TCP queries take the sim's
/// TCP path (which advertises the maximum EDNS payload and is therefore
/// exempt from forced-truncation faults), mirroring a real stub's TC-bit
/// retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// RFC 1035 UDP datagram.
    Udp,
    /// RFC 1035 §4.2.2 length-prefixed TCP.
    Tcp,
}

impl Transport {
    /// Stable lowercase label (metrics/reports).
    pub fn label(self) -> &'static str {
        match self {
            Transport::Udp => "udp",
            Transport::Tcp => "tcp",
        }
    }
}

/// Why a wire input earned no reply at all. Every variant is a deliberate,
/// counted decision — nothing is dropped by accident.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DropReason {
    /// Shorter than a 12-byte DNS header: no transaction id to echo, so
    /// no reply can be attributed (answering would aid spoofing anyway).
    TooShort(usize),
    /// QR bit set: a stray or reflected *response*. Answering responses
    /// is how reflection loops start — drop.
    StrayResponse,
    /// The carrier index is outside the world's shard range, or the shard
    /// has no devices to resolve as.
    BadCarrier(usize),
    /// The sim answered but the reply failed to encode (never expected;
    /// surfaced instead of panicking in the serving loop).
    Encode(WireError),
}

impl DropReason {
    /// Stable label for the `serve.dropped` counter.
    pub fn label(&self) -> &'static str {
        match self {
            DropReason::TooShort(_) => "short",
            DropReason::StrayResponse => "stray-response",
            DropReason::BadCarrier(_) => "bad-carrier",
            DropReason::Encode(_) => "encode",
        }
    }
}

/// Outcome of [`ServeCore::handle`]: an encoded wire reply, or a typed
/// reason the input was dropped without one.
#[derive(Debug)]
pub enum Served {
    /// Send these bytes back to the querier.
    Reply(Vec<u8>),
    /// Send nothing; the reason is counted and reportable.
    Drop(DropReason),
}

impl Served {
    /// The reply bytes, if any.
    pub fn into_reply(self) -> Option<Vec<u8>> {
        match self {
            Served::Reply(b) => Some(b),
            Served::Drop(_) => None,
        }
    }
}

/// Pure wire-shape classification: what the serving plane owes the sender
/// before any resolver work happens. Shared by the live bridge (to decide
/// whether admission control applies), the core (to reject), and the
/// chaos driver (to predict the server's reaction) — one function, so
/// they can never disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireClass {
    /// A single-question QUERY: resolve it (and meter it).
    WellFormed,
    /// Malformed but attributable: answer a header-only reply carrying
    /// this rcode (FORMERR or NOTIMP).
    Reject(Rcode),
    /// Not answerable at all (too short, or a stray response).
    Silent(DropReason),
}

/// Classifies arbitrary wire bytes. Pure: no allocation, no sim state.
// detlint: hot
pub fn classify(query: &[u8]) -> WireClass {
    let Ok(view) = MessageView::new(query) else {
        return WireClass::Silent(DropReason::TooShort(query.len()));
    };
    match view.precheck() {
        Precheck::Query => WireClass::WellFormed,
        Precheck::Response => WireClass::Silent(DropReason::StrayResponse),
        verdict => match verdict.reject_rcode() {
            Some(rc) => WireClass::Reject(rc),
            None => WireClass::Silent(DropReason::StrayResponse),
        },
    }
}

/// A header-only (exactly 12 bytes) control reply: echoes the transaction
/// id, opcode, and RD bit, sets QR, and carries `rcode`. Used for FORMERR
/// / NOTIMP rejections and for admission-control REFUSED. Header-only is
/// deliberate: the sim plane always echoes the question in its replies,
/// so a 12-byte REFUSED is unambiguously "shed by the front end" to a
/// verifying client.
pub fn control_reply(query: &[u8], rcode: Rcode) -> Option<Vec<u8>> {
    let view = MessageView::new(query).ok()?;
    let mut hi: u8 = 0x80 | (view.opcode().code() << 3);
    if view.recursion_desired() {
        hi |= 0x01;
    }
    let mut out = Vec::with_capacity(12);
    out.extend_from_slice(&view.id().to_be_bytes());
    out.push(hi);
    out.push(rcode.code());
    out.extend_from_slice(&[0u8; 8]);
    Some(out)
}

/// True when `reply` is a front-end shed marker: a header-only REFUSED.
/// The resolver path never produces one (sim replies echo the question),
/// so clients can use this to tell "shed before resolution" apart from
/// any resolver-generated rcode.
pub fn is_shed_reply(reply: &[u8]) -> bool {
    reply.len() == 12
        && MessageView::new(reply).is_ok_and(|v| v.is_response() && v.rcode() == Rcode::Refused)
}

/// The deterministic serving core. One instance serves all carriers; each
/// wire query is attributed to a carrier (the socket it arrived on) and
/// resolved *as one of that carrier's devices would* — round-robin over
/// the shard's device population, against the device's configured
/// resolver, with the classic client policy so truncated fault answers
/// keep their TC bit all the way to the wire client (whose own TCP retry
/// then lands on [`Transport::Tcp`]).
pub struct ServeCore {
    world: World,
    /// Per-shard round-robin device cursor.
    cursors: Vec<usize>,
    /// Sim-plane counters for the serving core (deterministic given the
    /// injection sequence).
    pub registry: Registry,
}

impl ServeCore {
    /// Builds the world and wraps it in a serving core.
    pub fn new(config: WorldConfig) -> ServeCore {
        let world = build_world(config);
        let cursors = vec![0; world.carrier_count()];
        ServeCore {
            world,
            cursors,
            registry: Registry::default(),
        }
    }

    /// The world being served (read-only; mutating it would desync any
    /// ground-truth replica).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Number of carrier shards (== serving sockets).
    pub fn carrier_count(&self) -> usize {
        self.world.carrier_count()
    }

    /// Display name of a carrier shard.
    pub fn carrier_name(&self, shard: usize) -> &'static str {
        self.world.shards[shard].carrier.profile.name
    }

    /// Device population of a carrier shard.
    pub fn carrier_devices(&self, shard: usize) -> usize {
        self.world.shards[shard].devices.len()
    }

    /// Handles one wire input for `shard`: arbitrary bytes in, an encoded
    /// reply or a typed drop out. Never panics.
    ///
    /// Deterministic, and — the property the ground-truth check rests on —
    /// *sim state advances only for well-formed queries*: every rejection
    /// is a pure function of the input bytes, so interleaving garbage into
    /// a replayed sequence cannot desync the well-formed answers.
    pub fn handle(&mut self, shard: usize, transport: Transport, query: &[u8]) -> Served {
        match classify(query) {
            WireClass::Silent(reason) => {
                self.registry
                    .inc("serve.dropped", &[("reason", reason.label())]);
                Served::Drop(reason)
            }
            WireClass::Reject(rcode) => {
                if rcode == Rcode::NotImp {
                    self.registry.inc("serve.notimp", &[("cause", "precheck")]);
                } else {
                    self.registry.inc("serve.formerr", &[("cause", "precheck")]);
                }
                match control_reply(query, rcode) {
                    Some(bytes) => Served::Reply(bytes),
                    // Unreachable: classify() only rejects ≥12-byte inputs.
                    None => Served::Drop(DropReason::TooShort(query.len())),
                }
            }
            WireClass::WellFormed => {
                // The view precheck passed but the full message can still
                // be malformed (bad record sections, trailing bytes):
                // that, too, is FORMERR territory and must not touch the
                // sim.
                let msg = match Message::decode(query) {
                    Ok(m) => m,
                    Err(_) => {
                        self.registry.inc("serve.formerr", &[("cause", "decode")]);
                        return match control_reply(query, Rcode::FormErr) {
                            Some(bytes) => Served::Reply(bytes),
                            None => Served::Drop(DropReason::TooShort(query.len())),
                        };
                    }
                };
                self.resolve(shard, transport, &msg)
            }
        }
    }

    /// Resolves a fully decoded single-question query through the sim.
    fn resolve(&mut self, shard: usize, transport: Transport, msg: &Message) -> Served {
        if shard >= self.world.shards.len() {
            self.registry.inc(
                "serve.dropped",
                &[("reason", DropReason::BadCarrier(shard).label())],
            );
            return Served::Drop(DropReason::BadCarrier(shard));
        }
        let question = match msg.questions.first() {
            Some(q) => q,
            // Unreachable behind classify(), kept for direct callers.
            None => {
                self.registry.inc("serve.formerr", &[("cause", "precheck")]);
                return Served::Drop(DropReason::StrayResponse);
            }
        };
        let qname = question.qname.clone();
        let qtype = question.qtype;
        let wire_id = msg.header.id;

        let carrier = self.carrier_name(shard);
        let shard_ref = &mut self.world.shards[shard];
        let device_count = shard_ref.devices.len();
        if device_count == 0 {
            self.registry.inc(
                "serve.dropped",
                &[("reason", DropReason::BadCarrier(shard).label())],
            );
            return Served::Drop(DropReason::BadCarrier(shard));
        }
        let device = &shard_ref.devices[self.cursors[shard] % device_count];
        self.cursors[shard] += 1;
        let (node, resolver) = (device.node, device.configured_dns);

        let lookup = match transport {
            Transport::Udp => resolve_with(
                &mut shard_ref.net,
                node,
                resolver,
                &qname,
                qtype,
                &ClientPolicy::classic(),
            ),
            Transport::Tcp => resolve_tcp(&mut shard_ref.net, node, resolver, &qname, qtype),
        };

        self.registry.inc(
            "serve.queries",
            &[("carrier", carrier), ("transport", transport.label())],
        );
        self.registry
            .inc("serve.outcomes", &[("outcome", lookup.outcome.label())]);
        if let Some(elapsed) = lookup.elapsed {
            self.registry
                .observe_us("serve.sim_latency_us", &[], elapsed.as_micros());
        }

        let mut reply = match lookup.response {
            Some(m) => m,
            // The sim-side lookup died (timeout/unreachable): the wire
            // client still gets a well-formed SERVFAIL, like a real
            // resolver front end would send.
            None => servfail(wire_id, &qname, qtype),
        };
        reply.header.id = wire_id;
        let bytes = match reply.encode() {
            Ok(b) => b,
            Err(e) => {
                let reason = DropReason::Encode(e);
                self.registry
                    .inc("serve.dropped", &[("reason", reason.label())]);
                return Served::Drop(reason);
            }
        };
        // Classic UDP policy, matching `dnssim`'s authority exactly: the
        // reply must fit the querier's advertised EDNS payload size —
        // or 512 bytes when none was advertised — else all records drop
        // and TC tells the client to retry over TCP (RFC 1035 §4.2.1).
        if transport == Transport::Udp {
            let limit = msg
                .edns_udp_size()
                .map(|s| s as usize)
                .unwrap_or(CLASSIC_UDP_LIMIT)
                .max(CLASSIC_UDP_LIMIT);
            if bytes.len() > limit {
                reply.truncate_for(limit);
                self.registry.inc("serve.truncated", &[]);
                return match reply.encode() {
                    Ok(b) => Served::Reply(b),
                    Err(e) => {
                        let reason = DropReason::Encode(e);
                        self.registry
                            .inc("serve.dropped", &[("reason", reason.label())]);
                        Served::Drop(reason)
                    }
                };
            }
        }
        Served::Reply(bytes)
    }

    /// Total engine events dispatched across all shards (soak reporting).
    pub fn total_events(&self) -> u64 {
        self.world.total_events()
    }
}

/// A minimal SERVFAIL reply echoing the question.
fn servfail(id: u16, qname: &dnswire::name::DnsName, qtype: RecordType) -> Message {
    let mut header = Header::query(id);
    header.flags.response = true;
    header.flags.recursion_desired = true;
    header.flags.recursion_available = true;
    header.rcode = dnswire::message::Rcode::ServFail;
    let mut msg = Message::new(header);
    msg.questions
        .push(dnswire::message::Question::new(qname.clone(), qtype));
    msg
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnssim::{AuthoritativeServer, Zone};
    use dnswire::builder::QueryBuilder;
    use dnswire::message::Opcode;
    use dnswire::name::DnsName;
    use dnswire::rdata::RData;
    use netsim::engine::{ServiceCtx, UdpService};
    use netsim::time::SimTime;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::net::Ipv4Addr;

    fn quick_core() -> ServeCore {
        ServeCore::new(WorldConfig::quick(7))
    }

    fn query_bytes(id: u16, name: &str) -> Vec<u8> {
        let mut q = QueryBuilder::new(id, name, RecordType::A)
            .recursion_desired(true)
            .build()
            .unwrap();
        q.advertise_udp_size(dnswire::edns::DEFAULT_UDP_PAYLOAD_SIZE);
        q.encode().unwrap()
    }

    fn reply_of(served: Served) -> Vec<u8> {
        match served {
            Served::Reply(b) => b,
            Served::Drop(r) => panic!("expected a reply, got drop: {r:?}"),
        }
    }

    #[test]
    fn answers_echo_the_wire_id_and_question() {
        let mut core = quick_core();
        let query = query_bytes(0xBEEF, "m.facebook.com");
        let reply = reply_of(core.handle(0, Transport::Udp, &query));
        let msg = Message::decode(&reply).unwrap();
        assert_eq!(msg.header.id, 0xBEEF);
        assert!(msg.header.flags.response);
        assert_eq!(msg.questions[0].qname.to_string(), "m.facebook.com");
        assert!(!msg.answer_addrs().is_empty(), "expected A records");
        assert_eq!(core.registry.counter_total("serve.queries"), 1);
    }

    #[test]
    fn two_cores_replay_byte_identically() {
        let mut a = quick_core();
        let mut b = quick_core();
        for (i, name) in ["m.yelp.com", "m.twitter.com", "www.buzzfeed.com"]
            .iter()
            .enumerate()
        {
            let q = query_bytes(i as u16, name);
            for shard in 0..a.carrier_count().min(2) {
                let ra = reply_of(a.handle(shard, Transport::Udp, &q));
                let rb = reply_of(b.handle(shard, Transport::Udp, &q));
                assert_eq!(ra, rb, "shard {shard} answer diverged for {name}");
            }
        }
    }

    #[test]
    fn rejections_do_not_touch_sim_state() {
        // Two cores: one sees garbage interleaved with real queries, the
        // other only the real queries. Answers must stay byte-identical —
        // the whole hostile-wire replay contract in one assertion.
        let mut dirty = quick_core();
        let mut clean = quick_core();
        let garbage: &[&[u8]] = &[
            b"",
            b"\x00",
            b"not a dns message at all",
            &[0u8; 12],  // header-only query, QDCOUNT=0 → FORMERR
            &[0xFF; 40], // QR set → stray response, dropped
            &[
                0, 1, 0x08, 0, 0, 1, 0, 0, 0, 0, 0, 0, 1, b'x', 0, 0, 1, 0, 1,
            ], // IQUERY
        ];
        for (i, name) in ["m.yelp.com", "t.co", "m.espn.go.com"].iter().enumerate() {
            for g in garbage {
                let _ = dirty.handle(0, Transport::Udp, g);
            }
            let q = query_bytes(i as u16, name);
            let rd = reply_of(dirty.handle(0, Transport::Udp, &q));
            let rc = reply_of(clean.handle(0, Transport::Udp, &q));
            assert_eq!(rd, rc, "garbage perturbed the answer for {name}");
        }
        assert!(dirty.registry.counter_total("serve.formerr") > 0);
        assert!(dirty.registry.counter_total("serve.notimp") > 0);
        assert!(dirty.registry.counter_total("serve.dropped") > 0);
    }

    #[test]
    fn malformed_inputs_get_typed_rcodes_or_drops() {
        let mut core = quick_core();

        // Too short: typed silent drop.
        match core.handle(0, Transport::Udp, b"not dns") {
            Served::Drop(DropReason::TooShort(7)) => {}
            other => panic!("want TooShort drop, got {other:?}"),
        }

        // QDCOUNT=0: FORMERR echoing the id.
        let headeronly = [0xAB, 0xCD, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0];
        let reply = reply_of(core.handle(0, Transport::Udp, &headeronly));
        let view = MessageView::new(&reply).unwrap();
        assert_eq!(view.id(), 0xABCD);
        assert!(view.is_response());
        assert_eq!(view.rcode(), Rcode::FormErr);

        // IQUERY opcode: NOTIMP echoing id and opcode.
        let mut iquery = query_bytes(0x1234, "m.yelp.com");
        iquery[2] = (iquery[2] & !0x78) | (Opcode::IQuery.code() << 3);
        let reply = reply_of(core.handle(0, Transport::Udp, &iquery));
        let view = MessageView::new(&reply).unwrap();
        assert_eq!(view.id(), 0x1234);
        assert_eq!(view.opcode(), Opcode::IQuery);
        assert_eq!(view.rcode(), Rcode::NotImp);

        // Stray response: silent drop.
        let mut stray = query_bytes(9, "m.yelp.com");
        stray[2] |= 0x80;
        assert!(matches!(
            core.handle(0, Transport::Udp, &stray),
            Served::Drop(DropReason::StrayResponse)
        ));

        // Bad shard: typed drop.
        let bad_shard = core.carrier_count();
        let q = query_bytes(1, "m.yelp.com");
        assert!(matches!(
            core.handle(bad_shard, Transport::Udp, &q),
            Served::Drop(DropReason::BadCarrier(_))
        ));
    }

    #[test]
    fn shed_reply_is_header_only_refused_and_unambiguous() {
        let q = query_bytes(0x7777, "m.yelp.com");
        let shed = control_reply(&q, Rcode::Refused).unwrap();
        assert_eq!(shed.len(), 12);
        assert!(is_shed_reply(&shed));
        let view = MessageView::new(&shed).unwrap();
        assert_eq!(view.id(), 0x7777);
        assert!(view.recursion_desired());

        // A real resolver answer is never mistaken for a shed marker.
        let mut core = quick_core();
        let answer = reply_of(core.handle(0, Transport::Udp, &q));
        assert!(!is_shed_reply(&answer));
        // Nor is a FORMERR rejection (different rcode).
        assert!(!is_shed_reply(&control_reply(&q, Rcode::FormErr).unwrap()));
    }

    /// Satellite A/B check: the serving core's UDP truncation must match
    /// the sim plane's classic policy (`dnssim`'s authority) exactly —
    /// same limit arithmetic, same all-or-nothing record drop, same TC.
    #[test]
    fn udp_truncation_matches_dnssim_classic_policy() {
        // A zone whose TXT answer cannot fit 512 bytes.
        let origin = DnsName::parse("big.example").unwrap();
        let mut zone = Zone::new(origin.clone());
        let name = origin.child("fat").unwrap();
        for i in 0..8 {
            zone.add(dnswire::message::ResourceRecord::new(
                name.clone(),
                60,
                RData::Txt(vec![format!("{i:0>200}")]),
            ));
        }
        let mut authority = AuthoritativeServer::new();
        authority.add_zone(zone);

        // Classic (no-EDNS) query for the fat name.
        let query = QueryBuilder::new(0x4242, "fat.big.example", RecordType::Txt)
            .recursion_desired(true)
            .build()
            .unwrap();
        let wire = query.encode().unwrap();

        // What the sim authority puts on a classic UDP path.
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = ServiceCtx {
            now: SimTime::from_micros(1_000),
            local_addr: Ipv4Addr::new(198, 51, 100, 53),
            rng: &mut rng,
            wake_after: None,
        };
        let from = Ipv4Addr::new(198, 51, 100, 7);
        let out = authority.handle(&mut ctx, from, 4096, &wire);
        assert_eq!(out.len(), 1);
        let sim_reply = out[0].payload.clone();
        let sim_msg = Message::decode(&sim_reply).unwrap();
        assert!(sim_msg.header.flags.truncated, "sim must truncate >512");
        assert!(sim_msg.answers.is_empty());
        assert!(sim_reply.len() <= CLASSIC_UDP_LIMIT);

        // What the serving core does to the same oversized answer on the
        // same classic query: the identical clamp — limit computed from
        // the wire query, `truncate_for`, re-encode — as in
        // `ServeCore::resolve`. Byte-for-byte agreement required.
        let q_msg = Message::decode(&wire).unwrap();
        let limit = q_msg
            .edns_udp_size()
            .map(|s| s as usize)
            .unwrap_or(CLASSIC_UDP_LIMIT)
            .max(CLASSIC_UDP_LIMIT);
        assert_eq!(limit, CLASSIC_UDP_LIMIT, "no EDNS → classic limit");
        let mut fat = sim_msg.clone();
        fat.header.flags.truncated = false;
        for i in 0..8 {
            fat.answers.push(dnswire::message::ResourceRecord::new(
                name.clone(),
                60,
                RData::Txt(vec![format!("{i:0>200}")]),
            ));
        }
        fat.truncate_for(limit);
        let core_reply = fat.encode().unwrap();
        assert_eq!(
            core_reply, sim_reply,
            "serve-plane clamp diverged from dnssim classic policy"
        );
    }

    #[test]
    fn udp_answers_fit_the_advertised_payload_size() {
        // End-to-end through the core: every UDP reply to a classic query
        // fits 512 bytes or has TC set with all records dropped.
        let mut core = quick_core();
        for (i, entry) in ["m.facebook.com", "m.yelp.com", "www.buzzfeed.com"]
            .iter()
            .enumerate()
        {
            let classic = QueryBuilder::new(i as u16, *entry, RecordType::A)
                .recursion_desired(true)
                .build()
                .unwrap()
                .encode()
                .unwrap();
            let reply = reply_of(core.handle(0, Transport::Udp, &classic));
            assert!(
                reply.len() <= CLASSIC_UDP_LIMIT,
                "classic reply for {entry} exceeds 512 bytes"
            );
        }
    }
}
