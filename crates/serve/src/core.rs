//! The serving core: a deterministic wire-query → wire-answer function
//! over the simulated world. Everything socket-shaped lives elsewhere —
//! this module never reads the wall clock, so a second core built from the
//! same [`WorldConfig`] and fed the same per-carrier query sequence
//! produces byte-identical answers (the ground-truth cross-check).

use dnssim::{resolve_tcp, resolve_with, ClientPolicy};
use dnswire::error::WireError;
use dnswire::message::{Header, Message};
use dnswire::rdata::RecordType;
use measure::{build_world, World, WorldConfig};
use obs::Registry;

/// Which wire transport a query arrived over. TCP queries take the sim's
/// TCP path (which advertises the maximum EDNS payload and is therefore
/// exempt from forced-truncation faults), mirroring a real stub's TC-bit
/// retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// RFC 1035 UDP datagram.
    Udp,
    /// RFC 1035 §4.2.2 length-prefixed TCP.
    Tcp,
}

impl Transport {
    /// Stable lowercase label (metrics/reports).
    pub fn label(self) -> &'static str {
        match self {
            Transport::Udp => "udp",
            Transport::Tcp => "tcp",
        }
    }
}

/// Why a wire query could not be answered.
#[derive(Debug)]
pub enum ServeError {
    /// The datagram/frame is not a decodable DNS message.
    Decode(WireError),
    /// The message decoded but carries no question.
    NoQuestion,
    /// The carrier index is outside the world's shard range.
    BadCarrier(usize),
    /// The sim answered but the reply failed to encode (never expected;
    /// surfaced instead of panicking in the serving loop).
    Encode(WireError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Decode(e) => write!(f, "undecodable query: {e:?}"),
            ServeError::NoQuestion => write!(f, "query carries no question"),
            ServeError::BadCarrier(i) => write!(f, "no carrier shard {i}"),
            ServeError::Encode(e) => write!(f, "reply failed to encode: {e:?}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// The deterministic serving core. One instance serves all carriers; each
/// wire query is attributed to a carrier (the socket it arrived on) and
/// resolved *as one of that carrier's devices would* — round-robin over
/// the shard's device population, against the device's configured
/// resolver, with the classic client policy so truncated fault answers
/// keep their TC bit all the way to the wire client (whose own TCP retry
/// then lands on [`Transport::Tcp`]).
pub struct ServeCore {
    world: World,
    /// Per-shard round-robin device cursor.
    cursors: Vec<usize>,
    /// Sim-plane counters for the serving core (deterministic given the
    /// injection sequence).
    pub registry: Registry,
}

impl ServeCore {
    /// Builds the world and wraps it in a serving core.
    pub fn new(config: WorldConfig) -> ServeCore {
        let world = build_world(config);
        let cursors = vec![0; world.carrier_count()];
        ServeCore {
            world,
            cursors,
            registry: Registry::default(),
        }
    }

    /// The world being served (read-only; mutating it would desync any
    /// ground-truth replica).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Number of carrier shards (== serving sockets).
    pub fn carrier_count(&self) -> usize {
        self.world.carrier_count()
    }

    /// Display name of a carrier shard.
    pub fn carrier_name(&self, shard: usize) -> &'static str {
        self.world.shards[shard].carrier.profile.name
    }

    /// Device population of a carrier shard.
    pub fn carrier_devices(&self, shard: usize) -> usize {
        self.world.shards[shard].devices.len()
    }

    /// Answers one wire query for `shard`, returning the encoded reply.
    ///
    /// Deterministic: the answer depends only on the construction config
    /// and the sequence of `(transport, query)` calls made against this
    /// shard so far — never on wall time or cross-shard interleaving.
    pub fn answer(
        &mut self,
        shard: usize,
        transport: Transport,
        query: &[u8],
    ) -> Result<Vec<u8>, ServeError> {
        if shard >= self.world.shards.len() {
            return Err(ServeError::BadCarrier(shard));
        }
        let msg = Message::decode(query).map_err(ServeError::Decode)?;
        let question = msg.questions.first().ok_or(ServeError::NoQuestion)?;
        let qname = question.qname.clone();
        let qtype = question.qtype;
        let wire_id = msg.header.id;

        let carrier = self.carrier_name(shard);
        let shard_ref = &mut self.world.shards[shard];
        let device_count = shard_ref.devices.len();
        if device_count == 0 {
            return Err(ServeError::BadCarrier(shard));
        }
        let device = &shard_ref.devices[self.cursors[shard] % device_count];
        self.cursors[shard] += 1;
        let (node, resolver) = (device.node, device.configured_dns);

        let lookup = match transport {
            Transport::Udp => resolve_with(
                &mut shard_ref.net,
                node,
                resolver,
                &qname,
                qtype,
                &ClientPolicy::classic(),
            ),
            Transport::Tcp => resolve_tcp(&mut shard_ref.net, node, resolver, &qname, qtype),
        };

        self.registry.inc(
            "serve.queries",
            &[("carrier", carrier), ("transport", transport.label())],
        );
        self.registry
            .inc("serve.outcomes", &[("outcome", lookup.outcome.label())]);
        if let Some(elapsed) = lookup.elapsed {
            self.registry
                .observe_us("serve.sim_latency_us", &[], elapsed.as_micros());
        }

        let mut reply = match lookup.response {
            Some(m) => m,
            // The sim-side lookup died (timeout/unreachable): the wire
            // client still gets a well-formed SERVFAIL, like a real
            // resolver front end would send.
            None => servfail(wire_id, &qname, qtype),
        };
        reply.header.id = wire_id;
        reply.encode().map_err(ServeError::Encode)
    }

    /// Total engine events dispatched across all shards (soak reporting).
    pub fn total_events(&self) -> u64 {
        self.world.total_events()
    }
}

/// A minimal SERVFAIL reply echoing the question.
fn servfail(id: u16, qname: &dnswire::name::DnsName, qtype: RecordType) -> Message {
    let mut header = Header::query(id);
    header.flags.response = true;
    header.flags.recursion_desired = true;
    header.flags.recursion_available = true;
    header.rcode = dnswire::message::Rcode::ServFail;
    let mut msg = Message::new(header);
    msg.questions
        .push(dnswire::message::Question::new(qname.clone(), qtype));
    msg
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnswire::builder::QueryBuilder;

    fn quick_core() -> ServeCore {
        ServeCore::new(WorldConfig::quick(7))
    }

    fn query_bytes(id: u16, name: &str) -> Vec<u8> {
        let mut q = QueryBuilder::new(id, name, RecordType::A)
            .recursion_desired(true)
            .build()
            .unwrap();
        q.advertise_udp_size(dnswire::edns::DEFAULT_UDP_PAYLOAD_SIZE);
        q.encode().unwrap()
    }

    #[test]
    fn answers_echo_the_wire_id_and_question() {
        let mut core = quick_core();
        let query = query_bytes(0xBEEF, "m.facebook.com");
        let reply = core.answer(0, Transport::Udp, &query).unwrap();
        let msg = Message::decode(&reply).unwrap();
        assert_eq!(msg.header.id, 0xBEEF);
        assert!(msg.header.flags.response);
        assert_eq!(msg.questions[0].qname.to_string(), "m.facebook.com");
        assert!(!msg.answer_addrs().is_empty(), "expected A records");
        assert_eq!(core.registry.counter_total("serve.queries"), 1);
    }

    #[test]
    fn two_cores_replay_byte_identically() {
        let mut a = quick_core();
        let mut b = quick_core();
        for (i, name) in ["m.yelp.com", "m.twitter.com", "www.buzzfeed.com"]
            .iter()
            .enumerate()
        {
            let q = query_bytes(i as u16, name);
            for shard in 0..a.carrier_count().min(2) {
                let ra = a.answer(shard, Transport::Udp, &q).unwrap();
                let rb = b.answer(shard, Transport::Udp, &q).unwrap();
                assert_eq!(ra, rb, "shard {shard} answer diverged for {name}");
            }
        }
    }

    #[test]
    fn garbage_and_empty_queries_are_typed_errors() {
        let mut core = quick_core();
        assert!(matches!(
            core.answer(0, Transport::Udp, b"not dns"),
            Err(ServeError::Decode(_))
        ));
        let bad_shard = core.carrier_count();
        let q = query_bytes(1, "m.yelp.com");
        assert!(matches!(
            core.answer(bad_shard, Transport::Udp, &q),
            Err(ServeError::BadCarrier(_))
        ));
    }
}
