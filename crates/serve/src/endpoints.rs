//! The endpoints handshake file: how a running [`DnsServer`] tells a load
//! generator (possibly in another process) where each carrier's sockets
//! are bound and exactly which world it is serving, so the generator can
//! build a byte-identical ground-truth core.
//!
//! The format is a deliberately tiny line-oriented text file (`key value`,
//! `#` comments) — no JSON dependency, trivially greppable in CI logs.
//! Floats are serialized as IEEE-754 bit patterns in hex so the parsed
//! [`WorldConfig`] is *bit-identical* to the server's, not merely close.
//!
//! [`DnsServer`]: crate::server::DnsServer

use measure::{FaultProfile, QueueKind, WorldConfig};
use netsim::time::SimDuration;
use std::net::SocketAddr;

/// One carrier's serving sockets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CarrierEndpoint {
    /// Carrier shard index.
    pub index: usize,
    /// Carrier display name.
    pub name: String,
    /// UDP DNS socket address.
    pub udp: SocketAddr,
    /// TCP DNS listener address.
    pub tcp: SocketAddr,
    /// Device population of the shard (loadgen mix weighting).
    pub devices: usize,
}

/// Everything a load generator needs to drive a server and rebuild its
/// ground truth: the full world configuration plus per-carrier addresses.
#[derive(Debug, Clone, PartialEq)]
pub struct Endpoints {
    /// The exact world configuration the server built.
    pub config: WorldConfig,
    /// Per-carrier sockets, in shard order.
    pub carriers: Vec<CarrierEndpoint>,
}

impl Endpoints {
    /// Serializes to the line format described in the module docs.
    pub fn render(&self) -> String {
        let c = &self.config;
        let mut out = String::from("# serve endpoints v1\n");
        out.push_str(&format!("seed {}\n", c.seed));
        out.push_str(&format!("fleet_scale {:#018x}\n", c.fleet_scale.to_bits()));
        out.push_str(&format!(
            "gateway_scale {:#018x}\n",
            c.gateway_scale.to_bits()
        ));
        match c.ambient_period {
            Some(p) => out.push_str(&format!("ambient_period_us {}\n", p.as_micros())),
            None => out.push_str("ambient_period_us none\n"),
        }
        out.push_str(&format!("google_sites {}\n", c.google_sites));
        out.push_str(&format!("opendns_sites {}\n", c.opendns_sites));
        out.push_str(&format!("ecs {}\n", c.ecs as u8));
        out.push_str(&format!("three_g_era {}\n", c.three_g_era as u8));
        out.push_str(&format!("fault_profile {}\n", c.fault_profile.label()));
        out.push_str(&format!("queue {}\n", c.queue.label()));
        for ep in &self.carriers {
            out.push_str(&format!(
                "carrier {} {} {} {} {}\n",
                ep.index, ep.name, ep.udp, ep.tcp, ep.devices
            ));
        }
        out
    }

    /// Parses the line format back. Unknown keys are errors (the file is a
    /// handshake, not a config surface — drift must be loud).
    pub fn parse(text: &str) -> Result<Endpoints, String> {
        let mut config = WorldConfig::default();
        let mut carriers = Vec::new();
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, rest) = line
                .split_once(' ')
                .ok_or_else(|| format!("line {}: missing value", ln + 1))?;
            let err = |what: &str| format!("line {}: bad {what}: '{rest}'", ln + 1);
            match key {
                "seed" => config.seed = rest.parse().map_err(|_| err("seed"))?,
                "fleet_scale" => config.fleet_scale = parse_f64_bits(rest).ok_or(err("bits"))?,
                "gateway_scale" => {
                    config.gateway_scale = parse_f64_bits(rest).ok_or(err("bits"))?
                }
                "ambient_period_us" => {
                    config.ambient_period = if rest == "none" {
                        None
                    } else {
                        Some(SimDuration::from_micros(
                            rest.parse().map_err(|_| err("period"))?,
                        ))
                    };
                }
                "google_sites" => config.google_sites = rest.parse().map_err(|_| err("count"))?,
                "opendns_sites" => config.opendns_sites = rest.parse().map_err(|_| err("count"))?,
                "ecs" => config.ecs = rest == "1",
                "three_g_era" => config.three_g_era = rest == "1",
                "fault_profile" => {
                    config.fault_profile = FaultProfile::parse(rest).ok_or(err("profile"))?
                }
                "queue" => config.queue = QueueKind::parse(rest).ok_or(err("queue"))?,
                "carrier" => {
                    // Carrier names may contain spaces ("SK Telecom"), so
                    // the name is everything between the leading index and
                    // the trailing udp/tcp/devices fields.
                    let parts: Vec<&str> = rest.split_whitespace().collect();
                    if parts.len() < 5 {
                        return Err(err("carrier line (index name udp tcp devices)"));
                    }
                    let n = parts.len();
                    carriers.push(CarrierEndpoint {
                        index: parts[0].parse().map_err(|_| err("carrier index"))?,
                        name: parts[1..n - 3].join(" "),
                        udp: parts[n - 3].parse().map_err(|_| err("udp addr"))?,
                        tcp: parts[n - 2].parse().map_err(|_| err("tcp addr"))?,
                        devices: parts[n - 1].parse().map_err(|_| err("device count"))?,
                    });
                }
                other => return Err(format!("line {}: unknown key '{other}'", ln + 1)),
            }
        }
        if carriers.is_empty() {
            return Err("no carrier lines".into());
        }
        Ok(Endpoints { config, carriers })
    }
}

fn parse_f64_bits(s: &str) -> Option<f64> {
    let hex = s.strip_prefix("0x")?;
    u64::from_str_radix(hex, 16).ok().map(f64::from_bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_round_trip_bit_exactly() {
        let eps = Endpoints {
            config: WorldConfig::quick(99),
            carriers: vec![
                CarrierEndpoint {
                    index: 0,
                    name: "Alpha".into(),
                    udp: "127.0.0.1:40001".parse().unwrap(),
                    tcp: "127.0.0.1:40002".parse().unwrap(),
                    devices: 24,
                },
                CarrierEndpoint {
                    index: 1,
                    name: "Beta Mobile KR".into(),
                    udp: "127.0.0.1:40003".parse().unwrap(),
                    tcp: "127.0.0.1:40004".parse().unwrap(),
                    devices: 18,
                },
            ],
        };
        let text = eps.render();
        let parsed = Endpoints::parse(&text).unwrap();
        assert_eq!(parsed, eps);
        // Bit-exactness of the scale floats, the whole point of hex bits.
        assert_eq!(
            parsed.config.fleet_scale.to_bits(),
            eps.config.fleet_scale.to_bits()
        );
    }

    #[test]
    fn parse_rejects_drift() {
        assert!(Endpoints::parse("flux 3\ncarrier 0 A 1.2.3.4:1 1.2.3.4:2 1").is_err());
        assert!(Endpoints::parse("seed 5").is_err(), "no carriers = error");
        assert!(Endpoints::parse("carrier 0 A 1.2.3.4:1").is_err());
    }
}
