//! The serving loop's notion of time, abstracted so the socket front end
//! and the load generator can be paced by the wall clock in production and
//! by a hand-cranked clock in tests — without a single `Instant::now()`
//! escaping into code a sim crate could reach.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A monotonic clock the serving plane paces itself with. Implementations
/// report microseconds since their own epoch (construction time).
pub trait Clock: Send + Sync {
    /// Microseconds elapsed since the clock's epoch.
    fn now_us(&self) -> u64;

    /// Blocks until at least `deadline_us` on this clock's timeline.
    /// Manual clocks return immediately (tests advance them explicitly).
    fn sleep_until(&self, deadline_us: u64);
}

/// The production clock: wall time from [`Instant`], epoch = construction.
#[derive(Debug)]
pub struct WallClock {
    start: Instant,
}

impl WallClock {
    /// A wall clock whose epoch is now.
    pub fn new() -> WallClock {
        WallClock {
            start: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    fn sleep_until(&self, deadline_us: u64) {
        let now = self.now_us();
        if deadline_us > now {
            std::thread::sleep(Duration::from_micros(deadline_us - now));
        }
    }
}

/// A hand-cranked clock for deterministic tests and benches: time moves
/// only when [`ManualClock::advance_us`] is called.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// A manual clock at microsecond zero.
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// Advances the clock by `us` microseconds.
    pub fn advance_us(&self, us: u64) {
        self.now.fetch_add(us, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_us(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }

    fn sleep_until(&self, _deadline_us: u64) {
        // Tests drive time explicitly; sleeping would deadlock them.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_only_moves_when_advanced() {
        let c = ManualClock::new();
        assert_eq!(c.now_us(), 0);
        c.sleep_until(5_000);
        assert_eq!(c.now_us(), 0, "sleep on a manual clock must not block");
        c.advance_us(1_500);
        assert_eq!(c.now_us(), 1_500);
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::new();
        let a = c.now_us();
        let b = c.now_us();
        assert!(b >= a);
        // sleep_until a past deadline returns immediately.
        c.sleep_until(0);
    }
}
