#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `serve` — the live serving plane: a real UDP/TCP DNS service answering
//! RFC 1035 wire queries out of the simulated cellular-DNS world.
//!
//! The crate bridges two planes that must never contaminate each other:
//!
//! * The **sim plane** stays exactly what the batch campaign runs: a
//!   deterministic discrete-event engine on virtual time. [`ServeCore`]
//!   drives it one resolution at a time — same resolver, forwarder, and
//!   authority code, same per-shard RNG streams — so the answer served
//!   over the wire is byte-equal to what the batch resolver would have
//!   produced for the same world, seed, and injection order.
//! * The **host plane** is everything that touches real sockets and the
//!   wall clock: the [`DnsServer`] socket front end, the [`Clock`]
//!   abstraction its loops pace themselves with, and the latency/QPS
//!   accounting. detlint classifies this whole crate as host-plane, so
//!   wall-clock reads are permitted here and still forbidden in every sim
//!   crate.
//!
//! Ground-truth equivalence is therefore a replay property: record the
//! per-carrier sequence of wire queries the bridge processed, replay it
//! into a second [`ServeCore`] built from the same [`WorldConfig`], and
//! every answer must match byte-for-byte. The `loadgen` crate automates
//! exactly that check.

pub mod admit;
pub mod clock;
pub mod core;
pub mod endpoints;
pub mod server;

pub use crate::admit::{Admission, AdmitConfig, ShedReason, Verdict};
pub use crate::core::{
    classify, control_reply, is_shed_reply, DropReason, ServeCore, Served, Transport, WireClass,
};
pub use clock::{Clock, ManualClock, WallClock};
pub use endpoints::{CarrierEndpoint, Endpoints};
pub use measure::{FaultProfile, WorldConfig};
pub use server::{DnsServer, ServeReport};

/// Returns the placeholder-free version marker used by integration tests to
/// confirm the crate wires together.
pub const CRATE_NAME: &str = "serve";
