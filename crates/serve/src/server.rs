//! The socket front end: one UDP socket and one TCP listener per carrier
//! shard, all feeding a single bridge thread that owns the [`ServeCore`].
//!
//! Ordering contract (what makes the wire ground-truth-checkable): per
//! carrier, queries are processed in arrival order. A loopback UDP socket
//! pair delivers datagrams FIFO, each socket has exactly one receive
//! thread, and an `mpsc` channel preserves per-producer order — so a load
//! generator that sends one-at-a-time per carrier knows exactly the
//! injection sequence the core saw, and can replay it into a truth core.
//! Cross-carrier interleaving is unconstrained and irrelevant: shards are
//! independent engines.
//!
//! Hostile-wire posture: the bridge classifies every input before paying
//! for sim work. Malformed inputs earn FORMERR/NOTIMP (or a typed silent
//! drop) straight from the pure reject path; well-formed queries pass
//! through [`Admission`] and may earn a header-only REFUSED when the
//! carrier is over its inflight bound or token rate. TCP connections get
//! per-connection defenses: an idle timeout, a max frame size, slow-read
//! (slowloris) eviction, and a bounded pipeline buffer. On [`DnsServer::
//! stop`] the bridge drains everything already enqueued before exiting,
//! so in-flight queries complete and nothing is silently dropped.

use crate::admit::{Admission, AdmitConfig, Verdict};
use crate::clock::{Clock, WallClock};
use crate::core::{classify, control_reply, ServeCore, Served, Transport, WireClass};
use crate::endpoints::{CarrierEndpoint, Endpoints};
use dnssim::{frame, split_frame};
use dnswire::message::Rcode;
use measure::WorldConfig;
use obs::Registry;
use std::io::{ErrorKind, Read, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// How long blocking socket reads wait before re-checking the stop flag.
const POLL: Duration = Duration::from_millis(50);
/// TCP read poll interval: short, so connection deadlines are enforced
/// promptly even while a peer dribbles nothing.
const TCP_READ_POLL: Duration = Duration::from_millis(100);
/// A connection with *no* buffered bytes may sit quiet this long before
/// it is evicted (a well-behaved stub holds at most one exchange open).
const TCP_IDLE_TIMEOUT: Duration = Duration::from_secs(10);
/// A connection with a *partial frame* buffered must complete it within
/// this deadline or be evicted — the slowloris defense: a writer cannot
/// hold a thread by dribbling one byte per poll.
const FRAME_DEADLINE: Duration = Duration::from_secs(1);
/// Largest UDP query datagram we accept.
const MAX_UDP_QUERY: usize = 4096;
/// Largest TCP query frame we accept. DNS *queries* are small; a peer
/// declaring more than this in its length prefix is evicted before we
/// buffer a byte of the body (the 65,535 wire maximum is for answers).
const MAX_TCP_FRAME: usize = 4096;
/// Largest buffered backlog per connection (bounded pipelining): more
/// unserved bytes than this and the connection is evicted as a flood.
const MAX_CONN_BUF: usize = 16 * 1024;
/// After stop, the bridge keeps serving whatever is still being enqueued
/// until the channel stays quiet this long…
const DRAIN_POLL: Duration = Duration::from_millis(100);
/// …or this hard deadline elapses.
const DRAIN_DEADLINE: Duration = Duration::from_secs(3);

enum Event {
    Udp {
        shard: usize,
        peer: SocketAddr,
        data: Vec<u8>,
    },
    Tcp {
        shard: usize,
        data: Vec<u8>,
        reply: mpsc::Sender<Vec<u8>>,
    },
    Shutdown,
}

/// TCP eviction tallies, bumped from per-connection threads and folded
/// into the report registry at stop.
#[derive(Debug, Default)]
struct TcpGuards {
    idle: AtomicU64,
    slow_read: AtomicU64,
    oversized: AtomicU64,
    flood: AtomicU64,
    bad_frame: AtomicU64,
}

impl TcpGuards {
    fn counts(&self) -> [(&'static str, u64); 5] {
        [
            ("idle", self.idle.load(Ordering::SeqCst)),
            ("slow-read", self.slow_read.load(Ordering::SeqCst)),
            ("oversized", self.oversized.load(Ordering::SeqCst)),
            ("flood", self.flood.load(Ordering::SeqCst)),
            ("bad-frame", self.bad_frame.load(Ordering::SeqCst)),
        ]
    }
}

/// What the bridge thread hands back when the server stops.
#[derive(Debug)]
pub struct ServeReport {
    /// Wire queries resolved through the sim (UDP + TCP).
    pub answered: u64,
    /// Wire inputs dropped with a typed reason (too short, stray
    /// response, bad shard) — counted, never accidental.
    pub errors: u64,
    /// Malformed inputs answered FORMERR/NOTIMP without touching the sim.
    pub rejected: u64,
    /// Well-formed queries shed (REFUSED) by admission control.
    pub shed: u64,
    /// Queries served during the post-stop drain phase.
    pub drained: u64,
    /// TCP connections evicted by per-connection defenses.
    pub evicted: u64,
    /// Engine events dispatched across all shards while serving.
    pub events: u64,
    /// True when the bridge thread died instead of reporting — any soak
    /// that sees this must fail loudly.
    pub panicked: bool,
    /// The core's sim-plane registry (queries, outcomes, sim latency)
    /// plus the server-plane counters (shed, evictions, drain).
    pub registry: Registry,
}

/// A running DNS server: sockets bound, threads live. Obtain endpoints
/// via [`DnsServer::endpoints`], drive traffic, then [`DnsServer::stop`].
pub struct DnsServer {
    endpoints: Endpoints,
    stop: Arc<AtomicBool>,
    answered: Arc<AtomicU64>,
    guards: Arc<TcpGuards>,
    tx: mpsc::Sender<Event>,
    bridge: std::thread::JoinHandle<ServeReport>,
    io_threads: Vec<std::thread::JoinHandle<()>>,
}

impl DnsServer {
    /// Builds the world and binds one UDP socket + one TCP listener per
    /// carrier on `bind` (port 0 = kernel-assigned, the loopback default).
    pub fn start(config: WorldConfig, bind: Ipv4Addr) -> std::io::Result<DnsServer> {
        let core = ServeCore::new(config.clone());
        let stop = Arc::new(AtomicBool::new(false));
        let answered = Arc::new(AtomicU64::new(0));
        let guards = Arc::new(TcpGuards::default());
        let (tx, rx) = mpsc::channel::<Event>();

        // Per-shard backlog gauges: producers increment at enqueue, the
        // bridge decrements at dequeue; the bridge reads them to shed.
        let inflight: Arc<Vec<AtomicU64>> = Arc::new(
            (0..core.carrier_count())
                .map(|_| AtomicU64::new(0))
                .collect(),
        );
        let clock = WallClock::new();
        let admission = Admission::new(
            AdmitConfig::for_carrier(&config, avg_devices(&core)),
            core.carrier_count(),
            clock.now_us(),
        );

        let mut carriers = Vec::new();
        let mut udp_socks = Vec::new();
        let mut io_threads = Vec::new();
        for shard in 0..core.carrier_count() {
            let udp = UdpSocket::bind((bind, 0))?;
            udp.set_read_timeout(Some(POLL))?;
            let tcp = TcpListener::bind((bind, 0))?;
            tcp.set_nonblocking(true)?;
            carriers.push(CarrierEndpoint {
                index: shard,
                name: core.carrier_name(shard).to_string(),
                udp: udp.local_addr()?,
                tcp: tcp.local_addr()?,
                devices: core.carrier_devices(shard),
            });

            let udp_rx_sock = udp.try_clone()?;
            udp_socks.push(udp);
            let utx = tx.clone();
            let ustop = Arc::clone(&stop);
            let uinflight = Arc::clone(&inflight);
            io_threads.push(std::thread::spawn(move || {
                udp_recv_loop(shard, udp_rx_sock, utx, ustop, uinflight)
            }));

            let ttx = tx.clone();
            let tstop = Arc::clone(&stop);
            let tinflight = Arc::clone(&inflight);
            let tguards = Arc::clone(&guards);
            io_threads.push(std::thread::spawn(move || {
                tcp_accept_loop(shard, tcp, ttx, tstop, tinflight, tguards)
            }));
        }

        let endpoints = Endpoints { config, carriers };
        let bstop = Arc::clone(&stop);
        let banswered = Arc::clone(&answered);
        let binflight = Arc::clone(&inflight);
        let bridge = std::thread::spawn(move || {
            bridge_loop(core, udp_socks, rx, bstop, banswered, binflight, admission)
        });

        Ok(DnsServer {
            endpoints,
            stop,
            answered,
            guards,
            tx,
            bridge,
            io_threads,
        })
    }

    /// Where each carrier is listening, plus the exact world config.
    pub fn endpoints(&self) -> &Endpoints {
        &self.endpoints
    }

    /// Wire queries answered so far.
    pub fn answered(&self) -> u64 {
        self.answered.load(Ordering::SeqCst)
    }

    /// Stops the server gracefully: quiesces the socket threads, lets the
    /// bridge drain everything already enqueued (in-flight queries still
    /// get their answers), joins every thread, and returns the report.
    pub fn stop(self) -> ServeReport {
        self.stop.store(true, Ordering::SeqCst);
        // Socket threads exit at their next poll tick; joining them first
        // means no *new* UDP work arrives during the drain.
        for t in self.io_threads {
            let _ = t.join();
        }
        // Wake the bridge even if no traffic is flowing, then drop our
        // sender so a fully-quiesced channel reads as disconnected.
        let _ = self.tx.send(Event::Shutdown);
        drop(self.tx);
        let mut report = match self.bridge.join() {
            Ok(report) => report,
            Err(_) => ServeReport {
                answered: self.answered.load(Ordering::SeqCst),
                errors: 0,
                rejected: 0,
                shed: 0,
                drained: 0,
                evicted: 0,
                events: 0,
                panicked: true,
                registry: Registry::default(),
            },
        };
        // Fold TCP eviction tallies (bumped on detached conn threads)
        // into the final registry.
        for (reason, n) in self.guards.counts() {
            if n > 0 {
                report
                    .registry
                    .inc_by("serve.conn_evicted", &[("reason", reason)], n);
                report.evicted += n;
            }
        }
        report
    }
}

/// Mean device population per shard (admission sizing).
fn avg_devices(core: &ServeCore) -> usize {
    let shards = core.carrier_count().max(1);
    let total: usize = (0..shards).map(|s| core.carrier_devices(s)).sum();
    total / shards
}

fn udp_recv_loop(
    shard: usize,
    sock: UdpSocket,
    tx: mpsc::Sender<Event>,
    stop: Arc<AtomicBool>,
    inflight: Arc<Vec<AtomicU64>>,
) {
    let mut buf = [0u8; MAX_UDP_QUERY];
    while !stop.load(Ordering::SeqCst) {
        match sock.recv_from(&mut buf) {
            Ok((n, peer)) => {
                let event = Event::Udp {
                    shard,
                    peer,
                    data: buf[..n].to_vec(),
                };
                inflight[shard].fetch_add(1, Ordering::SeqCst);
                if tx.send(event).is_err() {
                    break;
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(_) => break,
        }
    }
}

fn tcp_accept_loop(
    shard: usize,
    listener: TcpListener,
    tx: mpsc::Sender<Event>,
    stop: Arc<AtomicBool>,
    inflight: Arc<Vec<AtomicU64>>,
    guards: Arc<TcpGuards>,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let ctx = tx.clone();
                let cstop = Arc::clone(&stop);
                let cinflight = Arc::clone(&inflight);
                let cguards = Arc::clone(&guards);
                // One thread per connection: TCP queries are rare (TC
                // retries and chaos probes), so this stays tiny under
                // soak — and the per-connection defenses below bound how
                // long a hostile peer can hold its thread.
                std::thread::spawn(move || {
                    tcp_conn_loop(shard, stream, ctx, cstop, cinflight, cguards)
                });
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => break,
        }
    }
}

fn tcp_conn_loop(
    shard: usize,
    mut stream: TcpStream,
    tx: mpsc::Sender<Event>,
    stop: Arc<AtomicBool>,
    inflight: Arc<Vec<AtomicU64>>,
    guards: Arc<TcpGuards>,
) {
    if stream.set_read_timeout(Some(TCP_READ_POLL)).is_err() {
        return;
    }
    let mut buf = Vec::new();
    let mut chunk = [0u8; 2048];
    let mut last_progress = Instant::now();
    while !stop.load(Ordering::SeqCst) {
        // Bounded pipelining: a peer may not buffer more backlog than
        // MAX_CONN_BUF unserved bytes.
        if buf.len() > MAX_CONN_BUF {
            guards.flood.fetch_add(1, Ordering::SeqCst);
            return;
        }
        // Frame-size cap, enforced from the length prefix alone so an
        // oversized declaration is evicted before its body is buffered.
        if buf.len() >= 2 {
            let declared = u16::from_be_bytes([buf[0], buf[1]]) as usize;
            if declared > MAX_TCP_FRAME {
                guards.oversized.fetch_add(1, Ordering::SeqCst);
                return;
            }
        }
        // Serve every complete frame currently buffered.
        loop {
            match split_frame(&buf) {
                Ok(Some((payload, consumed))) => {
                    let data = payload.to_vec();
                    buf.drain(..consumed);
                    let (rtx, rrx) = mpsc::channel();
                    inflight[shard].fetch_add(1, Ordering::SeqCst);
                    if tx
                        .send(Event::Tcp {
                            shard,
                            data,
                            reply: rtx,
                        })
                        .is_err()
                    {
                        return;
                    }
                    let Ok(reply) = rrx.recv() else { return };
                    // An empty reply marks a typed drop (stray response,
                    // sub-header frame): close, like a resolver dropping
                    // a garbage stream. FORMERR/NOTIMP/REFUSED are real
                    // replies and keep the connection open.
                    if reply.is_empty() {
                        return;
                    }
                    let Ok(framed) = frame(&reply) else { return };
                    if stream.write_all(&framed).is_err() {
                        return;
                    }
                    last_progress = Instant::now();
                }
                Ok(None) => break,
                // Unrecoverable framing (zero-length prefix): drop the
                // connection, mirroring the sim relay's typed rejection.
                Err(_) => {
                    guards.bad_frame.fetch_add(1, Ordering::SeqCst);
                    return;
                }
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // client closed
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                last_progress = Instant::now();
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                let quiet = last_progress.elapsed();
                if !buf.is_empty() && quiet >= FRAME_DEADLINE {
                    // Slowloris: a partial frame this stale never
                    // completes honestly.
                    guards.slow_read.fetch_add(1, Ordering::SeqCst);
                    return;
                }
                if buf.is_empty() && quiet >= TCP_IDLE_TIMEOUT {
                    guards.idle.fetch_add(1, Ordering::SeqCst);
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Per-event bridge bookkeeping shared between the live loop and the
/// drain phase.
struct BridgeState {
    core: ServeCore,
    udp_socks: Vec<UdpSocket>,
    admission: Admission,
    clock: WallClock,
    answered: Arc<AtomicU64>,
    inflight: Arc<Vec<AtomicU64>>,
    errors: u64,
    rejected: u64,
    shed: u64,
}

impl BridgeState {
    /// Serves one event end to end: classification, admission, core
    /// handling, and the wire write.
    fn serve(&mut self, event: Event) {
        let (shard, data, via): (usize, Vec<u8>, Via) = match event {
            Event::Udp { shard, peer, data } => (shard, data, Via::Udp(peer)),
            Event::Tcp { shard, data, reply } => (shard, data, Via::Tcp(reply)),
            Event::Shutdown => return,
        };
        // This event is leaving the queue; the load() below therefore
        // reads the backlog *including* this event.
        let depth = self
            .inflight
            .get(shard)
            .map(|g| g.fetch_sub(1, Ordering::SeqCst))
            .unwrap_or(0);

        // Admission applies only to well-formed queries: rejects are
        // answered from the pure path at negligible cost, so garbage
        // cannot burn the tokens that meter real sim work.
        if matches!(classify(&data), WireClass::WellFormed) {
            if let Verdict::Shed(reason) = self.admission.admit(shard, self.clock.now_us(), depth) {
                self.shed += 1;
                self.core
                    .registry
                    .inc("serve.shed", &[("reason", reason.label())]);
                if let Some(refused) = control_reply(&data, Rcode::Refused) {
                    self.send(shard, via, refused);
                }
                return;
            }
        }

        let transport = match via {
            Via::Udp(_) => Transport::Udp,
            Via::Tcp(_) => Transport::Tcp,
        };
        match self.core.handle(shard, transport, &data) {
            Served::Reply(bytes) => {
                if matches!(
                    dnswire::message::MessageView::new(&bytes).map(|v| v.rcode()),
                    Ok(Rcode::FormErr | Rcode::NotImp)
                ) && bytes.len() == 12
                {
                    self.rejected += 1;
                } else {
                    self.answered.fetch_add(1, Ordering::SeqCst);
                }
                self.send(shard, via, bytes);
            }
            Served::Drop(_) => {
                self.errors += 1;
                // For TCP, an empty reply tells the conn thread to close.
                if let Via::Tcp(reply) = via {
                    let _ = reply.send(Vec::new());
                }
            }
        }
    }

    fn send(&self, shard: usize, via: Via, bytes: Vec<u8>) {
        match via {
            Via::Udp(peer) => {
                if let Some(sock) = self.udp_socks.get(shard) {
                    let _ = sock.send_to(&bytes, peer);
                }
            }
            Via::Tcp(reply) => {
                let _ = reply.send(bytes);
            }
        }
    }
}

enum Via {
    Udp(SocketAddr),
    Tcp(mpsc::Sender<Vec<u8>>),
}

fn bridge_loop(
    core: ServeCore,
    udp_socks: Vec<UdpSocket>,
    rx: mpsc::Receiver<Event>,
    stop: Arc<AtomicBool>,
    answered: Arc<AtomicU64>,
    inflight: Arc<Vec<AtomicU64>>,
    admission: Admission,
) -> ServeReport {
    let mut state = BridgeState {
        core,
        udp_socks,
        admission,
        clock: WallClock::new(),
        answered,
        inflight,
        errors: 0,
        rejected: 0,
        shed: 0,
    };
    loop {
        match rx.recv_timeout(POLL) {
            Ok(Event::Shutdown) => break,
            Ok(event) => state.serve(event),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    // Graceful drain: keep serving whatever was already enqueued (or is
    // still being finished by live TCP connection threads) until the
    // channel goes quiet or the hard deadline passes. In-flight queries
    // complete; nothing is silently dropped.
    let drained = drain_remaining(&mut state, &rx);
    if drained > 0 {
        state
            .core
            .registry
            .inc_by("serve.drain_completed", &[], drained);
    }
    ServeReport {
        answered: state.answered.load(Ordering::SeqCst),
        errors: state.errors,
        rejected: state.rejected,
        shed: state.shed,
        drained,
        evicted: 0, // folded in by stop() from the connection guards
        events: state.core.total_events(),
        panicked: false,
        registry: state.core.registry,
    }
}

/// Serves every event still reachable on `rx` until the channel stays
/// quiet for [`DRAIN_POLL`] or [`DRAIN_DEADLINE`] elapses. Returns how
/// many events were served in the drain phase.
fn drain_remaining(state: &mut BridgeState, rx: &mpsc::Receiver<Event>) -> u64 {
    let deadline = Instant::now() + DRAIN_DEADLINE;
    let mut drained = 0u64;
    while Instant::now() < deadline {
        match rx.recv_timeout(DRAIN_POLL) {
            Ok(Event::Shutdown) => continue,
            Ok(event) => {
                state.serve(event);
                drained += 1;
            }
            Err(mpsc::RecvTimeoutError::Timeout) => break,
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    drained
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_serves_everything_already_enqueued() {
        let config = WorldConfig::quick(3);
        let core = ServeCore::new(config.clone());
        let carriers = core.carrier_count();
        let answered = Arc::new(AtomicU64::new(0));
        let inflight: Arc<Vec<AtomicU64>> =
            Arc::new((0..carriers).map(|_| AtomicU64::new(0)).collect());
        let clock = WallClock::new();
        let admission = Admission::new(AdmitConfig::unthrottled(), carriers, clock.now_us());
        let mut state = BridgeState {
            core,
            udp_socks: Vec::new(),
            admission,
            clock,
            answered: Arc::clone(&answered),
            inflight: Arc::clone(&inflight),
            errors: 0,
            rejected: 0,
            shed: 0,
        };

        // Enqueue three TCP queries and a shutdown marker, then drain.
        let (tx, rx) = mpsc::channel::<Event>();
        let mut rxs = Vec::new();
        let wire = {
            let mut q =
                dnswire::builder::QueryBuilder::new(5, "m.yelp.com", dnswire::RecordType::A)
                    .recursion_desired(true)
                    .build()
                    .unwrap();
            q.advertise_udp_size(dnswire::edns::DEFAULT_UDP_PAYLOAD_SIZE);
            q.encode().unwrap()
        };
        for _ in 0..3 {
            let (rtx, rrx) = mpsc::channel();
            inflight[0].fetch_add(1, Ordering::SeqCst);
            tx.send(Event::Tcp {
                shard: 0,
                data: wire.clone(),
                reply: rtx,
            })
            .unwrap();
            rxs.push(rrx);
        }
        tx.send(Event::Shutdown).unwrap();
        drop(tx);

        let drained = drain_remaining(&mut state, &rx);
        assert_eq!(drained, 3, "every enqueued query must be served");
        assert_eq!(answered.load(Ordering::SeqCst), 3);
        for rrx in rxs {
            let reply = rrx.recv().expect("drained reply");
            assert!(!reply.is_empty(), "drained queries still get answers");
        }
    }
}
