//! The socket front end: one UDP socket and one TCP listener per carrier
//! shard, all feeding a single bridge thread that owns the [`ServeCore`].
//!
//! Ordering contract (what makes the wire ground-truth-checkable): per
//! carrier, queries are processed in arrival order. A loopback UDP socket
//! pair delivers datagrams FIFO, each socket has exactly one receive
//! thread, and an `mpsc` channel preserves per-producer order — so a load
//! generator that sends one-at-a-time per carrier knows exactly the
//! injection sequence the core saw, and can replay it into a truth core.
//! Cross-carrier interleaving is unconstrained and irrelevant: shards are
//! independent engines.

use crate::core::{ServeCore, Transport};
use crate::endpoints::{CarrierEndpoint, Endpoints};
use dnssim::{frame, split_frame};
use measure::WorldConfig;
use obs::Registry;
use std::io::{ErrorKind, Read, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long blocking socket reads wait before re-checking the stop flag.
const POLL: Duration = Duration::from_millis(50);
/// Idle timeout on accepted TCP connections (a stalled client may hold
/// its thread at most this long past the last byte).
const TCP_READ_TIMEOUT: Duration = Duration::from_secs(5);
/// Largest UDP query datagram we accept.
const MAX_UDP_QUERY: usize = 4096;

enum Event {
    Udp {
        shard: usize,
        peer: SocketAddr,
        data: Vec<u8>,
    },
    Tcp {
        shard: usize,
        data: Vec<u8>,
        reply: mpsc::Sender<Vec<u8>>,
    },
    Shutdown,
}

/// What the bridge thread hands back when the server stops.
#[derive(Debug)]
pub struct ServeReport {
    /// Wire queries answered (UDP + TCP).
    pub answered: u64,
    /// Wire queries dropped as undecodable.
    pub errors: u64,
    /// Engine events dispatched across all shards while serving.
    pub events: u64,
    /// The core's sim-plane registry (queries, outcomes, sim latency).
    pub registry: Registry,
}

/// A running DNS server: sockets bound, threads live. Obtain endpoints
/// via [`DnsServer::endpoints`], drive traffic, then [`DnsServer::stop`].
pub struct DnsServer {
    endpoints: Endpoints,
    stop: Arc<AtomicBool>,
    answered: Arc<AtomicU64>,
    tx: mpsc::Sender<Event>,
    bridge: JoinHandle<ServeReport>,
    io_threads: Vec<JoinHandle<()>>,
}

impl DnsServer {
    /// Builds the world and binds one UDP socket + one TCP listener per
    /// carrier on `bind` (port 0 = kernel-assigned, the loopback default).
    pub fn start(config: WorldConfig, bind: Ipv4Addr) -> std::io::Result<DnsServer> {
        let core = ServeCore::new(config.clone());
        let stop = Arc::new(AtomicBool::new(false));
        let answered = Arc::new(AtomicU64::new(0));
        let (tx, rx) = mpsc::channel::<Event>();

        let mut carriers = Vec::new();
        let mut udp_socks = Vec::new();
        let mut io_threads = Vec::new();
        for shard in 0..core.carrier_count() {
            let udp = UdpSocket::bind((bind, 0))?;
            udp.set_read_timeout(Some(POLL))?;
            let tcp = TcpListener::bind((bind, 0))?;
            tcp.set_nonblocking(true)?;
            carriers.push(CarrierEndpoint {
                index: shard,
                name: core.carrier_name(shard).to_string(),
                udp: udp.local_addr()?,
                tcp: tcp.local_addr()?,
                devices: core.carrier_devices(shard),
            });

            let udp_rx_sock = udp.try_clone()?;
            udp_socks.push(udp);
            let utx = tx.clone();
            let ustop = Arc::clone(&stop);
            io_threads.push(std::thread::spawn(move || {
                udp_recv_loop(shard, udp_rx_sock, utx, ustop)
            }));

            let ttx = tx.clone();
            let tstop = Arc::clone(&stop);
            io_threads.push(std::thread::spawn(move || {
                tcp_accept_loop(shard, tcp, ttx, tstop)
            }));
        }

        let endpoints = Endpoints { config, carriers };
        let bstop = Arc::clone(&stop);
        let banswered = Arc::clone(&answered);
        let bridge = std::thread::spawn(move || bridge_loop(core, udp_socks, rx, bstop, banswered));

        Ok(DnsServer {
            endpoints,
            stop,
            answered,
            tx,
            bridge,
            io_threads,
        })
    }

    /// Where each carrier is listening, plus the exact world config.
    pub fn endpoints(&self) -> &Endpoints {
        &self.endpoints
    }

    /// Wire queries answered so far.
    pub fn answered(&self) -> u64 {
        self.answered.load(Ordering::SeqCst)
    }

    /// Stops the server: drains in-flight work, joins every thread, and
    /// returns the final report.
    pub fn stop(self) -> ServeReport {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the bridge even if no traffic is flowing.
        let _ = self.tx.send(Event::Shutdown);
        for t in self.io_threads {
            let _ = t.join();
        }
        match self.bridge.join() {
            Ok(report) => report,
            Err(_) => ServeReport {
                answered: self.answered.load(Ordering::SeqCst),
                errors: 0,
                events: 0,
                registry: Registry::default(),
            },
        }
    }
}

fn udp_recv_loop(shard: usize, sock: UdpSocket, tx: mpsc::Sender<Event>, stop: Arc<AtomicBool>) {
    let mut buf = [0u8; MAX_UDP_QUERY];
    while !stop.load(Ordering::SeqCst) {
        match sock.recv_from(&mut buf) {
            Ok((n, peer)) => {
                let event = Event::Udp {
                    shard,
                    peer,
                    data: buf[..n].to_vec(),
                };
                if tx.send(event).is_err() {
                    break;
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(_) => break,
        }
    }
}

fn tcp_accept_loop(
    shard: usize,
    listener: TcpListener,
    tx: mpsc::Sender<Event>,
    stop: Arc<AtomicBool>,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let ctx = tx.clone();
                let cstop = Arc::clone(&stop);
                // One thread per connection: TCP retries are rare (TC
                // answers only), so this stays tiny even under soak.
                std::thread::spawn(move || tcp_conn_loop(shard, stream, ctx, cstop));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => break,
        }
    }
}

fn tcp_conn_loop(
    shard: usize,
    mut stream: TcpStream,
    tx: mpsc::Sender<Event>,
    stop: Arc<AtomicBool>,
) {
    if stream.set_read_timeout(Some(TCP_READ_TIMEOUT)).is_err() {
        return;
    }
    let mut buf = Vec::new();
    let mut chunk = [0u8; 2048];
    while !stop.load(Ordering::SeqCst) {
        // Serve every complete frame currently buffered.
        loop {
            match split_frame(&buf) {
                Ok(Some((payload, consumed))) => {
                    let data = payload.to_vec();
                    buf.drain(..consumed);
                    let (rtx, rrx) = mpsc::channel();
                    if tx
                        .send(Event::Tcp {
                            shard,
                            data,
                            reply: rtx,
                        })
                        .is_err()
                    {
                        return;
                    }
                    let Ok(reply) = rrx.recv() else { return };
                    // An empty reply means the query was undecodable:
                    // close, like a resolver dropping a garbage stream.
                    if reply.is_empty() {
                        return;
                    }
                    let Ok(framed) = frame(&reply) else { return };
                    if stream.write_all(&framed).is_err() {
                        return;
                    }
                }
                Ok(None) => break,
                // Unrecoverable framing (zero-length prefix): drop the
                // connection, mirroring the sim relay's typed rejection.
                Err(_) => return,
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // client closed
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(_) => return,
        }
    }
}

fn bridge_loop(
    mut core: ServeCore,
    udp_socks: Vec<UdpSocket>,
    rx: mpsc::Receiver<Event>,
    stop: Arc<AtomicBool>,
    answered: Arc<AtomicU64>,
) -> ServeReport {
    let mut errors = 0u64;
    loop {
        let event = match rx.recv_timeout(POLL) {
            Ok(ev) => ev,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        };
        match event {
            Event::Udp { shard, peer, data } => {
                match core.answer(shard, Transport::Udp, &data) {
                    Ok(reply) => {
                        answered.fetch_add(1, Ordering::SeqCst);
                        if let Some(sock) = udp_socks.get(shard) {
                            let _ = sock.send_to(&reply, peer);
                        }
                    }
                    // Undecodable datagrams are dropped silently, like a
                    // real server; the counter still records them.
                    Err(_) => errors += 1,
                }
            }
            Event::Tcp { shard, data, reply } => match core.answer(shard, Transport::Tcp, &data) {
                Ok(bytes) => {
                    answered.fetch_add(1, Ordering::SeqCst);
                    let _ = reply.send(bytes);
                }
                Err(_) => {
                    errors += 1;
                    let _ = reply.send(Vec::new());
                }
            },
            Event::Shutdown => break,
        }
    }
    ServeReport {
        answered: answered.load(Ordering::SeqCst),
        errors,
        events: core.total_events(),
        registry: core.registry,
    }
}
