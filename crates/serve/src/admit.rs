//! Overload admission control for the serving plane: a deterministic
//! token bucket plus a bounded per-carrier inflight queue. The bridge
//! consults this before spending sim work on a well-formed query; a
//! [`Verdict::Shed`] turns into a header-only REFUSED on the wire (see
//! [`crate::core::control_reply`]) without ever touching the sim, so
//! shedding cannot desync a ground-truth replica.
//!
//! Determinism: given the same sequence of `(now_us, inflight)` inputs,
//! an [`Admission`] makes the same decisions — there is no internal
//! clock, no randomness, and only integer arithmetic (micro-token
//! accounting, so refill never loses precision to rounding).

use measure::WorldConfig;

/// Why a query was shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The carrier's inflight queue is over its bound: the bridge is
    /// backlogged and more queueing only adds latency for everyone.
    QueueFull,
    /// The carrier's token bucket is empty: sustained arrival rate above
    /// the provisioned service rate.
    RateExceeded,
}

impl ShedReason {
    /// Stable label for the `serve.shed` counter.
    pub fn label(self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue-full",
            ShedReason::RateExceeded => "rate",
        }
    }
}

/// Admission decision for one well-formed query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Spend sim work on it.
    Admit,
    /// Answer REFUSED without resolving.
    Shed(ShedReason),
}

/// Per-carrier admission knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmitConfig {
    /// Sustained admitted queries/second per carrier.
    pub rate_per_sec: u64,
    /// Burst capacity (the bucket starts full at this many tokens).
    pub burst: u64,
    /// Largest tolerated per-carrier backlog; queries arriving while the
    /// bridge is this far behind are shed instead of queued.
    pub max_inflight: u64,
}

impl AdmitConfig {
    /// Sizes admission for one carrier of the world described by
    /// `config`: capacity scales with the carrier's device population
    /// (each device is provisioned a generous per-device query budget on
    /// top of a base rate), so bigger worlds admit proportionally more.
    /// The bounds are far above what a well-behaved one-in-flight client
    /// generates, and far below what a flood can enqueue.
    pub fn for_carrier(config: &WorldConfig, devices: usize) -> AdmitConfig {
        // fleet_scale is already reflected in `devices`; the config is
        // taken whole so future knobs (e.g. an explicit admission rate)
        // have a single place to land.
        let _ = config;
        let d = devices as u64;
        AdmitConfig {
            rate_per_sec: 40_000 + 400 * d,
            burst: 256 + 4 * d,
            max_inflight: 32,
        }
    }

    /// A config that never sheds — pays the same admission arithmetic on
    /// every query (benchmarks measure the hardened path honestly) but
    /// admits everything.
    pub fn unthrottled() -> AdmitConfig {
        AdmitConfig {
            rate_per_sec: u64::MAX / 2_000_000,
            burst: u64::MAX / 2,
            max_inflight: u64::MAX,
        }
    }
}

/// One carrier's token bucket, accounted in micro-tokens (token ×
/// 1e6) so refill at any query rate stays exact integer math.
#[derive(Debug, Clone)]
struct TokenBucket {
    /// Micro-tokens currently available.
    micro: u64,
    /// Bucket capacity in micro-tokens.
    cap_micro: u64,
    /// Refill rate: micro-tokens per microsecond == tokens per second.
    rate: u64,
    /// Last refill timestamp.
    last_us: u64,
}

impl TokenBucket {
    fn new(cfg: &AdmitConfig, now_us: u64) -> TokenBucket {
        let cap = cfg.burst.saturating_mul(1_000_000);
        TokenBucket {
            micro: cap,
            cap_micro: cap,
            rate: cfg.rate_per_sec,
            last_us: now_us,
        }
    }

    fn try_take(&mut self, now_us: u64) -> bool {
        if now_us > self.last_us {
            let refill = (now_us - self.last_us).saturating_mul(self.rate);
            self.micro = self.micro.saturating_add(refill).min(self.cap_micro);
            self.last_us = now_us;
        }
        if self.micro >= 1_000_000 {
            self.micro -= 1_000_000;
            true
        } else {
            false
        }
    }
}

/// Admission state for every carrier shard.
#[derive(Debug)]
pub struct Admission {
    cfg: AdmitConfig,
    buckets: Vec<TokenBucket>,
}

impl Admission {
    /// One bucket per carrier, all sized by `cfg`, epoch at `now_us`.
    pub fn new(cfg: AdmitConfig, carriers: usize, now_us: u64) -> Admission {
        Admission {
            cfg,
            buckets: (0..carriers)
                .map(|_| TokenBucket::new(&cfg, now_us))
                .collect(),
        }
    }

    /// Decides one well-formed query for `shard`. `inflight` is the
    /// shard's current backlog (events enqueued but not yet served,
    /// including this one); `now_us` is the caller's clock. Unknown
    /// shards are shed (queue-full) rather than panicking.
    pub fn admit(&mut self, shard: usize, now_us: u64, inflight: u64) -> Verdict {
        let Some(bucket) = self.buckets.get_mut(shard) else {
            return Verdict::Shed(ShedReason::QueueFull);
        };
        if inflight > self.cfg.max_inflight {
            return Verdict::Shed(ShedReason::QueueFull);
        }
        if !bucket.try_take(now_us) {
            return Verdict::Shed(ShedReason::RateExceeded);
        }
        Verdict::Admit
    }

    /// The config these buckets were sized with.
    pub fn config(&self) -> AdmitConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(rate: u64, burst: u64, inflight: u64) -> AdmitConfig {
        AdmitConfig {
            rate_per_sec: rate,
            burst,
            max_inflight: inflight,
        }
    }

    #[test]
    fn sheds_when_the_backlog_exceeds_the_bound() {
        let mut adm = Admission::new(cfg(1_000, 10, 4), 1, 0);
        assert_eq!(adm.admit(0, 0, 1), Verdict::Admit);
        assert_eq!(adm.admit(0, 0, 4), Verdict::Admit);
        assert_eq!(
            adm.admit(0, 0, 5),
            Verdict::Shed(ShedReason::QueueFull),
            "backlog above the bound must shed"
        );
        // Backlog recedes → admits again.
        assert_eq!(adm.admit(0, 1, 2), Verdict::Admit);
    }

    #[test]
    fn token_bucket_sheds_sustained_overrate_and_refills() {
        // 2 tokens of burst, 1000/s refill (1 token per millisecond).
        let mut adm = Admission::new(cfg(1_000, 2, 100), 1, 0);
        assert_eq!(adm.admit(0, 0, 0), Verdict::Admit);
        assert_eq!(adm.admit(0, 0, 0), Verdict::Admit);
        assert_eq!(
            adm.admit(0, 0, 0),
            Verdict::Shed(ShedReason::RateExceeded),
            "burst exhausted at t=0"
        );
        // 500 µs later: half a token — still empty.
        assert_eq!(
            adm.admit(0, 500, 0),
            Verdict::Shed(ShedReason::RateExceeded)
        );
        // 1.5 ms later: one full token accrued.
        assert_eq!(adm.admit(0, 1_500, 0), Verdict::Admit);
        assert_eq!(
            adm.admit(0, 1_500, 0),
            Verdict::Shed(ShedReason::RateExceeded)
        );
    }

    #[test]
    fn decisions_are_deterministic_across_replicas() {
        let inputs: Vec<(usize, u64, u64)> = (0..200)
            .map(|i| ((i % 3) as usize, (i as u64) * 137, (i as u64) % 9))
            .collect();
        let mut a = Admission::new(cfg(5_000, 8, 5), 3, 0);
        let mut b = Admission::new(cfg(5_000, 8, 5), 3, 0);
        for &(shard, now, inflight) in &inputs {
            assert_eq!(a.admit(shard, now, inflight), b.admit(shard, now, inflight));
        }
    }

    #[test]
    fn bucket_never_exceeds_capacity_after_idle() {
        let mut adm = Admission::new(cfg(1_000_000, 3, 100), 1, 0);
        // A long idle period must cap accrual at the burst size.
        for _ in 0..3 {
            assert_eq!(adm.admit(0, 10_000_000, 0), Verdict::Admit);
        }
        assert_eq!(
            adm.admit(0, 10_000_000, 0),
            Verdict::Shed(ShedReason::RateExceeded)
        );
    }

    #[test]
    fn world_sizing_scales_with_devices_and_never_throttles_a_stub() {
        let config = WorldConfig::quick(1);
        let small = AdmitConfig::for_carrier(&config, 10);
        let big = AdmitConfig::for_carrier(&config, 1_000);
        assert!(big.rate_per_sec > small.rate_per_sec);
        assert!(big.burst > small.burst);
        // A well-behaved one-in-flight stub (backlog ≤ 1, modest rate)
        // is never shed.
        let mut adm = Admission::new(small, 1, 0);
        for i in 0..10_000u64 {
            // 10k queries over 1 second.
            assert_eq!(adm.admit(0, i * 100, 1), Verdict::Admit, "query {i}");
        }
    }

    #[test]
    fn unthrottled_config_admits_floods() {
        let mut adm = Admission::new(AdmitConfig::unthrottled(), 2, 0);
        for _ in 0..100_000 {
            assert_eq!(adm.admit(1, 0, 50_000), Verdict::Admit);
        }
    }
}
