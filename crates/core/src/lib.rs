#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `cdns` — the cellular DNS measurement suite: the public API of the
//! *Behind the Curtain* (IMC 2014) reproduction.
//!
//! A downstream user drives three layers:
//!
//! 1. [`Study`] — build a simulated world (six carriers, public DNS, four
//!    CDNs, a 158-device fleet) and run the paper's measurement campaign
//!    over weeks of simulated time.
//! 2. [`figures`] — regenerate every table and figure of the paper from the
//!    campaign dataset.
//! 3. The substrate crates, re-exported for direct use: `netsim` (the
//!    discrete-event network), `dnswire`/`dnssim` (DNS), `cellsim`
//!    (carriers/devices), `cdnsim` (content delivery), `measure`
//!    (experiments), `analysis` (statistics).
//!
//! # Example
//!
//! ```no_run
//! use cdns::{Study, StudyConfig};
//!
//! let mut study = Study::new(StudyConfig::quick(42));
//! let dataset = study.run();
//! for artifact in cdns::figures::all_artifacts(&dataset) {
//!     println!("{}", artifact.text);
//! }
//! ```

pub mod figures;
pub mod study;

pub use figures::{all_artifacts, artifact_by_id, Artifact};
pub use study::{Study, StudyConfig};

// Substrate re-exports.
pub use analysis;
pub use cdnsim;
pub use cellsim;
pub use dnssim;
pub use dnswire;
pub use measure;
pub use netsim;
pub use obs;
