//! Per-figure assembly: one function per table/figure of the paper, each
//! producing the printable text block (and CSV where a figure is a curve
//! family). This is the experiment index of DESIGN.md, in code.

use analysis::{
    busiest_device, busiest_static_device, cache_comparison, cache_miss_fraction, cdfs_csv,
    churn_summary, cosine_by_prefix, egress_points, ldns_pairs, public_equal_or_better,
    reachability, relative_replica_latency, render_ascii_cdf, render_cdfs, render_failure_report,
    render_table, replica_percent_increase, resolution_by_radio, resolution_cdf, resolver_counts,
    resolver_enumeration, resolver_replica_maps, static_location_enumeration, Cdf,
};
use cellsim::profile::{six_carriers, Country};
use measure::record::{Dataset, ResolverKind};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// One regenerated artifact: identifier, printable text, optional CSV.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// Paper identifier (`table1`, `fig2`, …).
    pub id: String,
    /// Printable block.
    pub text: String,
    /// CSV series, when the artifact is a curve family.
    pub csv: Option<String>,
}

fn carriers_by_country(ds: &Dataset, country: Country) -> Vec<usize> {
    let profiles = six_carriers();
    (0..ds.carrier_names.len())
        .filter(|&i| {
            profiles
                .iter()
                .find(|p| p.name == ds.carrier_names[i])
                .map(|p| p.country == country)
                .unwrap_or(false)
        })
        .collect()
}

/// Indices of the US carriers in the dataset.
pub fn us_carriers(ds: &Dataset) -> Vec<usize> {
    carriers_by_country(ds, Country::Us)
}

/// Indices of the South Korean carriers.
pub fn sk_carriers(ds: &Dataset) -> Vec<usize> {
    carriers_by_country(ds, Country::SouthKorea)
}

/// Table 1: distribution of measurement clients per carrier.
pub fn table1(ds: &Dataset) -> Artifact {
    let profiles = six_carriers();
    let rows: Vec<Vec<String>> = (0..ds.carrier_names.len())
        .map(|c| {
            let clients: BTreeSet<u32> = ds.of_carrier(c).map(|r| r.device_id).collect();
            let country = profiles
                .iter()
                .find(|p| p.name == ds.carrier_names[c])
                .map(|p| p.country.label())
                .unwrap_or("?");
            vec![
                ds.carrier_names[c].clone(),
                clients.len().to_string(),
                country.to_string(),
            ]
        })
        .collect();
    Artifact {
        id: "table1".into(),
        text: render_table(
            "Table 1: measurement clients per carrier",
            &["Carrier", "# Clients", "Country"],
            &rows,
        ),
        csv: None,
    }
}

/// Table 2: the measured mobile domains.
pub fn table2(ds: &Dataset) -> Artifact {
    let rows: Vec<Vec<String>> = ds.domains.iter().map(|d| vec![d.to_string()]).collect();
    Artifact {
        id: "table2".into(),
        text: render_table("Table 2: measured mobile domains", &["Domain"], &rows),
        csv: None,
    }
}

/// Fig. 2: CDFs of percent latency increase of each replica vs the user's
/// best replica, per carrier, for the four plotted domains.
pub fn fig2(ds: &Dataset) -> Artifact {
    let plot_domains: Vec<usize> = cdnsim::catalog::fig2_domains()
        .iter()
        .filter_map(|d| ds.domains.iter().position(|x| x == d))
        .collect();
    let mut text = String::new();
    let mut all_series: Vec<(String, Cdf)> = Vec::new();
    for c in 0..ds.carrier_names.len() {
        let mut series: Vec<(String, Cdf)> = Vec::new();
        for &d in &plot_domains {
            let cdf = replica_percent_increase(ds, c, d as u8);
            series.push((ds.domains[d].to_string(), cdf));
        }
        let refs: Vec<(&str, &Cdf)> = series.iter().map(|(n, c)| (n.as_str(), c)).collect();
        let _ = write!(
            text,
            "{}",
            render_cdfs(
                &format!(
                    "Fig 2 ({}): % increase in replica latency vs user's best",
                    ds.carrier_names[c]
                ),
                &refs,
                "%",
            )
        );
        for (n, cdf) in series {
            all_series.push((format!("{}:{}", ds.carrier_names[c], n), cdf));
        }
    }
    let refs: Vec<(&str, &Cdf)> = all_series.iter().map(|(n, c)| (n.as_str(), c)).collect();
    Artifact {
        id: "fig2".into(),
        text,
        csv: Some(cdfs_csv(&refs, 50)),
    }
}

/// Fig. 3: resolution time per radio technology, per carrier.
pub fn fig3(ds: &Dataset) -> Artifact {
    let mut text = String::new();
    let mut all_series: Vec<(String, Cdf)> = Vec::new();
    for c in 0..ds.carrier_names.len() {
        let by_radio = resolution_by_radio(ds, c);
        let series: Vec<(String, Cdf)> = by_radio
            .into_iter()
            .map(|(tech, cdf)| (tech.label().to_string(), cdf))
            .collect();
        if series.is_empty() {
            continue;
        }
        let refs: Vec<(&str, &Cdf)> = series.iter().map(|(n, c)| (n.as_str(), c)).collect();
        let _ = write!(
            text,
            "{}",
            render_cdfs(
                &format!(
                    "Fig 3 ({}): DNS resolution time by radio technology",
                    ds.carrier_names[c]
                ),
                &refs,
                "ms",
            )
        );
        for (n, cdf) in series {
            all_series.push((format!("{}:{}", ds.carrier_names[c], n), cdf));
        }
    }
    let refs: Vec<(&str, &Cdf)> = all_series.iter().map(|(n, c)| (n.as_str(), c)).collect();
    Artifact {
        id: "fig3".into(),
        text,
        csv: Some(cdfs_csv(&refs, 50)),
    }
}

/// Table 3: LDNS pairs and pairing consistency per carrier.
pub fn table3(ds: &Dataset) -> Artifact {
    let rows: Vec<Vec<String>> = (0..ds.carrier_names.len())
        .map(|c| {
            let s = ldns_pairs(ds, c);
            vec![
                ds.carrier_names[c].clone(),
                s.client_facing.to_string(),
                s.external.to_string(),
                s.pairs.to_string(),
                format!("{:.0}%", s.consistency_pct),
            ]
        })
        .collect();
    Artifact {
        id: "table3".into(),
        text: render_table(
            "Table 3: LDNS pairs seen by mobile clients",
            &["Provider", "Client", "External", "Pairs", "Consistency"],
            &rows,
        ),
        csv: None,
    }
}

/// Fig. 4: client latency to client-facing vs external resolvers.
pub fn fig4(ds: &Dataset) -> Artifact {
    let mut text = String::new();
    let mut all_series: Vec<(String, Cdf)> = Vec::new();
    for c in 0..ds.carrier_names.len() {
        let pick = |target: measure::record::ProbeTarget| {
            Cdf::from_iter(ds.of_carrier(c).flat_map(move |r| {
                r.resolver_probes
                    .iter()
                    .filter(move |p| p.target == target)
                    .filter_map(|p| p.rtt_us.map(|us| us as f64 / 1000.0))
            }))
        };
        let client = pick(measure::record::ProbeTarget::ClientFacing);
        let external = pick(measure::record::ProbeTarget::External);
        let _ = write!(
            text,
            "{}",
            render_cdfs(
                &format!(
                    "Fig 4 ({}): ping latency to client-facing vs external resolver",
                    ds.carrier_names[c]
                ),
                &[("client-facing", &client), ("external", &external)],
                "ms",
            )
        );
        all_series.push((format!("{}:client", ds.carrier_names[c]), client));
        all_series.push((format!("{}:external", ds.carrier_names[c]), external));
    }
    let refs: Vec<(&str, &Cdf)> = all_series.iter().map(|(n, c)| (n.as_str(), c)).collect();
    Artifact {
        id: "fig4".into(),
        text,
        csv: Some(cdfs_csv(&refs, 50)),
    }
}

fn resolution_figure(ds: &Dataset, id: &str, title: &str, carriers: &[usize]) -> Artifact {
    let series: Vec<(String, Cdf)> = carriers
        .iter()
        .map(|&c| {
            (
                ds.carrier_names[c].clone(),
                resolution_cdf(ds, c, ResolverKind::Local),
            )
        })
        .collect();
    let refs: Vec<(&str, &Cdf)> = series.iter().map(|(n, c)| (n.as_str(), c)).collect();
    let mut text = render_cdfs(title, &refs, "ms");
    text.push_str(&render_ascii_cdf(&refs, "ms", 72, 14));
    Artifact {
        id: id.into(),
        text,
        csv: Some(cdfs_csv(&refs, 50)),
    }
}

/// Fig. 5: local DNS resolution time, US carriers.
pub fn fig5(ds: &Dataset) -> Artifact {
    resolution_figure(
        ds,
        "fig5",
        "Fig 5: DNS resolution time, US carriers (carrier DNS)",
        &us_carriers(ds),
    )
}

/// Fig. 6: local DNS resolution time, South Korean carriers.
pub fn fig6(ds: &Dataset) -> Artifact {
    resolution_figure(
        ds,
        "fig6",
        "Fig 6: DNS resolution time, South Korean carriers (carrier DNS)",
        &sk_carriers(ds),
    )
}

/// Fig. 7: first vs second back-to-back lookup (cache behaviour), US
/// carriers combined.
pub fn fig7(ds: &Dataset) -> Artifact {
    let us = us_carriers(ds);
    let (first, second) = cache_comparison(ds, &us);
    let miss = cache_miss_fraction(ds, &us, 20.0);
    let mut text = render_cdfs(
        "Fig 7: 1st vs 2nd lookup, US carriers combined",
        &[("1st lookup", &first), ("2nd lookup", &second)],
        "ms",
    );
    text.push_str(&render_ascii_cdf(
        &[("1st lookup", &first), ("2nd lookup", &second)],
        "ms",
        72,
        14,
    ));
    let _ = writeln!(
        text,
        "cache-miss fraction (1st lookup >= 20ms slower than 2nd): {:.1}%",
        miss * 100.0
    );
    Artifact {
        id: "fig7".into(),
        text,
        csv: Some(cdfs_csv(&[("first", &first), ("second", &second)], 50)),
    }
}

/// Table 4: external reachability of cellular resolvers.
pub fn table4(ds: &Dataset) -> Artifact {
    let rows: Vec<Vec<String>> = reachability(ds)
        .into_iter()
        .map(|r| {
            vec![
                r.carrier,
                r.total.to_string(),
                r.ping.to_string(),
                r.traceroute.to_string(),
            ]
        })
        .collect();
    Artifact {
        id: "table4".into(),
        text: render_table(
            "Table 4: externally reachable external resolvers (university vantage)",
            &["Provider", "Total", "Ping", "Traceroute"],
            &rows,
        ),
        csv: None,
    }
}

fn enumeration_artifact(
    ds: &Dataset,
    id: &str,
    title: &str,
    kind: ResolverKind,
    static_radius_km: Option<f64>,
) -> Artifact {
    let mut rows = Vec::new();
    let mut csv = String::from("carrier,device,t_hours,ip_index,prefix_index\n");
    for c in 0..ds.carrier_names.len() {
        let dev = match static_radius_km {
            Some(_) => busiest_static_device(ds, c),
            None => busiest_device(ds, c),
        };
        let Some(dev) = dev else { continue };
        let points = match static_radius_km {
            Some(r) => static_location_enumeration(ds, dev, r),
            None => resolver_enumeration(ds, dev, kind),
        };
        let (ips, prefixes) = churn_summary(&points);
        rows.push(vec![
            ds.carrier_names[c].clone(),
            dev.to_string(),
            points.len().to_string(),
            ips.to_string(),
            prefixes.to_string(),
        ]);
        for p in &points {
            let _ = writeln!(
                csv,
                "{},{},{:.2},{},{}",
                ds.carrier_names[c], dev, p.t_hours, p.ip_index, p.prefix_index
            );
        }
    }
    Artifact {
        id: id.into(),
        text: render_table(
            title,
            &["Carrier", "Device", "Obs", "Distinct IPs", "Distinct /24s"],
            &rows,
        ),
        csv: Some(csv),
    }
}

/// Fig. 8: external resolvers observed by a representative client over
/// time (IPs and /24s, order of appearance).
pub fn fig8(ds: &Dataset) -> Artifact {
    enumeration_artifact(
        ds,
        "fig8",
        "Fig 8: external resolver churn per representative client (local DNS)",
        ResolverKind::Local,
        None,
    )
}

/// Fig. 9: resolver churn with the client pinned to a static location.
pub fn fig9(ds: &Dataset) -> Artifact {
    enumeration_artifact(
        ds,
        "fig9",
        "Fig 9: resolver churn at a static location (<=1 km radius)",
        ResolverKind::Local,
        Some(1.0),
    )
}

/// Fig. 10: cosine similarity of replica sets between resolvers in the
/// same /24 vs different /24s (buzzfeed.com, as the paper plots).
pub fn fig10(ds: &Dataset) -> Artifact {
    let domain_idx = ds
        .domains
        .iter()
        .position(|d| d.to_string().contains("buzzfeed"))
        .unwrap_or(0) as u8;
    let mut text = String::new();
    let mut all_series: Vec<(String, Cdf)> = Vec::new();
    for c in 0..ds.carrier_names.len() {
        let maps = resolver_replica_maps(ds, c, domain_idx);
        let (same, diff) = cosine_by_prefix(&maps);
        let _ = write!(
            text,
            "{}",
            render_cdfs(
                &format!(
                    "Fig 10 ({}): cosine similarity of replica sets ({} resolvers)",
                    ds.carrier_names[c],
                    maps.len()
                ),
                &[("same /24", &same), ("different /24", &diff)],
                "",
            )
        );
        all_series.push((format!("{}:same24", ds.carrier_names[c]), same));
        all_series.push((format!("{}:diff24", ds.carrier_names[c]), diff));
    }
    let refs: Vec<(&str, &Cdf)> = all_series.iter().map(|(n, c)| (n.as_str(), c)).collect();
    Artifact {
        id: "fig10".into(),
        text,
        csv: Some(cdfs_csv(&refs, 50)),
    }
}

/// §5.2: egress points observed per carrier.
pub fn egress(ds: &Dataset) -> Artifact {
    let rows: Vec<Vec<String>> = (0..ds.carrier_names.len())
        .map(|c| {
            vec![
                ds.carrier_names[c].clone(),
                egress_points(ds, c).len().to_string(),
            ]
        })
        .collect();
    Artifact {
        id: "egress".into(),
        text: render_table(
            "Sec 5.2: network egress points observed from client traceroutes",
            &["Carrier", "Egress points"],
            &rows,
        ),
        csv: None,
    }
}

/// Table 5: distinct resolver IPs and /24s per provider and resolver path.
pub fn table5(ds: &Dataset) -> Artifact {
    let mut rows = Vec::new();
    for c in 0..ds.carrier_names.len() {
        let mut row = vec![ds.carrier_names[c].clone()];
        for kind in ResolverKind::all() {
            let (ips, p24s) = resolver_counts(ds, c, kind);
            row.push(format!("{ips}"));
            row.push(format!("{p24s}"));
        }
        rows.push(row);
    }
    Artifact {
        id: "table5".into(),
        text: render_table(
            "Table 5: resolver IPs (and /24s) observed per provider",
            &[
                "Provider",
                "Local IPs",
                "Local /24",
                "Google IPs",
                "Google /24",
                "OpenDNS IPs",
                "OpenDNS /24",
            ],
            &rows,
        ),
        csv: None,
    }
}

/// Fig. 11: ping latency to public resolvers vs the carrier's external
/// resolver.
pub fn fig11(ds: &Dataset) -> Artifact {
    let mut text = String::new();
    let mut all_series: Vec<(String, Cdf)> = Vec::new();
    for c in 0..ds.carrier_names.len() {
        let pick = |target: measure::record::ProbeTarget| {
            Cdf::from_iter(ds.of_carrier(c).flat_map(move |r| {
                r.resolver_probes
                    .iter()
                    .filter(move |p| p.target == target)
                    .filter_map(|p| p.rtt_us.map(|us| us as f64 / 1000.0))
            }))
        };
        let external = pick(measure::record::ProbeTarget::External);
        let google = pick(measure::record::ProbeTarget::GoogleVip);
        let opendns = pick(measure::record::ProbeTarget::OpenDnsVip);
        let _ = write!(
            text,
            "{}",
            render_cdfs(
                &format!(
                    "Fig 11 ({}): ping latency to resolvers",
                    ds.carrier_names[c]
                ),
                &[
                    ("cell external", &external),
                    ("google", &google),
                    ("opendns", &opendns),
                ],
                "ms",
            )
        );
        all_series.push((format!("{}:external", ds.carrier_names[c]), external));
        all_series.push((format!("{}:google", ds.carrier_names[c]), google));
        all_series.push((format!("{}:opendns", ds.carrier_names[c]), opendns));
    }
    let refs: Vec<(&str, &Cdf)> = all_series.iter().map(|(n, c)| (n.as_str(), c)).collect();
    Artifact {
        id: "fig11".into(),
        text,
        csv: Some(cdfs_csv(&refs, 50)),
    }
}

/// Fig. 12: Google resolver consistency over time per carrier.
pub fn fig12(ds: &Dataset) -> Artifact {
    enumeration_artifact(
        ds,
        "fig12",
        "Fig 12: Google resolver churn per representative client",
        ResolverKind::Google,
        None,
    )
}

/// Fig. 13: resolution time, local vs public resolvers, per carrier.
pub fn fig13(ds: &Dataset) -> Artifact {
    let mut text = String::new();
    let mut all_series: Vec<(String, Cdf)> = Vec::new();
    for c in 0..ds.carrier_names.len() {
        let local = resolution_cdf(ds, c, ResolverKind::Local);
        let google = resolution_cdf(ds, c, ResolverKind::Google);
        let opendns = resolution_cdf(ds, c, ResolverKind::OpenDns);
        let _ = write!(
            text,
            "{}",
            render_cdfs(
                &format!(
                    "Fig 13 ({}): resolution time, carrier vs public DNS",
                    ds.carrier_names[c]
                ),
                &[
                    ("local", &local),
                    ("google", &google),
                    ("opendns", &opendns)
                ],
                "ms",
            )
        );
        all_series.push((format!("{}:local", ds.carrier_names[c]), local));
        all_series.push((format!("{}:google", ds.carrier_names[c]), google));
        all_series.push((format!("{}:opendns", ds.carrier_names[c]), opendns));
    }
    let refs: Vec<(&str, &Cdf)> = all_series.iter().map(|(n, c)| (n.as_str(), c)).collect();
    Artifact {
        id: "fig13".into(),
        text,
        csv: Some(cdfs_csv(&refs, 50)),
    }
}

/// Fig. 14: relative replica latency (public vs local choices, /24
/// aggregated) with the headline equal-or-better fractions.
pub fn fig14(ds: &Dataset) -> Artifact {
    let mut text = String::new();
    let mut all_series: Vec<(String, Cdf)> = Vec::new();
    for c in 0..ds.carrier_names.len() {
        let google = relative_replica_latency(ds, c, ResolverKind::Google);
        let opendns = relative_replica_latency(ds, c, ResolverKind::OpenDns);
        let _ = write!(
            text,
            "{}",
            render_cdfs(
                &format!(
                    "Fig 14 ({}): relative replica latency, public vs local",
                    ds.carrier_names[c]
                ),
                &[("google", &google), ("opendns", &opendns)],
                "%",
            )
        );
        let _ = writeln!(
            text,
            "public equal-or-better: google {:.0}%, opendns {:.0}%",
            public_equal_or_better(ds, c, ResolverKind::Google) * 100.0,
            public_equal_or_better(ds, c, ResolverKind::OpenDns) * 100.0,
        );
        all_series.push((format!("{}:google", ds.carrier_names[c]), google));
        all_series.push((format!("{}:opendns", ds.carrier_names[c]), opendns));
    }
    let refs: Vec<(&str, &Cdf)> = all_series.iter().map(|(n, c)| (n.as_str(), c)).collect();
    Artifact {
        id: "fig14".into(),
        text,
        csv: Some(cdfs_csv(&refs, 50)),
    }
}

/// Dataset overview plus the paper's headline findings in one block — the
/// first thing `repro` prints.
pub fn summary(ds: &Dataset) -> Artifact {
    let mut text = String::new();
    let devices: BTreeSet<u32> = ds.records.iter().map(|r| r.device_id).collect();
    let span_days = ds.records.iter().map(|r| r.t.as_secs()).max().unwrap_or(0) as f64 / 86_400.0;
    let probes: usize = ds
        .records
        .iter()
        .map(|r| r.replica_probes.len() + r.resolver_probes.len())
        .sum();
    let _ = writeln!(text, "== Campaign summary ==");
    let _ = writeln!(
        text,
        "{} experiments from {} devices across {} carriers over {:.0} days;",
        ds.records.len(),
        devices.len(),
        ds.carrier_names.len(),
        span_days.max(1.0),
    );
    let _ = writeln!(
        text,
        "{} DNS resolutions, {} probes. (Paper: 280k experiments, 8.1M resolutions.)",
        ds.resolution_count(),
        probes,
    );
    // Headline findings.
    let us = us_carriers(ds);
    let miss = cache_miss_fraction(ds, &us, 20.0);
    let mut eq_or_better = Vec::new();
    for c in 0..ds.carrier_names.len() {
        eq_or_better.push(format!(
            "{} {:.0}%",
            ds.carrier_names[c],
            public_equal_or_better(ds, c, ResolverKind::Google) * 100.0
        ));
    }
    let _ = writeln!(
        text,
        "
Headlines:"
    );
    let _ = writeln!(
        text,
        "  cache misses on first lookups (Fig 7): {:.0}%  [paper: ~20%]",
        miss * 100.0
    );
    let _ = writeln!(
        text,
        "  public DNS replicas equal-or-better (Fig 14): {}  [paper: >75%]",
        eq_or_better.join(", ")
    );
    let all_pairs_indirect = ds.records.iter().all(|r| {
        r.local_external()
            .map(|ext| ext != r.configured_dns)
            .unwrap_or(true)
    });
    let _ = writeln!(
        text,
        "  indirect resolution in every carrier (Table 3): {}",
        if all_pairs_indirect { "yes" } else { "NO (!)" }
    );
    let trace_zero = ds.external_reach.iter().all(|p| !p.traceroute_reached);
    let _ = writeln!(
        text,
        "  traceroutes into carriers from outside (Table 4): {}",
        if trace_zero {
            "0 — opaque"
        } else {
            "penetrated (!)"
        }
    );
    Artifact {
        id: "summary".into(),
        text,
        csv: None,
    }
}

/// Failure taxonomy: lookup outcomes per carrier and resolver class.
/// All-`ok` under a fault-free campaign; the chaos shows up here when a
/// fault profile is active.
pub fn failures(ds: &Dataset) -> Artifact {
    Artifact {
        id: "failures".into(),
        text: render_failure_report(ds),
        csv: Some(ds.outcomes_csv()),
    }
}

/// Every artifact in paper order.
pub fn all_artifacts(ds: &Dataset) -> Vec<Artifact> {
    vec![
        summary(ds),
        table1(ds),
        table2(ds),
        fig2(ds),
        fig3(ds),
        table3(ds),
        fig4(ds),
        fig5(ds),
        fig6(ds),
        fig7(ds),
        table4(ds),
        fig8(ds),
        fig9(ds),
        fig10(ds),
        egress(ds),
        table5(ds),
        fig11(ds),
        fig12(ds),
        fig13(ds),
        fig14(ds),
        failures(ds),
    ]
}

/// Per-carrier profile reports (not part of `all_artifacts`; request via
/// `repro report`).
pub fn report(ds: &Dataset) -> Artifact {
    Artifact {
        id: "report".into(),
        text: analysis::all_carrier_reports(ds),
        csv: None,
    }
}

/// Artifact by id, if known.
pub fn artifact_by_id(ds: &Dataset, id: &str) -> Option<Artifact> {
    match id {
        "summary" => Some(summary(ds)),
        "report" => Some(report(ds)),
        "table1" => Some(table1(ds)),
        "table2" => Some(table2(ds)),
        "fig2" => Some(fig2(ds)),
        "fig3" => Some(fig3(ds)),
        "table3" => Some(table3(ds)),
        "fig4" => Some(fig4(ds)),
        "fig5" => Some(fig5(ds)),
        "fig6" => Some(fig6(ds)),
        "fig7" => Some(fig7(ds)),
        "table4" => Some(table4(ds)),
        "fig8" => Some(fig8(ds)),
        "fig9" => Some(fig9(ds)),
        "fig10" => Some(fig10(ds)),
        "egress" => Some(egress(ds)),
        "table5" => Some(table5(ds)),
        "fig11" => Some(fig11(ds)),
        "fig12" => Some(fig12(ds)),
        "fig13" => Some(fig13(ds)),
        "fig14" => Some(fig14(ds)),
        "failures" => Some(failures(ds)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::{Study, StudyConfig};

    fn quick_dataset() -> Dataset {
        let mut study = Study::new(StudyConfig::quick(9));
        study.run()
    }

    #[test]
    fn all_artifacts_render_nonempty() {
        let ds = quick_dataset();
        let artifacts = all_artifacts(&ds);
        assert_eq!(artifacts.len(), 21);
        for a in &artifacts {
            assert!(!a.text.trim().is_empty(), "{} is empty", a.id);
        }
    }

    #[test]
    fn artifact_lookup_matches_list() {
        let ds = quick_dataset();
        for a in all_artifacts(&ds) {
            let looked = artifact_by_id(&ds, &a.id).expect("id known");
            assert_eq!(looked.id, a.id);
        }
        assert!(artifact_by_id(&ds, "fig99").is_none());
    }

    #[test]
    fn carrier_country_split() {
        let ds = quick_dataset();
        assert_eq!(us_carriers(&ds).len(), 4);
        assert_eq!(sk_carriers(&ds).len(), 2);
    }
}
