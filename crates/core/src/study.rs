//! The top-level study object: build a world, run the campaign, keep the
//! dataset — the one-stop API a downstream user drives.

use measure::campaign::{
    run_campaign_observed, run_campaign_with, CampaignConfig, CampaignRun, Parallelism, ProgressFn,
};
use measure::record::Dataset;
use measure::world::{build_world, World, WorldConfig};

/// Full study configuration: the world to simulate and the campaign to run
/// on it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StudyConfig {
    /// World (topology/fleet) configuration.
    pub world: WorldConfig,
    /// Campaign (schedule/probing) configuration.
    pub campaign: CampaignConfig,
    /// Thread policy for the campaign driver. Never affects results — only
    /// wall-clock time.
    pub parallelism: Parallelism,
}

impl StudyConfig {
    /// Paper-scale world, standard six-week campaign (the `repro` default).
    pub fn standard(seed: u64) -> Self {
        StudyConfig {
            world: WorldConfig {
                seed,
                ..WorldConfig::default()
            },
            campaign: CampaignConfig::default(),
            parallelism: Parallelism::Auto,
        }
    }

    /// Reduced world and campaign for tests, examples, and benches.
    pub fn quick(seed: u64) -> Self {
        StudyConfig {
            world: WorldConfig::quick(seed),
            campaign: CampaignConfig::quick(),
            parallelism: Parallelism::Auto,
        }
    }
}

/// A study in progress: the simulated world plus the campaign output.
pub struct Study {
    /// The simulated world.
    pub world: World,
    /// Campaign configuration.
    pub campaign: CampaignConfig,
    /// Thread policy for the campaign driver.
    pub parallelism: Parallelism,
}

impl Study {
    /// Builds the world for `config`.
    pub fn new(config: StudyConfig) -> Self {
        Study {
            world: build_world(config.world),
            campaign: config.campaign,
            parallelism: config.parallelism,
        }
    }

    /// Runs the configured campaign and returns the dataset.
    pub fn run(&mut self) -> Dataset {
        run_campaign_with(&mut self.world, &self.campaign.clone(), self.parallelism)
    }

    /// Runs the configured campaign, returning the dataset together with
    /// the merged sim-plane metric registry; `progress` (when given)
    /// receives one tick per shard-day from the worker threads.
    pub fn run_observed(&mut self, progress: Option<&ProgressFn>) -> CampaignRun {
        run_campaign_observed(
            &mut self.world,
            &self.campaign.clone(),
            self.parallelism,
            progress,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_study_runs_end_to_end() {
        let mut study = Study::new(StudyConfig::quick(1));
        let ds = study.run();
        assert!(!ds.records.is_empty());
        assert_eq!(ds.carrier_names.len(), 6);
        assert_eq!(ds.domains.len(), 9);
    }
}
