//! Property-based tests for cellsim: bearer-state invariants under
//! arbitrary churn sequences.

use cellsim::build::{build_carrier, GeoRegion};
use cellsim::device::create_devices;
use cellsim::profile::six_carriers;
use netsim::addr::Prefix;
use netsim::engine::Network;
use netsim::time::SimTime;
use netsim::topo::{Asn, Coord, NodeKind, Topology};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::Ipv4Addr;

/// Churn operations a campaign performs on a device.
#[derive(Debug, Clone, Copy)]
enum Op {
    ReassignIp,
    DailyChurn,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![Just(Op::ReassignIp), Just(Op::DailyChurn)],
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn bearer_invariants_hold_under_arbitrary_churn(
        ops in arb_ops(),
        seed in any::<u64>(),
        carrier_idx in 0usize..6,
    ) {
        let mut topo = Topology::new();
        let pop = topo.add_node(
            "pop",
            NodeKind::Router,
            Asn(3356),
            Coord { x_km: 2000.0, y_km: 1200.0 },
            vec![Ipv4Addr::new(80, 0, 0, 1)],
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let profile = six_carriers().remove(carrier_idx);
        let region = match profile.country {
            cellsim::profile::Country::Us => GeoRegion::us(),
            cellsim::profile::Country::SouthKorea => GeoRegion::south_korea(),
        };
        let mut carrier = build_carrier(
            &mut topo,
            carrier_idx,
            profile,
            region,
            &[(pop, Coord { x_km: 2000.0, y_km: 1200.0 })],
            &mut rng,
        );
        let mut devices = create_devices(&mut topo, &mut carrier, 0, &mut rng);
        let mut net = Network::new(topo, seed ^ 1);
        let d = &mut devices[0];
        let mut t = SimTime::from_micros(1);
        for op in ops {
            t += netsim::time::SimDuration::from_hours(1);
            match op {
                Op::ReassignIp => {
                    d.reassign_ip(&mut net, &mut carrier, &mut rng, t, 0.5);
                }
                Op::DailyChurn => {
                    d.daily_churn(&mut net, &mut carrier, &mut rng);
                }
            }
            // Invariant 1: the device owns its IP in the topology.
            prop_assert_eq!(net.topo().owner_of(d.ip), Some(d.node));
            // Invariant 2: the IP encodes the attached site's pool.
            prop_assert!(d.ip.octets()[0] == 10);
            prop_assert_eq!((d.ip.octets()[2] / 2) as usize, d.site);
            // Invariant 3: the configured resolver is a real client-facing
            // address of this carrier.
            prop_assert!(
                carrier.client_facing_addrs.contains(&d.configured_dns),
                "configured {:?} not in client-facing set",
                d.configured_dns
            );
            // Invariant 4: the site index is valid and the radio link ends
            // at that site's aggregation node.
            prop_assert!(d.site < carrier.sites.len());
            let link = net.topo().link(d.radio_link);
            let peer = if link.a == d.node { link.b } else { link.a };
            prop_assert_eq!(peer, carrier.sites[d.site].agg);
            // Invariant 5: the ECS map covers the device's current /24.
            let map = carrier.ecs_map();
            prop_assert!(
                map.contains_key(&Prefix::slash24_of(d.ip)),
                "ecs map missing {:?}",
                d.ip
            );
        }
    }
}
