//! Radio access technologies: per-technology latency models and the RRC
//! state machine.
//!
//! Fig. 3 of the paper shows DNS resolution time forming distinct bands per
//! radio technology, with LTE lowest and most stable and 1xRTT taking close
//! to a second. The one-way access latency models below are calibrated so
//! that `2 × access + core path` lands in those bands (see EXPERIMENTS.md).
//! RRC promotion delays follow Huang et al. (MobiSys'12), which is why the
//! paper's experiments begin with a bootstrap ping.

use netsim::latency::LatencyModel;
use netsim::time::{SimDuration, SimTime};

/// Radio access technologies observed in the study (§3.3: "7 different
/// radio technologies were reported from users within both Verizon and
/// Sprint").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RadioTech {
    /// 4G LTE.
    Lte,
    /// HSPA+ (3.75G, GSM lineage).
    Hspap,
    /// HSUPA.
    Hsupa,
    /// HSPA.
    Hspa,
    /// HSDPA.
    Hsdpa,
    /// UMTS (3G GSM lineage).
    Umts,
    /// EDGE (2.75G).
    Edge,
    /// GPRS (2.5G).
    Gprs,
    /// eHRPD (CDMA lineage bridge to LTE).
    Ehrpd,
    /// EV-DO Rev. A (3G CDMA lineage).
    EvdoA,
    /// 1xRTT (2.5G CDMA lineage).
    OneXRtt,
}

impl RadioTech {
    /// Short uppercase label as the paper's figures print it.
    pub fn label(self) -> &'static str {
        match self {
            RadioTech::Lte => "LTE",
            RadioTech::Hspap => "HSPAP",
            RadioTech::Hsupa => "HSUPA",
            RadioTech::Hspa => "HSPA",
            RadioTech::Hsdpa => "HSDPA",
            RadioTech::Umts => "UMTS",
            RadioTech::Edge => "EDGE",
            RadioTech::Gprs => "GPRS",
            RadioTech::Ehrpd => "EHRPD",
            RadioTech::EvdoA => "EVDO_A",
            RadioTech::OneXRtt => "1xRTT",
        }
    }

    /// Technology generation (2, 3, or 4), used for ordering in figures.
    pub fn generation(self) -> u8 {
        match self {
            RadioTech::Lte => 4,
            RadioTech::Hspap
            | RadioTech::Hsupa
            | RadioTech::Hspa
            | RadioTech::Hsdpa
            | RadioTech::Umts
            | RadioTech::Ehrpd
            | RadioTech::EvdoA => 3,
            RadioTech::Edge | RadioTech::Gprs | RadioTech::OneXRtt => 2,
        }
    }

    /// One-way access-latency parameters: (floor ms, median extra ms, sigma).
    fn params(self) -> (u64, f64, f64) {
        match self {
            RadioTech::Lte => (8, 7.0, 0.45),
            RadioTech::Hspap => (12, 10.0, 0.55),
            RadioTech::Hsupa => (20, 16.0, 0.6),
            RadioTech::Hspa => (18, 15.0, 0.6),
            RadioTech::Hsdpa => (25, 20.0, 0.65),
            RadioTech::Umts => (60, 35.0, 0.7),
            RadioTech::Edge => (150, 60.0, 0.75),
            RadioTech::Gprs => (250, 90.0, 0.8),
            RadioTech::Ehrpd => (30, 12.0, 0.55),
            RadioTech::EvdoA => (50, 25.0, 0.65),
            RadioTech::OneXRtt => (400, 110.0, 0.6),
        }
    }

    /// The one-way access latency model for this technology.
    pub fn latency_model(self) -> LatencyModel {
        let (floor_ms, extra_ms, sigma) = self.params();
        LatencyModel::LogNormal {
            mu: (extra_ms * 1000.0).ln(),
            sigma,
            floor: SimDuration::from_millis(floor_ms),
        }
    }

    /// Per-traversal packet-loss probability of the radio link. LTE is
    /// clean; 2G technologies lose noticeably more.
    pub fn loss(self) -> f64 {
        match self.generation() {
            4 => 0.002,
            3 => 0.005,
            _ => 0.015,
        }
    }

    /// Nominal downlink capacity of the access link in bits/second.
    pub fn bandwidth_bps(self) -> u64 {
        match self {
            RadioTech::Lte => 20_000_000,
            RadioTech::Hspap => 8_000_000,
            RadioTech::Hsupa => 3_000_000,
            RadioTech::Hspa => 3_500_000,
            RadioTech::Hsdpa => 3_000_000,
            RadioTech::Umts => 384_000,
            RadioTech::Edge => 200_000,
            RadioTech::Gprs => 80_000,
            RadioTech::Ehrpd => 3_000_000,
            RadioTech::EvdoA => 2_400_000,
            RadioTech::OneXRtt => 100_000,
        }
    }

    /// RRC idle→connected promotion delay (paid by the first packet after an
    /// idle period; the experiment's bootstrap ping absorbs it).
    pub fn promotion_delay(self) -> SimDuration {
        match self.generation() {
            4 => SimDuration::from_millis(260),
            3 => SimDuration::from_millis(2000),
            _ => SimDuration::from_millis(2500),
        }
    }

    /// Inactivity tail after which the radio demotes to idle.
    pub fn tail_time(self) -> SimDuration {
        match self.generation() {
            4 => SimDuration::from_secs(10),
            _ => SimDuration::from_secs(5),
        }
    }

    /// All technologies, fastest generation first.
    pub fn all() -> &'static [RadioTech] {
        &[
            RadioTech::Lte,
            RadioTech::Hspap,
            RadioTech::Hsupa,
            RadioTech::Hspa,
            RadioTech::Hsdpa,
            RadioTech::Umts,
            RadioTech::Edge,
            RadioTech::Gprs,
            RadioTech::Ehrpd,
            RadioTech::EvdoA,
            RadioTech::OneXRtt,
        ]
    }
}

/// The RRC state machine for one device: tracks the last radio activity and
/// charges a promotion delay when the radio was idle.
#[derive(Debug, Clone, Copy)]
pub struct RrcState {
    last_activity: Option<SimTime>,
}

impl RrcState {
    /// A fresh (idle) radio.
    pub fn new() -> Self {
        RrcState {
            last_activity: None,
        }
    }

    /// Records activity at `now` and returns the promotion delay the next
    /// packet must pay (zero when the radio was already connected).
    pub fn touch(&mut self, now: SimTime, tech: RadioTech) -> SimDuration {
        let idle = match self.last_activity {
            None => true,
            Some(last) => now.since(last) > tech.tail_time(),
        };
        self.last_activity = Some(now);
        if idle {
            tech.promotion_delay()
        } else {
            SimDuration::ZERO
        }
    }

    /// Whether the radio would be idle at `now`.
    pub fn is_idle(&self, now: SimTime, tech: RadioTech) -> bool {
        match self.last_activity {
            None => true,
            Some(last) => now.since(last) > tech.tail_time(),
        }
    }
}

impl Default for RrcState {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn median_ms(tech: RadioTech) -> f64 {
        let model = tech.latency_model();
        let mut rng = StdRng::seed_from_u64(7);
        let mut samples: Vec<u64> = (0..2001)
            .map(|_| model.sample(&mut rng).as_micros())
            .collect();
        samples.sort_unstable();
        samples[1000] as f64 / 1000.0
    }

    #[test]
    fn generations_order_latency() {
        // Median one-way access latency must respect generation bands.
        let lte = median_ms(RadioTech::Lte);
        let hspa = median_ms(RadioTech::Hspa);
        let umts = median_ms(RadioTech::Umts);
        let edge = median_ms(RadioTech::Edge);
        let onex = median_ms(RadioTech::OneXRtt);
        assert!(lte < hspa, "{lte} !< {hspa}");
        assert!(hspa < umts, "{hspa} !< {umts}");
        assert!(umts < edge, "{umts} !< {edge}");
        assert!(edge < onex, "{edge} !< {onex}");
    }

    #[test]
    fn lte_band_is_tight() {
        // LTE one-way latency should be mostly in the 10–50 ms band.
        let model = RadioTech::Lte.latency_model();
        let mut rng = StdRng::seed_from_u64(9);
        let mut within = 0;
        for _ in 0..2000 {
            let ms = model.sample(&mut rng).as_millis_f64();
            if (8.0..=60.0).contains(&ms) {
                within += 1;
            }
        }
        assert!(within > 1900, "only {within}/2000 in band");
    }

    #[test]
    fn one_x_rtt_approaches_a_second_round_trip() {
        let m = median_ms(RadioTech::OneXRtt);
        // 2 * one-way ≈ 1s, matching Fig. 3's 1xRTT band.
        assert!((350.0..700.0).contains(&m), "median {m}");
    }

    #[test]
    fn rrc_promotion_charged_once() {
        let mut rrc = RrcState::new();
        let t0 = SimTime::from_micros(1_000_000);
        let d1 = rrc.touch(t0, RadioTech::Lte);
        assert_eq!(d1, SimDuration::from_millis(260));
        let d2 = rrc.touch(t0 + SimDuration::from_secs(1), RadioTech::Lte);
        assert_eq!(d2, SimDuration::ZERO);
    }

    #[test]
    fn rrc_demotes_after_tail() {
        let mut rrc = RrcState::new();
        let t0 = SimTime::from_micros(1_000_000);
        rrc.touch(t0, RadioTech::Lte);
        assert!(!rrc.is_idle(t0 + SimDuration::from_secs(5), RadioTech::Lte));
        assert!(rrc.is_idle(t0 + SimDuration::from_secs(11), RadioTech::Lte));
        let d = rrc.touch(t0 + SimDuration::from_secs(11), RadioTech::Lte);
        assert!(d > SimDuration::ZERO);
    }

    #[test]
    fn promotion_is_worse_on_3g() {
        assert!(RadioTech::Umts.promotion_delay() > RadioTech::Lte.promotion_delay());
    }

    #[test]
    fn bandwidth_orders_by_generation() {
        assert!(RadioTech::Lte.bandwidth_bps() > RadioTech::Hspa.bandwidth_bps());
        assert!(RadioTech::Hspa.bandwidth_bps() > RadioTech::Umts.bandwidth_bps());
        assert!(RadioTech::Umts.bandwidth_bps() > RadioTech::Gprs.bandwidth_bps());
    }

    #[test]
    fn loss_orders_by_generation() {
        assert!(RadioTech::Lte.loss() < RadioTech::Umts.loss());
        assert!(RadioTech::Umts.loss() < RadioTech::Gprs.loss());
        for t in RadioTech::all() {
            assert!((0.0..0.05).contains(&t.loss()));
        }
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            RadioTech::all().iter().map(|t| t.label()).collect();
        assert_eq!(labels.len(), RadioTech::all().len());
    }
}
