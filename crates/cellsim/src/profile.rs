//! Carrier profiles: the per-operator configuration data behind every
//! carrier-specific number in the paper (Tables 1, 3, 4; §5.2 egress
//! counts). All calibration constants live here, as plain data.

use netsim::time::SimDuration;

/// Market the carrier operates in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Country {
    /// United States.
    Us,
    /// South Korea.
    SouthKorea,
}

impl Country {
    /// Display label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            Country::Us => "US",
            Country::SouthKorea => "SK",
        }
    }
}

/// Radio lineage, which determines the set of fallback technologies a
/// device can report (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RadioLineage {
    /// GSM/UMTS lineage (AT&T, T-Mobile): LTE, HSPA family, UMTS, EDGE, GPRS.
    Gsm,
    /// CDMA lineage (Verizon, Sprint): LTE, eHRPD, EV-DO Rev. A, 1xRTT.
    Cdma,
    /// Korean operators: LTE plus a dense HSPA family.
    Korean,
}

/// How devices see the client-facing resolver tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientFacing {
    /// A small number of anycast VIPs; one forwarder instance per gateway
    /// region stands behind each VIP (AT&T, T-Mobile §4.1).
    Anycast {
        /// Number of VIP addresses configured on devices.
        vips: usize,
    },
    /// Distinct unicast forwarder addresses; the bearer assigns one.
    Unicast {
        /// Number of client-facing resolver addresses.
        count: usize,
    },
}

/// Client→external mapping policy parameters (drives Table 3 consistency).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicyConfig {
    /// One fixed external per forwarder (Verizon: 100% consistency).
    Sticky,
    /// Leased stickiness: re-evaluated every `lease`, kept with
    /// `stick_prob` (LDNS pools: Sprint and the Korean carriers).
    Lease {
        /// Mean lease duration.
        lease: SimDuration,
        /// Probability of keeping the current external at renewal.
        stick_prob: f64,
    },
    /// Uniform per-query balancing (T-Mobile's heavily balanced pool).
    LoadBalance,
    /// Each forwarder has a primary external and spills to a random pool
    /// member with `spill_prob` (Sprint's "fairly consistent mapping …
    /// over 60% of the time").
    PrimarySpill {
        /// Probability a query goes to a non-primary external.
        spill_prob: f64,
    },
}

/// DNS infrastructure description for one carrier (§4.1, Table 3, Table 4).
#[derive(Debug, Clone, PartialEq)]
pub struct DnsInfraConfig {
    /// Client-facing tier shape.
    pub client_facing: ClientFacing,
    /// Number of external-facing recursive resolvers.
    pub external_count: usize,
    /// How many /24 prefixes the externals span (SK carriers: 1–2; anycast
    /// US carriers: one per region group).
    pub external_slash24s: usize,
    /// AS number of the external tier when it differs from the carrier's
    /// (Verizon: client-facing in AS 6167, external in AS 22394).
    pub external_asn: Option<u32>,
    /// Mapping policy.
    pub policy: PolicyConfig,
    /// Number of externals that answer ICMP echo from outside the carrier
    /// (Table 4's ping column).
    pub external_ping_reachable: usize,
    /// Whether externals are co-located with client-facing resolvers
    /// (SK Telecom's near-equal latencies in Fig. 4).
    pub colocated_external: bool,
    /// Whether the client-facing tier answers device pings (all carriers'
    /// configured resolvers did).
    pub client_answers_ping: bool,
}

/// Full per-carrier profile.
#[derive(Debug, Clone, PartialEq)]
pub struct CarrierProfile {
    /// Operator name.
    pub name: &'static str,
    /// Market.
    pub country: Country,
    /// Carrier AS number.
    pub asn: u32,
    /// Measurement clients in the fleet (Table 1).
    pub client_count: usize,
    /// Ingress/egress gateway sites (§5.2: 11/45/62/49 for the US four).
    pub gateway_count: usize,
    /// Radio lineage.
    pub lineage: RadioLineage,
    /// DNS infrastructure.
    pub dns: DnsInfraConfig,
    /// Mean time between device private-IP reassignments (Balakrishnan et
    /// al.'s ephemeral addressing; drives §4.5 churn for stationary devices).
    pub ip_reassign_mean: SimDuration,
    /// Per-day probability that a device's bearer moves to another gateway
    /// (internal re-homing / tunnelling changes; also drives Fig. 12).
    pub gateway_reattach_daily_prob: f64,
    /// Probability a device stays on its previous radio technology between
    /// experiments (the rest resamples from the lineage mix).
    pub radio_stickiness: f64,
    /// Model the pre-LTE era of Xu et al. (SIGMETRICS'11): 4–6 gateways and
    /// no LTE radio. Used by the §5.2 historical comparison.
    pub three_g_era: bool,
}

impl CarrierProfile {
    /// Radio technology mix for this carrier's lineage:
    /// `(tech index into RadioTech ordering, probability)` pairs.
    pub fn tech_mix(&self) -> &'static [(crate::radio::RadioTech, f64)] {
        use crate::radio::RadioTech::*;
        match (self.lineage, self.three_g_era) {
            (RadioLineage::Gsm, false) => &[
                (Lte, 0.70),
                (Hspap, 0.12),
                (Hspa, 0.06),
                (Hsdpa, 0.05),
                (Umts, 0.04),
                (Edge, 0.02),
                (Gprs, 0.01),
            ],
            (RadioLineage::Cdma, false) => {
                &[(Lte, 0.72), (Ehrpd, 0.15), (EvdoA, 0.10), (OneXRtt, 0.03)]
            }
            (RadioLineage::Korean, false) => &[
                (Lte, 0.80),
                (Hspap, 0.08),
                (Hspa, 0.04),
                (Hsdpa, 0.03),
                (Hsupa, 0.03),
                (Umts, 0.02),
            ],
            // The 3G-UMTS / EVDO world Xu et al. measured.
            (RadioLineage::Gsm, true) => &[
                (Hspa, 0.35),
                (Hsdpa, 0.25),
                (Umts, 0.25),
                (Edge, 0.10),
                (Gprs, 0.05),
            ],
            (RadioLineage::Cdma, true) => &[(EvdoA, 0.80), (OneXRtt, 0.20)],
            (RadioLineage::Korean, true) => &[(Hspa, 0.45), (Hsdpa, 0.30), (Umts, 0.25)],
        }
    }

    /// The same carrier as it looked in the 3G era: 4–6 gateways (Xu et
    /// al.'s count), no LTE.
    pub fn as_three_g(mut self) -> Self {
        self.three_g_era = true;
        self.gateway_count = self.gateway_count.clamp(2, 4 + self.asn as usize % 3);
        self
    }
}

/// The six carriers of the study, calibrated to the paper's reported
/// structure. US egress counts follow §5.2 (11 / 45 / 62 / 49); fleet sizes
/// follow Table 1; DNS shapes follow §4.1 and Table 3.
pub fn six_carriers() -> Vec<CarrierProfile> {
    vec![
        CarrierProfile {
            name: "AT&T",
            country: Country::Us,
            asn: 7018,
            client_count: 33,
            gateway_count: 11,
            lineage: RadioLineage::Gsm,
            dns: DnsInfraConfig {
                // Anycast VIPs; one VIP observed mapping to 40 externals.
                client_facing: ClientFacing::Anycast { vips: 2 },
                external_count: 40,
                external_slash24s: 10,
                external_asn: None,
                policy: PolicyConfig::Lease {
                    lease: SimDuration::from_hours(18),
                    stick_prob: 0.55,
                },
                external_ping_reachable: 3, // "a small fraction"
                colocated_external: false,
                client_answers_ping: true,
            },
            ip_reassign_mean: SimDuration::from_hours(10),
            gateway_reattach_daily_prob: 0.35,
            radio_stickiness: 0.90,
            three_g_era: false,
        },
        CarrierProfile {
            name: "Sprint",
            country: Country::Us,
            asn: 10507,
            client_count: 9,
            gateway_count: 49,
            lineage: RadioLineage::Cdma,
            dns: DnsInfraConfig {
                client_facing: ClientFacing::Unicast { count: 4 },
                external_count: 9,
                external_slash24s: 4,
                external_asn: None,
                // LDNS pool with fairly consistent mapping, >60%.
                policy: PolicyConfig::PrimarySpill { spill_prob: 0.25 },
                external_ping_reachable: 0,
                colocated_external: false,
                client_answers_ping: true,
            },
            ip_reassign_mean: SimDuration::from_hours(14),
            gateway_reattach_daily_prob: 0.25,
            radio_stickiness: 0.88,
            three_g_era: false,
        },
        CarrierProfile {
            name: "T-Mobile",
            country: Country::Us,
            asn: 21928,
            client_count: 31,
            gateway_count: 45,
            lineage: RadioLineage::Gsm,
            dns: DnsInfraConfig {
                client_facing: ClientFacing::Anycast { vips: 2 },
                external_count: 30,
                external_slash24s: 12,
                external_asn: None,
                // "a high degree of load balancing between external
                // resolvers in T-Mobile's network".
                policy: PolicyConfig::LoadBalance,
                external_ping_reachable: 20, // majority respond
                colocated_external: false,
                client_answers_ping: true,
            },
            ip_reassign_mean: SimDuration::from_hours(8),
            gateway_reattach_daily_prob: 0.45,
            radio_stickiness: 0.90,
            three_g_era: false,
        },
        CarrierProfile {
            name: "Verizon",
            country: Country::Us,
            asn: 6167,
            client_count: 64,
            gateway_count: 62,
            lineage: RadioLineage::Cdma,
            dns: DnsInfraConfig {
                client_facing: ClientFacing::Unicast { count: 6 },
                external_count: 6,
                external_slash24s: 6,
                // Tiered resolvers in an entirely different AS (§4.1).
                external_asn: Some(22394),
                policy: PolicyConfig::Sticky, // 100% pairing consistency
                external_ping_reachable: 5,   // majority respond
                colocated_external: false,
                client_answers_ping: true,
            },
            ip_reassign_mean: SimDuration::from_hours(20),
            gateway_reattach_daily_prob: 0.15,
            radio_stickiness: 0.92,
            three_g_era: false,
        },
        CarrierProfile {
            name: "SK Telecom",
            country: Country::SouthKorea,
            asn: 9644,
            client_count: 17,
            gateway_count: 12,
            lineage: RadioLineage::Korean,
            dns: DnsInfraConfig {
                client_facing: ClientFacing::Unicast { count: 2 },
                external_count: 24,
                external_slash24s: 1, // "contained within the same /24"
                external_asn: None,
                policy: PolicyConfig::Lease {
                    lease: SimDuration::from_hours(4),
                    stick_prob: 0.35,
                },
                external_ping_reachable: 0,
                colocated_external: true, // near-equal latencies in Fig. 4
                client_answers_ping: true,
            },
            ip_reassign_mean: SimDuration::from_hours(6),
            gateway_reattach_daily_prob: 0.30,
            radio_stickiness: 0.93,
            three_g_era: false,
        },
        CarrierProfile {
            name: "LG U+",
            country: Country::SouthKorea,
            asn: 17858,
            client_count: 4,
            gateway_count: 10,
            lineage: RadioLineage::Korean,
            dns: DnsInfraConfig {
                client_facing: ClientFacing::Unicast { count: 5 },
                external_count: 89,
                external_slash24s: 2, // "within only 2 /24 prefixes"
                external_asn: None,
                // "over 65 external resolver IPs within a two week period".
                policy: PolicyConfig::Lease {
                    lease: SimDuration::from_hours(2),
                    stick_prob: 0.20,
                },
                external_ping_reachable: 0,
                colocated_external: false,
                client_answers_ping: true,
            },
            ip_reassign_mean: SimDuration::from_hours(5),
            gateway_reattach_daily_prob: 0.30,
            radio_stickiness: 0.93,
            three_g_era: false,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_matches_table_1() {
        let carriers = six_carriers();
        let total: usize = carriers.iter().map(|c| c.client_count).sum();
        assert_eq!(total, 158, "Table 1: 158 clients in the six carriers");
        assert_eq!(carriers.len(), 6);
        assert_eq!(
            carriers.iter().filter(|c| c.country == Country::Us).count(),
            4
        );
    }

    #[test]
    fn us_egress_counts_match_section_5_2() {
        let carriers = six_carriers();
        let get = |name: &str| {
            carriers
                .iter()
                .find(|c| c.name == name)
                .unwrap()
                .gateway_count
        };
        assert_eq!(get("AT&T"), 11);
        assert_eq!(get("T-Mobile"), 45);
        assert_eq!(get("Verizon"), 62);
        assert_eq!(get("Sprint"), 49);
    }

    #[test]
    fn verizon_is_tiered_across_ases_and_fully_sticky() {
        let carriers = six_carriers();
        let vz = carriers.iter().find(|c| c.name == "Verizon").unwrap();
        let sprint = carriers.iter().find(|c| c.name == "Sprint").unwrap();
        assert!(matches!(
            sprint.dns.policy,
            PolicyConfig::PrimarySpill { .. }
        ));
        assert_eq!(vz.dns.external_asn, Some(22394));
        assert_eq!(vz.asn, 6167);
        assert_eq!(vz.dns.policy, PolicyConfig::Sticky);
        assert_eq!(vz.dns.external_count, 6);
    }

    #[test]
    fn korean_carriers_keep_externals_in_few_slash24s() {
        let carriers = six_carriers();
        for name in ["SK Telecom", "LG U+"] {
            let c = carriers.iter().find(|c| c.name == name).unwrap();
            assert!(c.dns.external_slash24s <= 2, "{name}");
            assert_eq!(c.country, Country::SouthKorea);
        }
    }

    #[test]
    fn tech_mixes_sum_to_one() {
        for c in six_carriers() {
            let sum: f64 = c.tech_mix().iter().map(|(_, p)| p).sum();
            assert!((sum - 1.0).abs() < 1e-9, "{} mix sums to {sum}", c.name);
            let three_g = c.clone().as_three_g();
            let sum: f64 = three_g.tech_mix().iter().map(|(_, p)| p).sum();
            assert!(
                (sum - 1.0).abs() < 1e-9,
                "{} 3G mix sums to {sum}",
                three_g.name
            );
        }
    }

    #[test]
    fn three_g_era_matches_xu_et_al() {
        use crate::radio::RadioTech;
        for c in six_carriers() {
            let g3 = c.as_three_g();
            assert!(
                (2..=6).contains(&g3.gateway_count),
                "{}: {} gateways in the 3G era",
                g3.name,
                g3.gateway_count
            );
            assert!(
                !g3.tech_mix().iter().any(|(t, _)| *t == RadioTech::Lte),
                "{}: LTE in the 3G era",
                g3.name
            );
        }
    }

    #[test]
    fn anycast_carriers_are_the_gsm_us_pair() {
        for c in six_carriers() {
            let anycast = matches!(c.dns.client_facing, ClientFacing::Anycast { .. });
            let expected = c.name == "AT&T" || c.name == "T-Mobile";
            assert_eq!(anycast, expected, "{}", c.name);
        }
    }

    #[test]
    fn table4_reachability_shape() {
        let carriers = six_carriers();
        let reach = |name: &str| {
            let c = carriers.iter().find(|c| c.name == name).unwrap();
            (c.dns.external_ping_reachable, c.dns.external_count)
        };
        let (vz, vz_total) = reach("Verizon");
        assert!(vz * 2 > vz_total, "Verizon majority reachable");
        let (tm, tm_total) = reach("T-Mobile");
        assert!(tm * 2 > tm_total, "T-Mobile majority reachable");
        let (att, att_total) = reach("AT&T");
        assert!(att > 0 && att * 4 < att_total, "AT&T small fraction");
        for name in ["Sprint", "SK Telecom", "LG U+"] {
            assert_eq!(reach(name).0, 0, "{name} unreachable");
        }
    }
}
