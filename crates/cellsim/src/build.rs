//! Carrier topology construction: gateway sites, the MPLS-opaque core,
//! NAT/firewall at egress, and the carrier's DNS infrastructure.
//!
//! The layout follows Fig. 1's LTE architecture: many gateway (PGW) sites,
//! each with a radio aggregation node and an egress router, interconnected
//! by a label-switched core that traceroute cannot see through.

use crate::profile::{CarrierProfile, ClientFacing, PolicyConfig};
use dnssim::authority::DNS_PORT;
use dnssim::cache::AmbientModel;
use dnssim::forwarder::{Forwarder, UpstreamPolicy};
use dnssim::recursive::{RecursiveResolver, ResolverConfig, ServerFaults};
use dnssim::tcp::{TcpDnsServer, DNS_TCP_PORT};
use netsim::addr::{AddrAllocator, Prefix};
use netsim::engine::Network;
use netsim::latency::LatencyModel;
use netsim::middlebox::{Firewall, Nat};
use netsim::time::SimDuration;
use netsim::topo::{Asn, Coord, NodeId, NodeKind, PingPolicy, Topology};
use rand::rngs::StdRng;
use rand::Rng;
use std::net::Ipv4Addr;

/// A rectangular service region on the simulation map.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoRegion {
    /// West edge (km).
    pub x_km: f64,
    /// North edge (km).
    pub y_km: f64,
    /// Width (km).
    pub width_km: f64,
    /// Height (km).
    pub height_km: f64,
}

impl GeoRegion {
    /// The continental-US-sized region used by the US carriers.
    pub fn us() -> Self {
        GeoRegion {
            x_km: 0.0,
            y_km: 0.0,
            width_km: 4200.0,
            height_km: 2500.0,
        }
    }

    /// The South Korea region, placed a trans-Pacific distance away.
    pub fn south_korea() -> Self {
        GeoRegion {
            x_km: 9500.0,
            y_km: 500.0,
            width_km: 350.0,
            height_km: 420.0,
        }
    }

    /// Region centre.
    pub fn center(&self) -> Coord {
        Coord {
            x_km: self.x_km + self.width_km / 2.0,
            y_km: self.y_km + self.height_km / 2.0,
        }
    }

    /// Deterministic grid placement of `i` out of `n` points, with jitter.
    pub fn spot(&self, i: usize, n: usize, rng: &mut StdRng) -> Coord {
        let cols = (n as f64).sqrt().ceil().max(1.0).floor() as usize;
        let rows = n.div_ceil(cols);
        let col = i % cols;
        let row = i / cols;
        let jx: f64 = rng.gen_range(-0.2..0.2);
        let jy: f64 = rng.gen_range(-0.2..0.2);
        Coord {
            x_km: self.x_km + (col as f64 + 0.5 + jx) / cols as f64 * self.width_km,
            y_km: self.y_km + (row as f64 + 0.5 + jy) / rows.max(1) as f64 * self.height_km,
        }
    }
}

/// One gateway (PGW) site.
#[derive(Debug, Clone)]
pub struct GatewaySite {
    /// Site location.
    pub coord: Coord,
    /// Radio aggregation node (devices attach here; MPLS-transparent).
    pub agg: NodeId,
    /// Egress router with NAT + firewall and a public address.
    pub egress: NodeId,
    /// The egress router's public address (also the NAT pool address).
    pub egress_addr: Ipv4Addr,
    /// Anycast forwarder instance at this site, if the carrier uses an
    /// anycast client-facing tier.
    pub forwarder: Option<NodeId>,
}

/// Everything built for one carrier, needed by the device and service
/// layers.
#[derive(Debug)]
pub struct CarrierNet {
    /// The profile this carrier was built from.
    pub profile: CarrierProfile,
    /// Carrier index (drives the address plan).
    pub index: usize,
    /// Gateway sites.
    pub sites: Vec<GatewaySite>,
    /// The MPLS hub interconnecting all sites (transparent).
    pub hub: NodeId,
    /// Addresses devices get configured with as their resolver.
    pub client_facing_addrs: Vec<Ipv4Addr>,
    /// Unicast forwarder nodes with their locations (empty for anycast
    /// carriers, whose forwarders live on the sites).
    pub forwarder_nodes: Vec<(NodeId, Ipv4Addr, Coord)>,
    /// External recursive resolvers.
    pub external_resolvers: Vec<(NodeId, Ipv4Addr)>,
    /// Per-site upstream sets for anycast carriers (indexed like `sites`);
    /// `None` for carriers whose forwarders share one pool.
    pub site_upstreams: Option<Vec<Vec<Ipv4Addr>>>,
    /// Per-site device address pools (`10.<idx>.<2s>.0/23` for site `s`),
    /// so a device's /24 identifies its gateway region — the property an
    /// ECS deployment needs.
    pub site_allocs: Vec<AddrAllocator>,
    /// Prefix protected by the carrier's firewalls (private side).
    pub private_prefix: Prefix,
    /// Public prefix of the carrier.
    pub public_prefix: Prefix,
}

impl CarrierNet {
    /// Picks a configured resolver address for a (re)attaching device. The
    /// bearer assigns a regional forwarder for unicast carriers (closest to
    /// the device's site, with occasional mis-assignment) and a random VIP
    /// for anycast carriers.
    pub fn pick_configured_dns(&self, rng: &mut StdRng, at: Coord) -> Ipv4Addr {
        if self.forwarder_nodes.is_empty() || rng.gen_bool(0.1) {
            return self.client_facing_addrs[rng.gen_range(0..self.client_facing_addrs.len())];
        }
        self.forwarder_nodes
            .iter()
            .min_by(|a, b| a.2.distance_km(&at).total_cmp(&b.2.distance_km(&at)))
            .map(|&(_, addr, _)| addr)
            .expect("nonempty checked")
    }

    /// Index of the gateway site nearest to `coord`.
    pub fn nearest_site(&self, coord: Coord) -> usize {
        self.sites
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.coord
                    .distance_km(&coord)
                    .total_cmp(&b.coord.distance_km(&coord))
            })
            .map(|(i, _)| i)
            .expect("carrier has sites")
    }

    /// All prefixes the firewall protects.
    pub fn protected_prefixes(&self) -> Vec<Prefix> {
        vec![self.private_prefix, self.public_prefix]
    }

    /// Allocates a device address from a site's pool.
    pub fn alloc_device_ip(&mut self, site: usize) -> Ipv4Addr {
        self.site_allocs[site].alloc()
    }

    /// Releases a device address back to its site pool.
    pub fn release_device_ip(&mut self, addr: Ipv4Addr) {
        let site = (addr.octets()[2] / 2) as usize;
        if let Some(alloc) = self.site_allocs.get_mut(site) {
            alloc.release(addr);
        }
    }

    /// The RFC 7871 announcement map the carrier's resolvers use when ECS
    /// is deployed: each device /24 maps to its site's public egress
    /// subnet (the NAT-aware translation a real deployment needs).
    pub fn ecs_map(&self) -> std::collections::BTreeMap<Prefix, Ipv4Addr> {
        let mut map = std::collections::BTreeMap::new();
        for (s, alloc) in self.site_allocs.iter().enumerate() {
            let base = alloc.prefix().network().octets();
            let egress = self.sites[s].egress_addr;
            for half in 0..2u8 {
                let client24 = Prefix::new(Ipv4Addr::new(base[0], base[1], base[2] + half, 0), 24);
                map.insert(client24, egress);
            }
        }
        map
    }
}

/// First octet of a carrier's public /8.
fn public_octet(index: usize) -> u8 {
    100 + index as u8
}

/// Builds the carrier's nodes and links into `topo`. Services are installed
/// later via [`install_carrier_services`] once the `Network` exists.
pub fn build_carrier(
    topo: &mut Topology,
    index: usize,
    profile: CarrierProfile,
    region: GeoRegion,
    backbone: &[(NodeId, Coord)],
    rng: &mut StdRng,
) -> CarrierNet {
    assert!(!backbone.is_empty(), "carrier needs backbone attachment");
    assert!(index < 100, "address plan supports < 100 carriers");
    let asn = Asn(profile.asn);
    let pub8 = public_octet(index);
    let private_prefix: Prefix = format!("10.{index}.0.0/16").parse().expect("valid prefix");
    let public_prefix: Prefix = format!("{pub8}.0.0.0/8").parse().expect("valid prefix");
    assert!(
        profile.gateway_count <= 62,
        "address plan supports <= 62 sites"
    );
    let site_allocs: Vec<AddrAllocator> = (0..profile.gateway_count)
        .map(|s| {
            AddrAllocator::new(
                format!("10.{index}.{}.0/23", 2 * s)
                    .parse()
                    .expect("valid site pool"),
            )
        })
        .collect();

    let center = region.center();
    let hub = topo.add_node(
        format!("{}-mpls-hub", profile.name),
        NodeKind::TransparentRouter,
        asn,
        center,
        vec![Ipv4Addr::new(10, index as u8, 254, 1)],
    );

    // Gateway sites.
    let mut sites = Vec::with_capacity(profile.gateway_count);
    for s in 0..profile.gateway_count {
        let coord = region.spot(s, profile.gateway_count, rng);
        let agg = topo.add_node(
            format!("{}-agg-{s}", profile.name),
            NodeKind::TransparentRouter,
            asn,
            coord,
            vec![Ipv4Addr::new(10, index as u8, 255, (s + 1) as u8)],
        );
        let egress_addr = Ipv4Addr::new(pub8, 1, s as u8, 1);
        let egress = topo.add_node(
            format!("{}-pgw-{s}", profile.name),
            NodeKind::Router,
            asn,
            coord,
            vec![egress_addr],
        );
        topo.add_link(agg, egress, LatencyModel::constant_ms(1));
        // Site to MPLS core: latency grows with distance to the hub.
        let hub_dist = coord.distance_km(&center);
        topo.add_link(agg, hub, LatencyModel::wired(hub_dist));
        // Egress to a backbone POP. Peering is imperfect: usually the
        // nearest POP, sometimes a farther one (the detours Zarifis et al.
        // diagnosed), and always through a transit hop that costs extra
        // latency — this is why public DNS sits farther than the carrier's
        // own resolvers (Fig. 11).
        let mut pops: Vec<(NodeId, f64)> = backbone
            .iter()
            .map(|(n, c)| (*n, c.distance_km(&coord)))
            .collect();
        pops.sort_by(|a, b| a.1.total_cmp(&b.1));
        let roll: f64 = rng.gen();
        let pick = if roll < 0.6 || pops.len() == 1 {
            0
        } else if roll < 0.85 || pops.len() == 2 {
            1
        } else {
            2
        };
        let (pop, pop_dist) = pops[pick.min(pops.len() - 1)];
        topo.add_link(
            egress,
            pop,
            LatencyModel::Sum(
                Box::new(LatencyModel::wired(pop_dist)),
                Box::new(LatencyModel::constant_ms(15)),
            ),
        );
        sites.push(GatewaySite {
            coord,
            agg,
            egress,
            egress_addr,
            forwarder: None,
        });
    }

    // External recursive resolvers. Colocated carriers place them beside
    // the client-facing tier; others spread them over regional data centres
    // near the gateway sites (resolvers cluster at egress points — Xu et
    // al.). Reaching them still hairpins through the MPLS core, which is
    // what separates the curves in Fig. 4. Note the /24 plan: consecutive
    // externals rotate over the /24s, so one /24 mixes resolvers from
    // *different regions* — the ambiguity behind §4.5's "a change of
    // resolver can result in the association of a mobile client with a
    // completely different (and distant!) egress point".
    let ext_asn = profile.dns.external_asn.map(Asn).unwrap_or(asn);
    let s24s = profile.dns.external_slash24s.max(1);
    let mut external_resolvers = Vec::with_capacity(profile.dns.external_count);
    for j in 0..profile.dns.external_count {
        let addr = Ipv4Addr::new(pub8, (110 + (j % s24s)) as u8, 0, (1 + j / s24s) as u8);
        let coord = if profile.dns.colocated_external {
            center
        } else {
            sites[j % sites.len()].coord
        };
        let node = topo.add_node(
            format!("{}-ldns-ext-{j}", profile.name),
            NodeKind::Host,
            ext_asn,
            coord,
            vec![addr],
        );
        let d = coord.distance_km(&center);
        topo.add_link(node, hub, LatencyModel::wired(d.max(50.0)));
        external_resolvers.push((node, addr));
    }

    // Client-facing tier.
    let mut client_facing_addrs = Vec::new();
    let mut forwarder_nodes = Vec::new();
    let mut site_upstreams = None;
    match profile.dns.client_facing {
        ClientFacing::Anycast { vips } => {
            // One forwarder instance per site; VIPs are anycast over them.
            let mut per_site = Vec::with_capacity(sites.len());
            for (s, site) in sites.iter_mut().enumerate() {
                let inst_addr = Ipv4Addr::new(pub8, 53, s as u8, 1);
                let node = topo.add_node(
                    format!("{}-ldns-cf-{s}", profile.name),
                    NodeKind::Host,
                    asn,
                    site.coord,
                    vec![inst_addr],
                );
                topo.add_link(node, site.agg, LatencyModel::constant_ms(1));
                site.forwarder = Some(node);
                // This site's upstream subset, spanning multiple /24s so
                // lease churn crosses prefixes (§4.5).
                let ups: Vec<Ipv4Addr> = external_resolvers
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| j % sites_len_hint(profile.gateway_count) == s)
                    .map(|(_, (_, a))| *a)
                    .collect();
                let ups = if ups.is_empty() {
                    vec![external_resolvers[s % external_resolvers.len()].1]
                } else {
                    ups
                };
                per_site.push(ups);
            }
            for v in 0..vips {
                client_facing_addrs.push(Ipv4Addr::new(pub8, 0, 0, (v + 1) as u8));
            }
            site_upstreams = Some(per_site);
        }
        ClientFacing::Unicast { count } => {
            for i in 0..count {
                let addr = Ipv4Addr::new(pub8, 53, 0, (i + 1) as u8);
                if profile.dns.colocated_external {
                    // SK Telecom-style: client-facing beside the externals
                    // at the central DC (near-equal latencies in Fig. 4).
                    let node = topo.add_node(
                        format!("{}-ldns-cf-{i}", profile.name),
                        NodeKind::Host,
                        asn,
                        center,
                        vec![addr],
                    );
                    topo.add_link(node, hub, LatencyModel::constant_ms(1));
                    client_facing_addrs.push(addr);
                    forwarder_nodes.push((node, addr, center));
                } else {
                    // Client-facing resolvers live in gateway data centres,
                    // close to the radio — which is why the carrier's own
                    // DNS answers faster than public DNS (Fig. 13).
                    let host_site = i * sites.len() / count;
                    let site = &sites[host_site];
                    let node = topo.add_node(
                        format!("{}-ldns-cf-{i}", profile.name),
                        NodeKind::Host,
                        asn,
                        site.coord,
                        vec![addr],
                    );
                    topo.add_link(node, site.agg, LatencyModel::constant_ms(1));
                    client_facing_addrs.push(addr);
                    forwarder_nodes.push((node, addr, site.coord));
                }
            }
        }
    }

    CarrierNet {
        profile,
        index,
        sites,
        hub,
        client_facing_addrs,
        forwarder_nodes,
        external_resolvers,
        site_upstreams,
        site_allocs,
        private_prefix,
        public_prefix,
    }
}

fn sites_len_hint(n: usize) -> usize {
    n.max(1)
}

/// Installs the carrier's middleboxes, services, and anycast after the
/// `Network` has been created.
pub fn install_carrier_services(
    net: &mut Network,
    carrier: &CarrierNet,
    roots: &[Ipv4Addr],
    ambient_period: Option<SimDuration>,
    ecs: bool,
    faults: ServerFaults,
) {
    let ecs_map = if ecs {
        carrier.ecs_map()
    } else {
        Default::default()
    };
    let protected = carrier.protected_prefixes();
    // Middleboxes and ping allowlists on every egress gateway.
    let reachable: Vec<Ipv4Addr> = carrier
        .external_resolvers
        .iter()
        .take(carrier.profile.dns.external_ping_reachable)
        .map(|(_, a)| *a)
        .collect();
    for site in &carrier.sites {
        let mut fw = Firewall::new(protected.clone());
        for &addr in &reachable {
            fw.allow_ping_to(addr);
        }
        let node = net.topo_mut().node_mut(site.egress);
        node.firewall = Some(fw);
        node.nat = Some(Nat::new(vec![carrier.private_prefix], site.egress_addr));
    }

    // External recursive resolvers.
    for (j, (node, addr)) in carrier.external_resolvers.iter().enumerate() {
        let mut cfg = ResolverConfig::new(roots.to_vec());
        cfg.egress_addrs = vec![*addr];
        cfg.faults = faults;
        if let Some(period) = ambient_period {
            cfg.ambient = Some(AmbientModel {
                period,
                phase: SimDuration::from_micros(
                    (j as u64 * 7_919 + carrier.index as u64 * 104_729) * 1_000,
                ),
            });
        }
        net.register_service(*node, DNS_PORT, Box::new(RecursiveResolver::new(cfg)));
        // Inside-ping behaviour: Verizon-style tiered externals ignore
        // carrier-internal probes but answer the outside world (§4.2).
        let policy = if carrier.profile.dns.external_asn.is_some() {
            PingPolicy::NotFrom(protected.clone())
        } else if carrier.profile.name == "LG U+" {
            PingPolicy::Never
        } else {
            PingPolicy::Always
        };
        net.topo_mut().node_mut(*node).answers_ping = policy;
    }

    let policy = match carrier.profile.dns.policy {
        PolicyConfig::Sticky => UpstreamPolicy::Sticky,
        PolicyConfig::Lease { lease, stick_prob } => {
            UpstreamPolicy::PerClientLease { lease, stick_prob }
        }
        PolicyConfig::LoadBalance => UpstreamPolicy::LoadBalance,
        PolicyConfig::PrimarySpill { spill_prob } => UpstreamPolicy::PrimarySpill { spill_prob },
    };

    // Client-facing resolvers cache answers; their ambient phase differs
    // from the externals' so warmth is not artificially correlated.
    let fwd_cache = |idx: usize| {
        ambient_period.map(|period| AmbientModel {
            period,
            phase: SimDuration::from_micros(
                (idx as u64 * 13_003 + carrier.index as u64 * 50_021 + 7_777) * 1_000,
            ),
        })
    };
    match (&carrier.site_upstreams, carrier.forwarder_nodes.is_empty()) {
        (Some(per_site), _) => {
            // Anycast carriers: one forwarder per site over its subset.
            for (s, site) in carrier.sites.iter().enumerate() {
                let node = site.forwarder.expect("anycast site has forwarder");
                let instance_addr = net.topo().node(node).primary_addr();
                net.register_service(
                    node,
                    DNS_PORT,
                    Box::new(
                        Forwarder::new(per_site[s].clone(), policy.clone())
                            .with_egress(instance_addr)
                            .with_cache(50_000, SimDuration::from_hours(24), fwd_cache(s))
                            .with_ecs_map(ecs_map.clone()),
                    ),
                );
                // DNS-over-TCP fallback endpoint, relaying to the
                // co-located forwarder. Event-free until a client connects.
                net.register_service(node, DNS_TCP_PORT, Box::new(TcpDnsServer::new()));
            }
            let instances: Vec<NodeId> = carrier
                .sites
                .iter()
                .map(|s| s.forwarder.expect("anycast site has forwarder"))
                .collect();
            for &vip in &carrier.client_facing_addrs {
                net.add_anycast(vip, instances.clone());
            }
        }
        (None, false) => {
            for (i, (node, _, _)) in carrier.forwarder_nodes.iter().enumerate() {
                let upstreams = match carrier.profile.dns.policy {
                    // Tiered-sticky carriers pin forwarder i to external i.
                    PolicyConfig::Sticky => {
                        let (_, ext) =
                            carrier.external_resolvers[i % carrier.external_resolvers.len()];
                        vec![ext]
                    }
                    // Pool carriers share the whole pool, rotated so each
                    // forwarder's primary (first entry) differs.
                    _ => {
                        let n = carrier.external_resolvers.len();
                        (0..n)
                            .map(|k| carrier.external_resolvers[(i + k) % n].1)
                            .collect()
                    }
                };
                net.register_service(
                    *node,
                    DNS_PORT,
                    Box::new(
                        Forwarder::new(upstreams, policy.clone())
                            .with_cache(50_000, SimDuration::from_hours(24), fwd_cache(i + 100))
                            .with_ecs_map(ecs_map.clone()),
                    ),
                );
                net.register_service(*node, DNS_TCP_PORT, Box::new(TcpDnsServer::new()));
            }
        }
        (None, true) => unreachable!("carrier without any client-facing tier"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::six_carriers;
    use rand::SeedableRng;

    fn backbone(topo: &mut Topology) -> Vec<(NodeId, Coord)> {
        let mut pops = Vec::new();
        for i in 0..4 {
            let coord = Coord {
                x_km: 500.0 + i as f64 * 1000.0,
                y_km: 1200.0,
            };
            let node = topo.add_node(
                format!("pop-{i}"),
                NodeKind::Router,
                Asn(3356),
                coord,
                vec![Ipv4Addr::new(80, 0, i as u8, 1)],
            );
            if let Some(&(prev, _)) = pops.last() {
                topo.add_wired_link(prev, node);
            }
            pops.push((node, coord));
        }
        pops
    }

    #[test]
    fn builds_all_six_carriers_without_address_collisions() {
        let mut topo = Topology::new();
        let pops = backbone(&mut topo);
        let mut rng = StdRng::seed_from_u64(1);
        for (i, p) in six_carriers().into_iter().enumerate() {
            let region = match p.country {
                crate::profile::Country::Us => GeoRegion::us(),
                crate::profile::Country::SouthKorea => GeoRegion::south_korea(),
            };
            let c = build_carrier(&mut topo, i, p, region, &pops, &mut rng);
            assert_eq!(c.sites.len(), c.profile.gateway_count);
            assert_eq!(c.external_resolvers.len(), c.profile.dns.external_count);
            assert!(!c.client_facing_addrs.is_empty());
        }
        // > 400 nodes built with unique addresses (add_node would panic on
        // duplicates).
        assert!(topo.node_count() > 400, "{} nodes", topo.node_count());
    }

    #[test]
    fn external_slash24_plan_matches_profile() {
        let mut topo = Topology::new();
        let pops = backbone(&mut topo);
        let mut rng = StdRng::seed_from_u64(2);
        let profiles = six_carriers();
        for (i, p) in profiles.into_iter().enumerate() {
            let region = match p.country {
                crate::profile::Country::Us => GeoRegion::us(),
                crate::profile::Country::SouthKorea => GeoRegion::south_korea(),
            };
            let expected = p.dns.external_slash24s.min(p.dns.external_count);
            let c = build_carrier(&mut topo, i, p, region, &pops, &mut rng);
            let prefixes: std::collections::HashSet<Prefix> = c
                .external_resolvers
                .iter()
                .map(|(_, a)| Prefix::slash24_of(*a))
                .collect();
            assert_eq!(prefixes.len(), expected, "{}", c.profile.name);
        }
    }

    #[test]
    fn anycast_carriers_have_per_site_forwarders() {
        let mut topo = Topology::new();
        let pops = backbone(&mut topo);
        let mut rng = StdRng::seed_from_u64(3);
        let att = six_carriers().remove(0);
        let c = build_carrier(&mut topo, 0, att, GeoRegion::us(), &pops, &mut rng);
        assert!(c.site_upstreams.is_some());
        assert!(c.sites.iter().all(|s| s.forwarder.is_some()));
        let per_site = c.site_upstreams.as_ref().unwrap();
        // Each site's upstream set spans more than one /24 so lease churn
        // crosses prefixes.
        let multi = per_site
            .iter()
            .filter(|ups| {
                ups.iter()
                    .map(|a| Prefix::slash24_of(*a))
                    .collect::<std::collections::HashSet<_>>()
                    .len()
                    > 1
            })
            .count();
        assert!(multi > per_site.len() / 2, "{multi}/{}", per_site.len());
    }

    #[test]
    fn nearest_site_is_sane() {
        let mut topo = Topology::new();
        let pops = backbone(&mut topo);
        let mut rng = StdRng::seed_from_u64(4);
        let vz = six_carriers().remove(3);
        let c = build_carrier(&mut topo, 3, vz, GeoRegion::us(), &pops, &mut rng);
        for (s, site) in c.sites.iter().enumerate() {
            assert_eq!(c.nearest_site(site.coord), s);
        }
    }

    #[test]
    fn install_services_wires_everything() {
        let mut topo = Topology::new();
        let pops = backbone(&mut topo);
        let root = topo.add_node(
            "root",
            NodeKind::Host,
            Asn(42),
            Coord::default(),
            vec![Ipv4Addr::new(198, 41, 0, 4)],
        );
        topo.add_wired_link(root, pops[0].0);
        let mut rng = StdRng::seed_from_u64(5);
        let vz = six_carriers().remove(3);
        let c = build_carrier(&mut topo, 3, vz, GeoRegion::us(), &pops, &mut rng);
        let mut net = Network::new(topo, 7);
        install_carrier_services(
            &mut net,
            &c,
            &[Ipv4Addr::new(198, 41, 0, 4)],
            Some(SimDuration::from_secs(75)),
            false,
            ServerFaults::default(),
        );
        // Egress nodes now carry NAT and firewall.
        for site in &c.sites {
            let node = net.topo().node(site.egress);
            assert!(node.firewall.is_some());
            assert!(node.nat.is_some());
        }
        // External resolvers reject carrier-internal pings (Verizon).
        let (ext_node, _) = c.external_resolvers[0];
        assert!(matches!(
            net.topo().node(ext_node).answers_ping,
            PingPolicy::NotFrom(_)
        ));
    }
}
