//! Devices: radio state, bearer (gateway + IP + configured resolver), and
//! the churn processes behind §4.5 — IP reassignment while stationary,
//! bearer re-homing to other gateways, and commuter mobility.

use crate::build::CarrierNet;
use crate::profile::CarrierProfile;
use crate::radio::{RadioTech, RrcState};
use netsim::engine::Network;
use netsim::time::{SimDuration, SimTime};
use netsim::topo::{Coord, NodeId, Topology};
use rand::rngs::StdRng;
use rand::Rng;
use std::net::Ipv4Addr;

/// Movement pattern of a device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mobility {
    /// Never leaves its home location (the Fig. 9 population).
    Static,
    /// Alternates daily between home and a second location.
    Commuter {
        /// The other location.
        alt: Coord,
    },
}

/// One measurement device.
#[derive(Debug, Clone)]
pub struct Device {
    /// Fleet-wide device id.
    pub id: usize,
    /// Carrier index.
    pub carrier: usize,
    /// The device's node in the topology.
    pub node: NodeId,
    /// Its radio access link.
    pub radio_link: usize,
    /// Home location.
    pub home: Coord,
    /// Movement pattern.
    pub mobility: Mobility,
    /// Whether a commuter is currently at its alternate location.
    pub at_alt: bool,
    /// Active radio technology.
    pub tech: RadioTech,
    /// RRC state machine.
    pub rrc: RrcState,
    /// Index of the currently attached gateway site.
    pub site: usize,
    /// Current (private) IP address.
    pub ip: Ipv4Addr,
    /// Resolver address configured on the device by the bearer.
    pub configured_dns: Ipv4Addr,
    /// When the next IP reassignment is due.
    pub next_ip_change: SimTime,
}

impl Device {
    /// Current physical location.
    pub fn coord(&self) -> Coord {
        match (self.mobility, self.at_alt) {
            (Mobility::Commuter { alt }, true) => alt,
            _ => self.home,
        }
    }

    /// Whether the device never moves (Fig. 9's static filter).
    pub fn is_static(&self) -> bool {
        matches!(self.mobility, Mobility::Static)
    }

    /// Applies the current radio technology to the access link (latency
    /// model, loss rate, and capacity).
    pub fn apply_radio(&self, topo: &mut Topology) {
        topo.set_link_latency(self.radio_link, self.tech.latency_model());
        topo.set_link_loss(self.radio_link, self.tech.loss());
        topo.set_link_bandwidth(self.radio_link, Some(self.tech.bandwidth_bps()));
    }

    /// Possibly resamples the radio technology (between experiments devices
    /// mostly stay on their current radio; §3.3).
    pub fn maybe_resample_radio(
        &mut self,
        profile: &CarrierProfile,
        topo: &mut Topology,
        rng: &mut StdRng,
    ) {
        if rng.gen_bool(profile.radio_stickiness) {
            return;
        }
        let mix = profile.tech_mix();
        let roll: f64 = rng.gen();
        let mut acc = 0.0;
        let mut chosen = mix[0].0;
        for &(tech, p) in mix {
            acc += p;
            if roll < acc {
                chosen = tech;
                break;
            }
        }
        if chosen != self.tech {
            self.tech = chosen;
            self.apply_radio(topo);
            self.rrc = RrcState::new();
        }
    }

    /// Wakes the radio for an experiment; returns the promotion delay the
    /// bootstrap ping will absorb.
    pub fn wake_radio(&mut self, now: SimTime) -> SimDuration {
        self.rrc.touch(now, self.tech)
    }

    /// Reassigns the device's private IP (Balakrishnan et al.'s ephemeral
    /// addressing). Also re-picks the configured resolver with probability
    /// `redns_prob`, as bearer re-establishment does.
    pub fn reassign_ip(
        &mut self,
        net: &mut Network,
        carrier: &mut CarrierNet,
        rng: &mut StdRng,
        now: SimTime,
        redns_prob: f64,
    ) {
        let new_ip = carrier.alloc_device_ip(self.site);
        net.topo_mut().replace_addr(self.node, self.ip, new_ip);
        carrier.release_device_ip(self.ip);
        self.ip = new_ip;
        if rng.gen_bool(redns_prob.clamp(0.0, 1.0)) {
            self.configured_dns = carrier.pick_configured_dns(rng, self.coord());
        }
        let mean_us = carrier.profile.ip_reassign_mean.as_micros().max(1);
        // Exponential inter-arrival around the profile mean.
        let jitter: f64 = -rng.gen_range(1e-9_f64..1.0).ln();
        self.next_ip_change =
            now + SimDuration::from_micros((mean_us as f64 * jitter).floor() as u64);
    }

    /// Re-homes the bearer onto `new_site` and establishes a fresh PDP
    /// context there (new IP from the new site's pool). The caller batches
    /// route rebuilds (`Network::rebuild_routes`).
    pub fn reattach(&mut self, net: &mut Network, carrier: &mut CarrierNet, new_site: usize) {
        if new_site == self.site {
            return;
        }
        let agg = carrier.sites[new_site].agg;
        net.topo_mut().rewire_link(self.radio_link, self.node, agg);
        self.site = new_site;
        let new_ip = carrier.alloc_device_ip(new_site);
        net.topo_mut().replace_addr(self.node, self.ip, new_ip);
        carrier.release_device_ip(self.ip);
        self.ip = new_ip;
    }

    /// Daily churn pass: commuter movement, gateway re-homing, configured-
    /// resolver refresh. Returns `true` when the topology changed shape and
    /// routes must be rebuilt.
    pub fn daily_churn(
        &mut self,
        net: &mut Network,
        carrier: &mut CarrierNet,
        rng: &mut StdRng,
    ) -> bool {
        let mut dirty = false;
        if let Mobility::Commuter { .. } = self.mobility {
            self.at_alt = !self.at_alt;
            let best = carrier.nearest_site(self.coord());
            if best != self.site {
                self.reattach(net, carrier, best);
                dirty = true;
            }
        }
        if rng.gen_bool(carrier.profile.gateway_reattach_daily_prob.clamp(0.0, 1.0)) {
            // Re-home to a random nearby site (internal re-balancing; this
            // happens to stationary devices too — §4.5, Fig. 9).
            let n = carrier.sites.len();
            if n > 1 {
                let mut candidate = rng.gen_range(0..n);
                if candidate == self.site {
                    candidate = (candidate + 1) % n;
                }
                self.reattach(net, carrier, candidate);
                dirty = true;
            }
            self.configured_dns = carrier.pick_configured_dns(rng, self.coord());
        }
        dirty
    }
}

/// Creates and attaches the fleet for one carrier. Device homes cluster
/// around gateway sites; roughly one in five devices commutes.
pub fn create_devices(
    topo: &mut Topology,
    carrier: &mut CarrierNet,
    first_id: usize,
    rng: &mut StdRng,
) -> Vec<Device> {
    let n = carrier.profile.client_count;
    let mut devices = Vec::with_capacity(n);
    for i in 0..n {
        let site_idx = rng.gen_range(0..carrier.sites.len());
        let site_coord = carrier.sites[site_idx].coord;
        let home = Coord {
            x_km: site_coord.x_km + rng.gen_range(-40.0..40.0),
            y_km: site_coord.y_km + rng.gen_range(-40.0..40.0),
        };
        let mobility = if rng.gen_bool(0.2) {
            let other = carrier.sites[rng.gen_range(0..carrier.sites.len())].coord;
            Mobility::Commuter {
                alt: Coord {
                    x_km: other.x_km + rng.gen_range(-40.0..40.0),
                    y_km: other.y_km + rng.gen_range(-40.0..40.0),
                },
            }
        } else {
            Mobility::Static
        };
        let site = carrier.nearest_site(home);
        let ip = carrier.alloc_device_ip(site);
        let node = topo.add_node(
            format!("{}-dev-{i}", carrier.profile.name),
            netsim::topo::NodeKind::Host,
            netsim::topo::Asn(carrier.profile.asn),
            home,
            vec![ip],
        );
        let tech = carrier.profile.tech_mix()[0].0; // start on LTE
        let radio_link = topo.add_link(node, carrier.sites[site].agg, tech.latency_model());
        topo.set_link_loss(radio_link, tech.loss());
        topo.set_link_bandwidth(radio_link, Some(tech.bandwidth_bps()));
        let configured_dns = carrier.pick_configured_dns(rng, home);
        devices.push(Device {
            id: first_id + i,
            carrier: carrier.index,
            node,
            radio_link,
            home,
            mobility,
            at_alt: false,
            tech,
            rrc: RrcState::new(),
            site,
            ip,
            configured_dns,
            next_ip_change: SimTime::ZERO, // first reassignment scheduled on attach
        });
    }
    devices
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_carrier, GeoRegion};
    use crate::profile::six_carriers;
    use netsim::latency::LatencyModel;
    use netsim::topo::{Asn, NodeKind};
    use rand::SeedableRng;

    fn world() -> (Network, CarrierNet, Vec<Device>) {
        let mut topo = Topology::new();
        let pop = topo.add_node(
            "pop",
            NodeKind::Router,
            Asn(3356),
            Coord {
                x_km: 2000.0,
                y_km: 1200.0,
            },
            vec![Ipv4Addr::new(80, 0, 0, 1)],
        );
        let mut rng = StdRng::seed_from_u64(11);
        let profile = six_carriers().remove(0); // AT&T
        let mut carrier = build_carrier(
            &mut topo,
            0,
            profile,
            GeoRegion::us(),
            &[(
                pop,
                Coord {
                    x_km: 2000.0,
                    y_km: 1200.0,
                },
            )],
            &mut rng,
        );
        let devices = create_devices(&mut topo, &mut carrier, 0, &mut rng);
        let net = Network::new(topo, 5);
        (net, carrier, devices)
    }

    #[test]
    fn fleet_size_matches_profile() {
        let (_, carrier, devices) = world();
        assert_eq!(devices.len(), carrier.profile.client_count);
        let statics = devices.iter().filter(|d| d.is_static()).count();
        assert!(statics > devices.len() / 2, "most devices are static");
    }

    #[test]
    fn devices_attach_to_their_nearest_site() {
        let (_, carrier, devices) = world();
        for d in &devices {
            assert_eq!(d.site, carrier.nearest_site(d.home));
        }
    }

    #[test]
    fn ip_reassignment_swaps_the_node_address() {
        let (mut net, mut carrier, mut devices) = world();
        let d = &mut devices[0];
        let old_ip = d.ip;
        let mut rng = StdRng::seed_from_u64(3);
        d.reassign_ip(&mut net, &mut carrier, &mut rng, SimTime::ZERO, 0.0);
        assert_ne!(d.ip, old_ip);
        assert_eq!(net.topo().owner_of(d.ip), Some(d.node));
        assert_eq!(net.topo().owner_of(old_ip), None);
        assert!(d.next_ip_change > SimTime::ZERO);
    }

    #[test]
    fn reattach_moves_the_radio_link() {
        let (mut net, mut carrier, mut devices) = world();
        let d = &mut devices[0];
        let old_ip = d.ip;
        let new_site = (d.site + 1) % carrier.sites.len();
        d.reattach(&mut net, &mut carrier, new_site);
        // Bearer re-establishment also assigns an IP from the new site pool.
        assert_ne!(d.ip, old_ip);
        assert_eq!((d.ip.octets()[2] / 2) as usize, new_site);
        assert_eq!(d.site, new_site);
        let link = net.topo().link(d.radio_link);
        let peer = if link.a == d.node { link.b } else { link.a };
        assert_eq!(peer, carrier.sites[new_site].agg);
    }

    #[test]
    fn radio_resampling_respects_stickiness() {
        let (mut net, carrier, mut devices) = world();
        let mut rng = StdRng::seed_from_u64(9);
        let mut changes = 0;
        let d = &mut devices[0];
        for _ in 0..200 {
            let before = d.tech;
            d.maybe_resample_radio(&carrier.profile, net.topo_mut(), &mut rng);
            if d.tech != before {
                changes += 1;
            }
        }
        // stickiness 0.90 and LTE-heavy mix: only a handful of switches.
        assert!(changes > 0, "radio never changed");
        assert!(changes < 30, "radio changed {changes} times");
    }

    #[test]
    fn wake_radio_charges_promotion_once() {
        let (_, _, mut devices) = world();
        let d = &mut devices[0];
        let t = SimTime::from_micros(1);
        assert!(d.wake_radio(t) > SimDuration::ZERO);
        assert_eq!(
            d.wake_radio(t + SimDuration::from_secs(1)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn daily_churn_eventually_rehomes_static_devices() {
        let (mut net, mut carrier, mut devices) = world();
        let mut rng = StdRng::seed_from_u64(21);
        let d = devices.iter_mut().find(|d| d.is_static()).unwrap();
        let before = d.site;
        let mut moved = false;
        for _ in 0..30 {
            if d.daily_churn(&mut net, &mut carrier, &mut rng) && d.site != before {
                moved = true;
                break;
            }
        }
        assert!(moved, "static device never re-homed in 30 days");
    }

    #[test]
    fn apply_radio_changes_link_model() {
        let (mut net, _, mut devices) = world();
        let d = &mut devices[0];
        d.tech = RadioTech::OneXRtt;
        d.apply_radio(net.topo_mut());
        let model = net.topo().link(d.radio_link).latency.clone();
        assert_eq!(model, RadioTech::OneXRtt.latency_model());
        assert!(model != LatencyModel::constant_ms(1));
    }
}
