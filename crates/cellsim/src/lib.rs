#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `cellsim` — the cellular-network substrate of the *Behind the Curtain*
//! reproduction: carrier topologies (LTE-era many-gateway cores behind
//! MPLS opacity, NAT and stateful firewalls at egress), radio access
//! technologies with calibrated latency bands and RRC state, carrier DNS
//! infrastructures (anycast / pool / tiered per §4.1), and the device fleet
//! with the churn processes of §4.5.
//!
//! The paper's hardware gate — volunteer phones inside six carriers — is
//! substituted by this simulation; see DESIGN.md for the argument that the
//! substitution preserves the observable behaviour each experiment needs.

pub mod build;
pub mod device;
pub mod profile;
pub mod radio;

pub use build::{build_carrier, install_carrier_services, CarrierNet, GatewaySite, GeoRegion};
pub use device::{create_devices, Device, Mobility};
pub use profile::{
    six_carriers, CarrierProfile, ClientFacing, Country, DnsInfraConfig, PolicyConfig, RadioLineage,
};
pub use radio::{RadioTech, RrcState};
