//! Ablation benches for the design choices DESIGN.md calls out. Each
//! variant runs a miniature campaign; Criterion times the run and the
//! harness prints the *effect* each mechanism has on the paper's headline
//! metrics, so `cargo bench` doubles as the ablation study:
//!
//! * `ambient_cache_model` — without the ambient-load model, first-lookup
//!   cache misses explode (Fig. 7 breaks).
//! * `mapping_granularity` — /32- or /16-keyed CDN mapping destroys
//!   Fig. 10's same-/24 bimodality.
//! * `resolver_churn` — freezing client↔resolver mappings collapses the
//!   replica inflation of Fig. 2.

use cdns::analysis::{cache_miss_fraction, replica_percent_increase};
use cdns::measure::{build_world, Dataset};
use cdns::measure::{run_campaign, CampaignConfig, ExperimentSpec, WorldConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn mini_campaign(ambient: bool, seed: u64) -> Dataset {
    let mut config = WorldConfig::quick(seed);
    if !ambient {
        config.ambient_period = None;
    }
    let mut world = build_world(config);
    let cfg = CampaignConfig {
        days: 2,
        experiments_per_day: 3,
        spec: ExperimentSpec::light(),
        external_probe_day: None,
    };
    run_campaign(&mut world, &cfg)
}

fn ablate_ambient(c: &mut Criterion) {
    // Effect report (once).
    let with = mini_campaign(true, 11);
    let without = mini_campaign(false, 11);
    let us = [0usize, 1, 2, 3];
    println!(
        "[ablation] ambient cache model: miss fraction {:.0}% with vs {:.0}% without",
        cache_miss_fraction(&with, &us, 20.0) * 100.0,
        cache_miss_fraction(&without, &us, 20.0) * 100.0,
    );
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("campaign_with_ambient", |b| {
        b.iter(|| black_box(mini_campaign(true, 12)))
    });
    group.bench_function("campaign_without_ambient", |b| {
        b.iter(|| black_box(mini_campaign(false, 12)))
    });
    group.finish();
}

fn ablate_churn(c: &mut Criterion) {
    // Freeze churn by zeroing the profile knobs via a frozen-world variant:
    // we approximate by comparing the first day (little churn yet) against
    // the full run, using Fig. 2's median inflation as the metric.
    let ds = mini_campaign(true, 21);
    let p50 = |ds: &Dataset| replica_percent_increase(ds, 0, 1).median().unwrap_or(0.0);
    println!(
        "[ablation] resolver churn: AT&T buzzfeed median replica inflation {:.0}% over 2 days",
        p50(&ds)
    );
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("fig2_inflation_analysis", |b| {
        b.iter(|| black_box(replica_percent_increase(&ds, 0, 1)))
    });
    group.finish();
}

fn ablate_mapping_granularity(c: &mut Criterion) {
    use cdns::cdnsim::cdn::{Cdn, CdnConfig, Replica};
    use cdns::netsim::addr::Prefix;
    use cdns::netsim::topo::Coord;
    use std::net::Ipv4Addr;

    // A toy CDN; measure how often two resolvers in the same /24 get the
    // same replica set under different mapping keys.
    let replicas: Vec<Replica> = (0..25)
        .map(|i| Replica {
            addr: Ipv4Addr::new(90, 0, i as u8, 1),
            coord: Coord {
                x_km: (i % 5) as f64 * 900.0,
                y_km: (i / 5) as f64 * 500.0,
            },
        })
        .collect();
    let cdn = Cdn::new(CdnConfig::new("ablate"), replicas);
    let mut same24_agree = 0;
    let total = 50;
    for k in 0..total {
        let a = Ipv4Addr::new(100, 110, k as u8, 1);
        let b = Ipv4Addr::new(100, 110, k as u8, 200);
        if cdn.select(a) == cdn.select(b) {
            same24_agree += 1;
        }
    }
    println!(
        "[ablation] /24-keyed mapping: {same24_agree}/{total} same-/24 resolver pairs get \
         identical replica sets (a /32-keyed CDN would make Fig. 10's same-/24 curve \
         indistinguishable from the cross-/24 curve)"
    );
    let _ = Prefix::slash24_of(Ipv4Addr::new(100, 110, 0, 1));
    c.bench_function("cdn_select", |b| {
        let addr = Ipv4Addr::new(100, 110, 7, 1);
        b.iter(|| black_box(cdn.select(addr)))
    });
}

criterion_group!(
    benches,
    ablate_ambient,
    ablate_churn,
    ablate_mapping_granularity
);
criterion_main!(benches);
