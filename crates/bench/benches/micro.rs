//! Microbenchmarks of the substrates: wire codec, resolver cache, route
//! computation, engine throughput, and the cosine-similarity kernel.

use cdns::analysis::ReplicaMap;
use cdns::dnssim::cache::DnsCache;
use cdns::dnswire::builder::{QueryBuilder, ResponseBuilder};
use cdns::dnswire::message::{Message, Rcode, ResourceRecord};
use cdns::dnswire::name::DnsName;
use cdns::dnswire::rdata::{RData, RecordType};
use cdns::netsim::engine::Network;
use cdns::netsim::latency::LatencyModel;
use cdns::netsim::route::RouteTable;
use cdns::netsim::time::{SimDuration, SimTime};
use cdns::netsim::topo::{Asn, Coord, NodeKind, Topology};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::net::Ipv4Addr;

fn sample_message() -> Message {
    let q = QueryBuilder::new(7, "m.yelp.com", RecordType::A)
        .recursion_desired(true)
        .build()
        .unwrap();
    ResponseBuilder::for_query(&q)
        .authoritative(true)
        .answer_cname(
            DnsName::parse("m.yelp.com").unwrap(),
            300,
            DnsName::parse("e1234.edge.cdn-b.example").unwrap(),
        )
        .answer_a(
            DnsName::parse("e1234.edge.cdn-b.example").unwrap(),
            30,
            Ipv4Addr::new(91, 0, 3, 1),
        )
        .answer_a(
            DnsName::parse("e1234.edge.cdn-b.example").unwrap(),
            30,
            Ipv4Addr::new(91, 0, 7, 1),
        )
        .build()
}

fn bench_dnswire(c: &mut Criterion) {
    let msg = sample_message();
    let bytes = msg.encode().unwrap();
    let mut group = c.benchmark_group("dnswire");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("encode_cdn_response", |b| {
        b.iter(|| black_box(msg.encode().unwrap()))
    });
    group.bench_function("decode_cdn_response", |b| {
        b.iter(|| black_box(Message::decode(&bytes).unwrap()))
    });
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("resolver_cache");
    group.bench_function("insert_lookup_cycle", |b| {
        let mut cache = DnsCache::new(10_000, SimDuration::from_hours(24));
        let name = DnsName::parse("m.yelp.com").unwrap();
        let rr = ResourceRecord::new(name.clone(), 30, RData::A(Ipv4Addr::new(91, 0, 3, 1)));
        let mut t = 0u64;
        b.iter(|| {
            t += 1_000_000;
            let now = SimTime::from_micros(t);
            cache.insert(
                (name.clone(), RecordType::A, None),
                vec![rr.clone()],
                Rcode::NoError,
                SimDuration::from_secs(30),
                now,
            );
            black_box(cache.lookup(&(name.clone(), RecordType::A, None), now))
        })
    });
    group.finish();
}

fn grid_topology(n_side: usize) -> Topology {
    let mut t = Topology::new();
    let mut ids = Vec::new();
    for i in 0..n_side * n_side {
        let id = t.add_node(
            format!("n{i}"),
            NodeKind::Router,
            Asn(1),
            Coord {
                x_km: (i % n_side) as f64 * 100.0,
                y_km: (i / n_side) as f64 * 100.0,
            },
            vec![Ipv4Addr::new(10, (i / 250) as u8, ((i % 250) + 1) as u8, 1)],
        );
        ids.push(id);
    }
    for i in 0..n_side * n_side {
        if i % n_side + 1 < n_side {
            t.add_link(ids[i], ids[i + 1], LatencyModel::constant_ms(1));
        }
        if i + n_side < n_side * n_side {
            t.add_link(ids[i], ids[i + n_side], LatencyModel::constant_ms(1));
        }
    }
    t
}

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing");
    group.sample_size(20);
    group.bench_function("route_table_20x20_grid", |b| {
        b.iter_with_setup(|| grid_topology(20), |t| black_box(RouteTable::build(&t)))
    });
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.bench_function("ping_across_10_hops", |b| {
        let mut t = Topology::new();
        let mut prev = t.add_node(
            "h0",
            NodeKind::Host,
            Asn(1),
            Coord::default(),
            vec![Ipv4Addr::new(10, 0, 0, 1)],
        );
        for i in 1..=10u8 {
            let node = t.add_node(
                format!("h{i}"),
                NodeKind::Router,
                Asn(1),
                Coord::default(),
                vec![Ipv4Addr::new(10, 0, 0, i + 1)],
            );
            t.add_link(prev, node, LatencyModel::constant_ms(1));
            prev = node;
        }
        let mut net = Network::new(t, 1);
        let src = cdns::netsim::topo::NodeId(0);
        let dst = Ipv4Addr::new(10, 0, 0, 11);
        b.iter(|| {
            let flow = net.ping(src, dst, SimDuration::from_secs(2));
            black_box(net.run_until(flow))
        })
    });
    group.finish();
}

fn bench_obs_registry(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_registry");
    // The sim-plane instruments sit on the campaign's hot path (every
    // event and lookup increments something), so their per-call cost is
    // the overhead budget of `run_campaign_observed` vs `run_campaign_with`.
    group.bench_function("counter_inc_labeled", |b| {
        let mut reg = obs::Registry::new();
        b.iter(|| {
            reg.inc("net.events_by_kind", &[("kind", "arrive")]);
            black_box(reg.counter_total("net.events_by_kind"))
        })
    });
    group.bench_function("histogram_observe", |b| {
        let mut reg = obs::Registry::new();
        let mut v = 1u64;
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            reg.observe_us("dns.lookup_us", &[("carrier", "AT&T")], v >> 40);
            black_box(v)
        })
    });
    group.bench_function("merge_and_export", |b| {
        let mut shard = obs::Registry::new();
        for i in 0..64u64 {
            let carrier = ["AT&T", "Sprint", "Verizon", "T-Mobile"][(i % 4) as usize];
            shard.inc_by("campaign.lookups", &[("carrier", carrier)], i);
            shard.observe_us("dns.lookup_us", &[("carrier", carrier)], i * 977);
        }
        b.iter(|| {
            let mut merged = obs::Registry::new();
            for _ in 0..6 {
                merged.merge_from(&shard);
            }
            black_box(merged.to_json())
        })
    });
    group.finish();
}

fn bench_cosine(c: &mut Criterion) {
    let mut a = ReplicaMap::default();
    let mut bm = ReplicaMap::default();
    for i in 0..32u8 {
        for _ in 0..(i as usize + 1) {
            a.observe(Ipv4Addr::new(90, 0, i, 1));
            bm.observe(Ipv4Addr::new(90, 0, i % 24, 1));
        }
    }
    c.bench_function("cosine_similarity_32_replicas", |b| {
        b.iter(|| black_box(a.cosine_similarity(&bm)))
    });
}

criterion_group!(
    benches,
    bench_dnswire,
    bench_cache,
    bench_routing,
    bench_engine,
    bench_obs_registry,
    bench_cosine
);
criterion_main!(benches);
