//! One Criterion bench per *figure* of the paper: each regenerates the
//! figure's series from a shared quick-scale campaign dataset, so
//! `cargo bench` exercises the full per-figure pipeline.

use bench::bench_dataset;
use cdns::figures;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let ds = bench_dataset();
    let mut group = c.benchmark_group("figures");
    group.sample_size(20);
    group.bench_function("fig2_replica_inflation", |b| {
        b.iter(|| black_box(figures::fig2(ds)))
    });
    group.bench_function("fig3_radio_bands", |b| {
        b.iter(|| black_box(figures::fig3(ds)))
    });
    group.bench_function("fig4_resolver_distance", |b| {
        b.iter(|| black_box(figures::fig4(ds)))
    });
    group.bench_function("fig5_resolution_us", |b| {
        b.iter(|| black_box(figures::fig5(ds)))
    });
    group.bench_function("fig6_resolution_sk", |b| {
        b.iter(|| black_box(figures::fig6(ds)))
    });
    group.bench_function("fig7_cache_pairs", |b| {
        b.iter(|| black_box(figures::fig7(ds)))
    });
    group.bench_function("fig8_resolver_churn", |b| {
        b.iter(|| black_box(figures::fig8(ds)))
    });
    group.bench_function("fig9_static_churn", |b| {
        b.iter(|| black_box(figures::fig9(ds)))
    });
    group.bench_function("fig10_cosine_similarity", |b| {
        b.iter(|| black_box(figures::fig10(ds)))
    });
    group.bench_function("fig11_public_dns_distance", |b| {
        b.iter(|| black_box(figures::fig11(ds)))
    });
    group.bench_function("fig12_google_churn", |b| {
        b.iter(|| black_box(figures::fig12(ds)))
    });
    group.bench_function("fig13_resolution_comparison", |b| {
        b.iter(|| black_box(figures::fig13(ds)))
    });
    group.bench_function("fig14_relative_replica_latency", |b| {
        b.iter(|| black_box(figures::fig14(ds)))
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
