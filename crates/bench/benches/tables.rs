//! One Criterion bench per *table* of the paper, plus the §5.2 egress
//! count, regenerated from the shared campaign dataset.

use bench::bench_dataset;
use cdns::figures;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    let ds = bench_dataset();
    let mut group = c.benchmark_group("tables");
    group.sample_size(20);
    group.bench_function("table1_fleet", |b| {
        b.iter(|| black_box(figures::table1(ds)))
    });
    group.bench_function("table2_domains", |b| {
        b.iter(|| black_box(figures::table2(ds)))
    });
    group.bench_function("table3_ldns_pairs", |b| {
        b.iter(|| black_box(figures::table3(ds)))
    });
    group.bench_function("table4_reachability", |b| {
        b.iter(|| black_box(figures::table4(ds)))
    });
    group.bench_function("table5_resolver_counts", |b| {
        b.iter(|| black_box(figures::table5(ds)))
    });
    group.bench_function("sec52_egress_points", |b| {
        b.iter(|| black_box(figures::egress(ds)))
    });
    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
