//! `campaign_parallel` — wall-clock scaling of the sharded campaign driver
//! at 1, 2, and 6 threads on the same six-carrier world. Results are
//! byte-identical across the group (see `tests/determinism.rs`); only the
//! elapsed time should move.

use cdns::measure::{
    build_world, run_campaign_with, CampaignConfig, ExperimentSpec, Parallelism, WorldConfig,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn campaign_config() -> CampaignConfig {
    CampaignConfig {
        days: 2,
        experiments_per_day: 3,
        spec: ExperimentSpec::light(),
        external_probe_day: None,
    }
}

fn bench_campaign_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign_parallel");
    group.sample_size(10);
    let cfg = campaign_config();
    for threads in [1usize, 2, 6] {
        group.bench_function(&format!("threads_{threads}"), |b| {
            // A fresh world per iteration (untimed setup) keeps engine
            // clocks at zero so every thread count runs the identical
            // workload; only the campaign itself is timed.
            b.iter_with_setup(
                || build_world(WorldConfig::quick(20141105)),
                |mut world| {
                    black_box(run_campaign_with(
                        &mut world,
                        &cfg,
                        Parallelism::Threads(threads),
                    ))
                },
            )
        });
    }
    // The observed variant harvests the sim-plane metrics registry on top
    // of the same campaign; the gap between this and `threads_6` above is
    // the whole-stack cost of the observability subsystem.
    group.bench_function("threads_6_observed", |b| {
        b.iter_with_setup(
            || build_world(WorldConfig::quick(20141105)),
            |mut world| {
                black_box(cdns::measure::run_campaign_observed(
                    &mut world,
                    &cfg,
                    Parallelism::Threads(6),
                    None,
                ))
            },
        )
    });
    group.finish();
}

criterion_group!(benches, bench_campaign_parallel);
criterion_main!(benches);
