//! `queue_bench` — the recorded engine-throughput harness behind
//! `BENCH_*.json`.
//!
//! Runs the same seeded quick campaign once per event-queue implementation
//! (reference binary heap, then the timing wheel the engine defaults to)
//! and reports events/s and lookups/s for each, measured as sim-plane
//! counters from the [`obs`] registry over host-plane wall time. The JSON
//! it writes is the repo's performance trajectory: one `BENCH_<pr>.json`
//! per recorded baseline, compared by `scripts/vitals_check.py` so a queue
//! or parse-path regression fails CI rather than landing silently.
//!
//! Usage:
//!   queue_bench [--quick] [--out PATH] [--seed N] [--iters N]
//!
//! `--quick` is the CI mode: fewer simulated days and a single iteration,
//! enough to catch collapse-scale regressions without burning minutes.
//! The recorded baselines are produced without `--quick` (3 iterations,
//! best-of reported, so scheduler noise biases low, not high).

#![forbid(unsafe_code)]

use cdns::measure::{
    build_world, run_campaign_observed, CampaignConfig, ExperimentSpec, FaultProfile, Parallelism,
    QueueKind, WorldConfig,
};
use cdns::obs::host::Stage;
use std::fmt::Write as _;
use std::path::PathBuf;

struct Args {
    quick: bool,
    out: PathBuf,
    seed: u64,
    iters: u32,
}

fn parse_args() -> Result<Args, String> {
    let mut quick = false;
    let mut out = PathBuf::from("BENCH_6.json");
    let mut seed = 2014u64;
    let mut iters: Option<u32> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out = PathBuf::from(it.next().ok_or("--out needs a value")?),
            "--seed" => {
                seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "--iters" => {
                iters = Some(
                    it.next()
                        .ok_or("--iters needs a value")?
                        .parse()
                        .map_err(|e| format!("bad iteration count: {e}"))?,
                );
            }
            "--help" | "-h" => {
                return Err(
                    "usage: queue_bench [--quick] [--out PATH] [--seed N] [--iters N]".into(),
                )
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    let iters = iters.unwrap_or(if quick { 1 } else { 3 });
    Ok(Args {
        quick,
        out,
        seed,
        iters,
    })
}

/// One queue's measured rates: best-of-`iters` so host scheduler noise
/// lowers, never raises, the recorded number.
struct Sample {
    events: u64,
    lookups: u64,
    wall_secs: f64,
    events_per_sec: f64,
    lookups_per_sec: f64,
}

fn run_queue(queue: QueueKind, args: &Args) -> Sample {
    let campaign = CampaignConfig {
        days: if args.quick { 1 } else { 2 },
        experiments_per_day: 3,
        spec: ExperimentSpec::light(),
        external_probe_day: None,
    };
    let mut best: Option<Sample> = None;
    for i in 0..args.iters {
        let mut world = build_world(WorldConfig {
            fault_profile: FaultProfile::None,
            queue,
            ..WorldConfig::quick(args.seed)
        });
        let stage = Stage::begin("campaign");
        let run = run_campaign_observed(&mut world, &campaign, Parallelism::Threads(1), None);
        let span = stage.end();
        let wall = span.wall.as_secs_f64().max(1e-9);
        let events = run.metrics.counter_total("net.events");
        let lookups = run.metrics.counter_total("campaign.lookups");
        let sample = Sample {
            events,
            lookups,
            wall_secs: wall,
            events_per_sec: events as f64 / wall,
            lookups_per_sec: lookups as f64 / wall,
        };
        eprintln!(
            "queue_bench: {} iter {}/{}: {} events in {:.2}s ({:.0} events/s, {:.0} lookups/s)",
            queue.label(),
            i + 1,
            args.iters,
            sample.events,
            sample.wall_secs,
            sample.events_per_sec,
            sample.lookups_per_sec,
        );
        if best
            .as_ref()
            .is_none_or(|b| sample.events_per_sec > b.events_per_sec)
        {
            best = Some(sample);
        }
    }
    // The loop above runs at least once (`--iters 0` degenerates to 1).
    best.unwrap_or(Sample {
        events: 0,
        lookups: 0,
        wall_secs: 0.0,
        events_per_sec: 0.0,
        lookups_per_sec: 0.0,
    })
}

fn json_entry(out: &mut String, queue: QueueKind, s: &Sample) {
    let _ = write!(
        out,
        "  \"{}\": {{\n    \"events\": {},\n    \"lookups\": {},\n    \"wall_secs\": {:.4},\n    \"events_per_sec\": {:.1},\n    \"lookups_per_sec\": {:.1}\n  }}",
        queue.label(),
        s.events,
        s.lookups,
        s.wall_secs,
        s.events_per_sec,
        s.lookups_per_sec,
    );
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("queue_bench: {e}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "queue_bench: seed {} / {} iteration(s){}",
        args.seed,
        args.iters,
        if args.quick { " (quick)" } else { "" },
    );
    let heap = run_queue(QueueKind::Heap, &args);
    let wheel = run_queue(QueueKind::Wheel, &args);
    let speedup = if heap.events_per_sec > 0.0 {
        wheel.events_per_sec / heap.events_per_sec
    } else {
        0.0
    };

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"engine-queue-throughput\",");
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"quick\": {},", args.quick);
    let _ = writeln!(json, "  \"iters\": {},", args.iters);
    json_entry(&mut json, QueueKind::Heap, &heap);
    json.push_str(",\n");
    json_entry(&mut json, QueueKind::Wheel, &wheel);
    json.push_str(",\n");
    let _ = writeln!(json, "  \"wheel_speedup_over_heap\": {speedup:.3}");
    json.push_str("}\n");

    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("queue_bench: cannot write {}: {e}", args.out.display());
        std::process::exit(1);
    }
    eprintln!(
        "queue_bench: wheel is {speedup:.2}x heap on events/s; wrote {}",
        args.out.display()
    );
}
