//! `serve_bench` — the recorded serving-plane throughput harness behind
//! `BENCH_9.json` (`BENCH_8.json` recorded the pre-hardening path).
//!
//! Measures how fast [`ServeCore`] turns wire queries into wire answers
//! with no sockets in the way: the same seed-lane-derived script the load
//! generator replays, answered in-process over the UDP path. Since the
//! hostile-wire hardening, every query also pays the full admission tax —
//! wire classification plus an (unthrottled) token-bucket decision — so
//! the recorded number prices the hardened path, not a bypass. That
//! isolates the serving plane's real bottleneck — the per-query sim
//! resolution — from kernel socket overhead, so the recorded number
//! tracks regressions in the classify → admit → decode → resolve → encode
//! pipeline rather than loopback jitter.
//!
//! Usage:
//!   serve_bench [--quick] [--out PATH] [--seed N] [--iters N] [--queries N]
//!
//! `--quick` is the CI mode: a smaller script and a single iteration. The
//! recorded baselines are produced without `--quick` (3 iterations,
//! best-of reported, so scheduler noise biases low, not high).

#![forbid(unsafe_code)]

use cdns::obs::host::Stage;
use loadgen::{build_script, MixConfig};
use serve::{
    classify, Admission, AdmitConfig, CarrierEndpoint, Endpoints, ServeCore, Served, Transport,
    Verdict, WireClass, WorldConfig,
};
use std::fmt::Write as _;
use std::path::PathBuf;

struct Args {
    quick: bool,
    out: PathBuf,
    seed: u64,
    iters: u32,
    queries: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut quick = false;
    let mut out = PathBuf::from("BENCH_9.json");
    let mut seed = 2014u64;
    let mut iters: Option<u32> = None;
    let mut queries: Option<u64> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out = PathBuf::from(it.next().ok_or("--out needs a value")?),
            "--seed" => {
                seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "--iters" => {
                iters = Some(
                    it.next()
                        .ok_or("--iters needs a value")?
                        .parse()
                        .map_err(|e| format!("bad iteration count: {e}"))?,
                );
            }
            "--queries" => {
                queries = Some(
                    it.next()
                        .ok_or("--queries needs a value")?
                        .parse()
                        .map_err(|e| format!("bad query count: {e}"))?,
                );
            }
            "--help" | "-h" => return Err(
                "usage: serve_bench [--quick] [--out PATH] [--seed N] [--iters N] [--queries N]"
                    .into(),
            ),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    let iters = iters.unwrap_or(if quick { 1 } else { 3 });
    let queries = queries.unwrap_or(if quick { 2_000 } else { 10_000 });
    Ok(Args {
        quick,
        out,
        seed,
        iters,
        queries,
    })
}

/// The script builder keys only on the world config and per-shard device
/// populations; socket addresses are loadgen plumbing this in-process
/// bench never dials.
fn fake_endpoints(config: &WorldConfig, core: &ServeCore) -> Endpoints {
    Endpoints {
        config: config.clone(),
        carriers: (0..core.carrier_count())
            .map(|i| CarrierEndpoint {
                index: i,
                name: core.carrier_name(i).to_string(),
                udp: "127.0.0.1:1".parse().expect("static addr"),
                tcp: "127.0.0.1:2".parse().expect("static addr"),
                devices: core.carrier_devices(i),
            })
            .collect(),
    }
}

struct Sample {
    answers: u64,
    wall_secs: f64,
    qps: f64,
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("serve_bench: {e}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "serve_bench: seed {} / {} iteration(s) / {} queries{}",
        args.seed,
        args.iters,
        args.queries,
        if args.quick { " (quick)" } else { "" },
    );

    let config = WorldConfig::quick(args.seed);
    let script = {
        let probe = ServeCore::new(config.clone());
        build_script(
            &fake_endpoints(&config, &probe),
            &MixConfig {
                queries: args.queries,
                miss_per_mille: 50,
            },
        )
    };

    // Best-of-`iters`: host scheduler noise lowers, never raises, the
    // recorded number. Each iteration rebuilds the core so cache warmth is
    // part of the measured mix, exactly as a fresh serve process sees it.
    let mut best: Option<Sample> = None;
    for i in 0..args.iters.max(1) {
        let mut core = ServeCore::new(config.clone());
        // The bridge's admission check, with limits it can never hit: the
        // bench pays classify + token arithmetic per query exactly like
        // the serving path, without ever shedding.
        let mut admission = Admission::new(AdmitConfig::unthrottled(), core.carrier_count(), 0);
        let mut now_us = 0u64;
        let mut answers = 0u64;
        let stage = Stage::begin("serve_bench.replay");
        for (shard, queries) in script.per_carrier.iter().enumerate() {
            for q in queries {
                now_us += 1;
                if !matches!(classify(&q.wire), WireClass::WellFormed)
                    || admission.admit(shard, now_us, 1) != Verdict::Admit
                {
                    eprintln!("serve_bench: shard {shard} scripted query not admitted");
                    std::process::exit(1);
                }
                match core.handle(shard, Transport::Udp, &q.wire) {
                    Served::Reply(_) => answers += 1,
                    Served::Drop(reason) => {
                        eprintln!("serve_bench: shard {shard} query dropped: {reason:?}");
                        std::process::exit(1);
                    }
                }
            }
        }
        let span = stage.end();
        let wall = span.wall.as_secs_f64().max(1e-9);
        let sample = Sample {
            answers,
            wall_secs: wall,
            qps: answers as f64 / wall,
        };
        eprintln!(
            "serve_bench: iter {}/{}: {} answers in {:.2}s ({:.0} q/s)",
            i + 1,
            args.iters.max(1),
            sample.answers,
            sample.wall_secs,
            sample.qps,
        );
        if best.as_ref().is_none_or(|b| sample.qps > b.qps) {
            best = Some(sample);
        }
    }
    let best = best.expect("at least one iteration ran");

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"serve-core-qps\",");
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"quick\": {},", args.quick);
    let _ = writeln!(json, "  \"iters\": {},", args.iters);
    let _ = writeln!(json, "  \"answers\": {},", best.answers);
    let _ = writeln!(json, "  \"wall_secs\": {:.4},", best.wall_secs);
    let _ = writeln!(json, "  \"qps\": {:.1}", best.qps);
    json.push_str("}\n");

    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("serve_bench: cannot write {}: {e}", args.out.display());
        std::process::exit(1);
    }
    eprintln!(
        "serve_bench: best {:.0} q/s; wrote {}",
        best.qps,
        args.out.display()
    );
}
