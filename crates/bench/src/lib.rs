//! Shared helpers for the Criterion benchmark suite: a lazily-built quick
//! campaign dataset reused by the per-figure and per-table benches.

#![forbid(unsafe_code)]

use cdns::measure::record::Dataset;
use cdns::{Study, StudyConfig};
use std::sync::OnceLock;

/// A quick-scale campaign dataset, built once per bench process.
pub fn bench_dataset() -> &'static Dataset {
    static DS: OnceLock<Dataset> = OnceLock::new();
    DS.get_or_init(|| {
        let mut study = Study::new(StudyConfig::quick(0xBEEF));
        study.run()
    })
}

#[cfg(test)]
mod tests {
    #[test]
    fn dataset_builds_once() {
        let a = super::bench_dataset();
        let b = super::bench_dataset();
        assert!(std::ptr::eq(a, b));
        assert!(!a.records.is_empty());
    }
}
