//! Shared helpers for the Criterion benchmark suite: a lazily-built quick
//! campaign dataset reused by the per-figure and per-table benches.

#![forbid(unsafe_code)]

use cdns::measure::record::Dataset;
use cdns::{Study, StudyConfig};
use std::sync::OnceLock;

/// A quick-scale campaign dataset, built once per bench process.
///
/// The one-off build cost is reported to stderr through the host-plane
/// profiler (`bench` is a host-plane crate, see detlint rule D7) so slow
/// bench startups are attributable without polluting Criterion's output.
pub fn bench_dataset() -> &'static Dataset {
    static DS: OnceLock<Dataset> = OnceLock::new();
    DS.get_or_init(|| {
        let stage = obs::host::Stage::begin("bench dataset build");
        let mut study = Study::new(StudyConfig::quick(0xBEEF));
        let ds = study.run();
        let mut prof = obs::host::Profiler::new(true);
        prof.record_with_rates(stage.end(), &[(ds.records.len() as u64, "experiments")]);
        eprint!("{}", prof.report());
        ds
    })
}

#[cfg(test)]
mod tests {
    #[test]
    fn dataset_builds_once() {
        let a = super::bench_dataset();
        let b = super::bench_dataset();
        assert!(std::ptr::eq(a, b));
        assert!(!a.records.is_empty());
    }
}
