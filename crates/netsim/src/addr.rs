//! Address utilities: CIDR prefixes and sequential allocators.

use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// An IPv4 CIDR prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Prefix {
    network: u32,
    len: u8,
}

impl Prefix {
    /// Builds a prefix, masking host bits off `addr`.
    pub fn new(addr: Ipv4Addr, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} out of range");
        let mask = Self::mask(len);
        Prefix {
            network: u32::from(addr) & mask,
            len,
        }
    }

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// The network address.
    pub fn network(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.network)
    }

    /// The prefix length.
    #[allow(clippy::len_without_is_empty)] // a /0 prefix is not "empty"
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Whether `addr` falls inside this prefix.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        u32::from(addr) & Self::mask(self.len) == self.network
    }

    /// The /24 prefix covering `addr` — the aggregation granularity used
    /// throughout the paper's analysis.
    pub fn slash24_of(addr: Ipv4Addr) -> Prefix {
        Prefix::new(addr, 24)
    }

    /// Number of host addresses (including network/broadcast, which the
    /// simulation happily assigns).
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.len)
    }

    /// The `i`-th address in the prefix.
    pub fn addr(&self, i: u32) -> Ipv4Addr {
        debug_assert!((i as u64) < self.size());
        Ipv4Addr::from(self.network + i)
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

impl FromStr for Prefix {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s.split_once('/').ok_or_else(|| format!("no '/' in {s}"))?;
        let addr: Ipv4Addr = addr.parse().map_err(|e| format!("{e}"))?;
        let len: u8 = len.parse().map_err(|e| format!("{e}"))?;
        if len > 32 {
            return Err(format!("prefix length {len} out of range"));
        }
        Ok(Prefix::new(addr, len))
    }
}

/// Allocates addresses out of a prefix, preferring released addresses —
/// which is exactly how cellular bearers recycle their ephemeral pools
/// ("similar IPs are assigned to geographically distant devices",
/// Balakrishnan et al.).
#[derive(Debug, Clone)]
pub struct AddrAllocator {
    prefix: Prefix,
    next: u32,
    freed: Vec<Ipv4Addr>,
}

impl AddrAllocator {
    /// Starts allocating from the first address of `prefix`.
    pub fn new(prefix: Prefix) -> Self {
        AddrAllocator {
            prefix,
            next: 0,
            freed: Vec::new(),
        }
    }

    /// The prefix being allocated from.
    pub fn prefix(&self) -> Prefix {
        self.prefix
    }

    /// Allocates an address, reusing released ones first; panics if the
    /// prefix is exhausted (a configuration error, not a runtime
    /// condition).
    pub fn alloc(&mut self) -> Ipv4Addr {
        if let Some(a) = self.freed.pop() {
            return a;
        }
        assert!(
            (self.next as u64) < self.prefix.size(),
            "prefix {} exhausted",
            self.prefix
        );
        let a = self.prefix.addr(self.next);
        self.next += 1;
        a
    }

    /// Returns a previously allocated address to the pool.
    pub fn release(&mut self, addr: Ipv4Addr) {
        debug_assert!(self.prefix.contains(addr), "{addr} not in {}", self.prefix);
        self.freed.push(addr);
    }

    /// Number of addresses handed out and never released.
    pub fn allocated(&self) -> u32 {
        self.next - self.freed.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_host_bits() {
        let p = Prefix::new(Ipv4Addr::new(10, 1, 2, 3), 24);
        assert_eq!(p.network(), Ipv4Addr::new(10, 1, 2, 0));
        assert_eq!(p.to_string(), "10.1.2.0/24");
    }

    #[test]
    fn containment() {
        let p = Prefix::new(Ipv4Addr::new(10, 0, 0, 0), 8);
        assert!(p.contains(Ipv4Addr::new(10, 255, 1, 2)));
        assert!(!p.contains(Ipv4Addr::new(11, 0, 0, 1)));
        let all = Prefix::new(Ipv4Addr::new(0, 0, 0, 0), 0);
        assert!(all.contains(Ipv4Addr::new(203, 0, 113, 7)));
    }

    #[test]
    fn slash24_aggregation() {
        let a = Prefix::slash24_of(Ipv4Addr::new(66, 174, 92, 10));
        let b = Prefix::slash24_of(Ipv4Addr::new(66, 174, 92, 200));
        let c = Prefix::slash24_of(Ipv4Addr::new(66, 174, 93, 10));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn parse_roundtrip() {
        let p: Prefix = "198.51.100.0/24".parse().unwrap();
        assert_eq!(p, Prefix::new(Ipv4Addr::new(198, 51, 100, 0), 24));
        assert!("198.51.100.0".parse::<Prefix>().is_err());
        assert!("x/24".parse::<Prefix>().is_err());
        assert!("1.2.3.4/40".parse::<Prefix>().is_err());
    }

    #[test]
    fn allocator_hands_out_sequential_addrs() {
        let mut a = AddrAllocator::new("192.0.2.0/30".parse().unwrap());
        assert_eq!(a.alloc(), Ipv4Addr::new(192, 0, 2, 0));
        assert_eq!(a.alloc(), Ipv4Addr::new(192, 0, 2, 1));
        assert_eq!(a.allocated(), 2);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn allocator_panics_when_exhausted() {
        let mut a = AddrAllocator::new("192.0.2.0/32".parse().unwrap());
        a.alloc();
        a.alloc();
    }

    #[test]
    fn allocator_recycles_released_addrs() {
        let mut a = AddrAllocator::new("192.0.2.0/31".parse().unwrap());
        let x = a.alloc();
        let _y = a.alloc();
        a.release(x);
        assert_eq!(a.allocated(), 1);
        // Next alloc reuses the released address instead of exhausting.
        assert_eq!(a.alloc(), x);
    }

    #[test]
    fn prefix_size() {
        assert_eq!(Prefix::new(Ipv4Addr::new(1, 0, 0, 0), 24).size(), 256);
        assert_eq!(Prefix::new(Ipv4Addr::new(1, 0, 0, 0), 32).size(), 1);
    }
}
