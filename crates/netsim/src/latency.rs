//! Latency models: distributions sampled per packet traversal.
//!
//! Links carry a [`LatencyModel`]; the cellular layer swaps models on the
//! radio access link as devices change radio technology, which is how the
//! paper's per-technology resolution-time bands (Fig. 3) arise.

use crate::time::SimDuration;
use rand::Rng;

/// A latency distribution, sampled independently per traversal.
#[derive(Debug, Clone, PartialEq)]
pub enum LatencyModel {
    /// Always exactly this value.
    Constant(SimDuration),
    /// Uniform in `[min, max]`.
    Uniform {
        /// Lower bound.
        min: SimDuration,
        /// Upper bound (inclusive).
        max: SimDuration,
    },
    /// Normal with the given mean and standard deviation, truncated at
    /// `floor` so latency never goes below the propagation minimum.
    Normal {
        /// Mean latency.
        mean: SimDuration,
        /// Standard deviation.
        std_dev: SimDuration,
        /// Hard lower bound.
        floor: SimDuration,
    },
    /// Log-normal: `floor + exp(N(mu, sigma))` microseconds. Produces the
    /// heavy right tails seen in radio access and loaded links.
    LogNormal {
        /// Location parameter of the underlying normal (in ln-µs).
        mu: f64,
        /// Scale parameter of the underlying normal.
        sigma: f64,
        /// Additive hard lower bound.
        floor: SimDuration,
    },
    /// Sum of two models (e.g. propagation + queueing jitter).
    Sum(Box<LatencyModel>, Box<LatencyModel>),
}

impl LatencyModel {
    /// A convenience constant model from milliseconds.
    pub fn constant_ms(ms: u64) -> Self {
        LatencyModel::Constant(SimDuration::from_millis(ms))
    }

    /// Propagation delay for a geographic distance, at ~5 µs/km (fiber),
    /// plus a small per-link forwarding floor.
    pub fn propagation(distance_km: f64) -> Self {
        let us = (distance_km * 5.0).max(10.0).floor() as u64;
        LatencyModel::Constant(SimDuration::from_micros(us))
    }

    /// Propagation plus mild queueing jitter — the standard wired link.
    pub fn wired(distance_km: f64) -> Self {
        LatencyModel::Sum(
            Box::new(Self::propagation(distance_km)),
            Box::new(LatencyModel::LogNormal {
                mu: 5.0, // exp(5) ≈ 148 µs median jitter
                sigma: 0.8,
                floor: SimDuration::from_micros(20),
            }),
        )
    }

    /// Draws one latency sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        match self {
            LatencyModel::Constant(d) => *d,
            LatencyModel::Uniform { min, max } => {
                let lo = min.as_micros();
                let hi = max.as_micros().max(lo);
                SimDuration::from_micros(rng.gen_range(lo..=hi))
            }
            LatencyModel::Normal {
                mean,
                std_dev,
                floor,
            } => {
                let z = sample_standard_normal(rng);
                let us = mean.as_micros() as f64 + z * std_dev.as_micros() as f64;
                let us = us.max(floor.as_micros() as f64);
                SimDuration::from_micros(us as u64)
            }
            LatencyModel::LogNormal { mu, sigma, floor } => {
                let z = sample_standard_normal(rng);
                let us = (mu + sigma * z).exp();
                // Clamp the extreme tail so one sample cannot stall a run.
                let us = us.min(30_000_000.0);
                floor.saturating_add_micros(us as u64)
            }
            LatencyModel::Sum(a, b) => a.sample(rng) + b.sample(rng),
        }
    }

    /// The distribution mean, used as the routing weight so paths follow
    /// expected latency.
    pub fn mean_micros(&self) -> u64 {
        match self {
            LatencyModel::Constant(d) => d.as_micros(),
            LatencyModel::Uniform { min, max } => (min.as_micros() + max.as_micros()) / 2,
            LatencyModel::Normal { mean, .. } => mean.as_micros(),
            LatencyModel::LogNormal { mu, sigma, floor } => {
                floor.as_micros() + (mu + sigma * sigma / 2.0).exp() as u64
            }
            LatencyModel::Sum(a, b) => a.mean_micros() + b.mean_micros(),
        }
    }
}

trait SaturatingAdd {
    fn saturating_add_micros(self, us: u64) -> SimDuration;
}

impl SaturatingAdd for SimDuration {
    fn saturating_add_micros(self, us: u64) -> SimDuration {
        SimDuration::from_micros(self.as_micros().saturating_add(us))
    }
}

/// Box–Muller standard normal sample.
fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::EPSILON {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn constant_is_constant() {
        let m = LatencyModel::constant_ms(7);
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(m.sample(&mut r), SimDuration::from_millis(7));
        }
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let m = LatencyModel::Uniform {
            min: SimDuration::from_millis(10),
            max: SimDuration::from_millis(20),
        };
        let mut r = rng();
        for _ in 0..1000 {
            let s = m.sample(&mut r);
            assert!(s >= SimDuration::from_millis(10));
            assert!(s <= SimDuration::from_millis(20));
        }
    }

    #[test]
    fn normal_respects_floor_and_tracks_mean() {
        let m = LatencyModel::Normal {
            mean: SimDuration::from_millis(50),
            std_dev: SimDuration::from_millis(10),
            floor: SimDuration::from_millis(30),
        };
        let mut r = rng();
        let n = 5000;
        let mut sum = 0u64;
        for _ in 0..n {
            let s = m.sample(&mut r);
            assert!(s >= SimDuration::from_millis(30));
            sum += s.as_micros();
        }
        let mean_ms = sum as f64 / n as f64 / 1000.0;
        assert!((mean_ms - 50.0).abs() < 2.0, "mean {mean_ms}");
    }

    #[test]
    fn lognormal_has_right_tail() {
        let m = LatencyModel::LogNormal {
            mu: 9.0, // exp(9) ≈ 8.1 ms
            sigma: 1.0,
            floor: SimDuration::from_millis(1),
        };
        let mut r = rng();
        let mut samples: Vec<u64> = (0..5000).map(|_| m.sample(&mut r).as_micros()).collect();
        samples.sort_unstable();
        let median = samples[2500];
        let p99 = samples[4950];
        assert!(p99 > 3 * median, "p99 {p99} median {median}");
        assert!(samples[0] >= 1000);
    }

    #[test]
    fn sum_adds_components() {
        let m = LatencyModel::Sum(
            Box::new(LatencyModel::constant_ms(5)),
            Box::new(LatencyModel::constant_ms(3)),
        );
        let mut r = rng();
        assert_eq!(m.sample(&mut r), SimDuration::from_millis(8));
        assert_eq!(m.mean_micros(), 8000);
    }

    #[test]
    fn propagation_scales_with_distance() {
        let near = LatencyModel::propagation(10.0);
        let far = LatencyModel::propagation(4000.0);
        assert!(far.mean_micros() > near.mean_micros());
        // 4000 km * 5 µs/km = 20 ms
        assert_eq!(far.mean_micros(), 20_000);
    }

    #[test]
    fn deterministic_given_seed() {
        let m = LatencyModel::LogNormal {
            mu: 8.0,
            sigma: 0.5,
            floor: SimDuration::ZERO,
        };
        let a: Vec<u64> = {
            let mut r = rng();
            (0..50).map(|_| m.sample(&mut r).as_micros()).collect()
        };
        let b: Vec<u64> = {
            let mut r = rng();
            (0..50).map(|_| m.sample(&mut r).as_micros()).collect()
        };
        assert_eq!(a, b);
    }
}
