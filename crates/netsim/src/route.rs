//! Shortest-path routing over mean link latency.
//!
//! The route table stores, for every (source, destination) node pair, the
//! next hop and the link to traverse. Tables are rebuilt when the topology
//! changes shape (not when latency models are merely retuned, since routing
//! weights use the *structural* mean captured at build time).

use crate::topo::{NodeId, Topology};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Next-hop entry: the neighbor to forward to and the link index used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NextHop {
    /// Neighbor node.
    pub node: NodeId,
    /// Link carrying the packet there.
    pub link: usize,
}

/// All-pairs next-hop table.
#[derive(Debug, Default)]
pub struct RouteTable {
    n: usize,
    /// next[dst * n + src] = hop from src toward dst.
    next: Vec<Option<NextHop>>,
    /// dist[dst * n + src] = mean-latency distance in µs (`u64::MAX` when
    /// unreachable). Used for anycast nearest-instance selection.
    dist: Vec<u64>,
}

impl RouteTable {
    /// Computes routes for the given topology by running Dijkstra from every
    /// destination over mean link latencies.
    pub fn build(topo: &Topology) -> Self {
        let n = topo.node_count();
        let mut next = vec![None; n * n];
        let mut dist_table = vec![u64::MAX; n * n];
        let weights: Vec<u64> = topo
            .links()
            .iter()
            .map(|l| l.latency.mean_micros().max(1))
            .collect();
        let mut dist = vec![u64::MAX; n];
        let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
        for dst in 0..n {
            dist.iter_mut().for_each(|d| *d = u64::MAX);
            heap.clear();
            dist[dst] = 0;
            heap.push(Reverse((0, dst as u32)));
            while let Some(Reverse((d, u))) = heap.pop() {
                let u_idx = u as usize;
                if d > dist[u_idx] {
                    continue;
                }
                for &(v, link) in topo.neighbors(NodeId(u)) {
                    let v_idx = v.index();
                    let nd = d + weights[link];
                    if nd < dist[v_idx] {
                        dist[v_idx] = nd;
                        // From v, the first hop toward dst is u over `link`.
                        next[dst * n + v_idx] = Some(NextHop {
                            node: NodeId(u),
                            link,
                        });
                        heap.push(Reverse((nd, v.0)));
                    }
                }
            }
            dist_table[dst * n..(dst + 1) * n].copy_from_slice(&dist);
        }
        RouteTable {
            n,
            next,
            dist: dist_table,
        }
    }

    /// Mean-latency distance in microseconds from `src` to `dst`
    /// (`u64::MAX` when unreachable, `0` for `src == dst`).
    pub fn dist(&self, src: NodeId, dst: NodeId) -> u64 {
        self.dist[dst.index() * self.n + src.index()]
    }

    /// Next hop from `src` toward `dst`; `None` when unreachable or when
    /// `src == dst`.
    pub fn next_hop(&self, src: NodeId, dst: NodeId) -> Option<NextHop> {
        if src == dst {
            return None;
        }
        self.next[dst.index() * self.n + src.index()]
    }

    /// Whether `dst` is reachable from `src`.
    pub fn reachable(&self, src: NodeId, dst: NodeId) -> bool {
        src == dst || self.next_hop(src, dst).is_some()
    }

    /// The full node path from `src` to `dst` (inclusive of both), if any.
    /// Useful for tests and debugging; the engine itself forwards hop by hop.
    pub fn path(&self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        let mut path = vec![src];
        let mut cur = src;
        while cur != dst {
            let hop = self.next_hop(cur, dst)?;
            cur = hop.node;
            path.push(cur);
            if path.len() > self.n {
                return None; // defensive: malformed table
            }
        }
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::LatencyModel;
    use crate::topo::{Asn, Coord, NodeKind};
    use std::net::Ipv4Addr;

    fn node(t: &mut Topology, i: u8) -> NodeId {
        t.add_node(
            format!("n{i}"),
            NodeKind::Router,
            Asn(1),
            Coord::default(),
            vec![Ipv4Addr::new(10, 0, 0, i)],
        )
    }

    #[test]
    fn line_topology_routes_through_middle() {
        let mut t = Topology::new();
        let a = node(&mut t, 1);
        let b = node(&mut t, 2);
        let c = node(&mut t, 3);
        t.add_link(a, b, LatencyModel::constant_ms(1));
        t.add_link(b, c, LatencyModel::constant_ms(1));
        let rt = RouteTable::build(&t);
        assert_eq!(rt.next_hop(a, c).unwrap().node, b);
        assert_eq!(rt.next_hop(c, a).unwrap().node, b);
        assert_eq!(rt.path(a, c).unwrap(), vec![a, b, c]);
    }

    #[test]
    fn prefers_lower_latency_path() {
        let mut t = Topology::new();
        let a = node(&mut t, 1);
        let b = node(&mut t, 2);
        let c = node(&mut t, 3);
        // Direct a-c is slow; a-b-c is fast.
        t.add_link(a, c, LatencyModel::constant_ms(100));
        t.add_link(a, b, LatencyModel::constant_ms(1));
        t.add_link(b, c, LatencyModel::constant_ms(1));
        let rt = RouteTable::build(&t);
        assert_eq!(rt.next_hop(a, c).unwrap().node, b);
    }

    #[test]
    fn unreachable_is_none() {
        let mut t = Topology::new();
        let a = node(&mut t, 1);
        let b = node(&mut t, 2);
        let rt = RouteTable::build(&t);
        assert!(rt.next_hop(a, b).is_none());
        assert!(!rt.reachable(a, b));
        assert!(rt.reachable(a, a));
        assert!(rt.path(a, b).is_none());
    }

    #[test]
    fn self_route_is_none() {
        let mut t = Topology::new();
        let a = node(&mut t, 1);
        let rt = RouteTable::build(&t);
        assert!(rt.next_hop(a, a).is_none());
        assert_eq!(rt.path(a, a).unwrap(), vec![a]);
    }

    #[test]
    fn larger_mesh_is_fully_connected() {
        let mut t = Topology::new();
        let nodes: Vec<NodeId> = (1..=20).map(|i| node(&mut t, i)).collect();
        // Ring plus a few chords.
        for i in 0..20 {
            t.add_link(nodes[i], nodes[(i + 1) % 20], LatencyModel::constant_ms(1));
        }
        t.add_link(nodes[0], nodes[10], LatencyModel::constant_ms(1));
        let rt = RouteTable::build(&t);
        for &s in &nodes {
            for &d in &nodes {
                assert!(rt.reachable(s, d));
            }
        }
        // Chord shortens the long way around.
        let p = rt.path(nodes[0], nodes[10]).unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn dist_matches_path_cost() {
        let mut t = Topology::new();
        let a = node(&mut t, 1);
        let b = node(&mut t, 2);
        let c = node(&mut t, 3);
        t.add_link(a, b, LatencyModel::constant_ms(3));
        t.add_link(b, c, LatencyModel::constant_ms(4));
        let rt = RouteTable::build(&t);
        assert_eq!(rt.dist(a, a), 0);
        assert_eq!(rt.dist(a, b), 3_000);
        assert_eq!(rt.dist(a, c), 7_000);
        let d = node(&mut t, 4); // isolated
        let rt = RouteTable::build(&t);
        assert_eq!(rt.dist(a, d), u64::MAX);
    }
}
