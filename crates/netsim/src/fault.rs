//! Deterministic fault injection: a [`FaultPlan`] the engine consults on
//! every link transmission.
//!
//! The plan owns its **own** seeded [`StdRng`] — a dedicated seed lane —
//! so installing (or removing) a plan never perturbs the engine's RNG
//! stream: a run with no plan installed is byte-identical to a run on a
//! build without this module, and a faulted run replays byte-identically
//! from its seed. Scheduled windows (outages, latency spikes) are pure
//! functions of simulated time and draw nothing from any RNG.
//!
//! Three fault classes, mirroring what cellular paths actually do to
//! packets (loss bursts on the RAN, gateway maintenance windows,
//! bufferbloat episodes):
//!
//! * **Bernoulli loss** — extra per-packet drop probability on top of the
//!   topology's own link loss.
//! * **Outage windows** — periodic intervals during which a link drops
//!   every packet.
//! * **Latency spikes** — periodic intervals during which sampled link
//!   latency is scaled and/or padded.

use crate::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// A periodic time window: active for `duration` once every `period`,
/// starting at `offset` into each period. Purely time-driven — no RNG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// Repetition period. Must be non-zero for the window to ever match.
    pub period: SimDuration,
    /// Start of the active interval within each period.
    pub offset: SimDuration,
    /// Length of the active interval.
    pub duration: SimDuration,
}

impl Window {
    /// Whether `now` falls inside an active interval.
    pub fn contains(&self, now: SimTime) -> bool {
        let period = self.period.as_micros();
        if period == 0 || self.duration == SimDuration::ZERO {
            return false;
        }
        let phase = now.as_micros() % period;
        let start = self.offset.as_micros() % period;
        let end = start.saturating_add(self.duration.as_micros());
        // A window whose tail crosses the period boundary wraps around.
        if end <= period {
            phase >= start && phase < end
        } else {
            phase >= start || phase < end - period
        }
    }
}

/// A periodic latency-spike episode: while the window is active, sampled
/// link latency is multiplied by `factor_x1000 / 1000` and padded by
/// `extra`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Spike {
    /// When the episode recurs.
    pub window: Window,
    /// Latency multiplier in thousandths (1000 = unchanged, 3000 = 3x).
    pub factor_x1000: u64,
    /// Constant padding added on top of the scaled latency.
    pub extra: SimDuration,
}

/// The fault behaviour applied to one link (or, via
/// [`FaultPlan::with_global`], to every link).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LinkFault {
    /// Extra Bernoulli drop probability per packet (0.0 = none).
    pub loss: f64,
    /// Periodic total-outage window, if any.
    pub outage: Option<Window>,
    /// Periodic latency-spike episode, if any.
    pub spike: Option<Spike>,
}

impl LinkFault {
    /// Whether this fault can ever do anything.
    pub fn is_active(&self) -> bool {
        self.loss > 0.0 || self.outage.is_some() || self.spike.is_some()
    }
}

/// Counters describing what the plan injected.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultStats {
    /// Packets dropped by the Bernoulli loss overlay.
    pub chaos_losses: u64,
    /// Packets dropped inside an outage window.
    pub outage_drops: u64,
    /// Packets whose latency was inflated by a spike episode.
    pub spiked: u64,
}

impl FaultStats {
    /// Folds the fault-injection counters into an [`obs::Registry`] under
    /// the `fault.*` family, labelled with `labels`.
    pub fn export(&self, reg: &mut obs::Registry, labels: &[(&'static str, &str)]) {
        let by_kind: [(&str, u64); 3] = [
            ("chaos_loss", self.chaos_losses),
            ("outage_drop", self.outage_drops),
            ("latency_spike", self.spiked),
        ];
        for (kind, n) in by_kind {
            let mut kl: Vec<(&'static str, &str)> = labels.to_vec();
            kl.push(("kind", kind));
            reg.inc_by("fault.injected", &kl, n);
        }
    }
}

/// A seed-deterministic fault-injection plan, installed into the engine
/// with `Network::install_fault_plan`. Per-link overrides take precedence
/// over the global fault; links without either are untouched.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Fault applied to every link that has no per-link override.
    global: Option<LinkFault>,
    /// Per-link overrides, keyed by link index (BTreeMap: deterministic
    /// iteration order if anyone ever walks it).
    links: BTreeMap<usize, LinkFault>,
    /// Dedicated RNG lane for the Bernoulli draws.
    rng: StdRng,
    /// What the plan has injected so far.
    pub stats: FaultStats,
}

impl FaultPlan {
    /// An empty plan drawing from its own seed lane.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            global: None,
            links: BTreeMap::new(),
            rng: StdRng::seed_from_u64(seed),
            stats: FaultStats::default(),
        }
    }

    /// Applies `fault` to every link without a per-link override.
    pub fn with_global(mut self, fault: LinkFault) -> Self {
        self.global = Some(fault);
        self
    }

    /// Overrides the fault for one link.
    pub fn set_link(&mut self, link: usize, fault: LinkFault) {
        self.links.insert(link, fault);
    }

    /// The fault governing `link`, if any.
    fn fault_for(&self, link: usize) -> Option<&LinkFault> {
        self.links.get(&link).or(self.global.as_ref())
    }

    /// Whether a packet crossing `link` at `now` should be dropped.
    /// Outage windows are checked first (no RNG); only a configured
    /// Bernoulli loss consumes a draw, so inert links cost nothing.
    pub fn should_drop(&mut self, link: usize, now: SimTime) -> bool {
        let Some(fault) = self.fault_for(link) else {
            return false;
        };
        if let Some(w) = &fault.outage {
            if w.contains(now) {
                self.stats.outage_drops += 1;
                return true;
            }
        }
        let loss = fault.loss;
        if loss > 0.0 && self.rng.gen_bool(loss) {
            self.stats.chaos_losses += 1;
            return true;
        }
        false
    }

    /// Extra latency a packet crossing `link` at `now` incurs on top of
    /// the engine-sampled `base` latency. Zero outside spike episodes.
    pub fn extra_latency(&mut self, link: usize, now: SimTime, base: SimDuration) -> SimDuration {
        let Some(spike) = self.fault_for(link).and_then(|fault| fault.spike) else {
            return SimDuration::ZERO;
        };
        if !spike.window.contains(now) {
            return SimDuration::ZERO;
        }
        self.stats.spiked += 1;
        let scaled = base
            .as_micros()
            .saturating_mul(spike.factor_x1000.saturating_sub(1_000))
            / 1_000;
        SimDuration::from_micros(scaled) + spike.extra
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(period_s: u64, offset_s: u64, dur_s: u64) -> Window {
        Window {
            period: SimDuration::from_secs(period_s),
            offset: SimDuration::from_secs(offset_s),
            duration: SimDuration::from_secs(dur_s),
        }
    }

    #[test]
    fn window_matches_periodically() {
        let w = window(100, 10, 5);
        assert!(!w.contains(SimTime::from_micros(0)));
        assert!(w.contains(SimTime::ZERO + SimDuration::from_secs(10)));
        assert!(w.contains(SimTime::ZERO + SimDuration::from_secs(14)));
        assert!(!w.contains(SimTime::ZERO + SimDuration::from_secs(15)));
        // Next period.
        assert!(w.contains(SimTime::ZERO + SimDuration::from_secs(112)));
    }

    #[test]
    fn window_wraps_across_period_boundary() {
        let w = window(100, 98, 5);
        assert!(w.contains(SimTime::ZERO + SimDuration::from_secs(99)));
        assert!(w.contains(SimTime::ZERO + SimDuration::from_secs(102)));
        assert!(!w.contains(SimTime::ZERO + SimDuration::from_secs(103)));
    }

    #[test]
    fn degenerate_window_never_matches() {
        let w = window(0, 0, 10);
        assert!(!w.contains(SimTime::ZERO));
        let w = window(100, 0, 0);
        assert!(!w.contains(SimTime::ZERO));
    }

    #[test]
    fn inert_plan_drops_nothing_and_draws_nothing() {
        let mut a = FaultPlan::new(7);
        for link in 0..100 {
            assert!(!a.should_drop(link, SimTime::ZERO));
        }
        assert_eq!(a.stats, FaultStats::default());
        // The RNG was never touched: a fresh plan with the same seed
        // produces the same first draw afterwards.
        let mut b = FaultPlan::new(7);
        let fault = LinkFault {
            loss: 0.5,
            ..LinkFault::default()
        };
        a = a.with_global(fault);
        b = b.with_global(fault);
        let da: Vec<bool> = (0..32).map(|_| a.should_drop(0, SimTime::ZERO)).collect();
        let db: Vec<bool> = (0..32).map(|_| b.should_drop(0, SimTime::ZERO)).collect();
        assert_eq!(da, db);
        assert!(da.iter().any(|&d| d) && da.iter().any(|&d| !d));
    }

    #[test]
    fn outage_drops_without_consuming_rng() {
        let fault = LinkFault {
            loss: 0.5,
            outage: Some(window(100, 0, 100)),
            ..LinkFault::default()
        };
        let mut always_out = FaultPlan::new(3).with_global(fault);
        for _ in 0..10 {
            assert!(always_out.should_drop(0, SimTime::ZERO));
        }
        assert_eq!(always_out.stats.outage_drops, 10);
        assert_eq!(always_out.stats.chaos_losses, 0);
    }

    #[test]
    fn per_link_override_beats_global() {
        let mut plan = FaultPlan::new(1).with_global(LinkFault {
            outage: Some(window(10, 0, 10)),
            ..LinkFault::default()
        });
        plan.set_link(3, LinkFault::default());
        assert!(plan.should_drop(0, SimTime::ZERO));
        assert!(!plan.should_drop(3, SimTime::ZERO));
    }

    #[test]
    fn spike_scales_and_pads_latency() {
        let spike = Spike {
            window: window(100, 0, 50),
            factor_x1000: 3_000,
            extra: SimDuration::from_millis(40),
        };
        let mut plan = FaultPlan::new(1).with_global(LinkFault {
            spike: Some(spike),
            ..LinkFault::default()
        });
        let base = SimDuration::from_millis(10);
        // Inside the window: 10ms * (3000-1000)/1000 + 40ms = 60ms extra.
        assert_eq!(
            plan.extra_latency(0, SimTime::ZERO, base),
            SimDuration::from_millis(60)
        );
        // Outside the window: nothing.
        assert_eq!(
            plan.extra_latency(0, SimTime::ZERO + SimDuration::from_secs(60), base),
            SimDuration::ZERO
        );
        assert_eq!(plan.stats.spiked, 1);
    }
}
