//! TCP-lite: a reliable, connection-oriented transport implemented as
//! event-driven state machines over the simulator's datagrams — handshake,
//! MSS segmentation, cumulative ACKs, go-back-N retransmission with a
//! bounded RTO, and FIN teardown.
//!
//! This is what makes the suite's HTTP time-to-first-byte honest: TTFB
//! costs a real three-way handshake plus the request round trip, transfers
//! survive radio loss through retransmission, and total fetch time grows
//! with page size.

use crate::engine::{Egress, ServiceCtx, UdpService};
use crate::time::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Segment flag: synchronize (connection open).
pub const SYN: u8 = 0x01;
/// Segment flag: acknowledgment field is valid.
pub const ACK: u8 = 0x02;
/// Segment flag: finish (sender is done).
pub const FIN: u8 = 0x04;
/// Segment flag: reset.
pub const RST: u8 = 0x08;

/// Maximum segment size for data.
pub const MSS: usize = 1400;
/// Send window in segments (go-back-N).
const WINDOW: usize = 10;
/// Retransmission timeout.
const RTO: SimDuration = SimDuration::from_millis(250);
/// Retransmission attempts before giving up.
const MAX_RETRIES: u32 = 6;

/// One TCP-lite segment (the simulator's UDP payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Flag bits.
    pub flags: u8,
    /// Sequence number of the first data byte (SYN/FIN consume one).
    pub seq: u32,
    /// Cumulative acknowledgment (next byte expected).
    pub ack: u32,
    /// Payload bytes.
    pub data: Vec<u8>,
}

impl Segment {
    /// Serializes to datagram bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(9 + self.data.len());
        out.push(self.flags);
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.ack.to_be_bytes());
        out.extend_from_slice(&self.data);
        out
    }

    /// Parses from datagram bytes.
    pub fn decode(bytes: &[u8]) -> Option<Segment> {
        if bytes.len() < 9 {
            return None;
        }
        Some(Segment {
            flags: bytes[0],
            seq: u32::from_be_bytes([bytes[1], bytes[2], bytes[3], bytes[4]]),
            ack: u32::from_be_bytes([bytes[5], bytes[6], bytes[7], bytes[8]]),
            data: bytes[9..].to_vec(),
        })
    }

    /// A control segment with no payload.
    pub fn ctl(flags: u8, seq: u32, ack: u32) -> Segment {
        Segment {
            flags,
            seq,
            ack,
            data: Vec::new(),
        }
    }

    /// Sequence space this segment consumes (SYN and FIN count one each).
    pub fn seq_len(&self) -> u32 {
        let mut n = self.data.len() as u32;
        if self.flags & SYN != 0 {
            n += 1;
        }
        if self.flags & FIN != 0 {
            n += 1;
        }
        n
    }
}

fn reply(to: Ipv4Addr, to_port: u16, seg: &Segment, delay: SimDuration) -> Egress {
    Egress::reply(to, to_port, seg.encode(), delay)
}

/// Statistics of a TCP-lite endpoint.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct TcpStats {
    /// Connections accepted/opened.
    pub connections: u64,
    /// Data segments sent (first transmissions).
    pub segments_sent: u64,
    /// Segments retransmitted.
    pub retransmits: u64,
    /// Connections aborted after retry exhaustion.
    pub aborts: u64,
}

#[derive(Debug, PartialEq, Eq)]
enum ServerConnState {
    SynRcvd,
    Established,
    /// Response fully acked, FIN sent, waiting for its ACK.
    FinWait,
}

#[derive(Debug)]
struct ServerConn {
    state: ServerConnState,
    /// Next sequence number we have *made available* to send.
    next_seq: u32,
    /// First unacknowledged sequence number.
    send_base: u32,
    /// Next byte expected from the peer.
    peer_next: u32,
    /// The full response once the request has been seen.
    response: Option<Vec<u8>>,
    /// Retransmission state.
    rto_at: Option<SimTime>,
    retries: u32,
}

/// A TCP-lite HTTP server: completes the handshake, waits for a request
/// line, and serves a page of `page_size` bytes after `service_time`.
#[derive(Debug)]
pub struct TcpHttpServer {
    /// Bytes served per request.
    pub page_size: usize,
    /// Server think-time before the first byte.
    pub service_time: SimDuration,
    conns: BTreeMap<(Ipv4Addr, u16), ServerConn>,
    /// Endpoint statistics.
    pub stats: TcpStats,
}

impl TcpHttpServer {
    /// A server with the given page size and think time.
    pub fn new(page_size: usize, service_time: SimDuration) -> Self {
        TcpHttpServer {
            page_size,
            service_time,
            conns: BTreeMap::new(),
            stats: TcpStats::default(),
        }
    }

    /// Emits up to a window of unsent data segments for a connection.
    fn pump(
        conn: &mut ServerConn,
        stats: &mut TcpStats,
        peer: Ipv4Addr,
        peer_port: u16,
        now: SimTime,
        delay: SimDuration,
        out: &mut Vec<Egress>,
    ) {
        let Some(response) = &conn.response else {
            return;
        };
        // Sequence 1 is the first response byte (0 was the SYN).
        let total = response.len() as u32;
        while conn.next_seq - 1 < total && (conn.next_seq - conn.send_base) as usize <= WINDOW * MSS
        {
            let start = (conn.next_seq - 1) as usize;
            let end = (start + MSS).min(response.len());
            let seg = Segment {
                flags: ACK,
                seq: conn.next_seq,
                ack: conn.peer_next,
                data: response[start..end].to_vec(),
            };
            conn.next_seq += (end - start) as u32;
            stats.segments_sent += 1;
            out.push(reply(peer, peer_port, &seg, delay));
        }
        // All data sent: append FIN once.
        if conn.next_seq > total && conn.state == ServerConnState::Established {
            let fin = Segment::ctl(FIN | ACK, conn.next_seq, conn.peer_next);
            conn.next_seq += 1;
            conn.state = ServerConnState::FinWait;
            out.push(reply(peer, peer_port, &fin, delay));
        }
        if conn.rto_at.is_none() && conn.send_base < conn.next_seq {
            conn.rto_at = Some(now + RTO);
        }
    }

    /// Retransmits from `send_base` (go-back-N).
    fn retransmit(
        conn: &mut ServerConn,
        stats: &mut TcpStats,
        peer: Ipv4Addr,
        peer_port: u16,
        now: SimTime,
        out: &mut Vec<Egress>,
    ) {
        conn.retries += 1;
        match conn.state {
            ServerConnState::SynRcvd => {
                let syn_ack = Segment::ctl(SYN | ACK, 0, conn.peer_next);
                stats.retransmits += 1;
                out.push(reply(peer, peer_port, &syn_ack, SimDuration::ZERO));
            }
            ServerConnState::Established | ServerConnState::FinWait => {
                if let Some(response) = &conn.response {
                    let total = response.len() as u32;
                    let mut seq = conn.send_base.max(1);
                    let mut sent = 0usize;
                    while seq - 1 < total && sent < WINDOW {
                        let start = (seq - 1) as usize;
                        let end = (start + MSS).min(response.len());
                        let seg = Segment {
                            flags: ACK,
                            seq,
                            ack: conn.peer_next,
                            data: response[start..end].to_vec(),
                        };
                        seq += (end - start) as u32;
                        sent += 1;
                        stats.retransmits += 1;
                        out.push(reply(peer, peer_port, &seg, SimDuration::ZERO));
                    }
                    if conn.state == ServerConnState::FinWait && seq > total {
                        let fin = Segment::ctl(FIN | ACK, seq, conn.peer_next);
                        stats.retransmits += 1;
                        out.push(reply(peer, peer_port, &fin, SimDuration::ZERO));
                    }
                }
            }
        }
        conn.rto_at = Some(now + RTO);
    }
}

impl UdpService for TcpHttpServer {
    fn handle(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        from: Ipv4Addr,
        from_port: u16,
        payload: &[u8],
    ) -> Vec<Egress> {
        let mut out = Vec::new();
        let Some(seg) = Segment::decode(payload) else {
            return out;
        };
        let key = (from, from_port);
        if seg.flags & RST != 0 {
            self.conns.remove(&key);
            return out;
        }
        if seg.flags & SYN != 0 {
            // New (or retransmitted) connection request.
            let conn = self.conns.entry(key).or_insert_with(|| {
                self.stats.connections += 1;
                ServerConn {
                    state: ServerConnState::SynRcvd,
                    next_seq: 1,
                    send_base: 1,
                    peer_next: seg.seq + 1,
                    response: None,
                    rto_at: Some(ctx.now + RTO),
                    retries: 0,
                }
            });
            let syn_ack = Segment::ctl(SYN | ACK, 0, conn.peer_next);
            out.push(reply(from, from_port, &syn_ack, SimDuration::ZERO));
            self.arm(ctx);
            return out;
        }
        let page_size = self.page_size;
        let service_time = self.service_time;
        let Some(conn) = self.conns.get_mut(&key) else {
            // No state: reset.
            out.push(reply(
                from,
                from_port,
                &Segment::ctl(RST, 0, seg.seq),
                SimDuration::ZERO,
            ));
            return out;
        };
        // ACK processing.
        if seg.flags & ACK != 0 && seg.ack > conn.send_base {
            conn.send_base = seg.ack;
            conn.retries = 0;
            conn.rto_at = None;
            if conn.state == ServerConnState::SynRcvd {
                conn.state = ServerConnState::Established;
            }
        }
        // Teardown complete?
        if conn.state == ServerConnState::FinWait && conn.send_base >= conn.next_seq {
            self.conns.remove(&key);
            self.arm(ctx);
            return out;
        }
        if conn.state == ServerConnState::SynRcvd && seg.flags & ACK != 0 {
            conn.state = ServerConnState::Established;
        }
        // In-order request data.
        if !seg.data.is_empty() {
            if seg.seq == conn.peer_next {
                conn.peer_next += seg.data.len() as u32;
                if conn.response.is_none() && seg.data.starts_with(b"GET") {
                    // Build the page: deterministic filler.
                    conn.response = Some(vec![b'x'; page_size]);
                    // First bytes leave after the think time.
                    let mut delayed = Vec::new();
                    Self::pump(
                        conn,
                        &mut self.stats,
                        from,
                        from_port,
                        ctx.now,
                        service_time,
                        &mut delayed,
                    );
                    out.extend(delayed);
                    self.arm(ctx);
                    return out;
                }
            }
            // Ack whatever we have (duplicate or out-of-order included).
            out.push(reply(
                from,
                from_port,
                &Segment::ctl(ACK, conn.next_seq, conn.peer_next),
                SimDuration::ZERO,
            ));
        }
        // Window may have opened.
        Self::pump(
            conn,
            &mut self.stats,
            from,
            from_port,
            ctx.now,
            SimDuration::ZERO,
            &mut out,
        );
        self.arm(ctx);
        out
    }

    fn tick(&mut self, ctx: &mut ServiceCtx<'_>) -> Vec<Egress> {
        let mut out = Vec::new();
        let mut drop_keys = Vec::new();
        for (&(peer, peer_port), conn) in self.conns.iter_mut() {
            if let Some(at) = conn.rto_at {
                if at <= ctx.now {
                    if conn.retries >= MAX_RETRIES {
                        drop_keys.push((peer, peer_port));
                        continue;
                    }
                    Self::retransmit(conn, &mut self.stats, peer, peer_port, ctx.now, &mut out);
                }
            }
        }
        for key in drop_keys {
            self.conns.remove(&key);
            self.stats.aborts += 1;
        }
        self.arm(ctx);
        out
    }
}

impl TcpHttpServer {
    fn arm(&self, ctx: &mut ServiceCtx<'_>) {
        if let Some(earliest) = self.conns.values().filter_map(|c| c.rto_at).min() {
            ctx.wake_after = Some(earliest.since(ctx.now).max(SimDuration::from_millis(1)));
        }
    }
}

/// Why a TCP-lite fetch failed. Distinguishing an active refusal from
/// silent loss matters to callers with a failover choice to make: a reset
/// connection will not heal by retrying, a lossy path might.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TcpFailure {
    /// The server answered our SYN with RST: nothing is listening.
    Refused,
    /// The established connection was torn down by an RST mid-stream.
    Reset,
    /// Retransmissions were exhausted without a response: the path (or
    /// peer) silently ate our segments.
    Lost,
}

/// Outcome of a TCP-lite fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpFetchOutcome {
    /// Whether the full page arrived.
    pub success: bool,
    /// Typed failure reason when `success` is false.
    pub failure: Option<TcpFailure>,
    /// Handshake completion time.
    pub connected_at: Option<SimTime>,
    /// First response byte arrival (the paper's TTFB endpoint).
    pub first_byte_at: Option<SimTime>,
    /// Transfer completion.
    pub done_at: Option<SimTime>,
    /// Response bytes received in order.
    pub bytes: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FetchState {
    Idle,
    SynSent,
    Requesting,
    Receiving,
    Done,
}

/// Client-side fetch state machine: registered on an ephemeral port,
/// kicked once, then driven entirely by segments and timer ticks.
#[derive(Debug)]
pub struct TcpFetch {
    server: Ipv4Addr,
    server_port: u16,
    request: Vec<u8>,
    state: FetchState,
    started: Option<SimTime>,
    peer_next: u32,
    bytes: usize,
    retries: u32,
    rto_at: Option<SimTime>,
    /// Response bytes accepted in order (what `bytes` counts).
    pub data: Vec<u8>,
    /// Filled when the fetch finishes (success or abort).
    pub outcome: Option<TcpFetchOutcome>,
    connected_at: Option<SimTime>,
    first_byte_at: Option<SimTime>,
    /// Endpoint statistics.
    pub stats: TcpStats,
}

impl TcpFetch {
    /// A fetch of `request` from `server:server_port`.
    pub fn new(server: Ipv4Addr, server_port: u16, request: Vec<u8>) -> Self {
        TcpFetch {
            server,
            server_port,
            request,
            state: FetchState::Idle,
            started: None,
            peer_next: 0,
            bytes: 0,
            retries: 0,
            rto_at: None,
            data: Vec::new(),
            outcome: None,
            connected_at: None,
            first_byte_at: None,
            stats: TcpStats::default(),
        }
    }

    fn send_syn(&mut self, out: &mut Vec<Egress>) {
        let syn = Segment::ctl(SYN, 0, 0);
        out.push(reply(
            self.server,
            self.server_port,
            &syn,
            SimDuration::ZERO,
        ));
    }

    fn send_request(&mut self, out: &mut Vec<Egress>) {
        let seg = Segment {
            flags: ACK,
            seq: 1,
            ack: self.peer_next,
            data: self.request.clone(),
        };
        self.stats.segments_sent += 1;
        out.push(reply(
            self.server,
            self.server_port,
            &seg,
            SimDuration::ZERO,
        ));
    }

    fn finish(&mut self, failure: Option<TcpFailure>, now: SimTime) {
        if self.outcome.is_none() {
            let success = failure.is_none();
            self.outcome = Some(TcpFetchOutcome {
                success,
                failure,
                connected_at: self.connected_at,
                first_byte_at: self.first_byte_at,
                done_at: success.then_some(now),
                bytes: self.bytes,
            });
            if !success {
                self.stats.aborts += 1;
            }
            self.state = FetchState::Done;
            self.rto_at = None;
        }
    }

    fn arm(&self, ctx: &mut ServiceCtx<'_>) {
        if let Some(at) = self.rto_at {
            ctx.wake_after = Some(at.since(ctx.now).max(SimDuration::from_millis(1)));
        }
    }
}

impl UdpService for TcpFetch {
    fn handle(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        from: Ipv4Addr,
        _from_port: u16,
        payload: &[u8],
    ) -> Vec<Egress> {
        let mut out = Vec::new();
        if from != self.server || self.state == FetchState::Done {
            return out;
        }
        let Some(seg) = Segment::decode(payload) else {
            return out;
        };
        if seg.flags & RST != 0 {
            let failure = if self.state == FetchState::SynSent {
                TcpFailure::Refused
            } else {
                TcpFailure::Reset
            };
            self.finish(Some(failure), ctx.now);
            return out;
        }
        match self.state {
            FetchState::SynSent if seg.flags & (SYN | ACK) == SYN | ACK => {
                self.connected_at = Some(ctx.now);
                self.peer_next = seg.seq + 1;
                self.state = FetchState::Requesting;
                self.retries = 0;
                self.send_request(&mut out);
                self.rto_at = Some(ctx.now + RTO);
            }
            FetchState::Requesting | FetchState::Receiving => {
                // Server ack of our request moves us to Receiving.
                if seg.flags & ACK != 0 && seg.ack > 1 {
                    self.state = FetchState::Receiving;
                    self.rto_at = None;
                }
                if !seg.data.is_empty() {
                    self.state = FetchState::Receiving;
                    self.rto_at = None;
                    if seg.seq == self.peer_next {
                        if self.first_byte_at.is_none() {
                            self.first_byte_at = Some(ctx.now);
                        }
                        self.peer_next += seg.data.len() as u32;
                        self.bytes += seg.data.len();
                        self.data.extend_from_slice(&seg.data);
                    }
                    out.push(reply(
                        self.server,
                        self.server_port,
                        &Segment::ctl(ACK, 1 + self.request.len() as u32, self.peer_next),
                        SimDuration::ZERO,
                    ));
                }
                if seg.flags & FIN != 0 && seg.seq == self.peer_next {
                    // Server is done; ack the FIN and finish.
                    self.peer_next += 1;
                    out.push(reply(
                        self.server,
                        self.server_port,
                        &Segment::ctl(ACK, 1 + self.request.len() as u32, self.peer_next),
                        SimDuration::ZERO,
                    ));
                    self.finish(None, ctx.now);
                }
            }
            _ => {}
        }
        self.arm(ctx);
        out
    }

    fn tick(&mut self, ctx: &mut ServiceCtx<'_>) -> Vec<Egress> {
        let mut out = Vec::new();
        match self.state {
            FetchState::Idle => {
                self.started = Some(ctx.now);
                self.state = FetchState::SynSent;
                self.stats.connections += 1;
                self.send_syn(&mut out);
                self.rto_at = Some(ctx.now + RTO);
            }
            FetchState::SynSent | FetchState::Requesting => {
                if let Some(at) = self.rto_at {
                    if at <= ctx.now {
                        if self.retries >= MAX_RETRIES {
                            self.finish(Some(TcpFailure::Lost), ctx.now);
                        } else {
                            self.retries += 1;
                            self.stats.retransmits += 1;
                            if self.state == FetchState::SynSent {
                                self.send_syn(&mut out);
                            } else {
                                self.send_request(&mut out);
                            }
                            self.rto_at = Some(ctx.now + RTO);
                        }
                    }
                }
            }
            // Receiving: the server's RTO drives recovery; nothing to do.
            _ => {}
        }
        self.arm(ctx);
        out
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_roundtrip() {
        let seg = Segment {
            flags: SYN | ACK,
            seq: 0xDEADBEEF,
            ack: 42,
            data: vec![1, 2, 3],
        };
        assert_eq!(Segment::decode(&seg.encode()), Some(seg));
        assert_eq!(Segment::decode(&[1, 2]), None);
    }

    #[test]
    fn seq_len_counts_flags_and_data() {
        assert_eq!(Segment::ctl(SYN, 0, 0).seq_len(), 1);
        assert_eq!(Segment::ctl(FIN | ACK, 5, 2).seq_len(), 1);
        assert_eq!(
            Segment {
                flags: ACK,
                seq: 1,
                ack: 0,
                data: vec![0; 10]
            }
            .seq_len(),
            10
        );
    }
    // End-to-end connection behaviour is exercised in tests/tcp.rs over a
    // real simulated network (including lossy links).
}
