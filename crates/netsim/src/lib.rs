#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `netsim` — a deterministic discrete-event network simulator.
//!
//! This is the substrate the *Behind the Curtain* (IMC 2014) reproduction
//! runs on: since the paper's cellular vantage points cannot be shipped with
//! a library, every measurement tool in this workspace runs against a
//! simulated internet with the same observable structure (see DESIGN.md for
//! the substitution argument).
//!
//! Design (following the event-driven philosophy of the networking guides):
//!
//! * [`engine::Network`] owns an event queue ([`queue::EventQueue`]: a
//!   hierarchical timing wheel by default, the classic binary heap for A/B
//!   comparison — both dispatch in identical `(time, seq)` order); time
//!   advances only by dispatching events, and all randomness flows from one
//!   seeded RNG, so runs are bit-reproducible.
//! * Packets ([`packet::Packet`]) are forwarded hop by hop over a routed
//!   topology ([`topo::Topology`], [`route::RouteTable`]), so TTLs,
//!   traceroute, anycast, and middleboxes behave like the real thing.
//! * Protocol endpoints are state machines implementing
//!   [`engine::UdpService`]; there is no async runtime and no interior
//!   mutability on the hot path.
//! * Middleboxes ([`middlebox::Firewall`], [`middlebox::Nat`]) reproduce the
//!   cellular opaqueness the paper keeps running into.
//!
//! # Example: ping across a routed topology
//!
//! ```
//! use netsim::engine::Network;
//! use netsim::latency::LatencyModel;
//! use netsim::topo::{Asn, Coord, NodeKind, Topology};
//! use std::net::Ipv4Addr;
//!
//! let mut topo = Topology::new();
//! let a = topo.add_node("a", NodeKind::Host, Asn(1), Coord::default(),
//!     vec![Ipv4Addr::new(10, 0, 0, 1)]);
//! let b = topo.add_node("b", NodeKind::Host, Asn(2), Coord::default(),
//!     vec![Ipv4Addr::new(10, 0, 0, 2)]);
//! topo.add_link(a, b, LatencyModel::constant_ms(10));
//! let mut net = Network::new(topo, 42);
//! let report = net.ping_train(a, Ipv4Addr::new(10, 0, 0, 2), 3);
//! assert_eq!(report.rtts.len(), 3);
//! ```

pub mod addr;
pub mod client;
pub mod engine;
pub mod fault;
pub mod latency;
pub mod middlebox;
pub mod packet;
pub mod queue;
pub mod route;
pub mod tcplite;
pub mod time;
pub mod topo;
pub mod trace;

pub use addr::{AddrAllocator, Prefix};
pub use client::{
    HttpLiteServer, HttpReport, PingReport, TcpGetReport, TraceHop, TraceReport, HTTP_PORT,
};
pub use engine::{
    Egress, FlowId, FlowOutcome, FlowResult, NetStats, Network, ServiceCtx, UdpService,
};
pub use fault::{FaultPlan, FaultStats, LinkFault, Spike, Window};
pub use latency::LatencyModel;
pub use packet::{IcmpMsg, Packet, Transport};
pub use queue::{EventQueue, HeapQueue, QueueKind, TimingWheel};
pub use tcplite::{TcpFailure, TcpFetch, TcpFetchOutcome, TcpHttpServer};
pub use time::{SimDuration, SimTime};
pub use topo::{Asn, Coord, NodeId, NodeKind, Topology};
pub use trace::{TraceEntry, TraceEvent, Tracer};
