//! Event queues for the discrete-event engine: the classic binary heap and
//! a hierarchical timing wheel, both behind the [`EventQueue`] trait so the
//! two dispatch structures are A/B-testable under the determinism suite.
//!
//! Both implementations dispatch in exactly the same total order — ascending
//! `(time, seq)`, where `seq` is the engine's monotone scheduling counter —
//! so swapping one for the other must not change a single output byte. The
//! wheel additionally supports O(1) cancellation, which the engine uses to
//! reap stale flow-timeout events instead of no-op-dispatching them.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashSet};

/// A scheduled event: an opaque payload plus its dispatch key.
///
/// Ordering ignores the payload: events are totally ordered by
/// `(time, seq)`, and `seq` is unique, so ties are impossible and FIFO
/// order within one instant is exactly scheduling order.
#[derive(Debug)]
pub struct Event<K> {
    /// Dispatch instant.
    pub time: SimTime,
    /// Monotone scheduling sequence number (the FIFO tiebreaker).
    pub seq: u64,
    /// Engine-defined payload.
    pub kind: K,
}

impl<K> Event<K> {
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

impl<K> PartialEq for Event<K> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<K> Eq for Event<K> {}
impl<K> PartialOrd for Event<K> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<K> Ord for Event<K> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// Which queue implementation an engine runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueKind {
    /// `BinaryHeap<Reverse<Event>>` — the original dispatch structure.
    Heap,
    /// Hierarchical timing wheel (near wheel + overflow calendar).
    #[default]
    Wheel,
}

impl QueueKind {
    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "heap" => Some(QueueKind::Heap),
            "wheel" => Some(QueueKind::Wheel),
            _ => None,
        }
    }

    /// Stable lowercase name (CLI/report form).
    pub fn label(self) -> &'static str {
        match self {
            QueueKind::Heap => "heap",
            QueueKind::Wheel => "wheel",
        }
    }

    /// Boxes a fresh queue of this kind.
    pub fn build<K: Send + 'static>(self) -> Box<dyn EventQueue<K>> {
        match self {
            QueueKind::Heap => Box::new(HeapQueue::new()),
            QueueKind::Wheel => Box::new(TimingWheel::new()),
        }
    }
}

/// A priority queue of engine events ordered by `(time, seq)`.
///
/// Contract shared by every implementation (and checked byte-for-byte by
/// `tests/determinism.rs`):
///
/// * `pop` returns live events in strictly ascending `(time, seq)` order;
/// * `cancel(seq)` removes a scheduled event without dispatching it — the
///   caller guarantees the event is still in the queue and is cancelled at
///   most once;
/// * `len` counts live (pushed, not yet popped or cancelled) events, so
///   queue-depth metrics agree across implementations regardless of how
///   lazily each one reaps its tombstones;
/// * `next_time` may mutate internal structure (reaping tombstones,
///   rotating wheel slots) but never changes the observable sequence.
pub trait EventQueue<K>: Send {
    /// Inserts an event. `time` must be `>=` the time of the last popped
    /// event (the engine clamps to `now` when scheduling).
    fn push(&mut self, ev: Event<K>);
    /// Removes and returns the earliest live event.
    fn pop(&mut self) -> Option<Event<K>>;
    /// The dispatch instant of the earliest live event.
    fn next_time(&mut self) -> Option<SimTime>;
    /// Cancels the scheduled event carrying `seq` without dispatching it.
    fn cancel(&mut self, seq: u64);
    /// Number of live events.
    fn len(&self) -> usize;
    /// `true` when no live events remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Which implementation this is (for reports).
    fn kind(&self) -> QueueKind;
}

/// The original dispatch structure: a min-heap over `(time, seq)` with
/// lazy tombstone cancellation.
pub struct HeapQueue<K> {
    heap: BinaryHeap<Reverse<Event<K>>>,
    /// Seqs cancelled but not yet reaped from the heap. Membership-checked
    /// only; iteration order never escapes.
    cancelled: HashSet<u64>,
    live: usize,
}

impl<K> HeapQueue<K> {
    /// An empty heap queue.
    pub fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            live: 0,
        }
    }
}

impl<K> Default for HeapQueue<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Send> EventQueue<K> for HeapQueue<K> {
    fn push(&mut self, ev: Event<K>) {
        self.live += 1;
        self.heap.push(Reverse(ev));
    }

    fn pop(&mut self) -> Option<Event<K>> {
        while let Some(Reverse(ev)) = self.heap.pop() {
            if self.cancelled.remove(&ev.seq) {
                continue; // tombstone: already subtracted from `live`
            }
            self.live -= 1;
            return Some(ev);
        }
        None
    }

    fn next_time(&mut self) -> Option<SimTime> {
        while let Some(Reverse(ev)) = self.heap.peek() {
            if self.cancelled.contains(&ev.seq) {
                if let Some(Reverse(dead)) = self.heap.pop() {
                    self.cancelled.remove(&dead.seq);
                }
                continue;
            }
            return Some(ev.time);
        }
        None
    }

    fn cancel(&mut self, seq: u64) {
        self.cancelled.insert(seq);
        self.live = self.live.saturating_sub(1);
    }

    fn len(&self) -> usize {
        self.live
    }

    fn kind(&self) -> QueueKind {
        QueueKind::Heap
    }
}

/// Width of one near-wheel slot in microseconds. 1024 µs ≈ 1 ms groups the
/// engine's sub-millisecond proc-delay cascades into one tick batch while
/// keeping same-tick ordering exact via the `(time, seq)` sort.
const SLOT_WIDTH_US: u64 = 1024;
/// Near-wheel slot count: 1024 slots × ~1 ms ≈ 1.05 s horizon, which covers
/// packet latencies and the short end of the DNS retry ladder; longer
/// timeouts land in the overflow calendar.
const SLOTS: usize = 1024;

/// A hierarchical timing wheel: a near wheel of [`SLOTS`] ring slots plus a
/// far overflow calendar (a `BTreeMap` keyed by absolute slot index).
///
/// Events in the active slot are drained as one *tick batch*: the slot's
/// vector is sorted once (descending, so pops come off the back in
/// ascending `(time, seq)` order) and events scheduled into the active
/// tick mid-drain are placed by binary insertion — they always sort after
/// everything already popped because the engine never schedules into the
/// past. Per-slot sorting is what makes the wheel's dispatch order equal
/// the heap's, byte for byte.
pub struct TimingWheel<K> {
    /// Ring of near slots; index is `absolute_slot % SLOTS`.
    slots: Vec<Vec<Event<K>>>,
    /// Live + tombstoned events currently stored in `slots`.
    near_len: usize,
    /// Absolute index of the slot currently being drained.
    cursor: u64,
    /// One past the highest absolute slot the near wheel can hold;
    /// always `> cursor` and `<= cursor + SLOTS`.
    horizon: u64,
    /// The active tick batch, sorted descending by `(time, seq)`.
    current: Vec<Event<K>>,
    /// Far events: absolute slot index → unsorted event list.
    overflow: BTreeMap<u64, Vec<Event<K>>>,
    /// Tombstoned seqs awaiting reap. Membership-checked only.
    cancelled: HashSet<u64>,
    live: usize,
}

impl<K> TimingWheel<K> {
    /// An empty wheel positioned at the start of simulated time.
    pub fn new() -> Self {
        TimingWheel {
            slots: std::iter::repeat_with(Vec::new).take(SLOTS).collect(),
            near_len: 0,
            cursor: 0,
            horizon: SLOTS as u64,
            current: Vec::new(),
            overflow: BTreeMap::new(),
            cancelled: HashSet::new(),
            live: 0,
        }
    }

    fn slot_of(time: SimTime) -> u64 {
        time.as_micros() / SLOT_WIDTH_US
    }

    /// Sorts a freshly taken slot into active-batch order (descending, so
    /// `Vec::pop` yields ascending `(time, seq)`).
    fn sort_batch(batch: &mut [Event<K>]) {
        batch.sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
    }

    /// Advances the cursor to the next occupied slot and loads it into
    /// `current`. Returns `false` when the wheel is completely empty.
    fn advance(&mut self) -> bool {
        if self.near_len > 0 {
            for s in (self.cursor + 1)..self.horizon {
                let idx = (s % SLOTS as u64) as usize;
                if self.slots[idx].is_empty() {
                    continue;
                }
                self.cursor = s;
                self.current = std::mem::take(&mut self.slots[idx]);
                self.near_len -= self.current.len();
                Self::sort_batch(&mut self.current);
                return true;
            }
            // Unreachable while the `near_len` accounting holds; resync so
            // a bug degrades to the overflow path instead of a stall.
            self.near_len = 0;
        }
        // Near wheel exhausted: rotate the window to the first calendar
        // entry and migrate everything that now fits the near range.
        let Some((&first, _)) = self.overflow.iter().next() else {
            return false;
        };
        self.cursor = first;
        self.horizon = first + SLOTS as u64;
        let beyond = self.overflow.split_off(&self.horizon);
        let near = std::mem::replace(&mut self.overflow, beyond);
        for (s, evs) in near {
            if s == first {
                self.current = evs;
            } else {
                let idx = (s % SLOTS as u64) as usize;
                self.near_len += evs.len();
                self.slots[idx] = evs;
            }
        }
        Self::sort_batch(&mut self.current);
        true
    }
}

impl<K> Default for TimingWheel<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Send> EventQueue<K> for TimingWheel<K> {
    // detlint: hot
    fn push(&mut self, ev: Event<K>) {
        self.live += 1;
        let slot = Self::slot_of(ev.time);
        if slot <= self.cursor {
            // Lands in the active tick: binary-insert into the descending
            // batch. The engine never schedules before the last popped
            // event, so the insertion point is always in the unpopped tail.
            let key = ev.key();
            let pos = self.current.partition_point(|e| e.key() > key);
            self.current.insert(pos, ev);
        } else if slot < self.horizon {
            self.slots[(slot % SLOTS as u64) as usize].push(ev);
            self.near_len += 1;
        } else {
            self.overflow.entry(slot).or_default().push(ev);
        }
    }

    // detlint: hot
    fn pop(&mut self) -> Option<Event<K>> {
        loop {
            while let Some(ev) = self.current.pop() {
                if self.cancelled.remove(&ev.seq) {
                    continue; // tombstone: already subtracted from `live`
                }
                self.live -= 1;
                return Some(ev);
            }
            if !self.advance() {
                return None;
            }
        }
    }

    fn next_time(&mut self) -> Option<SimTime> {
        loop {
            while let Some(ev) = self.current.last() {
                if self.cancelled.contains(&ev.seq) {
                    if let Some(dead) = self.current.pop() {
                        self.cancelled.remove(&dead.seq);
                    }
                    continue;
                }
                return Some(ev.time);
            }
            if !self.advance() {
                return None;
            }
        }
    }

    fn cancel(&mut self, seq: u64) {
        self.cancelled.insert(seq);
        self.live = self.live.saturating_sub(1);
    }

    fn len(&self) -> usize {
        self.live
    }

    fn kind(&self) -> QueueKind {
        QueueKind::Wheel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(us: u64, seq: u64) -> Event<u32> {
        Event {
            time: SimTime::from_micros(us),
            seq,
            kind: 0,
        }
    }

    fn drain<Q: EventQueue<u32> + ?Sized>(q: &mut Q) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push((e.time.as_micros(), e.seq));
        }
        out
    }

    /// A deterministic pseudo-random schedule exercising same-tick ties,
    /// near-wheel hits, and far-calendar spills.
    fn scripted_events() -> Vec<(u64, u64)> {
        let mut us = 7u64;
        let mut out = Vec::new();
        for seq in 0..4_000u64 {
            // xorshift-ish scramble, spanning µs ticks to multi-second gaps
            us = us.wrapping_mul(6364136223846793005).wrapping_add(seq);
            let t = (us >> 33) % 9_000_000; // 0..9 s
            out.push((t, seq));
        }
        out
    }

    #[test]
    fn wheel_matches_heap_order_exactly() {
        let mut heap = HeapQueue::new();
        let mut wheel = TimingWheel::new();
        for &(t, seq) in &scripted_events() {
            heap.push(ev(t, seq));
            wheel.push(ev(t, seq));
        }
        assert_eq!(heap.len(), wheel.len());
        assert_eq!(drain(&mut heap), drain(&mut wheel));
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        // Pop half, then push events at-or-after the last popped time (as
        // the engine does), including into the active tick.
        let mut wheel = TimingWheel::new();
        let mut heap = HeapQueue::new();
        for &(t, seq) in &scripted_events()[..1_000] {
            wheel.push(ev(t, seq));
            heap.push(ev(t, seq));
        }
        let mut got_w = Vec::new();
        let mut got_h = Vec::new();
        for _ in 0..500 {
            got_w.push(wheel.pop().map(|e| (e.time.as_micros(), e.seq)));
            got_h.push(heap.pop().map(|e| (e.time.as_micros(), e.seq)));
        }
        assert_eq!(got_w, got_h);
        let resume = got_w.last().and_then(|o| o.map(|(t, _)| t)).unwrap_or(0);
        for (i, &(dt, _)) in scripted_events()[..200].iter().enumerate() {
            let seq = 10_000 + i as u64;
            let t = resume + dt % 2_048; // same tick, near, and just beyond
            wheel.push(ev(t, seq));
            heap.push(ev(t, seq));
        }
        assert_eq!(drain(&mut wheel), drain(&mut heap));
    }

    #[test]
    fn cancellation_removes_without_dispatch() {
        for kind in [QueueKind::Heap, QueueKind::Wheel] {
            let mut q: Box<dyn EventQueue<u32>> = kind.build();
            q.push(ev(10, 0));
            q.push(ev(20, 1));
            q.push(ev(5_000_000, 2)); // far calendar on the wheel
            assert_eq!(q.len(), 3);
            q.cancel(1);
            q.cancel(2);
            assert_eq!(q.len(), 1, "{kind:?} live count after cancel");
            assert_eq!(q.next_time(), Some(SimTime::from_micros(10)));
            let seqs: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.seq).collect();
            assert_eq!(seqs, vec![0], "{kind:?} dispatched a cancelled event");
            assert!(q.is_empty());
        }
    }

    #[test]
    fn next_time_skips_cancelled_heads() {
        for kind in [QueueKind::Heap, QueueKind::Wheel] {
            let mut q: Box<dyn EventQueue<u32>> = kind.build();
            q.push(ev(10, 0));
            q.push(ev(3_000_000, 1));
            q.cancel(0);
            // The cancelled head must not be reported (a caller pacing on
            // next_time would otherwise stop short of the real next event).
            assert_eq!(q.next_time(), Some(SimTime::from_micros(3_000_000)));
            assert_eq!(q.pop().map(|e| e.seq), Some(1));
            assert_eq!(q.next_time(), None);
        }
    }

    #[test]
    fn far_calendar_rotates_through_multiple_windows() {
        let mut wheel = TimingWheel::new();
        // Three events, each beyond the previous window's horizon.
        for (i, secs) in [0u64, 3, 9].iter().enumerate() {
            wheel.push(ev(secs * 1_000_000 + 5, i as u64));
        }
        let got = drain(&mut wheel);
        assert_eq!(got, vec![(5, 0), (3_000_005, 1), (9_000_005, 2)]);
    }

    #[test]
    fn empty_queue_reports_empty() {
        for kind in [QueueKind::Heap, QueueKind::Wheel] {
            let mut q: Box<dyn EventQueue<u32>> = kind.build();
            assert!(q.is_empty());
            assert_eq!(q.next_time(), None);
            assert!(q.pop().is_none());
            assert_eq!(q.kind(), kind);
        }
    }
}
