//! Packet model: an IPv4-ish envelope over UDP and ICMP transports.
//!
//! The simulation carries real payload bytes (DNS messages from `dnswire`,
//! HTTP-lite requests) but elides header fields irrelevant to the study
//! (checksums, fragmentation, IP options).

use std::fmt;
use std::net::Ipv4Addr;

/// Default initial TTL for packets originated by hosts.
pub const DEFAULT_TTL: u8 = 64;

/// A packet in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Source address (possibly rewritten by NAT in transit).
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Remaining time-to-live in hops.
    pub ttl: u8,
    /// Transport-layer content.
    pub transport: Transport,
}

impl Packet {
    /// A UDP packet with the default TTL.
    pub fn udp(
        src: Ipv4Addr,
        src_port: u16,
        dst: Ipv4Addr,
        dst_port: u16,
        payload: Vec<u8>,
    ) -> Self {
        Packet {
            src,
            dst,
            ttl: DEFAULT_TTL,
            transport: Transport::Udp {
                src_port,
                dst_port,
                payload,
            },
        }
    }

    /// An ICMP echo request with the default TTL.
    pub fn echo_request(src: Ipv4Addr, dst: Ipv4Addr, ident: u64, seq: u16) -> Self {
        Packet {
            src,
            dst,
            ttl: DEFAULT_TTL,
            transport: Transport::Icmp(IcmpMsg::EchoRequest { ident, seq }),
        }
    }

    /// The identifiers another node needs to report this packet in an ICMP
    /// error (the "original datagram" quotation of RFC 792).
    pub fn probe_key(&self) -> ProbeKey {
        match &self.transport {
            Transport::Udp {
                src_port, dst_port, ..
            } => ProbeKey {
                src: self.src,
                dst: self.dst,
                ident: 0,
                seq: 0,
                udp_ports: Some((*src_port, *dst_port)),
            },
            Transport::Icmp(IcmpMsg::EchoRequest { ident, seq })
            | Transport::Icmp(IcmpMsg::EchoReply { ident, seq }) => ProbeKey {
                src: self.src,
                dst: self.dst,
                ident: *ident,
                seq: *seq,
                udp_ports: None,
            },
            Transport::Icmp(_) => ProbeKey {
                src: self.src,
                dst: self.dst,
                ident: 0,
                seq: 0,
                udp_ports: None,
            },
        }
    }

    /// Approximate on-the-wire size in bytes (IP + transport headers plus
    /// payload), used for serialization delay on capacity-limited links.
    pub fn wire_size(&self) -> usize {
        match &self.transport {
            Transport::Udp { payload, .. } => 28 + payload.len(),
            Transport::Icmp(_) => 64,
        }
    }

    /// A short human-readable summary for tracing.
    pub fn summary(&self) -> String {
        match &self.transport {
            Transport::Udp {
                src_port,
                dst_port,
                payload,
            } => format!(
                "UDP {}:{} -> {}:{} ({}B, ttl {})",
                self.src,
                src_port,
                self.dst,
                dst_port,
                payload.len(),
                self.ttl
            ),
            Transport::Icmp(icmp) => {
                format!(
                    "ICMP {} -> {} {} (ttl {})",
                    self.src, self.dst, icmp, self.ttl
                )
            }
        }
    }
}

/// Transport content of a packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transport {
    /// UDP datagram.
    Udp {
        /// Source port.
        src_port: u16,
        /// Destination port.
        dst_port: u16,
        /// Application payload bytes.
        payload: Vec<u8>,
    },
    /// ICMP message.
    Icmp(IcmpMsg),
}

/// ICMP messages used by probing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IcmpMsg {
    /// Echo request (`ping`, and TTL-limited traceroute probes).
    EchoRequest {
        /// Identifier chosen by the prober; unique per outstanding probe.
        ident: u64,
        /// Sequence number within a probe train.
        seq: u16,
    },
    /// Echo reply.
    EchoReply {
        /// Identifier copied from the request.
        ident: u64,
        /// Sequence copied from the request.
        seq: u16,
    },
    /// TTL expired in transit; carries enough of the original packet for the
    /// prober to correlate.
    TimeExceeded {
        /// Identification of the expired packet.
        original: ProbeKey,
    },
    /// Destination or port unreachable.
    DestUnreachable {
        /// Identification of the rejected packet.
        original: ProbeKey,
    },
}

impl fmt::Display for IcmpMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IcmpMsg::EchoRequest { ident, seq } => write!(f, "echo-req {ident}/{seq}"),
            IcmpMsg::EchoReply { ident, seq } => write!(f, "echo-rep {ident}/{seq}"),
            IcmpMsg::TimeExceeded { original } => {
                write!(f, "ttl-exceeded for {}", original.src)
            }
            IcmpMsg::DestUnreachable { original } => {
                write!(f, "unreachable for {}", original.src)
            }
        }
    }
}

/// Identification of an "original datagram" inside an ICMP error, enough
/// for the original sender to correlate the error with its probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProbeKey {
    /// Original source address.
    pub src: Ipv4Addr,
    /// Original destination address.
    pub dst: Ipv4Addr,
    /// ICMP identifier (zero for UDP probes).
    pub ident: u64,
    /// ICMP sequence (zero for UDP probes).
    pub seq: u16,
    /// UDP ports of the original packet, if it was UDP.
    pub udp_ports: Option<(u16, u16)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr::new(a, b, c, d)
    }

    #[test]
    fn udp_constructor() {
        let p = Packet::udp(ip(10, 0, 0, 1), 4096, ip(8, 8, 8, 8), 53, vec![1, 2, 3]);
        assert_eq!(p.ttl, DEFAULT_TTL);
        match &p.transport {
            Transport::Udp {
                src_port,
                dst_port,
                payload,
            } => {
                assert_eq!(*src_port, 4096);
                assert_eq!(*dst_port, 53);
                assert_eq!(payload.len(), 3);
            }
            _ => panic!("not udp"),
        }
    }

    #[test]
    fn probe_key_for_echo() {
        let p = Packet::echo_request(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 77, 3);
        let k = p.probe_key();
        assert_eq!(k.ident, 77);
        assert_eq!(k.seq, 3);
        assert_eq!(k.src, ip(1, 1, 1, 1));
        assert!(k.udp_ports.is_none());
    }

    #[test]
    fn probe_key_for_udp() {
        let p = Packet::udp(ip(1, 1, 1, 1), 5000, ip(2, 2, 2, 2), 53, vec![]);
        let k = p.probe_key();
        assert_eq!(k.udp_ports, Some((5000, 53)));
    }

    #[test]
    fn summary_mentions_endpoints() {
        let p = Packet::echo_request(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 1);
        let s = p.summary();
        assert!(s.contains("1.1.1.1"));
        assert!(s.contains("2.2.2.2"));
    }
}
